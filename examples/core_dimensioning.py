#!/usr/bin/env python3
"""Dimensioning a full mobile core with realistic control traffic.

Drives the procedure-level core simulator (MME/HSS/SGW/PGW for LTE,
AMF/UDM/SMF/UPF for 5G SA) with model-generated traffic and answers
three operator questions:

1. Which network function saturates first as the population grows?
2. What are the end-to-end procedure latencies under busy-hour load?
3. How does migrating the same UEs to a 5G SA core shift the load
   (HO storm -> AMF/SMF pressure)?

Run:  python examples/core_dimensioning.py
"""

import repro
from repro.mcn import CoreNetworkSimulator
from repro.model import scale_to_sa
from repro.trace import DeviceType

START_HOUR = 18
POPULATIONS = (200, 400, 800)

TRAIN_UES = {
    DeviceType.PHONE: 110,
    DeviceType.CONNECTED_CAR: 45,
    DeviceType.TABLET: 30,
}


def main() -> None:
    print("== fitting the traffic model ==")
    real = repro.simulate_ground_truth(
        TRAIN_UES, duration=3 * 3600.0, seed=31, start_hour=START_HOUR
    )
    lte_model = repro.fit_model_set(real, theta_n=40, trace_start_hour=START_HOUR)
    sa_model = scale_to_sa(lte_model)

    print("\n== 1. growth: per-function utilization (EPC, 2 workers each) ==")
    print(f"{'UEs':>6s} {'events':>8s}  " + "  ".join(f"{nf:>6s}" for nf in
                                                      ("MME", "HSS", "SGW", "PGW")))
    for population in POPULATIONS:
        trace = repro.TrafficGenerator(lte_model).generate(
            population, start_hour=START_HOUR + 1, num_hours=1, seed=13
        )
        report = CoreNetworkSimulator("epc", workers=2, seed=1).process(trace)
        utils = "  ".join(
            f"{report.functions[nf].utilization:6.1%}"
            for nf in ("MME", "HSS", "SGW", "PGW")
        )
        print(f"{population:6d} {report.num_events:8,d}  {utils}"
              f"   <- bottleneck: {report.bottleneck()}")

    print("\n== 2. procedure latencies at the largest population (EPC) ==")
    trace = repro.TrafficGenerator(lte_model).generate(
        POPULATIONS[-1], start_hour=START_HOUR + 1, num_hours=1, seed=13
    )
    report = CoreNetworkSimulator("epc", workers=2, seed=1).process(trace)
    print(f"{'procedure':>22s} {'count':>8s} {'mean':>9s} {'p99':>9s}")
    for name, proc in sorted(report.procedures.items()):
        print(f"{name:>22s} {proc.count:8,d} "
              f"{proc.mean_latency * 1e3:7.2f}ms {proc.p99_latency * 1e3:7.2f}ms")

    print("\n== 3. the same UEs on a 5G SA core ==")
    sa_trace = repro.TrafficGenerator(sa_model).generate(
        POPULATIONS[-1], start_hour=START_HOUR + 1, num_hours=1, seed=13
    )
    sa_report = CoreNetworkSimulator("5gc", workers=2, seed=1).process(sa_trace)
    print(f"   events: {report.num_events:,} (EPC) vs {sa_report.num_events:,} (5GC)")
    print(f"   messages: {report.num_messages:,} vs {sa_report.num_messages:,}")
    for epc_nf, sa_nf in (("MME", "AMF"), ("HSS", "UDM"), ("SGW", "SMF"), ("PGW", "UPF")):
        print(f"   {epc_nf:4s} {report.functions[epc_nf].utilization:6.1%}  ->  "
              f"{sa_nf:4s} {sa_report.functions[sa_nf].utilization:6.1%}")
    print("   (the 5G HO storm shifts control load toward the session\n"
          "    path: SMF/UPF see relatively more work than SGW/PGW did)")


if __name__ == "__main__":
    main()
