#!/usr/bin/env python3
"""Telemetry design: choosing a control-plane sampling rate (§3.1).

The paper's second use case: accurate traffic models help design
monitoring — e.g. pick the lowest event-sampling rate that still
estimates per-event-type volumes within a target error.  Because
control traffic is bursty and heavy-tailed across UEs, the needed rate
is higher than a Poisson intuition suggests; the traffic model lets an
operator find that out *before* deploying a collector.

This script synthesizes a busy hour, samples it at various rates, and
reports the relative error of (a) total volume and (b) per-event-type
shares, plus the error of top-talker (heavy UE) detection.

Run:  python examples/monitoring_sampling.py
"""

import numpy as np

import repro
from repro.trace import DeviceType, EventType, Trace

START_HOUR = 18
POPULATION = 600
SAMPLING_RATES = (0.5, 0.2, 0.1, 0.05, 0.02, 0.01)
TOP_TALKER_K = 20

TRAIN_UES = {
    DeviceType.PHONE: 110,
    DeviceType.CONNECTED_CAR: 40,
    DeviceType.TABLET: 30,
}


def sample_trace(trace: Trace, rate: float, rng: np.random.Generator) -> Trace:
    """Uniform per-event sampling at the given rate."""
    mask = rng.random(len(trace)) < rate
    return Trace(
        trace.ue_ids[mask],
        trace.times[mask],
        trace.event_types[mask],
        trace.device_types[mask],
        sort=False,
        validate=False,
    )


def top_talkers(trace: Trace, k: int) -> set:
    counts = trace.events_per_ue()
    return set(sorted(counts, key=counts.get, reverse=True)[:k])


def main() -> None:
    print("== synthesizing the busy-hour workload ==")
    real = repro.simulate_ground_truth(
        TRAIN_UES, duration=3 * 3600.0, seed=21, start_hour=START_HOUR
    )
    model = repro.fit_model_set(real, theta_n=40, trace_start_hour=START_HOUR)
    trace = repro.TrafficGenerator(model).generate(
        POPULATION, start_hour=START_HOUR + 1, num_hours=1, seed=2
    )
    true_breakdown = trace.breakdown()
    true_top = top_talkers(trace, TOP_TALKER_K)
    print(f"   {len(trace):,} events, {trace.num_ues} active UEs")

    print(f"\n{'rate':>6s} {'volume err':>11s} {'worst share err':>16s} "
          f"{'top-{k} recall':>14s}".format(k=TOP_TALKER_K))
    rng = np.random.default_rng(5)
    for rate in SAMPLING_RATES:
        sampled = sample_trace(trace, rate, rng)
        est_volume = len(sampled) / rate
        volume_err = abs(est_volume - len(trace)) / len(trace)
        sampled_breakdown = sampled.breakdown()
        share_err = max(
            abs(sampled_breakdown[e] - true_breakdown[e]) for e in EventType
        )
        recall = (
            len(top_talkers(sampled, TOP_TALKER_K) & true_top) / len(true_top)
            if len(sampled)
            else 0.0
        )
        print(f"{rate:6.2f} {volume_err:10.2%} {share_err:15.2%} {recall:13.0%}")

    print("\n   A rate that nails aggregate volume can still miss rare but\n"
          "   operationally-critical event types (ATCH/DTCH are <1% of\n"
          "   events) and mis-rank heavy UEs - the per-UE diversity the\n"
          "   model captures is what surfaces this before deployment.")


if __name__ == "__main__":
    main()
