#!/usr/bin/env python3
"""MCN load testing: sizing an MME with realistic control traffic.

The paper's headline use case (§3.1): drive an MCN design with
realistic control-plane workload to evaluate and size it.  This example

* fits the proposed model once,
* synthesizes busy-hour traffic at growing UE populations,
* finds the smallest MME worker pool meeting a p99 queueing-delay SLO,
* contrasts tail latency under realistic (bursty) traffic with a
  Poisson stream of identical volume — the burstiness the paper
  documents in §4.2 is exactly what breaks naive capacity plans, and
* shows that traffic from the `Base` baseline would mis-drive the MME
  (protocol violations from HO-in-IDLE).

Run:  python examples/mcn_loadtest.py
"""

import numpy as np

import repro
from repro.baselines import fit_method
from repro.mcn import MmeSimulator
from repro.trace import DeviceType, Trace

START_HOUR = 18
SLO_P99_SECONDS = 0.05
POPULATIONS = (200, 400, 800)

TRAIN_UES = {
    DeviceType.PHONE: 110,
    DeviceType.CONNECTED_CAR: 40,
    DeviceType.TABLET: 30,
}


def poisson_twin(trace: Trace, seed: int = 0) -> Trace:
    """A Poisson stream with the same event mix and volume as `trace`."""
    rng = np.random.default_rng(seed)
    duration = float(trace.times.max()) if len(trace) else 3600.0
    times = np.sort(rng.uniform(0.0, duration, len(trace)))
    return Trace(
        trace.ue_ids.copy(),
        times,
        trace.event_types.copy(),
        trace.device_types.copy(),
        validate=False,
    )


def smallest_pool_meeting_slo(trace: Trace) -> int:
    for workers in (1, 2, 3, 4, 6, 8, 12, 16, 24, 32):
        report = MmeSimulator(num_workers=workers).process(trace)
        if report.p99_wait <= SLO_P99_SECONDS:
            return workers
    return -1


def main() -> None:
    print("== fitting the traffic model ==")
    real = repro.simulate_ground_truth(
        TRAIN_UES, duration=3 * 3600.0, seed=3, start_hour=START_HOUR
    )
    model = fit_method("ours", real, theta_n=40, trace_start_hour=START_HOUR)
    generator = repro.TrafficGenerator(model)

    print(f"\n== MME sizing for a p99 wait SLO of {SLO_P99_SECONDS * 1e3:.0f} ms ==")
    print(f"{'UEs':>6s} {'events/h':>9s} {'workers':>8s} "
          f"{'p99(real)':>10s} {'p99(poisson)':>13s}")
    for population in POPULATIONS:
        trace = generator.generate(
            population, start_hour=START_HOUR + 1, num_hours=1, seed=11
        )
        twin = poisson_twin(trace, seed=11)
        workers = smallest_pool_meeting_slo(trace)
        real_report = MmeSimulator(num_workers=max(workers, 1)).process(trace)
        twin_report = MmeSimulator(num_workers=max(workers, 1)).process(twin)
        print(f"{population:6d} {len(trace):9,d} {workers:8d} "
              f"{real_report.p99_wait * 1e3:8.2f}ms "
              f"{twin_report.p99_wait * 1e3:11.2f}ms")
    print("   (bursty realistic traffic needs the capacity; a Poisson\n"
          "    stream of the same volume underestimates the tail)")

    print("\n== what happens with baseline-synthesized traffic? ==")
    base_model = fit_method("base", real, trace_start_hour=START_HOUR)
    base_trace = repro.TrafficGenerator(base_model).generate(
        POPULATIONS[0], start_hour=START_HOUR + 1, num_hours=1, seed=11
    )
    ours_trace = generator.generate(
        POPULATIONS[0], start_hour=START_HOUR + 1, num_hours=1, seed=11
    )
    for name, trace in (("ours", ours_trace), ("base", base_trace)):
        report = MmeSimulator(num_workers=4).process(trace)
        print(f"   {name:5s}: {report.num_events:7,d} events, "
              f"{report.protocol_violations:6,d} protocol violations "
              f"({report.protocol_violations / report.num_events:.1%})")
    print("   (an MME driven by Base traffic spends its time rejecting\n"
          "    impossible transitions - HO while IDLE - instead of doing\n"
          "    representative work)")


if __name__ == "__main__":
    main()
