#!/usr/bin/env python3
"""Quickstart: the full pipeline in one script.

1. Simulate a "real" control-plane trace (stand-in for carrier data).
2. Fit the paper's two-level semi-Markov model with adaptive clustering.
3. Save / reload the fitted model.
4. Synthesize a trace for a *larger* UE population and a chosen hour.
5. Compare the synthesized trace against held-out real traffic.

Run:  python examples/quickstart.py
"""

import tempfile
from pathlib import Path

import repro
from repro.trace import DeviceType, breakdown_table
from repro.validation import breakdown_with_states, format_percent

TRAIN_UES = {
    DeviceType.PHONE: 120,
    DeviceType.CONNECTED_CAR: 45,
    DeviceType.TABLET: 35,
}
START_HOUR = 17           # trace starts at 5pm
TRAIN_HOURS = 4           # 5pm - 9pm
TARGET_POPULATION = 800   # 4x the training population
TARGET_HOUR = 19          # synthesize the 7pm busy hour


def main() -> None:
    print("== 1. simulating ground-truth traffic ==")
    real = repro.simulate_ground_truth(
        TRAIN_UES, duration=TRAIN_HOURS * 3600.0, seed=1, start_hour=START_HOUR
    )
    print(f"   {len(real):,} events from {real.num_ues} UEs "
          f"over {TRAIN_HOURS} hours")

    print("== 2. fitting the two-level semi-Markov model ==")
    model = repro.fit_model_set(
        real,
        theta_n=40,                  # cluster-size threshold (paper: 1000)
        trace_start_hour=START_HOUR,
    )
    print(f"   {model.num_models} (device, hour, cluster) models fitted")

    print("== 3. persistence round-trip ==")
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "model.json.gz"
        model.save(path)
        model = repro.ModelSet.load(path)
        print(f"   model set saved and reloaded ({path.stat().st_size:,} bytes)")

    print(f"== 4. synthesizing {TARGET_POPULATION} UEs at hour {TARGET_HOUR} ==")
    generator = repro.TrafficGenerator(model)
    synthetic = generator.generate(
        TARGET_POPULATION, start_hour=TARGET_HOUR, num_hours=1, seed=7
    )
    print(f"   {len(synthetic):,} events from {synthetic.num_ues} active UEs")

    print("== 5. fidelity check against held-out real traffic ==")
    holdout = repro.simulate_ground_truth(
        TRAIN_UES, duration=3600.0, seed=999, start_hour=TARGET_HOUR
    )
    for device in DeviceType:
        real_bd = breakdown_with_states(holdout, device)
        syn_bd = breakdown_with_states(synthetic, device)
        worst = max(abs(syn_bd[k] - real_bd[k]) for k in real_bd)
        print(f"   {device.name:14s} max breakdown error "
              f"{format_percent(worst)}")
    print("\nsample of the synthesized trace:")
    for event in list(synthetic)[:8]:
        print(f"   t={event.time:9.3f}s  ue={event.ue_id:4d}  "
              f"{event.event_type.name:12s} ({event.device_type.name})")


if __name__ == "__main__":
    main()
