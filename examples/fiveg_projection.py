#!/usr/bin/env python3
"""5G projection: what happens to the control plane after migration (§6).

Fits the model on LTE traffic, scales it to 5G NSA (HO x4.6) and 5G SA
(HO x3.0, TAU removed, Table 2 renames), synthesizes traffic for each
generation, and reports:

* the Table-7-style event breakdown per generation, and
* the MME capacity impact of the HO storm 5G brings.

Run:  python examples/fiveg_projection.py
"""

import repro
from repro.fiveg import nsa_breakdown, sa_breakdown
from repro.mcn import MmeSimulator
from repro.model import scale_to_nsa, scale_to_sa
from repro.trace import DeviceType

START_HOUR = 17
POPULATION = 400

TRAIN_UES = {
    DeviceType.PHONE: 110,
    DeviceType.CONNECTED_CAR: 45,
    DeviceType.TABLET: 30,
}


def main() -> None:
    print("== fitting the LTE model ==")
    real = repro.simulate_ground_truth(
        TRAIN_UES, duration=4 * 3600.0, seed=9, start_hour=START_HOUR
    )
    lte_model = repro.fit_model_set(real, theta_n=40, trace_start_hour=START_HOUR)

    models = {
        "LTE": lte_model,
        "5G NSA": scale_to_nsa(lte_model),   # HO x4.6, LTE machine kept
        "5G SA": scale_to_sa(lte_model),     # HO x3.0, TAU removed
    }

    traces = {
        name: repro.TrafficGenerator(model).generate(
            POPULATION, start_hour=START_HOUR + 2, num_hours=1, seed=4
        )
        for name, model in models.items()
    }

    print(f"\n== projected busy-hour breakdown for phones ({POPULATION} UEs) ==")
    for name, trace in traces.items():
        if name == "5G SA":
            bd = sa_breakdown(trace, DeviceType.PHONE)
        else:
            bd = nsa_breakdown(trace, DeviceType.PHONE)
        rendered = ", ".join(f"{k}={v * 100:.1f}%" for k, v in bd.items() if v > 0)
        print(f"   {name:7s} {rendered}")
    print("   (as in Table 7: the HO share explodes under 5G, more for\n"
          "    NSA - which hands over on both RANs - than for SA)")

    print("\n== MME load impact ==")
    print(f"{'generation':>11s} {'events/h':>9s} {'p99 wait (4 workers)':>22s}")
    for name, trace in traces.items():
        report = MmeSimulator(num_workers=4).process(trace)
        print(f"{name:>11s} {report.num_events:9,d} "
              f"{report.p99_wait * 1e3:18.2f} ms")


if __name__ == "__main__":
    main()
