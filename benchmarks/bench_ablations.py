"""Ablations of the design choices DESIGN.md calls out.

1. **Clustering thresholds** (theta_n sweep): granularity vs fidelity —
   the paper fixes theta_f=5, theta_n=1000 by binary search; here the
   sweep shows the fidelity/model-count trade-off directly.
2. **Clustering on/off for the full model**: quantifies what the
   adaptive clustering contributes beyond the two-level machine +
   empirical CDFs (complements the V1/V2 comparisons).
3. **Empirical-CDF resolution** (max_cdf_points sweep): how much the
   stored quantile knots can be compressed before fidelity degrades.
"""

from repro.generator import TrafficGenerator
from repro.model import fit_model_set
from repro.statemachines import lte
from repro.trace import DeviceType
from repro.validation import (
    format_table,
    max_abs_breakdown_difference,
    sojourn_ydistance,
)

from conftest import START_HOUR, THETA_N, write_result

P = DeviceType.PHONE


def _fidelity(model_set, scenario, busy_hour):
    syn = TrafficGenerator(model_set).generate(
        scenario["num_ues"], start_hour=busy_hour, num_hours=1, seed=99
    )
    macro = max_abs_breakdown_difference(scenario["real"], syn, P)
    micro = sojourn_ydistance(scenario["real"], syn, P, lte.CONNECTED)
    return macro, micro


def test_ablation_theta_n(benchmark, collection_trace, scenario1, busy_hour):
    def _sweep():
        out = {}
        for theta_n in (THETA_N // 3 or 1, THETA_N, THETA_N * 4, 10**9):
            ms = fit_model_set(
                collection_trace,
                theta_n=theta_n,
                trace_start_hour=START_HOUR,
            )
            out[theta_n] = (ms.num_models, *_fidelity(ms, scenario1, busy_hour))
        return out

    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    rows = [
        [tn if tn < 10**9 else "inf (1 cluster)", n, f"{100 * macro:.1f}%", f"{100 * micro:.1f}%"]
        for tn, (n, macro, micro) in results.items()
    ]
    text = format_table(
        ["theta_n", "models", "macro err (P)", "CONNECTED y-dist (P)"],
        rows,
        title="Ablation: clustering size threshold",
    )
    write_result("ablation_theta_n", text)
    # More clusters should never make the sojourn fidelity dramatically
    # worse; the single-cluster end loses microscopic fidelity.
    micros = [micro for (_, _, micro) in results.values()]
    assert min(micros) < 0.5


def test_ablation_cdf_resolution(benchmark, collection_trace, scenario1, busy_hour):
    def _sweep():
        out = {}
        for points in (4, 16, 64, 512):
            ms = fit_model_set(
                collection_trace,
                theta_n=THETA_N,
                trace_start_hour=START_HOUR,
                max_cdf_points=points,
            )
            out[points] = _fidelity(ms, scenario1, busy_hour)
        return out

    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    rows = [
        [points, f"{100 * macro:.1f}%", f"{100 * micro:.1f}%"]
        for points, (macro, micro) in results.items()
    ]
    text = format_table(
        ["max CDF knots", "macro err (P)", "CONNECTED y-dist (P)"],
        rows,
        title="Ablation: empirical-CDF resolution",
    )
    write_result("ablation_cdf_resolution", text)
    # Even heavily compressed CDFs keep the macroscopic mix intact.
    assert all(macro < 0.15 for macro, _ in results.values())
