"""Table 9: goodness-of-fit pass rates WITH adaptive clustering.

Same study as Table 8, but per adaptive UE cluster.  The paper finds
clustering helps marginally (ATCH/DTCH up to ~24% under A²; Weibull up
to 40% on some quantities) but the bulk of quantities still fail —
which motivates the empirical-CDF model.  Shape to reproduce: pass
rates remain low for the dominant quantities.
"""

from repro.analysis import TESTS, gof_study
from repro.trace import DeviceType
from repro.validation import format_table

from conftest import START_HOUR, THETA_N, write_result

QUANTITY_ORDER = (
    "ATCH", "DTCH", "SRV_REQ", "S1_CONN_REL", "HO", "TAU",
    "REGISTERED", "DEREGISTERED", "CONNECTED", "IDLE",
)


def _study_all_devices(trace):
    return {
        dt: gof_study(
            trace,
            dt,
            clustered=True,
            theta_n=THETA_N,
            trace_start_hour=START_HOUR,
        )
        for dt in DeviceType
    }


def test_table9_gof_with_clustering(benchmark, collection_trace):
    results = benchmark.pedantic(
        _study_all_devices, args=(collection_trace,), rounds=1, iterations=1
    )

    rows = []
    for test in TESTS:
        for dt in DeviceType:
            rates = results[dt].rates[test]
            rows.append(
                [test, dt.short_name]
                + [
                    f"{100 * rates.get(q, 0.0):.1f}%"
                    if q in results[dt].combos
                    else "-"
                    for q in QUANTITY_ORDER
                ]
            )
    text = format_table(
        ["Test", "Dev"] + list(QUANTITY_ORDER),
        rows,
        title=(
            "Table 9: % of (hour, cluster) combos passing GoF tests "
            "(with clustering; paper: <5% KS / <24% A2 for events, <1.4% states)"
        ),
    )
    write_result("table9_gof_clust", text)

    # Shape assertions target the quantities with real statistical
    # power at this scale: the CONNECTED/IDLE sojourns (paper: <1.4%
    # pass) and the A2 test on the dominant events (paper: <23.8%).
    # Small per-cluster samples make the K-S event rows lenient at
    # 1/100 scale; they are reported but not asserted.
    for dt in DeviceType:
        for q in ("CONNECTED", "IDLE"):
            if q in results[dt].combos:
                assert results[dt].rates["poisson_ks"][q] <= 0.10, (
                    f"{dt.name}/{q}: Poisson K-S pass rate too high"
                )
        for q in ("SRV_REQ", "S1_CONN_REL"):
            if q in results[dt].combos:
                assert results[dt].rates["poisson_ad"][q] <= 0.35, (
                    f"{dt.name}/{q}: Poisson A2 pass rate too high"
                )
