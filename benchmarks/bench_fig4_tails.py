"""Figure 4: CDFs of real vs fitted-Poisson durations.

The paper shows that the exponential fit cannot span the observed
range: e.g. the maximum CONNECTED sojourn is 2106.94 s vs 156.35 s for
the fit, and HO inter-arrivals reach 1988 s vs 560 s.  Shape to
reproduce: observed maxima exceed the fitted maxima for all four
quantities (heavy upper tails).
"""

from repro.analysis import FIG34_QUANTITIES, tail_analysis
from repro.trace import DeviceType
from repro.validation import format_table

from conftest import write_result


def _analyses(trace, busy_hour):
    return {
        quantity: tail_analysis(
            trace, DeviceType.PHONE, quantity, seed=5, hour=busy_hour
        )
        for quantity in FIG34_QUANTITIES
    }


def test_fig4_tail_comparison(benchmark, collection_trace, busy_hour):
    reports = benchmark.pedantic(
        _analyses, args=(collection_trace, busy_hour), rounds=1, iterations=1
    )

    rows = []
    for quantity, r in reports.items():
        rows.append(
            [
                quantity,
                f"[{r.observed_min:.2f}, {r.observed_max:.2f}]",
                f"[{r.fitted_min:.2f}, {r.fitted_max:.2f}]",
                f"{r.upper_tail_ratio:.2f}x",
            ]
        )
    text = format_table(
        ["Quantity", "observed range (s)", "fitted-Poisson range (s)",
         "obs/fit max (paper: e.g. CONNECTED 2106.94 vs 156.35)"],
        rows,
        title="Figure 4: duration ranges, real trace vs fitted exponential (phones)",
    )
    write_result("fig4_tails", text)

    # Shape: for the state sojourns and HO the observed upper tail
    # escapes the exponential fit, as in the paper.  TAU is reported
    # but not asserted: at 1/100 scale its windowed inter-arrivals are
    # dominated by the periodic timer and the direction of the range
    # mismatch is not stable.
    for quantity in ("CONNECTED", "IDLE", "HO"):
        r = reports[quantity]
        assert r.observed_max > r.fitted_max, (
            f"{quantity}: fitted exponential reaches the observed max"
        )
        assert not r.fit_covers_range
