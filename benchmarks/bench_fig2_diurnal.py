"""Figure 2: box plots of events per device-hour across the day.

Regenerates the per-hour box statistics of the four dominant event
types per device type, and the peak-to-trough ratios quoted in §4.1.1
(phones 2.27-86.15x, connected cars 3.43-1309.33x, tablets
1.45-90.06x).  The shapes to reproduce: strong diurnal swings for every
device, deepest for connected cars.
"""

import math

from repro.trace import (
    DeviceType,
    EventType,
    diurnal_box_stats,
    peak_to_trough_ratio,
)
from repro.validation import format_table

from conftest import write_result

DOMINANT = (EventType.SRV_REQ, EventType.S1_CONN_REL, EventType.HO, EventType.TAU)


def _all_box_stats(trace):
    return {
        (dt, event): diurnal_box_stats(trace, dt, event)
        for dt in DeviceType
        for event in DOMINANT
    }


def test_fig2_diurnal_boxes(benchmark, collection_trace):
    stats = benchmark.pedantic(
        _all_box_stats, args=(collection_trace,), rounds=1, iterations=1
    )

    lines = ["Figure 2: per-UE event counts per hour-of-day (mean/median/max)"]
    ratio_rows = []
    for dt in DeviceType:
        for event in DOMINANT:
            per_hour = stats[(dt, event)]
            means = [per_hour[h].mean for h in range(24)]
            lines.append(
                f"\n{dt.name} / {event.name}: "
                + " ".join(f"{m:5.2f}" for m in means)
            )
            ratio = peak_to_trough_ratio(collection_trace, dt, event)
            ratio_rows.append([dt.name, event.name, f"{ratio:.2f}x"])
    table = format_table(
        ["Device", "Event", "peak/trough (paper: P 2.3-86x, CC 3.4-1309x, T 1.5-90x)"],
        ratio_rows,
    )
    write_result("fig2_diurnal", "\n".join(lines) + "\n\n" + table)

    # Shape assertions: real diurnal swings everywhere; cars deepest
    # for at least one dominant event type.
    ratios = {
        (dt, e): peak_to_trough_ratio(collection_trace, dt, e)
        for dt in DeviceType
        for e in DOMINANT
    }
    for (dt, e), r in ratios.items():
        if not math.isnan(r):
            # Paper's own minimum swing is 1.45x (tablets); the periodic
            # TAU timer damps that event's diurnal amplitude.
            assert r > 1.2, f"{dt.name}/{e.name}: ratio {r:.2f}"
    for dt in DeviceType:
        assert ratios[(dt, DOMINANT[0])] > 2.0, (
            f"{dt.name}: SRV_REQ swing too weak"
        )
    cc_max = max(
        r for (dt, _), r in ratios.items()
        if dt == DeviceType.CONNECTED_CAR and not math.isnan(r)
    )
    phone_max = max(
        r for (dt, _), r in ratios.items()
        if dt == DeviceType.PHONE and not math.isnan(r)
    )
    assert cc_max > phone_max, "cars must swing harder than phones"
