"""Table 11: breakdown differences, Scenario 1 (the smaller population).

Same comparison as Table 4 at the base population (paper: 38K UEs).
The paper's point — and the shape reproduced here — is that Scenario 1
and Scenario 2 agree: the model's fidelity does not depend on the
population size.
"""

from _macro import assert_macro_shape, run_macro_table
from conftest import write_result
from repro.trace import DeviceType
from repro.validation import max_abs_breakdown_difference


def test_table11_macroscopic_scenario1(benchmark, scenario1, scenario2):
    text = benchmark.pedantic(
        run_macro_table,
        args=(scenario1, f"Table 11 (Scenario 1, {scenario1['num_ues']} UEs)"),
        rounds=1,
        iterations=1,
    )
    write_result("table11_macro_s1", text)
    assert_macro_shape(scenario1)

    # Scenario agreement: our method's error is population-size stable.
    for dt in DeviceType:
        e1 = max_abs_breakdown_difference(
            scenario1["real"], scenario1["synthesized"]["ours"], dt
        )
        e2 = max_abs_breakdown_difference(
            scenario2["real"], scenario2["synthesized"]["ours"], dt
        )
        assert abs(e1 - e2) < 0.10, f"{dt.name}: scenario drift {e1:.3f} vs {e2:.3f}"
