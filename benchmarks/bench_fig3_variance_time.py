"""Figure 3: variance-time plots vs fitted Poisson models.

For phones' CONNECTED/IDLE state entries and HO/TAU arrivals, the
normalized variance of windowed rates across time scales 1-1000 s is
compared with a Poisson process of the fitted rate.  Shape to
reproduce: the observed curves sit *above* the Poisson reference at the
10-10^3 s scales (the paper reports log10 gaps of roughly 0.2-2.0).
"""

import numpy as np

from repro.analysis import FIG34_QUANTITIES, burstiness_analysis
from repro.trace import DeviceType
from repro.validation import format_table

from conftest import write_result


def _analyses(trace):
    return {
        quantity: burstiness_analysis(
            trace, DeviceType.PHONE, quantity, seed=3
        )
        for quantity in FIG34_QUANTITIES
    }


def test_fig3_variance_time(benchmark, collection_trace):
    reports = benchmark.pedantic(
        _analyses, args=(collection_trace,), rounds=1, iterations=1
    )

    lines = ["Figure 3: variance-time curves, phones (log10 normalized variance)"]
    gap_rows = []
    for quantity, report in reports.items():
        lines.append(f"\n{quantity}:")
        lines.append(
            "  scale(s):  "
            + " ".join(f"{s:8.1f}" for s in report.observed.scales)
        )
        lines.append(
            "  observed:  "
            + " ".join(f"{v:8.3f}" for v in report.observed.log10())
        )
        lines.append(
            "  poisson:   "
            + " ".join(f"{v:8.3f}" for v in report.reference.log10())
        )
        large = report.log_gap[-4:]
        gap_rows.append(
            [quantity, f"{large.min():.2f}", f"{large.max():.2f}"]
        )
    table = format_table(
        ["Quantity", "min log10 gap", "max log10 gap (paper: 0.2-2.0 at 10-10^3 s)"],
        gap_rows,
    )
    write_result("fig3_variance_time", "\n".join(lines) + "\n\n" + table)

    # Shape: every quantity is burstier than its Poisson fit at the
    # larger time scales.
    for quantity, report in reports.items():
        assert report.log_gap[-4:].mean() > 0.0, (
            f"{quantity}: no burstiness gap over Poisson"
        )
