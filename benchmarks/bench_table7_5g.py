"""Table 7: projected 5G NSA / 5G SA event breakdowns.

Scales the fitted LTE model to 5G NSA (HO x4.6) and 5G SA (HO x3.0,
TAU removed), synthesizes traffic, and reports the projected breakdown
per device type.  Shapes to reproduce: HO share rises sharply versus
LTE for every device; NSA > SA; SA has no TAU; connected cars remain
the most HO-heavy device.
"""

from repro.fiveg import nsa_breakdown, sa_breakdown
from repro.generator import TrafficGenerator
from repro.model import scale_to_nsa, scale_to_sa
from repro.trace import DeviceType, EventType
from repro.validation import format_table

from conftest import SCENARIO1_UES, write_result


def _project(ours_model, busy_hour):
    nsa_model = scale_to_nsa(ours_model)
    sa_model = scale_to_sa(ours_model)
    traces = {
        "lte": TrafficGenerator(ours_model).generate(
            SCENARIO1_UES, start_hour=busy_hour, num_hours=1, seed=55
        ),
        "nsa": TrafficGenerator(nsa_model).generate(
            SCENARIO1_UES, start_hour=busy_hour, num_hours=1, seed=55
        ),
        "sa": TrafficGenerator(sa_model).generate(
            SCENARIO1_UES, start_hour=busy_hour, num_hours=1, seed=55
        ),
    }
    return traces


def test_table7_5g_projection(benchmark, method_models, busy_hour):
    traces = benchmark.pedantic(
        _project, args=(method_models["ours"], busy_hour), rounds=1, iterations=1
    )

    rows = []
    for dt in DeviceType:
        lte_bd = nsa_breakdown(traces["lte"], dt)
        nsa_bd = nsa_breakdown(traces["nsa"], dt)
        sa_bd = sa_breakdown(traces["sa"], dt)
        for lte_name, nsa_name, sa_name in (
            ("ATCH", "ATCH", "REGISTER"),
            ("DTCH", "DTCH", "DEREGISTER"),
            ("SRV_REQ", "SRV_REQ", "SRV_REQ"),
            ("S1_CONN_REL", "S1_CONN_REL", "AN_REL"),
            ("HO", "HO", "HO"),
            ("TAU", "TAU", None),
        ):
            rows.append(
                [
                    dt.short_name,
                    f"{lte_name}/{sa_name or '-'}",
                    f"{100 * lte_bd[lte_name]:.1f}%",
                    f"{100 * nsa_bd[nsa_name]:.1f}%",
                    f"{100 * sa_bd[sa_name]:.1f}%" if sa_name else "-",
                ]
            )
    text = format_table(
        ["Dev", "Event (4G/5G)", "LTE", "5G NSA", "5G SA"],
        rows,
        title=(
            "Table 7: projected breakdown under 5G "
            "(paper: phones HO 3.8% -> 15.4% NSA / 10.9% SA)"
        ),
    )
    write_result("table7_5g", text)

    for dt in DeviceType:
        lte_ho = nsa_breakdown(traces["lte"], dt)["HO"]
        nsa_ho = nsa_breakdown(traces["nsa"], dt)["HO"]
        sa_ho = sa_breakdown(traces["sa"], dt)["HO"]
        assert nsa_ho > sa_ho > lte_ho, (
            f"{dt.name}: HO ordering lte={lte_ho:.3f} sa={sa_ho:.3f} nsa={nsa_ho:.3f}"
        )
        assert nsa_breakdown(traces["sa"], dt)["TAU"] == 0.0
