"""Figure 7: per-UE count CDFs, Ours vs Base, all three device types.

The paper plots the CDFs of SRV_REQ / S1_CONN_REL counts per UE for the
synthesized and real Scenario-2 traces, finding Ours visually
indistinguishable while Base diverges; numerically Ours achieves a
3.07x-11.14x smaller max y-distance.  Shape to reproduce: Ours' max
y-distance is smaller than Base's for every device and both events.
"""

import numpy as np

from repro.trace import DeviceType, EventType
from repro.validation import count_ydistance, format_table, per_ue_counts

from conftest import write_result

EVENTS = (EventType.SRV_REQ, EventType.S1_CONN_REL)


def _distances(scenario):
    real = scenario["real"]
    out = {}
    for method in ("base", "ours"):
        syn = scenario["synthesized"][method]
        for dt in DeviceType:
            for event in EVENTS:
                out[(method, dt, event)] = count_ydistance(real, syn, dt, event)
    return out


def test_fig7_count_cdfs(benchmark, scenario2):
    distances = benchmark.pedantic(
        _distances, args=(scenario2,), rounds=1, iterations=1
    )

    # Render the CDF points for one device/event as the figure's data.
    real_counts = per_ue_counts(scenario2["real"], DeviceType.PHONE, EventType.SRV_REQ)
    ours_counts = per_ue_counts(
        scenario2["synthesized"]["ours"], DeviceType.PHONE, EventType.SRV_REQ
    )
    grid = np.arange(0, max(real_counts.max(), ours_counts.max()) + 1)
    real_cdf = np.searchsorted(real_counts, grid, side="right") / real_counts.size
    ours_cdf = np.searchsorted(ours_counts, grid, side="right") / ours_counts.size
    cdf_lines = ["Figure 7 data (phones, SRV_REQ): count -> CDF(real), CDF(ours)"]
    for c, r, o in zip(grid[:30], real_cdf[:30], ours_cdf[:30]):
        cdf_lines.append(f"  {int(c):3d}  {r:.3f}  {o:.3f}")

    rows = []
    for dt in DeviceType:
        for event in EVENTS:
            base = distances[("base", dt, event)]
            ours = distances[("ours", dt, event)]
            ratio = base / ours if ours > 0 else float("inf")
            rows.append(
                [dt.name, event.name, f"{100 * base:.1f}%",
                 f"{100 * ours:.1f}%", f"{ratio:.2f}x"]
            )
    table = format_table(
        ["Device", "Event", "Base", "Ours", "Base/Ours (paper: 1.16-11.14x)"],
        rows,
        title="Figure 7: max y-distance of per-UE count CDFs, Scenario 2",
    )
    write_result("fig7_count_cdfs", table + "\n\n" + "\n".join(cdf_lines))

    for dt in DeviceType:
        for event in EVENTS:
            assert (
                distances[("ours", dt, event)]
                <= distances[("base", dt, event)] + 1e-9
            ), f"{dt.name}/{event.name}: ours worse than base"
