"""Table 4: breakdown differences, Scenario 2 (the larger population).

Real-vs-synthesized event breakdown differences for all four methods at
10x the Scenario-1 population (paper: 380K UEs).  Shapes to reproduce:
Base/V1 under-generate SRV_REQ/S1_CONN_REL by tens of percent and leak
21.7-47.8% of events as HO-in-IDLE; V2 and Ours stay within a few
percent everywhere, with Ours at least matching V2.
"""

from _macro import assert_macro_shape, run_macro_table
from conftest import write_result


def test_table4_macroscopic_scenario2(benchmark, scenario2):
    text = benchmark.pedantic(
        run_macro_table,
        args=(scenario2, f"Table 4 (Scenario 2, {scenario2['num_ues']} UEs)"),
        rounds=1,
        iterations=1,
    )
    write_result("table4_macro_s2", text)
    assert_macro_shape(scenario2)
