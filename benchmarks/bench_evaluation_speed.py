"""Compiled vs reference evaluation-pipeline throughput.

Runs ``evaluate_methods`` on the same phone-cohort train/validation
pair with both engines at several population sizes and writes
machine-readable JSON (``benchmarks/results/BENCH_evaluation.json``),
mirroring ``BENCH_fitting.json``.  Models are pre-fitted once (outside
the clock, with the compiled fitter) and passed in, so the timings
isolate what the evaluation tentpole changed: generation plus the
Table-4/5 metric computation — whole-cohort array replays and
``bincount``-based count CDFs versus the per-event reference walk.
Also measured: the compiled engine with per-(method × device) metric
jobs fanned across all CPUs.

``REPRO_BENCH_EVAL_UES`` overrides the population ladder
(comma-separated phone counts); the ``>= 5x`` speedup assertion only
applies at 20,000 UEs and above, where the vectorized replay has data
to amortize its setup over.
"""

import json
import os
import time

from repro.baselines import fit_method
from repro.groundtruth import simulate_ground_truth
from repro.harness import EVAL_ENGINES, evaluate_methods
from repro.telemetry import RunTelemetry
from repro.trace import DeviceType
from repro.validation import format_table

from conftest import RESULTS_DIR, write_result

POPULATIONS = tuple(
    int(n)
    for n in os.environ.get("REPRO_BENCH_EVAL_UES", "2000,20000").split(",")
)

#: The paper validates at the busiest hour; metric cost is dominated by
#: event volume, so the bench evaluates the evening peak.
BENCH_START_HOUR = 19

REPEATS = 2

METHODS = ("base", "ours")

#: Population size from which the hard perf assertion applies.
ASSERT_FLOOR = 20_000

SPEEDUP_FLOOR = 5.0


def _timed_eval(train, real, models, engine, **kwargs):
    telemetry = RunTelemetry()
    start = time.perf_counter()
    report = evaluate_methods(
        train,
        real,
        methods=METHODS,
        models=models,
        generation_hour=BENCH_START_HOUR,
        engine=engine,
        telemetry=telemetry,
        **kwargs,
    )
    return time.perf_counter() - start, report


def test_evaluation_engine_speed():
    # Warm both engines (imports, machine lowering) outside the clock.
    warm_train = simulate_ground_truth(
        {DeviceType.PHONE: 50},
        duration=7200.0,
        seed=2,
        start_hour=BENCH_START_HOUR,
    )
    warm_real = simulate_ground_truth(
        {DeviceType.PHONE: 50},
        duration=3600.0,
        seed=3,
        start_hour=BENCH_START_HOUR,
    )
    warm_models = {
        m: fit_method(m, warm_train, theta_n=25,
                      trace_start_hour=BENCH_START_HOUR)
        for m in METHODS
    }
    for engine in EVAL_ENGINES:
        _timed_eval(warm_train, warm_real, warm_models, engine)

    results = {
        "bench": "evaluation_engines",
        "generation_hour": BENCH_START_HOUR,
        "methods": list(METHODS),
        "populations": {},
    }
    rows = []
    for num_ues in POPULATIONS:
        train = simulate_ground_truth(
            {DeviceType.PHONE: num_ues},
            duration=2 * 3600.0,
            seed=9,
            start_hour=BENCH_START_HOUR,
        )
        real = simulate_ground_truth(
            {DeviceType.PHONE: num_ues},
            duration=3600.0,
            seed=10,
            start_hour=BENCH_START_HOUR,
        )
        theta_n = max(25, num_ues // 10)
        models = {
            m: fit_method(m, train, theta_n=theta_n,
                          trace_start_hour=BENCH_START_HOUR)
            for m in METHODS
        }

        per_engine = {}
        reports = {}
        for engine in EVAL_ENGINES:
            elapsed = float("inf")
            for _ in range(REPEATS):
                once, report = _timed_eval(train, real, models, engine)
                elapsed = min(elapsed, once)
            per_engine[engine] = {"seconds": elapsed}
            reports[engine] = report
        # The tentpole guarantee, re-checked where it matters most.
        assert (
            reports["compiled"].to_dict()["methods"]
            == reports["reference"].to_dict()["methods"]
        ), f"engines diverged at {num_ues} UEs"
        speedup = (
            per_engine["reference"]["seconds"]
            / per_engine["compiled"]["seconds"]
        )

        par_elapsed, par_report = _timed_eval(
            train, real, models, "compiled", processes=0
        )
        assert (
            par_report.to_dict()["methods"]
            == reports["compiled"].to_dict()["methods"]
        ), f"parallel metrics diverged at {num_ues} UEs"

        results["populations"][str(num_ues)] = {
            "PHONE": {
                "events_real": int(real.times.size),
                "theta_n": theta_n,
                "reference": per_engine["reference"],
                "compiled": per_engine["compiled"],
                "speedup": speedup,
                "compiled_parallel": {
                    "seconds": par_elapsed,
                    "processes": os.cpu_count(),
                },
            }
        }
        rows.append(
            [
                f"{num_ues}",
                f"{per_engine['reference']['seconds']:.2f} s",
                f"{per_engine['compiled']['seconds']:.2f} s",
                f"{speedup:.1f}x",
                f"{par_elapsed:.2f} s",
            ]
        )

        if num_ues >= ASSERT_FLOOR:
            assert speedup >= SPEEDUP_FLOOR, (
                f"compiled evaluation only {speedup:.1f}x faster "
                f"at {num_ues} UEs"
            )

    RESULTS_DIR.mkdir(exist_ok=True)
    json_path = RESULTS_DIR / "BENCH_evaluation.json"
    json_path.write_text(json.dumps(results, indent=2) + "\n")

    text = format_table(
        ["phone UEs", "reference", "compiled", "speedup", "parallel"],
        rows,
        title="Evaluation speed: 1-hour phone validation, both engines",
    )
    write_result("evaluation_speed", text + f"\n[json in {json_path}]")
