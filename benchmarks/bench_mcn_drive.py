"""Driving the mobile core with each method's traffic (extension).

The end-use of the generator is MCN evaluation; this bench quantifies
what model fidelity buys there.  The same population's busy hour,
synthesized by Base and by Ours, is fed to (a) the protocol-validating
MME and (b) the procedure-level EPC simulator.  Shape: Base traffic
triggers protocol violations (HO in IDLE) that Ours' never does, and it
mis-sizes the core by inflating the HO-driven message load.
"""

from repro.mcn import CoreNetworkSimulator, MmeSimulator
from repro.validation import format_table

from conftest import write_result


def _drive(scenario):
    out = {}
    for method in ("base", "ours"):
        trace = scenario["synthesized"][method]
        mme = MmeSimulator(num_workers=4, seed=1).process(trace)
        core = CoreNetworkSimulator("epc", workers=4, seed=1).process(trace)
        out[method] = (mme, core)
    real_mme = MmeSimulator(num_workers=4, seed=1).process(scenario["real"])
    real_core = CoreNetworkSimulator("epc", workers=4, seed=1).process(
        scenario["real"]
    )
    out["real"] = (real_mme, real_core)
    return out


def test_mcn_drive(benchmark, scenario1):
    results = benchmark.pedantic(_drive, args=(scenario1,), rounds=1, iterations=1)

    rows = []
    for name in ("real", "ours", "base"):
        mme, core = results[name]
        rows.append(
            [
                name,
                f"{mme.num_events:,}",
                f"{mme.protocol_violations:,}",
                f"{core.num_messages:,}",
                f"{core.functions['MME'].utilization:.2%}",
                core.bottleneck(),
            ]
        )
    text = format_table(
        ["Traffic", "events", "violations", "core msgs", "MME util", "bottleneck"],
        rows,
        title="Driving the EPC with real vs synthesized busy-hour traffic",
    )
    write_result("mcn_drive", text)

    real_mme, real_core = results["real"]
    ours_mme, ours_core = results["ours"]
    base_mme, base_core = results["base"]
    # Ours: protocol-clean and within 2x of the real message volume.
    assert ours_mme.protocol_violations == 0
    assert 0.5 < ours_core.num_messages / real_core.num_messages < 2.0
    # Base: violates the protocol.
    assert base_mme.protocol_violations > 0
