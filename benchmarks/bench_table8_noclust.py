"""Table 8: goodness-of-fit pass rates WITHOUT clustering.

For each device type, the percentage of 1-hour intervals whose
inter-arrival times (six event types) or EMM/ECM state sojourns pass
the K-S / Anderson-Darling tests for the classic families.  The paper
reports 0.0% everywhere without clustering; the shape to reproduce is
pass rates at or near zero across the board.
"""

from repro.analysis import TESTS, gof_study
from repro.trace import DeviceType
from repro.validation import format_table

from conftest import START_HOUR, write_result

QUANTITY_ORDER = (
    "ATCH", "DTCH", "SRV_REQ", "S1_CONN_REL", "HO", "TAU",
    "REGISTERED", "DEREGISTERED", "CONNECTED", "IDLE",
)


def _study_all_devices(trace):
    return {
        dt: gof_study(
            trace, dt, clustered=False, trace_start_hour=START_HOUR
        )
        for dt in DeviceType
    }


def test_table8_gof_without_clustering(benchmark, collection_trace):
    results = benchmark.pedantic(
        _study_all_devices, args=(collection_trace,), rounds=1, iterations=1
    )

    rows = []
    for test in TESTS:
        for dt in DeviceType:
            rates = results[dt].rates[test]
            rows.append(
                [test, dt.short_name]
                + [
                    f"{100 * rates.get(q, float('nan')):.1f}%"
                    if q in results[dt].combos
                    else "-"
                    for q in QUANTITY_ORDER
                ]
            )
    text = format_table(
        ["Test", "Dev"] + list(QUANTITY_ORDER),
        rows,
        title="Table 8: % of 1-hour intervals passing GoF tests (no clustering; paper: ~0%)",
    )
    write_result("table8_gof_noclust", text)

    # Shape: pooled per-device traffic is far from the classic
    # families.  Weibull is reported but not asserted: its 2-parameter
    # flexibility lets it pass K-S at the reduced per-combo sample
    # sizes of the default 1/100 scale (the paper's 0% cells rest on
    # ~100x more samples).
    for dt in DeviceType:
        for test in ("poisson_ks", "poisson_ad", "pareto_ks", "tcplib_ks"):
            rates = [
                results[dt].rates[test][q]
                for q in ("SRV_REQ", "S1_CONN_REL", "CONNECTED", "IDLE")
                if q in results[dt].combos
            ]
            assert rates, f"{dt.name}/{test}: nothing testable"
            assert max(rates) <= 0.35, (
                f"{dt.name}/{test}: unexpectedly high pass rate {max(rates):.2f}"
            )
