"""Shared benchmark fixtures: the scaled-down paper setup.

The paper trains on 37,325 UEs over 7 days and validates against 38K
(Scenario 1) and 380K (Scenario 2) UE traces.  The default benchmark
scale is 1/100 of that — it keeps every experiment's *shape* while
running on a laptop in minutes.  Set ``REPRO_BENCH_SCALE`` to scale up
(e.g. ``REPRO_BENCH_SCALE=10`` multiplies every population by 10;
``100`` restores the paper's sizes).

Every bench writes its regenerated table/figure data to
``benchmarks/results/<name>.txt`` and prints it, so running
``pytest benchmarks/ --benchmark-only -s`` reproduces the paper's
artifacts end to end.
"""

import os
from pathlib import Path

import pytest

from repro.baselines import fit_method
from repro.generator import TrafficGenerator
from repro.groundtruth import simulate_ground_truth
from repro.telemetry import RunTelemetry, get_telemetry, use_telemetry
from repro.trace import DeviceType, Trace, busiest_hour

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: Hour-of-day at which the collection trace starts.
START_HOUR = 0

#: Training population (paper: 23,388 / 9,308 / 4,629 over 7 days).
TRAIN_UES = {
    DeviceType.PHONE: max(20, int(234 * SCALE)),
    DeviceType.CONNECTED_CAR: max(10, int(93 * SCALE)),
    DeviceType.TABLET: max(8, int(46 * SCALE)),
}
TRAIN_DAYS = 2 if SCALE <= 2 else 7

#: Validation scenarios (paper: 38,000 and 380,000).
SCENARIO1_UES = max(50, int(380 * SCALE))
SCENARIO2_UES = max(500, int(3800 * SCALE))

#: Clustering size threshold, scaled like the population (paper: 1000).
THETA_N = max(15, int(10 * SCALE))

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(autouse=True)
def bench_telemetry(request):
    """A fresh ambient collector per bench, so each result artifact's
    telemetry JSON covers exactly that bench's generation work.
    (Session-scoped fixtures run before this installs, so their one-off
    fitting cost stays out of the per-bench counters.)"""
    tele = RunTelemetry({"bench": request.node.name, "scale": SCALE})
    with use_telemetry(tele):
        yield tele


def write_result(name: str, text: str) -> None:
    """Write one bench's regenerated artifact and echo it.

    The ambient collector's telemetry report lands next to the text
    artifact (``<name>.telemetry.json``) so the perf trajectory and the
    counter trajectory (events, UE-hours, RNG draws per bench) can be
    tracked together across commits.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    telemetry_path = RESULTS_DIR / f"{name}.telemetry.json"
    get_telemetry().write_report(telemetry_path)
    print(f"\n{text}\n[written to {path}; telemetry in {telemetry_path}]")


@pytest.fixture(scope="session")
def collection_trace() -> Trace:
    """The multi-day "collected" trace (stands in for the carrier data)."""
    return simulate_ground_truth(
        TRAIN_UES,
        duration=TRAIN_DAYS * 86400.0,
        seed=1000,
        start_hour=START_HOUR,
    )


@pytest.fixture(scope="session")
def busy_hour(collection_trace) -> int:
    return busiest_hour(collection_trace)


@pytest.fixture(scope="session")
def method_models(collection_trace):
    """All four methods fitted on the collection trace."""
    return {
        method: fit_method(
            method,
            collection_trace,
            theta_n=THETA_N,
            trace_start_hour=START_HOUR,
        )
        for method in ("base", "v1", "v2", "ours")
    }


def _scenario_traces(num_ues: int, busy_hour: int, seed: int):
    """A held-out real trace and the four synthesized traces."""
    real = simulate_ground_truth(
        {dt: int(round(num_ues * n / sum(TRAIN_UES.values())))
         for dt, n in TRAIN_UES.items()},
        duration=3600.0,
        seed=seed,
        start_hour=busy_hour,
    )
    return real


@pytest.fixture(scope="session")
def scenario1(method_models, busy_hour):
    """Scenario 1: real + synthesized traces at the small population."""
    real = _scenario_traces(SCENARIO1_UES, busy_hour, seed=4321)
    synthesized = {
        method: TrafficGenerator(ms).generate(
            SCENARIO1_UES, start_hour=busy_hour, num_hours=1, seed=77
        )
        for method, ms in method_models.items()
    }
    return {"real": real, "synthesized": synthesized, "num_ues": SCENARIO1_UES}


@pytest.fixture(scope="session")
def scenario2(method_models, busy_hour):
    """Scenario 2: 10x Scenario 1."""
    real = _scenario_traces(SCENARIO2_UES, busy_hour, seed=8765)
    synthesized = {
        method: TrafficGenerator(ms).generate(
            SCENARIO2_UES, start_hour=busy_hour, num_hours=1, seed=78
        )
        for method, ms in method_models.items()
    }
    return {"real": real, "synthesized": synthesized, "num_ues": SCENARIO2_UES}
