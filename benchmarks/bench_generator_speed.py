"""Generator throughput (§8.1's runtime report).

The paper's per-UE generator took 1.46 / 0.68 / 0.55 seconds to
synthesize a one-hour trace per phone / connected car / tablet on a
1.9 GHz Xeon core.  This bench measures the same quantity for this
implementation (whole-population generation divided by UE count) —
absolute numbers differ with hardware; the shape is that per-UE cost is
well under a second and phones (the busiest devices) cost the most.
"""

import time

from repro.generator import ENGINES, TrafficGenerator
from repro.trace import DeviceType
from repro.validation import format_table

from conftest import write_result

UES_PER_DEVICE = 200

PAPER_TIMES = {"PHONE": "1.46 s", "CONNECTED_CAR": "0.68 s", "TABLET": "0.55 s"}


def test_generator_per_ue_speed(benchmark, method_models, busy_hour):
    generator = TrafficGenerator(method_models["ours"])
    generator.generate(10, start_hour=busy_hour, num_hours=1, seed=1)

    def _generate_phones():
        return generator.generate(
            {DeviceType.PHONE: UES_PER_DEVICE},
            start_hour=busy_hour,
            num_hours=1,
            seed=3,
        )

    trace = benchmark(_generate_phones)
    assert trace.num_ues > 0

    rows = []
    for dt in DeviceType:
        per_engine = {}
        events = 0
        for engine in ENGINES:
            start = time.perf_counter()
            tr = generator.generate(
                {dt: UES_PER_DEVICE}, start_hour=busy_hour, num_hours=1,
                seed=3, engine=engine,
            )
            per_engine[engine] = time.perf_counter() - start
            events = len(tr)
        rows.append(
            [
                dt.name,
                f"{per_engine['compiled'] / UES_PER_DEVICE * 1e3:.2f} ms",
                f"{per_engine['reference'] / UES_PER_DEVICE * 1e3:.2f} ms",
                f"{events:,}",
                PAPER_TIMES[dt.name],
            ]
        )
    text = format_table(
        ["Device", "per-UE-hour (compiled)", "per-UE-hour (reference)",
         "events", "per-UE-hour (paper)"],
        rows,
        title="Generator speed: one-hour trace synthesis per UE",
    )
    write_result("generator_speed", text)
