"""Generator throughput (§8.1's runtime report).

The paper's per-UE generator took 1.46 / 0.68 / 0.55 seconds to
synthesize a one-hour trace per phone / connected car / tablet on a
1.9 GHz Xeon core.  This bench measures the same quantity for this
implementation (whole-population generation divided by UE count) —
absolute numbers differ with hardware; the shape is that per-UE cost is
well under a second and phones (the busiest devices) cost the most.
"""

import contextlib
import time

from repro.generator import ENGINES, TrafficGenerator
from repro.telemetry import RunTelemetry
from repro.trace import DeviceType
from repro.validation import format_table

from conftest import write_result

UES_PER_DEVICE = 200

PAPER_TIMES = {"PHONE": "1.46 s", "CONNECTED_CAR": "0.68 s", "TABLET": "0.55 s"}


def test_generator_per_ue_speed(benchmark, method_models, busy_hour):
    generator = TrafficGenerator(method_models["ours"])
    generator.generate(10, start_hour=busy_hour, num_hours=1, seed=1)

    def _generate_phones():
        return generator.generate(
            {DeviceType.PHONE: UES_PER_DEVICE},
            start_hour=busy_hour,
            num_hours=1,
            seed=3,
        )

    trace = benchmark(_generate_phones)
    assert trace.num_ues > 0

    rows = []
    for dt in DeviceType:
        per_engine = {}
        events = 0
        for engine in ENGINES:
            start = time.perf_counter()
            tr = generator.generate(
                {dt: UES_PER_DEVICE}, start_hour=busy_hour, num_hours=1,
                seed=3, engine=engine,
            )
            per_engine[engine] = time.perf_counter() - start
            events = len(tr)
        rows.append(
            [
                dt.name,
                f"{per_engine['compiled'] / UES_PER_DEVICE * 1e3:.2f} ms",
                f"{per_engine['reference'] / UES_PER_DEVICE * 1e3:.2f} ms",
                f"{events:,}",
                PAPER_TIMES[dt.name],
            ]
        )
    text = format_table(
        ["Device", "per-UE-hour (compiled)", "per-UE-hour (reference)",
         "events", "per-UE-hour (paper)"],
        rows,
        title="Generator speed: one-hour trace synthesis per UE",
    )
    write_result("generator_speed", text)


class _NullTelemetry(RunTelemetry):
    """A collector whose hot-path hooks are no-ops — the counterfactual
    for measuring what the always-on instrumentation costs."""

    def count(self, name, delta=1):
        pass

    def progress(self, phase, done, total=0):
        pass

    def span(self, name):
        return contextlib.nullcontext()


def test_telemetry_overhead(method_models, busy_hour):
    """The tentpole's always-on-counters contract: telemetry collection
    must add <3% to generation time on this bench's workload."""
    generator = TrafficGenerator(method_models["ours"])
    rows = []
    for engine, pop in (("compiled", 1000), ("reference", UES_PER_DEVICE)):
        timings = {}
        for label, make_tele in (
            ("off", _NullTelemetry),
            ("on", RunTelemetry),
        ):
            generator.generate(  # warm caches before timing
                {DeviceType.PHONE: pop},
                start_hour=busy_hour,
                num_hours=1,
                seed=3,
                engine=engine,
                telemetry=make_tele(),
            )
            best = min(
                _timed(
                    generator,
                    {DeviceType.PHONE: pop},
                    busy_hour,
                    engine,
                    make_tele(),
                )
                for _ in range(5)
            )
            timings[label] = best
        overhead = timings["on"] / timings["off"] - 1.0
        rows.append(
            [
                engine,
                f"{pop:,}",
                f"{timings['off'] * 1e3:,.1f} ms",
                f"{timings['on'] * 1e3:,.1f} ms",
                f"{overhead * 100.0:+.2f}%",
            ]
        )
        assert overhead < 0.03, (
            f"{engine}: telemetry overhead {overhead:.1%} breaches the "
            "<3% always-on budget"
        )
    text = format_table(
        ["Engine", "UEs", "telemetry no-op", "telemetry on", "overhead"],
        rows,
        title="Telemetry overhead: always-on counters vs no-op collector",
    )
    write_result("telemetry_overhead", text)


def _timed(generator, population, busy_hour, engine, telemetry):
    start = time.perf_counter()
    generator.generate(
        population,
        start_hour=busy_hour,
        num_hours=1,
        seed=3,
        engine=engine,
        telemetry=telemetry,
    )
    return time.perf_counter() - start
