"""Figures 1, 5, and 6: the state machines themselves.

Regenerates the paper's machine diagrams as Graphviz DOT sources and
asserts their structure: state counts, the starred SRV_REQ restriction,
HO's confinement to CONNECTED, and the 5G SA machine being the LTE
machine minus TAU.
"""

from repro.statemachines import (
    ecm_machine,
    emm_ecm_machine,
    emm_machine,
    machine_to_dot,
    nr_sa_machine,
    two_level_machine,
)
from repro.trace import LTE_TO_NR_EVENT, EventType

from conftest import write_result


def _render_all():
    nr_names = {int(lte): nr.name for lte, nr in LTE_TO_NR_EVENT.items()}
    return {
        "fig1a_emm": machine_to_dot(emm_machine()),
        "fig1b_ecm": machine_to_dot(ecm_machine()),
        "emm_ecm_merged": machine_to_dot(emm_ecm_machine()),
        "fig5_two_level": machine_to_dot(two_level_machine()),
        "fig6_nr_sa": machine_to_dot(nr_sa_machine(), event_names=nr_names),
    }


def test_figs156_machine_diagrams(benchmark):
    diagrams = benchmark.pedantic(_render_all, rounds=1, iterations=1)

    blocks = []
    for name, dot in diagrams.items():
        blocks.append(f"// ===== {name} =====\n{dot}")
    write_result("figs156_machines", "\n\n".join(blocks))

    # Structure assertions (the figures' content).
    m5 = two_level_machine()
    assert len(m5.states) == 7
    assert len(m5.transitions()) == 21
    m6 = nr_sa_machine()
    assert len(m6.states) == 4
    assert all(t.event != EventType.TAU for t in m6.transitions())
    assert 'label="REGISTER"' in diagrams["fig6_nr_sa"]
    assert 'label="CONNECTED"' in diagrams["fig5_two_level"]
