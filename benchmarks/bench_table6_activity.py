"""Table 6: count-CDF y-distance split by inactive/active UE groups.

The paper explains the residual count-CDF error of connected cars and
tablets: it is concentrated in *inactive* UEs (<= 2 events/hour) that
the model over-predicts by one event, while active UEs fit well.
Shape to reproduce: for cars/tablets, the active-group distance is
smaller than the inactive-group distance.
"""

import math

from repro.trace import DeviceType, EventType
from repro.validation import activity_split_ydistance, format_table

from conftest import write_result

DEVICES = (DeviceType.CONNECTED_CAR, DeviceType.TABLET)
EVENTS = (EventType.SRV_REQ, EventType.S1_CONN_REL)


def _split_table(scenario):
    real = scenario["real"]
    syn = scenario["synthesized"]["ours"]
    out = {}
    for dt in DEVICES:
        for event in EVENTS:
            out[(dt, event)] = activity_split_ydistance(real, syn, dt, event)
    return out


def test_table6_activity_split(benchmark, scenario1, scenario2):
    s1 = benchmark.pedantic(
        _split_table, args=(scenario1,), rounds=1, iterations=1
    )
    s2 = _split_table(scenario2)

    rows = []
    for event in EVENTS:
        row = [event.name]
        for results in (s1, s2):
            for dt in DEVICES:
                inactive, active = results[(dt, event)]
                row.append(f"{100 * inactive:.1f}/{100 * active:.1f}")
        rows.append(row)
    headers = ["Event"] + [
        f"{scen}-{dt.short_name} inact/act"
        for scen in ("S1", "S2")
        for dt in DEVICES
    ]
    text = format_table(
        headers,
        rows,
        title=(
            "Table 6: max y-distance (%) by activity group, Ours "
            "(paper: inactive 20.7-30.8, active 7.6-12.2)"
        ),
    )
    write_result("table6_activity", text)

    # Shape: active UEs fit better than inactive ones on average.
    gaps = []
    for results in (s1, s2):
        for (dt, event), (inactive, active) in results.items():
            if not (math.isnan(inactive) or math.isnan(active)):
                gaps.append(inactive - active)
    assert gaps, "no comparable activity groups"
    assert sum(gaps) / len(gaps) > 0.0, (
        "active UEs should fit better than inactive ones"
    )
