"""Shared rendering/assertions for the macroscopic tables (4 and 11)."""

from repro.trace import DeviceType
from repro.validation import (
    BREAKDOWN_ROWS,
    format_table,
    macro_comparison,
    max_abs_breakdown_difference,
)

METHOD_ORDER = ("base", "v1", "v2", "ours")


def run_macro_table(scenario: dict, title: str) -> str:
    """Compute + render one macroscopic comparison table."""
    table = macro_comparison(scenario["real"], scenario["synthesized"])
    blocks = []
    for dt in DeviceType:
        rows = []
        for row_key in BREAKDOWN_ROWS:
            real_v = table[dt]["real"][row_key]
            rows.append(
                [row_key, f"{100 * real_v:.1f}%"]
                + [
                    f"{100 * table[dt][m][row_key]:+.1f}%"
                    for m in METHOD_ORDER
                ]
            )
        blocks.append(
            format_table(
                ["Event", "Real"] + [m.capitalize() for m in METHOD_ORDER],
                rows,
                title=f"{title} - {dt.name}",
            )
        )
    return "\n\n".join(blocks)


def assert_macro_shape(scenario: dict) -> None:
    """The paper's ordering claims: Ours ~ V2 << V1 < Base."""
    real = scenario["real"]
    syn = scenario["synthesized"]
    for dt in DeviceType:
        errors = {
            m: max_abs_breakdown_difference(real, syn[m], dt)
            for m in METHOD_ORDER
        }
        assert errors["ours"] < 0.12, f"{dt.name}: ours err {errors['ours']:.3f}"
        assert errors["base"] > 1.5 * errors["ours"], (
            f"{dt.name}: base {errors['base']:.3f} vs ours {errors['ours']:.3f}"
        )
        # The EMM-ECM baselines leak HO into IDLE; the two-level methods don't.
        from repro.validation import breakdown_with_states

        assert breakdown_with_states(syn["base"], dt)["HO (IDLE)"] > 0.0
        assert breakdown_with_states(syn["ours"], dt)["HO (IDLE)"] == 0.0
        assert breakdown_with_states(syn["v2"], dt)["HO (IDLE)"] == 0.0
