"""Table 1: breakdown of control-plane events per device type.

Regenerates the paper's Table 1 from the (simulated) collection trace:
the percentage of each of the six event types for phones, connected
cars, and tablets.  The shape to reproduce: SRV_REQ/S1_CONN_REL carry
~84-93% of events; connected cars have the largest HO and TAU shares;
ATCH/DTCH stay around or below ~1-2%.
"""

from repro.trace import ALL_EVENT_TYPES, DeviceType, breakdown_table
from repro.validation import format_table

from conftest import write_result

#: Paper's Table 1, for side-by-side reference (percent).
PAPER_TABLE1 = {
    "ATCH": (0.1, 0.9, 1.2),
    "DTCH": (0.2, 0.9, 1.1),
    "SRV_REQ": (45.5, 38.9, 43.9),
    "S1_CONN_REL": (47.5, 45.2, 47.7),
    "HO": (3.8, 6.6, 2.1),
    "TAU": (2.9, 7.4, 4.0),
}


def test_table1_event_breakdown(benchmark, collection_trace):
    table = benchmark.pedantic(
        breakdown_table, args=(collection_trace,), rounds=1, iterations=1
    )

    rows = []
    for event in ALL_EVENT_TYPES:
        measured = [100 * table[dt][event] for dt in DeviceType]
        paper = PAPER_TABLE1[event.name]
        rows.append(
            [event.name]
            + [f"{v:.1f}%" for v in measured]
            + [f"{v:.1f}%" for v in paper]
        )
    text = format_table(
        ["Event", "P", "CC", "T", "paper P", "paper CC", "paper T"],
        rows,
        title="Table 1: breakdown of control-plane events (measured vs paper)",
    )
    write_result("table1_breakdown", text)

    # Shape assertions.
    for dt in DeviceType:
        dominant = (
            table[dt][ALL_EVENT_TYPES[2]] + table[dt][ALL_EVENT_TYPES[3]]
        )
        assert dominant > 0.75, f"{dt.name}: dominant events {dominant:.2f}"
    cc = DeviceType.CONNECTED_CAR
    assert table[cc][ALL_EVENT_TYPES[5]] == max(
        table[dt][ALL_EVENT_TYPES[5]] for dt in DeviceType
    ), "connected cars must have the largest TAU share"
    assert table[cc][ALL_EVENT_TYPES[4]] > table[DeviceType.TABLET][
        ALL_EVENT_TYPES[4]
    ], "connected cars out-HO tablets"
