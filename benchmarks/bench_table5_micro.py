"""Table 5: microscopic fidelity — max y-distances of per-UE CDFs.

Compares V2 (Poisson sojourns) against Ours (empirical CDFs) on the
maximum y-distance between synthesized and real CDFs of (a) per-UE
SRV_REQ / S1_CONN_REL counts and (b) CONNECTED / IDLE sojourn times,
for both validation scenarios.  Shape to reproduce: Ours' sojourn
distances are substantially smaller than V2's (the paper reports e.g.
6.3% vs 30.2% for phone CONNECTED), and count distances are no worse.
"""

from repro.statemachines import lte
from repro.trace import DeviceType, EventType
from repro.validation import (
    count_ydistance,
    format_table,
    sojourn_ydistance,
)

from conftest import write_result

ROWS = ("SRV_REQ", "S1_CONN_REL", "CONNECTED", "IDLE")


def _micro_table(scenario):
    real = scenario["real"]
    out = {}
    for method in ("v2", "ours"):
        syn = scenario["synthesized"][method]
        for dt in DeviceType:
            metrics = {}
            for event in (EventType.SRV_REQ, EventType.S1_CONN_REL):
                metrics[event.name] = count_ydistance(
                    real, syn, dt, event,
                    real_num_ues=None, syn_num_ues=None,
                )
            for state in (lte.CONNECTED, lte.IDLE):
                metrics[state] = sojourn_ydistance(real, syn, dt, state)
            out[(method, dt)] = metrics
    return out


def test_table5_micro_ydistance(benchmark, scenario1, scenario2):
    results = {}
    results["s1"] = benchmark.pedantic(
        _micro_table, args=(scenario1,), rounds=1, iterations=1
    )
    results["s2"] = _micro_table(scenario2)

    rows = []
    for key in ROWS:
        row = [key]
        for scen in ("s1", "s2"):
            for dt in DeviceType:
                v2 = results[scen][("v2", dt)][key]
                ours = results[scen][("ours", dt)][key]
                row.append(f"{100 * v2:.1f}/{100 * ours:.1f}")
        rows.append(row)
    headers = ["Quantity"] + [
        f"{scen}-{dt.short_name} V2/Ours"
        for scen in ("S1", "S2")
        for dt in DeviceType
    ]
    text = format_table(
        headers,
        rows,
        title=(
            "Table 5: max y-distance (%) of per-UE CDFs, V2 vs Ours "
            "(paper: Ours beats V2, e.g. phones CONNECTED 6.3 vs 30.2)"
        ),
    )
    write_result("table5_micro", text)

    # Shape: empirical sojourn CDFs beat Poisson sojourns on the
    # dominant states, averaged over devices and scenarios.
    for state in (lte.CONNECTED, lte.IDLE):
        v2_mean = sum(
            results[s][("v2", dt)][state]
            for s in ("s1", "s2")
            for dt in DeviceType
        ) / 6
        ours_mean = sum(
            results[s][("ours", dt)][state]
            for s in ("s1", "s2")
            for dt in DeviceType
        ) / 6
        assert ours_mean < v2_mean, (
            f"{state}: ours {ours_mean:.3f} not better than v2 {v2_mean:.3f}"
        )
