"""Compiled vs reference fitting-pipeline throughput.

Fits the same phone-cohort trace with both ``fit_model_set`` engines at
several population sizes and writes machine-readable JSON
(``benchmarks/results/BENCH_fitting.json``) so regressions can be
tracked across commits, mirroring ``BENCH_generator.json``.  Also
measured: the compiled engine with per-(device, hour) process fan-out
(wall-clock wins require more than one core and more hour-jobs than
workers), and the content-addressed model cache (a warm hit skips the
whole pipeline and must cost a small fraction of the cold fit).

``REPRO_BENCH_FIT_UES`` overrides the population ladder (comma-
separated phone counts); the ``>= 5x`` speedup and ``< 5%`` warm-cache
assertions only apply at 20,000 UEs and above, where the vectorized
replay has data to amortize its setup over.
"""

import json
import os
import time

from repro.groundtruth import simulate_ground_truth
from repro.model import FIT_ENGINES, fit_model_set
from repro.telemetry import RunTelemetry
from repro.trace import DeviceType
from repro.validation import format_table

from conftest import RESULTS_DIR, write_result

POPULATIONS = tuple(
    int(n)
    for n in os.environ.get("REPRO_BENCH_FIT_UES", "2000,20000").split(",")
)

#: The paper evaluates at the busiest hour; fitting cost is dominated
#: by event volume, so the bench starts the trace in the evening peak.
BENCH_START_HOUR = 19

REPEATS = 2

#: Trace length in hours (= fit jobs available to the process pool).
HOURS = 2

#: Population size from which the hard perf assertions apply.
ASSERT_FLOOR = 20_000

SPEEDUP_FLOOR = 5.0
WARM_FRACTION_CEILING = 0.05


def _timed_fit(trace, theta_n, **kwargs):
    telemetry = RunTelemetry()
    start = time.perf_counter()
    model_set = fit_model_set(
        trace,
        theta_n=theta_n,
        trace_start_hour=BENCH_START_HOUR,
        telemetry=telemetry,
        **kwargs,
    )
    return time.perf_counter() - start, model_set, telemetry


def test_fitting_engine_speed(tmp_path):
    # Warm both engines (imports, machine lowering) outside the clock.
    warmup = simulate_ground_truth(
        {DeviceType.PHONE: 50},
        duration=3600.0,
        seed=2,
        start_hour=BENCH_START_HOUR,
    )
    for engine in FIT_ENGINES:
        _timed_fit(warmup, 25, engine=engine)

    results = {
        "bench": "fitting_engines",
        "start_hour": BENCH_START_HOUR,
        "hours": HOURS,
        "populations": {},
    }
    rows = []
    for num_ues in POPULATIONS:
        trace = simulate_ground_truth(
            {DeviceType.PHONE: num_ues},
            duration=HOURS * 3600.0,
            seed=9,
            start_hour=BENCH_START_HOUR,
        )
        theta_n = max(25, num_ues // 10)
        ue_hours = num_ues * HOURS

        per_engine = {}
        fitted = {}
        for engine in FIT_ENGINES:
            elapsed = float("inf")
            for _ in range(REPEATS):
                once, model_set, _ = _timed_fit(trace, theta_n, engine=engine)
                elapsed = min(elapsed, once)
            per_engine[engine] = {
                "seconds": elapsed,
                "per_ue_hour_ms": elapsed / ue_hours * 1e3,
            }
            fitted[engine] = model_set
        # The tentpole guarantee, re-checked where it matters most.
        assert (
            fitted["compiled"].to_dict() == fitted["reference"].to_dict()
        ), f"engines diverged at {num_ues} UEs"
        speedup = (
            per_engine["reference"]["seconds"]
            / per_engine["compiled"]["seconds"]
        )

        par_elapsed, _, _ = _timed_fit(
            trace, theta_n, engine="compiled", processes=0
        )

        cache_dir = tmp_path / f"cache-{num_ues}"
        cold_elapsed, cold_model, cold_tele = _timed_fit(
            trace, theta_n, engine="compiled", cache_dir=cache_dir
        )
        warm_elapsed, warm_model, warm_tele = _timed_fit(
            trace, theta_n, engine="compiled", cache_dir=cache_dir
        )
        assert cold_tele.counters.get("cache_misses") == 1
        assert warm_tele.counters.get("cache_hits") == 1
        assert warm_model.to_dict() == cold_model.to_dict()
        warm_fraction = warm_elapsed / cold_elapsed

        results["populations"][str(num_ues)] = {
            "PHONE": {
                "events": int(trace.times.size),
                "theta_n": theta_n,
                "reference": per_engine["reference"],
                "compiled": per_engine["compiled"],
                "speedup": speedup,
                "compiled_parallel": {
                    "seconds": par_elapsed,
                    "processes": os.cpu_count(),
                },
                "cache": {
                    "cold_seconds": cold_elapsed,
                    "warm_seconds": warm_elapsed,
                    "warm_fraction": warm_fraction,
                },
            }
        }
        rows.append(
            [
                f"{num_ues}",
                f"{per_engine['reference']['seconds']:.2f} s",
                f"{per_engine['compiled']['seconds']:.2f} s",
                f"{speedup:.1f}x",
                f"{par_elapsed:.2f} s",
                f"{warm_elapsed * 1e3:.0f} ms",
            ]
        )

        if num_ues >= ASSERT_FLOOR:
            assert speedup >= SPEEDUP_FLOOR, (
                f"compiled fit only {speedup:.1f}x faster at {num_ues} UEs"
            )
            assert warm_fraction < WARM_FRACTION_CEILING, (
                f"warm cache hit cost {warm_fraction:.1%} of the cold fit"
            )

    RESULTS_DIR.mkdir(exist_ok=True)
    json_path = RESULTS_DIR / "BENCH_fitting.json"
    json_path.write_text(json.dumps(results, indent=2) + "\n")

    text = format_table(
        ["phone UEs", "reference", "compiled", "speedup",
         "parallel", "warm cache"],
        rows,
        title=f"Fitting speed: {HOURS}-hour phone trace, both engines",
    )
    write_result("fitting_speed", text + f"\n[json in {json_path}]")
