"""Table 10: goodness-of-fit on the nine second-level transitions.

The sojourn times of the two-level machine's sub-state transitions
(``SRV_REQ_S --HO-->``, ``TAU_S_IDLE --S1_CONN_REL-->``, ...) also
resist classic fitting: the paper reports ~0% Poisson-K-S pass rates
and at most ~25% for the best other family, which justifies one
empirical CDF per transition (§5.2).
"""

from repro.analysis import TESTS, gof_study
from repro.statemachines import SECOND_LEVEL_TRANSITIONS
from repro.trace import DeviceType
from repro.validation import format_table

from conftest import START_HOUR, THETA_N, write_result

TRANSITION_KEYS = [f"{src}-{ev.name}" for src, ev in SECOND_LEVEL_TRANSITIONS]


def _study_all_devices(trace):
    return {
        dt: gof_study(
            trace,
            dt,
            clustered=True,
            theta_n=THETA_N,
            trace_start_hour=START_HOUR,
            quantities="transitions",
        )
        for dt in DeviceType
    }


def test_table10_second_level_transitions(benchmark, collection_trace):
    results = benchmark.pedantic(
        _study_all_devices, args=(collection_trace,), rounds=1, iterations=1
    )

    rows = []
    for test in TESTS:
        for dt in DeviceType:
            rates = results[dt].rates[test]
            rows.append(
                [test, dt.short_name]
                + [
                    f"{100 * rates.get(q, 0.0):.1f}%"
                    if q in results[dt].combos
                    else "-"
                    for q in TRANSITION_KEYS
                ]
            )
    text = format_table(
        ["Test", "Dev"] + TRANSITION_KEYS,
        rows,
        title=(
            "Table 10: % of (hour, cluster) combos whose second-level "
            "transition sojourns pass GoF tests (paper: ~0% Poisson K-S)"
        ),
    )
    write_result("table10_substates", text)

    # Shape: at least some transitions are testable; the transition
    # with the most data (TAU_S_IDLE --S1_CONN_REL-->, every idle TAU
    # produces one) decisively rejects the Poisson model, as in the
    # paper. Sparsely-populated transitions are reported only.
    testable = {
        dt: [q for q in TRANSITION_KEYS if q in results[dt].combos]
        for dt in DeviceType
    }
    assert any(testable.values()), "no testable second-level transitions"
    release_key = "TAU_S_IDLE-S1_CONN_REL"
    asserted = False
    for dt in DeviceType:
        if release_key in results[dt].combos:
            assert results[dt].rates["poisson_ks"][release_key] <= 0.10, (
                f"{dt.name}/{release_key}: Poisson K-S pass rate too high"
            )
            asserted = True
    assert asserted, "release transition untestable for every device"
