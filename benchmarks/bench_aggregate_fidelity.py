"""Aggregate time-structure fidelity (beyond the paper's tables).

The paper validates event mixes and per-UE CDFs; the reason the model
exists is to drive MCNs with *realistically bursty aggregates*.  This
bench compares the synthesized aggregate stream's burstiness against
the real trace's and against a Poisson stream of the same volume —
the proposed model should preserve the variance-time structure that
Poisson synthesis destroys.
"""

import numpy as np

from repro.stats import poisson_reference_curve, variance_time_curve, burstiness_gap
from repro.validation import compare_aggregate, format_table

from conftest import write_result


def test_aggregate_burstiness_preserved(benchmark, scenario2):
    real = scenario2["real"]
    ours = scenario2["synthesized"]["ours"]

    cmp = benchmark.pedantic(
        compare_aggregate, args=(real, ours), rounds=1, iterations=1
    )

    duration = max(float(real.times.max()), float(ours.times.max())) + 1.0
    rng = np.random.default_rng(17)
    real_vt = variance_time_curve(real.times, duration=duration)
    ours_vt = variance_time_curve(ours.times, duration=duration)
    poisson_vt = poisson_reference_curve(
        len(real) / duration, duration, rng
    )
    ours_gap = burstiness_gap(ours_vt, poisson_vt)
    real_gap = burstiness_gap(real_vt, poisson_vt)

    rows = [
        ["volume ratio (ours/real)", f"{cmp.volume_ratio:.2f}"],
        ["per-minute rate K-S distance", f"{cmp.rate_distribution_ydistance:.3f}"],
        ["burstiness gap ours-real (log10, mean)", f"{cmp.burstiness_gap_mean:+.3f}"],
        ["burstiness over Poisson: real", f"{real_gap[-4:].mean():+.3f}"],
        ["burstiness over Poisson: ours", f"{ours_gap[-4:].mean():+.3f}"],
    ]
    text = format_table(
        ["Metric", "Value"],
        rows,
        title="Aggregate fidelity: synthesized vs real busy-hour stream",
    )
    write_result("aggregate_fidelity", text)

    # Shape: volume within 2x; synthesized aggregate retains most of the
    # real burstiness advantage over Poisson at large time scales.
    assert 0.5 < cmp.volume_ratio < 2.0
    assert ours_gap[-4:].mean() > 0.3 * real_gap[-4:].mean()
