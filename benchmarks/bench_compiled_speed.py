"""Compiled vs reference engine throughput.

Measures per-UE-hour synthesis cost for every device type under both
generation engines at two population sizes, and writes the results as
machine-readable JSON (``benchmarks/results/BENCH_generator.json``) so
regressions can be tracked across commits.  The compiled engine's win
grows with population size: vectorized cohort stepping amortizes its
per-round cost over every active UE, while the reference engine pays
Python-level interpreter work per event.
"""

import json
import time

from repro.generator import ENGINES, TrafficGenerator
from repro.trace import DeviceType
from repro.validation import format_table

from conftest import RESULTS_DIR, write_result

POPULATIONS = (200, 2000)
REPEATS = 2


def _best_time(generator, num_ues, device, hour, engine):
    best = float("inf")
    events = 0
    for _ in range(REPEATS):
        start = time.perf_counter()
        trace = generator.generate(
            {device: num_ues}, start_hour=hour, num_hours=1, seed=3,
            engine=engine,
        )
        best = min(best, time.perf_counter() - start)
        events = len(trace)
    return best, events


def test_compiled_vs_reference_speed(method_models, busy_hour):
    generator = TrafficGenerator(method_models["ours"])
    generator.generate(10, start_hour=busy_hour, num_hours=1, seed=1)

    results = {
        "bench": "generator_engines",
        "busy_hour": busy_hour,
        "populations": {},
    }
    rows = []
    for num_ues in POPULATIONS:
        pop = {}
        for device in DeviceType:
            per_device = {}
            for engine in ENGINES:
                elapsed, events = _best_time(
                    generator, num_ues, device, busy_hour, engine
                )
                per_device[engine] = {
                    "per_ue_hour_ms": elapsed / num_ues * 1e3,
                    "events": events,
                }
            speedup = (
                per_device["reference"]["per_ue_hour_ms"]
                / per_device["compiled"]["per_ue_hour_ms"]
            )
            per_device["speedup"] = speedup
            pop[device.name] = per_device
            rows.append(
                [
                    f"{num_ues}",
                    device.name,
                    f"{per_device['reference']['per_ue_hour_ms']:.3f} ms",
                    f"{per_device['compiled']['per_ue_hour_ms']:.3f} ms",
                    f"{speedup:.1f}x",
                ]
            )
        results["populations"][str(num_ues)] = pop

    RESULTS_DIR.mkdir(exist_ok=True)
    json_path = RESULTS_DIR / "BENCH_generator.json"
    json_path.write_text(json.dumps(results, indent=2) + "\n")

    text = format_table(
        ["UEs", "Device", "reference", "compiled", "speedup"],
        rows,
        title="Engine speed: per-UE-hour synthesis cost",
    )
    write_result("compiled_speed", text + f"\n[json in {json_path}]")

    for pop in results["populations"].values():
        for device in pop.values():
            assert device["speedup"] > 1.0
