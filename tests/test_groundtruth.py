"""Tests for the ground-truth simulator (repro.groundtruth)."""

import numpy as np
import pytest

from repro.groundtruth import (
    DEFAULT_PROFILES,
    PAPER_DEVICE_MIX,
    LognormalSpec,
    MixtureSpec,
    resolve_device_counts,
    sample_archetype,
    simulate_ground_truth,
    simulate_ue,
)
from repro.statemachines import classify_category2_events, replay_trace
from repro.trace import (
    DeviceType,
    EventType,
    breakdown_table,
    peak_to_trough_ratio,
)

E = EventType


class TestProfiles:
    def test_all_devices_covered(self):
        assert set(DEFAULT_PROFILES) == set(DeviceType)

    def test_diurnal_curves_are_24h(self):
        for profile in DEFAULT_PROFILES.values():
            assert len(profile.diurnal) == 24
            assert all(v > 0 for v in profile.diurnal)

    def test_paper_device_mix_sums_to_one(self):
        assert sum(PAPER_DEVICE_MIX.values()) == pytest.approx(1.0)

    def test_mixture_weights_validated(self):
        with pytest.raises(ValueError, match="sum to 1"):
            MixtureSpec(
                weights=(0.5, 0.2),
                components=(
                    LognormalSpec(1.0, 1.0),
                    LognormalSpec(2.0, 1.0),
                ),
            )

    def test_mixture_length_mismatch(self):
        with pytest.raises(ValueError, match="align"):
            MixtureSpec(weights=(1.0,), components=())

    def test_cars_have_commute_shape(self):
        """Cars: morning and evening peaks, deep night trough (Fig. 2)."""
        curve = DEFAULT_PROFILES[DeviceType.CONNECTED_CAR].diurnal
        night = min(curve[0:5])
        morning = max(curve[6:10])
        assert morning / night > 50

    def test_phones_peak_in_evening(self):
        curve = DEFAULT_PROFILES[DeviceType.PHONE].diurnal
        assert max(curve) == max(curve[18:22])

    def test_cars_most_mobile(self):
        mobility = {
            dt: DEFAULT_PROFILES[dt].mobility_mean for dt in DeviceType
        }
        assert mobility[DeviceType.CONNECTED_CAR] > mobility[DeviceType.PHONE]
        assert mobility[DeviceType.PHONE] > mobility[DeviceType.TABLET]


class TestArchetype:
    def test_sampling_ranges(self, rng):
        profile = DEFAULT_PROFILES[DeviceType.PHONE]
        for _ in range(50):
            arch = sample_archetype(profile, rng)
            assert arch.activity > 0
            assert 0.0 <= arch.mobility <= 1.0
            assert arch.tau_period > 0
            assert arch.power_period > 0

    def test_activity_is_skewed(self, rng):
        profile = DEFAULT_PROFILES[DeviceType.PHONE]
        activities = [sample_archetype(profile, rng).activity for _ in range(2000)]
        arr = np.asarray(activities)
        # Lognormal: mean substantially exceeds median.
        assert arr.mean() > 1.3 * np.median(arr)


class TestResolveCounts:
    def test_total_split_by_paper_mix(self):
        counts = resolve_device_counts(1000)
        assert sum(counts.values()) == 1000
        assert counts[DeviceType.PHONE] > counts[DeviceType.CONNECTED_CAR]
        assert counts[DeviceType.CONNECTED_CAR] > counts[DeviceType.TABLET]

    def test_mapping_passthrough(self):
        counts = resolve_device_counts({DeviceType.TABLET: 7})
        assert counts == {DeviceType.TABLET: 7}


class TestSimulateUe:
    def test_trace_is_single_ue(self, rng):
        tr = simulate_ue(
            5, DEFAULT_PROFILES[DeviceType.PHONE], 3600.0, rng=rng
        )
        assert set(tr.ue_ids.tolist()) <= {5}

    def test_times_within_duration(self, rng):
        tr = simulate_ue(
            0, DEFAULT_PROFILES[DeviceType.PHONE], 1800.0, rng=rng
        )
        if len(tr):
            assert tr.times.max() < 1800.0

    def test_sequence_is_machine_valid(self, rng):
        from repro.statemachines import replay_ue

        tr = simulate_ue(
            0, DEFAULT_PROFILES[DeviceType.CONNECTED_CAR], 6 * 3600.0, rng=rng
        )
        result = replay_ue(tr.event_types, tr.times)
        assert result.violations == 0


class TestSimulateGroundTruth:
    def test_reproducible(self):
        a = simulate_ground_truth(20, 3600.0, seed=3)
        b = simulate_ground_truth(20, 3600.0, seed=3)
        assert a == b

    def test_seed_changes_output(self):
        a = simulate_ground_truth(20, 3600.0, seed=3)
        b = simulate_ground_truth(20, 3600.0, seed=4)
        assert a != b

    def test_device_counts_respected(self, ground_truth_trace):
        # UEs that never emit an event (e.g. powered off throughout)
        # are invisible in the trace, so counts are upper bounds.
        mix = ground_truth_trace.device_mix()
        assert 0.9 * 90 <= mix[DeviceType.PHONE] <= 90
        assert 0.9 * 35 <= mix[DeviceType.CONNECTED_CAR] <= 35
        assert 0.9 * 25 <= mix[DeviceType.TABLET] <= 25

    def test_machine_validity(self, ground_truth_trace):
        results = replay_trace(ground_truth_trace)
        assert sum(r.violations for r in results.values()) == 0

    def test_no_ho_in_idle(self, ground_truth_trace):
        counts = classify_category2_events(ground_truth_trace)
        assert counts[(E.HO, "IDLE")] == 0

    def test_tau_appears_in_both_states(self, ground_truth_trace):
        counts = classify_category2_events(ground_truth_trace)
        assert counts[(E.TAU, "CONNECTED")] > 0
        assert counts[(E.TAU, "IDLE")] > 0

    def test_breakdown_resembles_table1(self):
        """7-day-style check on a longer trace (device-type ordering)."""
        tr = simulate_ground_truth(
            {
                DeviceType.PHONE: 40,
                DeviceType.CONNECTED_CAR: 20,
                DeviceType.TABLET: 15,
            },
            duration=86400.0,
            seed=17,
        )
        table = breakdown_table(tr)
        # SRV_REQ/S1_CONN_REL dominate every device type.
        for dt in DeviceType:
            assert table[dt][E.SRV_REQ] + table[dt][E.S1_CONN_REL] > 0.70
        # Cars out-HO and out-TAU phones; phones out-HO tablets.
        assert table[DeviceType.CONNECTED_CAR][E.TAU] > table[DeviceType.PHONE][E.TAU]
        assert table[DeviceType.CONNECTED_CAR][E.HO] > table[DeviceType.TABLET][E.HO]

    def test_diurnal_swing_present(self):
        tr = simulate_ground_truth(
            {DeviceType.PHONE: 50}, duration=86400.0, seed=21
        )
        ratio = peak_to_trough_ratio(tr, DeviceType.PHONE, E.SRV_REQ)
        assert ratio > 2.0

    def test_start_hour_shifts_diurnal_phase(self):
        # Starting at the night trough yields a quiet first hour
        # relative to starting at the evening peak.
        night = simulate_ground_truth({DeviceType.PHONE: 60}, 3600.0, seed=5, start_hour=3)
        evening = simulate_ground_truth({DeviceType.PHONE: 60}, 3600.0, seed=5, start_hour=19)
        assert len(evening) > 1.5 * len(night)

    def test_heavy_cross_ue_skew(self, ground_truth_trace):
        counts = np.asarray(
            sorted(ground_truth_trace.events_per_ue().values()), dtype=float
        )
        # Top decile of UEs carries a disproportionate share of events.
        top = counts[int(0.9 * len(counts)):].sum()
        assert top / counts.sum() > 0.2
