"""Tests for likelihood-based family ranking (repro.analysis.model_selection)."""

import numpy as np
import pytest

from repro.analysis import FamilyScore, rank_families, score_family


@pytest.fixture()
def rng():
    return np.random.default_rng(23)


class TestScoreFamily:
    def test_exponential_on_exponential(self, rng):
        data = rng.exponential(2.0, 2000)
        score = score_family("poisson", data)
        assert score.n == 2000
        # AIC/BIC relate to the log-likelihood correctly.
        assert score.aic == pytest.approx(2 - 2 * score.log_likelihood)
        assert score.bic == pytest.approx(
            np.log(2000) - 2 * score.log_likelihood
        )

    def test_unknown_family(self, rng):
        with pytest.raises(ValueError, match="unknown family"):
            score_family("cauchy", rng.exponential(1.0, 10))

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            score_family("poisson", [1.0])

    def test_likelihood_is_finite(self, rng):
        data = rng.lognormal(0, 1.5, 500)
        for family in ("poisson", "pareto", "weibull", "lognormal"):
            assert np.isfinite(score_family(family, data).log_likelihood)


class TestRankFamilies:
    def test_true_family_wins(self, rng):
        cases = {
            "poisson": rng.exponential(3.0, 3000),
            "lognormal": rng.lognormal(1.0, 1.2, 3000),
            "weibull": rng.weibull(1.6, 3000) * 2.0,
        }
        for family, data in cases.items():
            best = rank_families(data)[0]
            assert best.family == family, f"{family} data won by {best.family}"

    def test_ranking_is_sorted(self, rng):
        scores = rank_families(rng.lognormal(0, 2, 1000))
        aics = [s.aic for s in scores]
        assert aics == sorted(aics)

    def test_bic_criterion(self, rng):
        scores = rank_families(rng.exponential(1.0, 1000), criterion="bic")
        bics = [s.bic for s in scores]
        assert bics == sorted(bics)

    def test_log_likelihood_criterion_descending(self, rng):
        scores = rank_families(
            rng.exponential(1.0, 1000), criterion="log_likelihood"
        )
        lls = [s.log_likelihood for s in scores]
        assert lls == sorted(lls, reverse=True)

    def test_unknown_criterion(self, rng):
        with pytest.raises(ValueError, match="criterion"):
            rank_families(rng.exponential(1.0, 100), criterion="magic")

    def test_unfittable_families_skipped(self):
        # Constant samples break Pareto/Weibull MLE but not exponential.
        scores = rank_families([2.0] * 50)
        families = {s.family for s in scores}
        assert "poisson" in families
        assert "pareto" not in families

    def test_sojourn_samples_prefer_heavy_tails(self, ground_truth_trace):
        """On real CONNECTED sojourns, Poisson never ranks first."""
        from repro.statemachines import replay_trace, top_state_sojourns
        from repro.trace import DeviceType

        sub = ground_truth_trace.filter_device(DeviceType.PHONE)
        sojourns = top_state_sojourns(replay_trace(sub))["CONNECTED"]
        best = rank_families(sojourns)[0]
        assert best.family != "poisson"
