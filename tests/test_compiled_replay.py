"""Compiled whole-trace replay: exact equivalence with the reference.

The evaluation tentpole guarantee mirrors the fitting one: the compiled
``replay_trace(engine="compiled")`` path must produce *identical*
outputs to the reference per-event walk — same decoded records, same
sojourn samples in the same order, same transition counts, same
top-level intervals, same Category-2 classification — for every
machine kind and device cohort, including traces that violate the
machine (forced transitions).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.statemachines import (
    REPLAY_ENGINES,
    TraceReplay,
    classify_category2_events,
    replay_trace,
    replay_ue,
    sojourn_samples,
    top_state_sojourns,
    transition_counts,
)
from repro.statemachines.compiled_replay import table_for
from repro.statemachines.lte import emm_ecm_machine, two_level_machine
from repro.statemachines.nr import nr_sa_machine
from repro.trace import DeviceType, EventType, Trace

from conftest import make_trace

SETTINGS = settings(
    max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

#: machine builder + the event codes that machine can replay.
MACHINES = {
    "two_level": (two_level_machine, [0, 1, 2, 3, 4, 5]),
    "emm_ecm": (emm_ecm_machine, [0, 1, 2, 3]),
    "nr_sa": (nr_sa_machine, [0, 1, 2, 3, 4]),
}

P = DeviceType.PHONE
E = EventType


def _filter_events(trace, codes):
    mask = np.isin(trace.event_types, np.asarray(codes))
    return Trace(
        trace.ue_ids[mask],
        trace.times[mask],
        trace.event_types[mask],
        trace.device_types[mask],
    )


def assert_replays_equal(trace, machine):
    """Pin compiled == reference for one (trace, machine) pair."""
    ref = replay_trace(trace, machine, engine="reference")
    comp = replay_trace(trace, machine, engine="compiled")
    assert isinstance(comp, TraceReplay)
    decoded = comp.to_results()
    assert set(decoded) == set(ref)
    for ue in ref:
        assert decoded[ue].records == ref[ue].records
        assert decoded[ue].violations == ref[ue].violations
        assert decoded[ue].final_state == ref[ue].final_state
    ref_soj, comp_soj = sojourn_samples(ref), sojourn_samples(comp)
    assert set(ref_soj) == set(comp_soj)
    for key in ref_soj:
        assert np.array_equal(ref_soj[key], comp_soj[key])
    assert transition_counts(ref) == transition_counts(comp)
    ref_top = top_state_sojourns(ref, machine)
    comp_top = top_state_sojourns(comp)
    assert set(ref_top) == set(comp_top)
    for state in ref_top:
        assert np.array_equal(ref_top[state], comp_top[state])


class TestEngineDispatch:
    def test_engines_listed(self):
        assert REPLAY_ENGINES == ("reference", "compiled")

    def test_unknown_engine_rejected(self, tiny_trace):
        with pytest.raises(ValueError, match="unknown replay engine"):
            replay_trace(tiny_trace, engine="gpu")
        with pytest.raises(ValueError, match="unknown replay engine"):
            classify_category2_events(tiny_trace, engine="gpu")

    def test_compiled_returns_trace_replay(self, tiny_trace):
        result = replay_trace(tiny_trace, engine="compiled")
        assert isinstance(result, TraceReplay)
        assert result.num_ues == tiny_trace.num_ues
        assert len(result) == len(tiny_trace)

    def test_empty_trace(self):
        empty = Trace.empty()
        assert replay_trace(empty, engine="reference") == {}
        comp = replay_trace(empty, engine="compiled")
        assert comp.to_results() == {}
        assert sojourn_samples(comp) == {}
        assert transition_counts(comp) == {}
        assert top_state_sojourns(comp) == {}


class TestMachineDeviceEquality:
    """The pinned machine × device equality grid of the tentpole."""

    @pytest.mark.parametrize("kind", sorted(MACHINES))
    @pytest.mark.parametrize("device_type", list(DeviceType))
    def test_ground_truth_cohorts(self, kind, device_type, ground_truth_trace):
        builder, codes = MACHINES[kind]
        cohort = _filter_events(
            ground_truth_trace.filter_device(device_type), codes
        )
        assert len(cohort) > 0
        assert_replays_equal(cohort, builder())

    @pytest.mark.parametrize("kind", sorted(MACHINES))
    def test_tiny_trace(self, kind, tiny_trace):
        builder, codes = MACHINES[kind]
        assert_replays_equal(_filter_events(tiny_trace, codes), builder())


class TestForcedViolations:
    """Traces that violate the machine exercise the forced-repair path."""

    #: Every row deliberately out of order for the two-level machine:
    #: HO before any attach, double SRV_REQ, S1_CONN_REL from DEREGISTERED.
    VIOLATING_ROWS = [
        (1, 1.0, E.HO, P),           # first event, invalid anywhere cold
        (1, 2.0, E.SRV_REQ, P),      # SRV_REQ while CONNECTED
        (1, 3.0, E.SRV_REQ, P),      # and again
        (1, 4.0, E.DTCH, P),
        (1, 5.0, E.S1_CONN_REL, P),  # release while DEREGISTERED
        (2, 0.5, E.TAU, P),
        (2, 1.5, E.ATCH, P),
        (2, 2.5, E.ATCH, P),         # double attach
        (2, 3.5, E.HO, P),
        (2, 4.5, E.HO, P),
        (3, 9.0, E.S1_CONN_REL, P),  # lone release
    ]

    @pytest.mark.parametrize("kind", sorted(MACHINES))
    def test_violating_trace_equality(self, kind):
        builder, codes = MACHINES[kind]
        trace = _filter_events(make_trace(self.VIOLATING_ROWS), codes)
        assert_replays_equal(trace, builder())

    def test_violations_counted(self):
        trace = make_trace(self.VIOLATING_ROWS)
        ref = replay_trace(trace, engine="reference")
        comp = replay_trace(trace, engine="compiled").to_results()
        assert sum(r.violations for r in ref.values()) > 0
        for ue in ref:
            assert comp[ue].violations == ref[ue].violations


class TestHypothesisEquality:
    @pytest.mark.parametrize("kind", sorted(MACHINES))
    @SETTINGS
    @given(data=st.data())
    def test_matches_replay_ue_per_ue(self, kind, data):
        """Compiled whole-trace replay == replay_ue on every UE."""
        builder, codes = MACHINES[kind]
        machine = builder()
        num_ues = data.draw(st.integers(min_value=1, max_value=4))
        rows = []
        per_ue = {}
        for ue in range(num_ues):
            events = data.draw(
                st.lists(st.sampled_from(codes), min_size=1, max_size=15)
            )
            deltas = data.draw(
                st.lists(
                    st.floats(min_value=1e-3, max_value=600.0, allow_nan=False),
                    min_size=len(events),
                    max_size=len(events),
                )
            )
            times = np.cumsum(np.asarray(deltas, dtype=np.float64))
            per_ue[ue] = (events, times)
            rows.extend((ue, t, e, 0) for t, e in zip(times, events))
        trace = make_trace(rows)
        decoded = replay_trace(trace, machine, engine="compiled").to_results()
        assert set(decoded) == set(per_ue)
        for ue, (events, times) in per_ue.items():
            ref = replay_ue(events, times, machine)
            assert decoded[ue].records == ref.records
            assert decoded[ue].violations == ref.violations
            assert decoded[ue].final_state == ref.final_state


class TestCategory2Classification:
    def test_ground_truth_equality(self, ground_truth_trace):
        ref = classify_category2_events(ground_truth_trace, engine="reference")
        comp = classify_category2_events(ground_truth_trace, engine="compiled")
        assert ref == comp
        assert sum(ref.values()) > 0

    def test_empty_trace(self):
        counts = classify_category2_events(Trace.empty(), engine="compiled")
        assert set(counts.values()) == {0}

    def test_all_tau_and_lone_ho_ues(self):
        # An all-TAU UE back-infers IDLE; a UE with any HO infers CONNECTED.
        trace = make_trace(
            [
                (1, 1.0, E.TAU, P),
                (1, 2.0, E.TAU, P),
                (2, 1.0, E.TAU, P),
                (2, 2.0, E.HO, P),
            ]
        )
        ref = classify_category2_events(trace, engine="reference")
        comp = classify_category2_events(trace, engine="compiled")
        assert ref == comp

    @SETTINGS
    @given(data=st.data())
    def test_random_traces_equal(self, data):
        num_ues = data.draw(st.integers(min_value=1, max_value=5))
        rows = []
        for ue in range(num_ues):
            events = data.draw(
                st.lists(st.sampled_from(list(range(6))), max_size=20)
            )
            for i, event in enumerate(events):
                rows.append((ue, float(i + 1), event, 0))
        if not rows:
            return
        trace = make_trace(rows)
        assert classify_category2_events(
            trace, engine="reference"
        ) == classify_category2_events(trace, engine="compiled")


class TestTableCache:
    def test_cached_by_machine_name(self):
        machine = two_level_machine()
        assert table_for(machine) is table_for(two_level_machine())
        assert table_for(machine).machine_name == machine.name
