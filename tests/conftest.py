"""Shared fixtures: small ground-truth traces and fitted model sets.

Expensive artifacts are session-scoped; tests must treat them as
read-only.
"""

import numpy as np
import pytest

from repro.baselines import fit_method
from repro.generator import TrafficGenerator
from repro.groundtruth import simulate_ground_truth
from repro.trace import DeviceType, EventType, Trace

#: Hour-of-day at which the shared traces start.
TRACE_START_HOUR = 17


@pytest.fixture(scope="session")
def ground_truth_trace() -> Trace:
    """A 4-hour, ~150-UE ground-truth trace starting in the evening."""
    return simulate_ground_truth(
        {
            DeviceType.PHONE: 90,
            DeviceType.CONNECTED_CAR: 35,
            DeviceType.TABLET: 25,
        },
        duration=4 * 3600.0,
        seed=42,
        start_hour=TRACE_START_HOUR,
    )


@pytest.fixture(scope="session")
def holdout_trace() -> Trace:
    """A held-out "real" trace (fresh seed) for validation comparisons."""
    return simulate_ground_truth(
        {
            DeviceType.PHONE: 90,
            DeviceType.CONNECTED_CAR: 35,
            DeviceType.TABLET: 25,
        },
        duration=2 * 3600.0,
        seed=123,
        start_hour=TRACE_START_HOUR + 1,
    )


@pytest.fixture(scope="session")
def ours_model_set(ground_truth_trace):
    """The proposed model fitted on the shared ground-truth trace."""
    return fit_method(
        "ours",
        ground_truth_trace,
        theta_n=25,
        trace_start_hour=TRACE_START_HOUR,
    )


@pytest.fixture(scope="session")
def base_model_set(ground_truth_trace):
    """The Base baseline fitted on the shared ground-truth trace."""
    return fit_method(
        "base",
        ground_truth_trace,
        trace_start_hour=TRACE_START_HOUR,
    )


@pytest.fixture(scope="session")
def synthesized_trace(ours_model_set) -> Trace:
    """One synthesized busy hour from the proposed model."""
    return TrafficGenerator(ours_model_set).generate(
        150, start_hour=TRACE_START_HOUR + 1, num_hours=1, seed=7
    )


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


@pytest.fixture(autouse=True)
def _isolated_model_cache(tmp_path, monkeypatch):
    """Keep the fit cache out of the real user cache dir during tests."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))


def make_trace(rows):
    """Build a Trace from (ue, time, event, device) tuples."""
    return Trace(
        np.array([r[0] for r in rows], dtype=np.int64),
        np.array([r[1] for r in rows], dtype=np.float64),
        np.array([int(r[2]) for r in rows], dtype=np.int8),
        np.array([int(r[3]) for r in rows], dtype=np.int8),
    )


@pytest.fixture()
def tiny_trace() -> Trace:
    """A deliberately small, hand-written valid two-level trace."""
    P = DeviceType.PHONE
    E = EventType
    return make_trace(
        [
            (1, 0.5, E.ATCH, P),
            (1, 10.0, E.HO, P),
            (1, 12.0, E.TAU, P),
            (1, 30.0, E.S1_CONN_REL, P),
            (1, 40.0, E.TAU, P),
            (1, 41.0, E.S1_CONN_REL, P),
            (1, 100.0, E.SRV_REQ, P),
            (1, 130.0, E.DTCH, P),
            (2, 5.0, E.SRV_REQ, P),
            (2, 25.0, E.S1_CONN_REL, P),
            (2, 60.0, E.SRV_REQ, P),
            (2, 90.0, E.S1_CONN_REL, P),
        ]
    )
