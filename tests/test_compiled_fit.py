"""Compiled fitting fast path: exact equivalence, cache, parallel jobs.

The tentpole guarantee is *exact* equality — the compiled engine must
produce a ModelSet whose ``to_dict()`` compares equal (bit-identical
floats) to the reference engine's, for every machine kind, sojourn
family, and clustering mode.  The fast sweep runs on the hand-written
tiny trace in tier-1; the slow sweep repeats it on the shared
ground-truth trace.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.model import (
    FIT_ENGINES,
    fit_cache_key,
    fit_model_set,
    vectorized_replay,
)
from repro.model.compiled_fit import FitJobFailedError, machine_table
from repro.model.fit_cache import CACHE_DIR_ENV, default_cache_dir
from repro.statemachines.lte import emm_ecm_machine, two_level_machine
from repro.statemachines.nr import nr_sa_machine
from repro.statemachines.replay import replay_ue
from repro.telemetry import RunTelemetry
from repro.trace import DeviceType, EventType, Trace

from conftest import TRACE_START_HOUR

SETTINGS = settings(
    max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

#: machine builder + the event codes that machine can replay.
MACHINES = {
    "two_level": (two_level_machine, [0, 1, 2, 3, 4, 5]),
    "emm_ecm": (emm_ecm_machine, [0, 1, 2, 3]),
    "nr_sa": (nr_sa_machine, [0, 1, 2, 3, 4]),
}

FIT_KWARGS = dict(theta_n=2, trace_start_hour=TRACE_START_HOUR)


def assert_model_sets_equal(a, b):
    """Strict equality: identical structure and bit-identical floats."""
    assert a.to_dict() == b.to_dict()


# ---------------------------------------------------------------------------
# Vectorized replay vs replay_ue
# ---------------------------------------------------------------------------


class TestVectorizedReplay:
    @pytest.mark.parametrize("kind", sorted(MACHINES))
    @SETTINGS
    @given(data=st.data())
    def test_matches_replay_ue(self, kind, data):
        builder, codes = MACHINES[kind]
        machine = builder()
        events = data.draw(st.lists(st.sampled_from(codes), max_size=40))
        deltas = data.draw(
            st.lists(
                st.floats(min_value=1e-3, max_value=3600.0, allow_nan=False),
                min_size=len(events),
                max_size=len(events),
            )
        )
        times = np.cumsum(np.asarray(deltas, dtype=np.float64))
        ref = replay_ue(events, times, machine)
        vec = vectorized_replay(events, times, machine)
        assert vec.records() == ref.records
        assert vec.violations == ref.violations
        assert vec.final_state == ref.final_state

    def test_default_machine_is_two_level(self):
        events = [EventType.ATCH, EventType.SRV_REQ, EventType.S1_CONN_REL]
        times = [1.0, 5.0, 9.0]
        ref = replay_ue(events, times)
        vec = vectorized_replay(events, times)
        assert vec.records() == ref.records

    def test_nr_sa_rejects_tau_with_reference_message(self):
        machine = nr_sa_machine()
        with pytest.raises(ValueError) as ref_err:
            replay_ue([EventType.TAU], [1.0], machine)
        with pytest.raises(ValueError) as vec_err:
            vectorized_replay([EventType.TAU], [1.0], machine)
        assert str(vec_err.value) == str(ref_err.value)

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError, match="equal length"):
            vectorized_replay([EventType.ATCH], [1.0, 2.0])

    def test_empty_sequence(self):
        vec = vectorized_replay([], [])
        assert vec.records() == []
        assert vec.violations == 0
        assert vec.final_state is None

    def test_machine_table_cached(self):
        assert machine_table("two_level") is machine_table("two_level")


# ---------------------------------------------------------------------------
# Exact ModelSet equality, compiled vs reference
# ---------------------------------------------------------------------------


SWEEP = [
    (machine_kind, family, clustered)
    for machine_kind in ("two_level", "emm_ecm")
    for family in ("empirical", "poisson")
    for clustered in (True, False)
]


class TestExactEquivalence:
    @pytest.mark.parametrize("machine_kind,family,clustered", SWEEP)
    def test_tiny_trace_sweep(self, tiny_trace, machine_kind, family, clustered):
        kwargs = dict(
            machine_kind=machine_kind,
            family=family,
            clustered=clustered,
            **FIT_KWARGS,
        )
        ref = fit_model_set(tiny_trace, engine="reference", **kwargs)
        fast = fit_model_set(tiny_trace, engine="compiled", **kwargs)
        assert_model_sets_equal(fast, ref)

    @pytest.mark.slow
    @pytest.mark.parametrize("machine_kind,family,clustered", SWEEP)
    def test_ground_truth_sweep(
        self, ground_truth_trace, machine_kind, family, clustered
    ):
        kwargs = dict(
            machine_kind=machine_kind,
            family=family,
            clustered=clustered,
            theta_n=25,
            trace_start_hour=TRACE_START_HOUR,
        )
        ref = fit_model_set(ground_truth_trace, engine="reference", **kwargs)
        fast = fit_model_set(ground_truth_trace, engine="compiled", **kwargs)
        assert_model_sets_equal(fast, ref)

    def test_nr_sa_raises_identically_on_lte_trace(self, tiny_trace):
        # The tiny trace carries TAU events, which NR-SA cannot source.
        with pytest.raises(ValueError) as ref_err:
            fit_model_set(
                tiny_trace, machine_kind="nr_sa", engine="reference", **FIT_KWARGS
            )
        with pytest.raises(ValueError) as fast_err:
            fit_model_set(
                tiny_trace, machine_kind="nr_sa", engine="compiled", **FIT_KWARGS
            )
        assert str(fast_err.value) == str(ref_err.value)


# ---------------------------------------------------------------------------
# Engine / processes validation
# ---------------------------------------------------------------------------


class TestValidation:
    def test_engines_tuple(self):
        assert FIT_ENGINES == ("compiled", "reference")

    def test_unknown_engine_rejected(self, tiny_trace):
        with pytest.raises(ValueError, match="engine"):
            fit_model_set(tiny_trace, engine="turbo")

    def test_negative_processes_rejected(self, tiny_trace):
        with pytest.raises(ValueError, match="processes"):
            fit_model_set(tiny_trace, processes=-1)

    def test_fit_job_failed_error_attributes(self):
        err = FitJobFailedError(DeviceType.PHONE, 17, 3, "boom")
        assert err.device_type is DeviceType.PHONE
        assert err.hour == 17
        assert err.attempts == 3
        assert "PHONE" in str(err) and "boom" in str(err)


# ---------------------------------------------------------------------------
# Parallel fitting
# ---------------------------------------------------------------------------


@pytest.mark.slow
class TestParallelFit:
    def test_parallel_compiled_matches_serial(self, ground_truth_trace):
        kwargs = dict(theta_n=25, trace_start_hour=TRACE_START_HOUR)
        serial = fit_model_set(ground_truth_trace, **kwargs)
        par = fit_model_set(ground_truth_trace, processes=2, **kwargs)
        assert_model_sets_equal(par, serial)

    def test_parallel_reference_matches_compiled(self, ground_truth_trace):
        kwargs = dict(theta_n=25, trace_start_hour=TRACE_START_HOUR)
        compiled = fit_model_set(ground_truth_trace, **kwargs)
        par_ref = fit_model_set(
            ground_truth_trace, engine="reference", processes=2, **kwargs
        )
        assert_model_sets_equal(par_ref, compiled)


# ---------------------------------------------------------------------------
# Model cache
# ---------------------------------------------------------------------------


class TestModelCache:
    def test_cold_then_warm(self, tiny_trace, tmp_path):
        cold_tele = RunTelemetry()
        cold = fit_model_set(
            tiny_trace, cache_dir=tmp_path, telemetry=cold_tele, **FIT_KWARGS
        )
        assert cold_tele.counters.get("cache_misses") == 1
        assert not cold_tele.counters.get("cache_hits")

        warm_tele = RunTelemetry()
        warm = fit_model_set(
            tiny_trace, cache_dir=tmp_path, telemetry=warm_tele, **FIT_KWARGS
        )
        assert warm_tele.counters.get("cache_hits") == 1
        assert_model_sets_equal(warm, cold)

    def test_reference_engine_hits_compiled_entry(self, tiny_trace, tmp_path):
        # The key excludes the engine: both produce exactly equal models.
        cold = fit_model_set(tiny_trace, cache_dir=tmp_path, **FIT_KWARGS)
        tele = RunTelemetry()
        warm = fit_model_set(
            tiny_trace,
            engine="reference",
            cache_dir=tmp_path,
            telemetry=tele,
            **FIT_KWARGS,
        )
        assert tele.counters.get("cache_hits") == 1
        assert_model_sets_equal(warm, cold)

    def test_corrupt_entry_is_a_miss(self, tiny_trace, tmp_path):
        fit_model_set(tiny_trace, cache_dir=tmp_path, **FIT_KWARGS)
        entry = next(tmp_path.glob("modelset-*.pkl"))
        entry.write_bytes(b"definitely not a pickle")
        tele = RunTelemetry()
        fit_model_set(
            tiny_trace, cache_dir=tmp_path, telemetry=tele, **FIT_KWARGS
        )
        assert tele.counters.get("cache_misses") == 1

    def test_key_is_deterministic_and_param_sensitive(self, tiny_trace):
        params = dict(
            machine_kind="two_level",
            family="empirical",
            clustered=True,
            theta_f=5.0,
            theta_n=25,
            trace_start_hour=TRACE_START_HOUR,
            max_cdf_points=200,
        )
        key = fit_cache_key(tiny_trace, **params)
        assert key == fit_cache_key(tiny_trace, **params)
        for name, other in [
            ("family", "poisson"),
            ("theta_n", 99),
            ("trace_start_hour", 0),
            ("max_cdf_points", 10),
        ]:
            assert fit_cache_key(tiny_trace, **{**params, name: other}) != key

    def test_key_tracks_trace_content(self, tiny_trace):
        params = dict(
            machine_kind="two_level",
            family="empirical",
            clustered=True,
            theta_f=5.0,
            theta_n=25,
            trace_start_hour=TRACE_START_HOUR,
            max_cdf_points=200,
        )
        shifted = Trace(
            tiny_trace.ue_ids,
            tiny_trace.times + 1.0,
            tiny_trace.event_types,
            tiny_trace.device_types,
        )
        assert fit_cache_key(shifted, **params) != fit_cache_key(
            tiny_trace, **params
        )

    def test_default_cache_dir_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        assert default_cache_dir() == tmp_path
        monkeypatch.delenv(CACHE_DIR_ENV)
        assert default_cache_dir().name == "repro"

    def test_no_cache_dir_means_no_cache_io(self, tiny_trace):
        tele = RunTelemetry()
        fit_model_set(tiny_trace, telemetry=tele, **FIT_KWARGS)
        assert "cache_hits" not in tele.counters
        assert "cache_misses" not in tele.counters


# ---------------------------------------------------------------------------
# Telemetry
# ---------------------------------------------------------------------------


class TestFitTelemetry:
    def test_counters(self, tiny_trace):
        tele = RunTelemetry()
        fit_model_set(tiny_trace, telemetry=tele, **FIT_KWARGS)
        # Two UEs, one hour slot: two raw segments; the two-level
        # machine replays every event.
        assert tele.counters["segments_replayed"] == 2
        assert tele.counters["transitions_counted"] == tiny_trace.times.size

    def test_emm_ecm_counts_filtered_transitions(self, tiny_trace):
        tele = RunTelemetry()
        fit_model_set(
            tiny_trace, machine_kind="emm_ecm", telemetry=tele, **FIT_KWARGS
        )
        category1 = np.isin(
            tiny_trace.event_types,
            [int(e) for e in (EventType.ATCH, EventType.DTCH,
                              EventType.SRV_REQ, EventType.S1_CONN_REL)],
        )
        assert tele.counters["segments_replayed"] == 2
        assert tele.counters["transitions_counted"] == int(category1.sum())
