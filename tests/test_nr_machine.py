"""Structural tests for the 5G SA machine (Fig. 6 of the paper)."""

import pytest

from repro.statemachines import (
    CM_CONNECTED,
    CM_IDLE,
    NR_STATES,
    RM_DEREGISTERED,
    nr_sa_machine,
)
from repro.statemachines.nr import HO_S, SRV_REQ_S
from repro.trace import EventType

E = EventType


@pytest.fixture()
def m():
    return nr_sa_machine()


class TestNrSaMachine:
    def test_four_states(self, m):
        assert len(m.states) == 4
        assert m.states == set(NR_STATES)

    def test_no_tau_anywhere(self, m):
        for state in m.states:
            assert not m.can_fire(state, E.TAU)

    def test_register_enters_connected(self, m):
        assert m.next_state(RM_DEREGISTERED, E.ATCH) == SRV_REQ_S
        assert m.parent(SRV_REQ_S) == CM_CONNECTED

    def test_idle_is_single_substate(self, m):
        assert m.leaves_of(CM_IDLE) == {CM_IDLE}

    def test_an_release_from_connected_substates(self, m):
        assert m.next_state(SRV_REQ_S, E.S1_CONN_REL) == CM_IDLE
        assert m.next_state(HO_S, E.S1_CONN_REL) == CM_IDLE

    def test_ho_only_in_connected(self, m):
        assert m.next_state(SRV_REQ_S, E.HO) == HO_S
        assert m.next_state(HO_S, E.HO) == HO_S
        assert not m.can_fire(CM_IDLE, E.HO)
        assert not m.can_fire(RM_DEREGISTERED, E.HO)

    def test_deregister_from_everywhere_registered(self, m):
        for state in (SRV_REQ_S, HO_S, CM_IDLE):
            assert m.next_state(state, E.DTCH) == RM_DEREGISTERED

    def test_all_states_reachable(self, m):
        assert m.reachable_states() == m.states

    def test_is_lte_machine_minus_tau(self, m):
        """Fig. 6 = Fig. 5 with TAU states/edges removed (§6)."""
        from repro.statemachines import two_level_machine

        lte = two_level_machine()
        lte_events = {
            (t.source, t.event, t.target)
            for t in lte.transitions()
            if t.event != E.TAU
            and "TAU" not in t.source
            and "TAU" not in t.target
        }
        # Rename LTE states to their NR counterparts and compare.
        rename = {
            "DEREGISTERED": RM_DEREGISTERED,
            "SRV_REQ_S": SRV_REQ_S,
            "HO_S": HO_S,
            "S1_REL_S_1": CM_IDLE,
            "S1_REL_S_2": CM_IDLE,
        }
        renamed = {
            (rename[s], e, rename[t])
            for (s, e, t) in lte_events
            if s in rename and t in rename
        }
        nr_edges = {(t.source, t.event, t.target) for t in m.transitions()}
        assert renamed == nr_edges

    def test_accepts_lifecycle(self, m):
        assert m.accepts(
            [E.ATCH, E.HO, E.HO, E.S1_CONN_REL, E.SRV_REQ, E.DTCH]
        )
