"""Tests for the streaming generator (repro.generator.streaming)."""

import numpy as np
import pytest

from repro.generator import (
    TrafficGenerator,
    UeSession,
    stream_events,
    stream_to_trace,
)
from repro.trace import DeviceType, Event

from conftest import TRACE_START_HOUR


class TestUeSession:
    def test_session_matches_batch_function(self, ours_model_set):
        from repro.generator import generate_ue_events

        persona = ours_model_set.device_ues[DeviceType.PHONE][0]
        rng_a = np.random.default_rng(42)
        rng_b = np.random.default_rng(42)
        batch = generate_ue_events(
            ours_model_set, DeviceType.PHONE, persona,
            start_hour=TRACE_START_HOUR, num_hours=3, rng=rng_a,
        )
        session = UeSession(
            ours_model_set, DeviceType.PHONE, persona,
            start_hour=TRACE_START_HOUR, rng=rng_b,
        )
        times, events = [], []
        for _ in range(3):
            ht, he = session.advance_hour()
            times.extend(ht)
            events.extend(he)
        assert (times, events) == batch

    def test_state_persists_across_hours(self, ours_model_set):
        persona = ours_model_set.device_ues[DeviceType.PHONE][0]
        session = UeSession(
            ours_model_set, DeviceType.PHONE, persona,
            start_hour=TRACE_START_HOUR, rng=np.random.default_rng(1),
        )
        session.advance_hour()
        state_after_first = session.state
        session.advance_hour()
        # The session either kept or evolved its state, never reset it
        # to the uninitialized None once events were emitted.
        if state_after_first is not None:
            assert session.state is not None


class TestStreamEvents:
    def test_stream_equals_batch(self, ours_model_set):
        batch = TrafficGenerator(ours_model_set).generate(
            80, start_hour=TRACE_START_HOUR, num_hours=2, seed=9
        )
        streamed = stream_to_trace(
            stream_events(
                ours_model_set, 80,
                start_hour=TRACE_START_HOUR, num_hours=2, seed=9,
            )
        )
        assert streamed == batch

    def test_globally_time_ordered(self, ours_model_set):
        prev = -1.0
        for event in stream_events(
            ours_model_set, 50, start_hour=TRACE_START_HOUR, num_hours=2, seed=3
        ):
            assert isinstance(event, Event)
            assert event.time >= prev
            prev = event.time

    def test_first_ue_id_offset(self, ours_model_set):
        ids = {
            e.ue_id
            for e in stream_events(
                ours_model_set, 20,
                start_hour=TRACE_START_HOUR, seed=3, first_ue_id=500,
            )
        }
        assert ids and min(ids) >= 500

    def test_rejects_bad_hours(self, ours_model_set):
        with pytest.raises(ValueError):
            next(stream_events(ours_model_set, 5, num_hours=0))

    def test_silent_hours_stream_nothing(self, ours_model_set):
        events = list(
            stream_events(ours_model_set, 10, start_hour=3, num_hours=1, seed=1)
        )
        assert events == []
