"""Tests for workload scenarios (repro.workloads)."""

import numpy as np
import pytest

from repro.statemachines import replay_trace
from repro.trace import DeviceType, EventType, Trace
from repro.workloads import (
    busy_hour_workload,
    full_day_workload,
    future_year_workload,
    inject_reattach_storm,
    storm_peak_rate,
)

from conftest import TRACE_START_HOUR, make_trace

E = EventType
P = DeviceType.PHONE


class TestGenerationWrappers:
    def test_busy_hour(self, ours_model_set):
        trace = busy_hour_workload(
            ours_model_set, 50, hour=TRACE_START_HOUR + 1, seed=1
        )
        assert len(trace) > 0
        assert trace.times.max() < 3600.0

    def test_full_day_spans_hours(self, ours_model_set):
        trace = full_day_workload(
            ours_model_set, 40, start_hour=TRACE_START_HOUR, seed=1
        )
        # Only the 4 fitted evening hours produce traffic, but the
        # horizon is a day.
        assert trace.times.max() < 24 * 3600.0
        hours = set((trace.times // 3600).astype(int).tolist())
        assert len(hours) >= 2

    def test_future_year_grows_population(self, ours_model_set):
        base = {DeviceType.PHONE: 40}
        now = future_year_workload(
            ours_model_set, base, 0, hour=TRACE_START_HOUR + 1, seed=1
        )
        later = future_year_workload(
            ours_model_set, base, 10, scenario="baseline",
            hour=TRACE_START_HOUR + 1, seed=1,
        )
        assert later.num_ues > now.num_ues


class TestReattachStorm:
    @pytest.fixture()
    def base_trace(self, ground_truth_trace):
        return ground_truth_trace.window(0, 7200.0)

    def test_storm_validity(self, base_trace):
        storm = inject_reattach_storm(
            base_trace, at=3600.0, fraction=0.5, seed=2
        )
        results = replay_trace(storm)
        assert sum(r.violations for r in results.values()) == 0

    def test_atch_wave_present(self, base_trace):
        storm = inject_reattach_storm(
            base_trace, at=3600.0, fraction=0.5,
            outage_duration=60.0, reattach_spread=10.0, seed=2,
        )
        window = storm.window(3660.0, 3670.0)
        n_atch = int(np.count_nonzero(window.event_types == int(E.ATCH)))
        affected = int(round(0.5 * base_trace.num_ues))
        assert n_atch >= 0.9 * affected

    def test_affected_events_dropped_after_outage(self, base_trace):
        storm = inject_reattach_storm(
            base_trace, at=1800.0, fraction=1.0,
            outage_duration=300.0, reattach_spread=5.0, seed=2,
        )
        during = storm.window(1800.0 + 1e-3, 2100.0)
        # During the outage, nothing but the initial DTCHes at t=1800.
        assert len(during) == 0

    def test_storm_raises_peak_rate(self, base_trace):
        storm = inject_reattach_storm(
            base_trace, at=3600.0, fraction=0.8, reattach_spread=5.0, seed=2
        )
        assert storm_peak_rate(storm, event=E.ATCH) > storm_peak_rate(
            base_trace, event=E.ATCH
        )

    def test_unaffected_ues_untouched(self, base_trace):
        storm = inject_reattach_storm(
            base_trace, at=3600.0, fraction=0.3, seed=2
        )
        atch_added = set(
            storm.ue_ids[
                (storm.event_types == int(E.ATCH)) & (storm.times > 3600.0)
            ].tolist()
        )
        untouched = set(base_trace.unique_ues()) - atch_added
        some = list(untouched)[:5]
        for ue in some:
            assert storm.ue_trace(ue) == base_trace.ue_trace(ue)

    def test_parameter_validation(self, base_trace):
        with pytest.raises(ValueError):
            inject_reattach_storm(base_trace, at=10.0, fraction=0.0)
        with pytest.raises(ValueError):
            inject_reattach_storm(base_trace, at=-1.0)
        with pytest.raises(ValueError):
            inject_reattach_storm(Trace.empty(), at=1.0)

    def test_storm_stresses_mme(self, base_trace):
        """The point of the scenario: storms dominate tail latency."""
        from repro.mcn import MmeSimulator

        storm = inject_reattach_storm(
            base_trace, at=3600.0, fraction=0.9,
            outage_duration=60.0, reattach_spread=2.0, seed=2,
        )
        calm_report = MmeSimulator(num_workers=1).process(base_trace)
        storm_report = MmeSimulator(num_workers=1).process(storm)
        assert storm_report.max_wait > calm_report.max_wait
