"""Tests for model introspection (repro.model.inspect)."""

import numpy as np
import pytest

from repro.distributions import Exponential
from repro.model import (
    Edge,
    SemiMarkovChain,
    StateModel,
    describe_model_set,
    expected_event_rates,
    state_occupancy,
    stationary_distribution,
    summarize_cluster,
    summarize_model_set,
)
from repro.trace import DeviceType, EventType

E = EventType


def ping_pong_chain(rate_ab=1.0, rate_ba=0.5) -> SemiMarkovChain:
    """A <-> B with exponential dwells (mean 1/rate)."""
    return SemiMarkovChain(
        {
            "A": StateModel(
                edges=(Edge(E.SRV_REQ, "B", 1.0, Exponential(rate=rate_ab)),)
            ),
            "B": StateModel(
                edges=(Edge(E.S1_CONN_REL, "A", 1.0, Exponential(rate=rate_ba)),)
            ),
        }
    )


class TestStationary:
    def test_ping_pong_is_uniform_in_jumps(self):
        pi = stationary_distribution(ping_pong_chain())
        assert pi["A"] == pytest.approx(0.5, abs=1e-6)
        assert pi["B"] == pytest.approx(0.5, abs=1e-6)

    def test_biased_three_state(self):
        # A -> B (prob 1), B -> A or C equally, C -> A.
        chain = SemiMarkovChain(
            {
                "A": StateModel(edges=(Edge(E.HO, "B", 1.0, Exponential(1.0)),)),
                "B": StateModel(
                    edges=(
                        Edge(E.TAU, "A", 0.5, Exponential(1.0)),
                        Edge(E.HO, "C", 0.5, Exponential(1.0)),
                    )
                ),
                "C": StateModel(edges=(Edge(E.TAU, "A", 1.0, Exponential(1.0)),)),
            }
        )
        pi = stationary_distribution(chain)
        # pi_A = 0.4, pi_B = 0.4, pi_C = 0.2 solves pi P = pi.
        assert pi["A"] == pytest.approx(0.4, abs=1e-6)
        assert pi["B"] == pytest.approx(0.4, abs=1e-6)
        assert pi["C"] == pytest.approx(0.2, abs=1e-6)

    def test_sums_to_one(self, ours_model_set):
        hm = ours_model_set.models[DeviceType.PHONE][
            ours_model_set.hours(DeviceType.PHONE)[0]
        ]
        pi = stationary_distribution(hm.clusters[0].chain)
        assert sum(pi.values()) == pytest.approx(1.0)


class TestOccupancy:
    def test_time_weighting(self):
        # Dwell in A is 1s, in B 2s -> occupancy 1/3 vs 2/3.
        occ = state_occupancy(ping_pong_chain(rate_ab=1.0, rate_ba=0.5))
        assert occ["A"] == pytest.approx(1 / 3, abs=1e-6)
        assert occ["B"] == pytest.approx(2 / 3, abs=1e-6)

    def test_sums_to_one(self):
        occ = state_occupancy(ping_pong_chain())
        assert sum(occ.values()) == pytest.approx(1.0)


class TestEventRates:
    def test_ping_pong_rates(self):
        # One SRV_REQ and one S1_CONN_REL per 3-second cycle.
        rates = expected_event_rates(ping_pong_chain(rate_ab=1.0, rate_ba=0.5))
        assert rates[E.SRV_REQ] == pytest.approx(1 / 3, abs=1e-6)
        assert rates[E.S1_CONN_REL] == pytest.approx(1 / 3, abs=1e-6)
        assert rates[E.HO] == 0.0

    def test_analytic_matches_simulation(self, rng):
        """Monte-Carlo check of the steady-state rate computation."""
        chain = ping_pong_chain(rate_ab=2.0, rate_ba=1.0)
        rates = expected_event_rates(chain)
        # Simulate the chain for a long horizon.
        state, t, counts = "A", 0.0, {E.SRV_REQ: 0, E.S1_CONN_REL: 0}
        horizon = 50_000.0
        while t < horizon:
            dwell, event, target = chain.step(state, rng)
            t += dwell
            if t < horizon:
                counts[event] += 1
            state = target
        for event in (E.SRV_REQ, E.S1_CONN_REL):
            assert counts[event] / horizon == pytest.approx(
                rates[event], rel=0.05
            )


class TestSummaries:
    def test_cluster_summary_includes_overlay(self, base_model_set):
        dt = DeviceType.PHONE
        hm = base_model_set.models[dt][base_model_set.hours(dt)[0]]
        summary = summarize_cluster(hm.clusters[0])
        # Overlay HO rate must appear in the per-hour event rates.
        assert summary.event_rates_per_hour[E.HO] > 0.0

    def test_model_set_summary(self, ours_model_set):
        summary = summarize_model_set(ours_model_set)
        assert summary.machine_kind == "two_level"
        assert summary.num_models == ours_model_set.num_models
        for dt in summary.predicted_events_per_ue_hour:
            assert summary.predicted_events_per_ue_hour[dt] >= 0.0
            assert 0.0 <= summary.mean_p_active[dt] <= 1.0

    def test_predicted_rate_is_upper_ballpark(self, ours_model_set):
        """The steady-state prediction brackets the generated volume.

        The analytic rate describes the chain running continuously; the
        generator's per-hour counts sit below it (mid-hour starts,
        hour-boundary drops, and the right-truncation of fitted sojourn
        CDFs all push the steady-state estimate up), so the prediction
        is an order-of-magnitude upper ballpark, not a point estimate.
        """
        from repro.generator import TrafficGenerator

        summary = summarize_model_set(ours_model_set)
        dt = DeviceType.PHONE
        hour = ours_model_set.hours(dt)[0]
        trace = TrafficGenerator(ours_model_set).generate(
            {dt: 300}, start_hour=hour, num_hours=1, seed=8
        )
        actual = len(trace) / 300
        predicted = summary.predicted_events_per_ue_hour[dt]
        assert predicted > 0
        assert actual / 2 < predicted < actual * 10

    def test_describe_is_readable(self, ours_model_set):
        text = describe_model_set(ours_model_set)
        assert "two_level" in text
        assert "PHONE" in text
        assert "predicted events/UE-hour" in text
