"""Tests for the evaluation harness (repro.harness)."""

import pytest

from repro.generator import TrafficGenerator
from repro.harness import DEFAULT_METHODS, EVAL_ENGINES, evaluate_methods
from repro.trace import DeviceType, EventType

from conftest import TRACE_START_HOUR, make_trace

E = EventType
P = DeviceType.PHONE


@pytest.fixture(scope="module")
def report(request):
    ground_truth = request.getfixturevalue("ground_truth_trace")
    holdout = request.getfixturevalue("holdout_trace")
    return evaluate_methods(
        ground_truth,
        holdout,
        methods=("base", "ours"),
        theta_n=25,
        trace_start_hour=TRACE_START_HOUR,
        generation_hour=TRACE_START_HOUR + 1,
        seed=5,
    )


class TestEvaluateMethods:
    def test_default_methods(self):
        assert DEFAULT_METHODS == ("base", "v1", "v2", "ours")

    def test_results_per_method(self, report):
        assert set(report.results) == {"base", "ours"}
        for result in report.results.values():
            assert len(result.synthesized) > 0
            assert result.macro_max_error

    def test_population_defaults_to_real(self, report, holdout_trace):
        assert report.num_ues == holdout_trace.num_ues

    def test_ours_wins_phones(self, report):
        assert report.winner(DeviceType.PHONE) == "ours"

    def test_macro_diffs_cover_rows(self, report):
        from repro.validation import BREAKDOWN_ROWS

        diff = report.results["ours"].macro_diff[DeviceType.PHONE]
        assert set(diff) == set(BREAKDOWN_ROWS)

    def test_micro_metrics_present(self, report):
        micro = report.results["ours"].micro[DeviceType.PHONE]
        assert "CONNECTED" in micro
        assert 0.0 <= micro["CONNECTED"] <= 1.0

    def test_to_text_renders_all_devices(self, report):
        text = report.to_text()
        assert "Macroscopic breakdown - PHONE" in text
        assert "Microscopic max y-distance - PHONE" in text
        assert "Ours" in text

    def test_prefitted_models_reused(
        self, ground_truth_trace, holdout_trace, ours_model_set
    ):
        report = evaluate_methods(
            ground_truth_trace,
            holdout_trace,
            methods=("ours",),
            models={"ours": ours_model_set},
            generation_hour=TRACE_START_HOUR + 1,
        )
        assert report.results["ours"].model is ours_model_set

    def test_explicit_population(self, ground_truth_trace, holdout_trace, ours_model_set):
        report = evaluate_methods(
            ground_truth_trace,
            holdout_trace,
            num_ues=50,
            methods=("ours",),
            models={"ours": ours_model_set},
            generation_hour=TRACE_START_HOUR + 1,
        )
        assert report.num_ues == 50
        assert report.results["ours"].synthesized.num_ues <= 50


class TestEvaluationEngines:
    def test_engines_listed(self):
        assert EVAL_ENGINES == ("compiled", "reference")

    def test_unknown_engine_rejected(self, ground_truth_trace, holdout_trace):
        with pytest.raises(ValueError, match="unknown evaluation engine"):
            evaluate_methods(ground_truth_trace, holdout_trace, engine="gpu")

    def test_negative_processes_rejected(self, ground_truth_trace, holdout_trace):
        with pytest.raises(ValueError, match="non-negative"):
            evaluate_methods(ground_truth_trace, holdout_trace, processes=-1)

    def test_engines_and_parallel_agree(
        self, ground_truth_trace, holdout_trace, ours_model_set
    ):
        kwargs = dict(
            methods=("ours",),
            models={"ours": ours_model_set},
            generation_hour=TRACE_START_HOUR + 1,
        )
        compiled = evaluate_methods(
            ground_truth_trace, holdout_trace, engine="compiled", **kwargs
        )
        reference = evaluate_methods(
            ground_truth_trace, holdout_trace, engine="reference", **kwargs
        )
        parallel = evaluate_methods(
            ground_truth_trace,
            holdout_trace,
            engine="compiled",
            processes=2,
            **kwargs,
        )
        assert (
            compiled.to_dict()["methods"]
            == reference.to_dict()["methods"]
            == parallel.to_dict()["methods"]
        )

    def test_to_dict_shape(self, report):
        data = report.to_dict()
        assert data["engine"] in EVAL_ENGINES
        assert set(data["methods"]) == {"base", "ours"}
        ours = data["methods"]["ours"]
        assert set(ours) == {
            "macro_diff",
            "macro_max_error",
            "micro",
            "micro_skipped",
        }
        assert "PHONE" in ours["micro"]


#: A phone-only validation trace where every UE closes an IDLE sojourn
#: (release -> service request) but never a CONNECTED one: the first
#: CONNECTED interval has no start and the last has no end.
_NO_CONNECTED_ROWS = [
    (1, 10.0, E.S1_CONN_REL, P),
    (1, 20.0, E.SRV_REQ, P),
    (2, 5.0, E.S1_CONN_REL, P),
    (2, 50.0, E.SRV_REQ, P),
]


class TestBugfixRegressions:
    @pytest.fixture(scope="class")
    def partial_report(self, request):
        ground_truth = request.getfixturevalue("ground_truth_trace")
        ours_model_set = request.getfixturevalue("ours_model_set")
        real = make_trace(
            [(ue, t + 3600.0 * (TRACE_START_HOUR + 1), ev, dt)
             for ue, t, ev, dt in _NO_CONNECTED_ROWS]
        )
        return evaluate_methods(
            ground_truth,
            real,
            num_ues=30,
            methods=("ours",),
            models={"ours": ours_model_set},
            generation_hour=TRACE_START_HOUR + 1,
        )

    def test_partial_micro_reported(self, partial_report):
        # Regression (bug 1): one unmeasurable quantity used to discard
        # every micro-metric of the device; now the computable ones are
        # reported and the skip carries its reason.
        result = partial_report.results["ours"]
        micro = result.micro[P]
        assert {"SRV_REQ", "S1_CONN_REL", "IDLE"} <= set(micro)
        assert "CONNECTED" not in micro
        assert "CONNECTED" in result.micro_skipped[P]
        assert "sojourn" in result.micro_skipped[P]["CONNECTED"]

    def test_to_text_lists_skips(self, partial_report):
        text = partial_report.to_text()
        assert "Skipped quantities - PHONE" in text
        assert "CONNECTED" in text

    def test_winner_unmeasured_device_raises(self, partial_report):
        # Regression (bug 3): an all-inf tie used to crown an arbitrary
        # method for devices absent from the real trace.
        assert partial_report.winner(P) == "ours"
        with pytest.raises(ValueError, match="TABLET"):
            partial_report.winner(DeviceType.TABLET)

    def test_count_cdf_populations_threaded(
        self, monkeypatch, ground_truth_trace, holdout_trace, ours_model_set
    ):
        # Regression (bug 2): the harness used to call count_ydistance
        # without populations, so zero-event UEs were never padded and
        # Table-5 numbers were biased whenever the synthesized
        # population differed from the real one (Scenario 2).
        from repro.harness import evaluation as ev
        from repro.validation.microscopic import (
            micro_comparison_partial as real_fn,
        )

        seen = {}

        def spy(real, syn, device_type, *, real_num_ues=None,
                syn_num_ues=None, engine="reference"):
            seen[device_type] = (real_num_ues, syn_num_ues)
            return real_fn(
                real,
                syn,
                device_type,
                real_num_ues=real_num_ues,
                syn_num_ues=syn_num_ues,
                engine=engine,
            )

        monkeypatch.setattr(ev, "micro_comparison_partial", spy)
        evaluate_methods(
            ground_truth_trace,
            holdout_trace,
            num_ues=60,
            methods=("ours",),
            models={"ours": ours_model_set},
            generation_hour=TRACE_START_HOUR + 1,
        )
        resolved = TrafficGenerator(ours_model_set).resolve_counts(60)
        assert seen
        for device_type, (real_n, syn_n) in seen.items():
            assert real_n == holdout_trace.filter_device(device_type).num_ues
            assert syn_n == resolved[device_type]
