"""Tests for the evaluation harness (repro.harness)."""

import pytest

from repro.harness import DEFAULT_METHODS, evaluate_methods
from repro.trace import DeviceType

from conftest import TRACE_START_HOUR


@pytest.fixture(scope="module")
def report(request):
    ground_truth = request.getfixturevalue("ground_truth_trace")
    holdout = request.getfixturevalue("holdout_trace")
    return evaluate_methods(
        ground_truth,
        holdout,
        methods=("base", "ours"),
        theta_n=25,
        trace_start_hour=TRACE_START_HOUR,
        generation_hour=TRACE_START_HOUR + 1,
        seed=5,
    )


class TestEvaluateMethods:
    def test_default_methods(self):
        assert DEFAULT_METHODS == ("base", "v1", "v2", "ours")

    def test_results_per_method(self, report):
        assert set(report.results) == {"base", "ours"}
        for result in report.results.values():
            assert len(result.synthesized) > 0
            assert result.macro_max_error

    def test_population_defaults_to_real(self, report, holdout_trace):
        assert report.num_ues == holdout_trace.num_ues

    def test_ours_wins_phones(self, report):
        assert report.winner(DeviceType.PHONE) == "ours"

    def test_macro_diffs_cover_rows(self, report):
        from repro.validation import BREAKDOWN_ROWS

        diff = report.results["ours"].macro_diff[DeviceType.PHONE]
        assert set(diff) == set(BREAKDOWN_ROWS)

    def test_micro_metrics_present(self, report):
        micro = report.results["ours"].micro[DeviceType.PHONE]
        assert "CONNECTED" in micro
        assert 0.0 <= micro["CONNECTED"] <= 1.0

    def test_to_text_renders_all_devices(self, report):
        text = report.to_text()
        assert "Macroscopic breakdown - PHONE" in text
        assert "Microscopic max y-distance - PHONE" in text
        assert "Ours" in text

    def test_prefitted_models_reused(
        self, ground_truth_trace, holdout_trace, ours_model_set
    ):
        report = evaluate_methods(
            ground_truth_trace,
            holdout_trace,
            methods=("ours",),
            models={"ours": ours_model_set},
            generation_hour=TRACE_START_HOUR + 1,
        )
        assert report.results["ours"].model is ours_model_set

    def test_explicit_population(self, ground_truth_trace, holdout_trace, ours_model_set):
        report = evaluate_methods(
            ground_truth_trace,
            holdout_trace,
            num_ues=50,
            methods=("ours",),
            models={"ours": ours_model_set},
            generation_hour=TRACE_START_HOUR + 1,
        )
        assert report.num_ues == 50
        assert report.results["ours"].synthesized.num_ues <= 50
