"""Guards on the public API surface.

The re-export lists are the library's contract; these tests catch
accidental removals and undocumented additions.
"""

import importlib
import inspect

import pytest

import repro

SUBPACKAGES = (
    "repro.trace",
    "repro.statemachines",
    "repro.distributions",
    "repro.stats",
    "repro.analysis",
    "repro.clustering",
    "repro.groundtruth",
    "repro.model",
    "repro.generator",
    "repro.baselines",
    "repro.fiveg",
    "repro.validation",
    "repro.mcn",
    "repro.harness",
    "repro.workloads",
    "repro.cli",
)


class TestExportIntegrity:
    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_all_exports_resolve(self, name):
        module = importlib.import_module(name)
        assert hasattr(module, "__all__"), f"{name} lacks __all__"
        for symbol in module.__all__:
            assert hasattr(module, symbol), f"{name}.{symbol} missing"

    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_exports_are_documented(self, name):
        """Every exported class/function carries a docstring."""
        module = importlib.import_module(name)
        for symbol in module.__all__:
            obj = getattr(module, symbol)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert inspect.getdoc(obj), f"{name}.{symbol} undocumented"

    def test_top_level_exports(self):
        for symbol in repro.__all__:
            assert hasattr(repro, symbol)

    def test_top_level_highlights_present(self):
        for symbol in (
            "Trace",
            "EventType",
            "DeviceType",
            "TrafficGenerator",
            "fit_model_set",
            "simulate_ground_truth",
            "ModelSet",
            "scale_to_nsa",
            "scale_to_sa",
        ):
            assert symbol in repro.__all__

    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)

    def test_subpackages_have_module_docstrings(self):
        for name in SUBPACKAGES:
            module = importlib.import_module(name)
            assert module.__doc__, f"{name} lacks a module docstring"
