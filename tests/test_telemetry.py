"""Tests for the run telemetry layer (repro.telemetry).

Covers the collector primitives (spans, counters, gauges, progress,
child-record merging), the versioned schema-validated report format,
the operator summary rendering, and the counters the generation entry
points maintain — including that serial, parallel, and streaming runs
of the same workload agree on them.
"""

import json
import pickle
import time

import pytest

from repro.generator import TrafficGenerator, generate_parallel, stream_events
from repro.mcn import CoreNetworkSimulator
from repro.telemetry import (
    REPORT_FORMAT,
    REPORT_VERSION,
    RunTelemetry,
    TelemetryReportError,
    get_telemetry,
    load_report,
    load_schema,
    summarize_report,
    use_telemetry,
    validate_report,
)

from conftest import TRACE_START_HOUR

RUN = dict(start_hour=TRACE_START_HOUR, num_hours=2, seed=11)
POP = 30


# ---------------------------------------------------------------------------
# Collector primitives
# ---------------------------------------------------------------------------


class TestSpans:
    def test_span_records_count_and_time(self):
        tele = RunTelemetry()
        with tele.span("work"):
            pass
        span = tele.spans["work"]
        assert span["count"] == 1
        assert span["wall_s"] >= 0.0
        assert span["cpu_s"] >= 0.0

    def test_same_name_accumulates(self):
        tele = RunTelemetry()
        for _ in range(3):
            with tele.span("work"):
                pass
        assert tele.spans["work"]["count"] == 3

    def test_reentrant_nesting(self):
        tele = RunTelemetry()
        with tele.span("outer"), tele.span("outer"):
            pass
        assert tele.spans["outer"]["count"] == 2

    def test_span_recorded_on_exception(self):
        tele = RunTelemetry()
        with pytest.raises(RuntimeError):
            with tele.span("work"):
                raise RuntimeError("boom")
        assert tele.spans["work"]["count"] == 1

    def test_span_wall_covers_sleep(self):
        tele = RunTelemetry()
        with tele.span("nap"):
            time.sleep(0.01)
        assert tele.spans["nap"]["wall_s"] >= 0.009


class TestCountersAndGauges:
    def test_counters_accumulate(self):
        tele = RunTelemetry()
        tele.count("events")
        tele.count("events", 41)
        assert tele.counters == {"events": 42}

    def test_zero_delta_is_allowed(self):
        tele = RunTelemetry()
        tele.count("events", 0)
        assert tele.counters["events"] == 0

    def test_negative_delta_rejected(self):
        tele = RunTelemetry()
        with pytest.raises(ValueError, match="delta"):
            tele.count("events", -1)

    def test_gauge_last_value_wins(self):
        tele = RunTelemetry()
        tele.gauge("workers", 4)
        tele.gauge("workers", 2)
        assert tele.gauges["workers"] == 2.0

    def test_max_gauge_keeps_high_water_mark(self):
        tele = RunTelemetry()
        tele.max_gauge("peak", 10)
        tele.max_gauge("peak", 3)
        tele.max_gauge("peak", 12)
        assert tele.gauges["peak"] == 12.0

    def test_record_peak_rss_positive(self):
        tele = RunTelemetry()
        tele.record_peak_rss()
        # A running CPython process occupies at least a few MiB.
        assert tele.gauges["peak_rss_bytes"] > 1 << 20


class TestProgress:
    def test_every_tick_delivered_at_zero_interval(self):
        tele = RunTelemetry()
        seen = []
        tele.on_progress(lambda *tick: seen.append(tick), min_interval=0.0)
        for done in range(1, 4):
            tele.progress("phase", done, 3)
        assert seen == [("phase", 1, 3), ("phase", 2, 3), ("phase", 3, 3)]

    def test_rate_limited_but_completion_always_delivered(self):
        tele = RunTelemetry()
        seen = []
        tele.on_progress(lambda *tick: seen.append(tick), min_interval=3600.0)
        for done in range(1, 6):
            tele.progress("phase", done, 5)
        # First tick passes (timer starts at 0), middle ticks are
        # suppressed, the completion tick always lands.
        assert seen == [("phase", 1, 5), ("phase", 5, 5)]

    def test_unknown_total_never_counts_as_completion(self):
        tele = RunTelemetry()
        seen = []
        tele.on_progress(lambda *tick: seen.append(tick), min_interval=3600.0)
        tele.progress("phase", 1)
        tele.progress("phase", 2)
        assert seen == [("phase", 1, 0)]

    def test_negative_interval_rejected(self):
        tele = RunTelemetry()
        with pytest.raises(ValueError, match="min_interval"):
            tele.on_progress(lambda *tick: None, min_interval=-1.0)

    def test_no_callbacks_is_free(self):
        RunTelemetry().progress("phase", 1, 2)  # must not raise


class TestChildRecords:
    def test_round_trip_merges_everything(self):
        child = RunTelemetry()
        with child.span("chunk"):
            pass
        child.count("events", 7)
        child.max_gauge("peak", 100)

        parent = RunTelemetry()
        parent.count("events", 3)
        parent.max_gauge("peak", 50)
        parent.merge_child(child.child_record())

        assert parent.counters["events"] == 10
        assert parent.gauges["peak"] == 100.0
        assert parent.spans["chunk"]["count"] == 1

    def test_merge_accumulates_existing_spans(self):
        a, b = RunTelemetry(), RunTelemetry()
        for tele in (a, b):
            with tele.span("chunk"):
                pass
        a.merge_child(b.child_record())
        assert a.spans["chunk"]["count"] == 2

    def test_child_record_is_picklable(self):
        child = RunTelemetry()
        child.count("events", 1)
        with child.span("chunk"):
            pass
        record = pickle.loads(pickle.dumps(child.child_record()))
        assert record["counters"] == {"events": 1}

    def test_merge_empty_record_is_noop(self):
        tele = RunTelemetry()
        tele.merge_child({})
        assert tele.counters == {} and tele.gauges == {}


class TestAmbientCollector:
    def test_ambient_always_present(self):
        assert isinstance(get_telemetry(), RunTelemetry)

    def test_use_telemetry_scopes_and_restores(self):
        outer = get_telemetry()
        mine = RunTelemetry()
        with use_telemetry(mine):
            assert get_telemetry() is mine
        assert get_telemetry() is outer

    def test_restored_after_exception(self):
        outer = get_telemetry()
        with pytest.raises(RuntimeError):
            with use_telemetry(RunTelemetry()):
                raise RuntimeError("boom")
        assert get_telemetry() is outer


# ---------------------------------------------------------------------------
# Report format
# ---------------------------------------------------------------------------


def _sample_report():
    tele = RunTelemetry({"command": "generate", "seed": 11})
    with tele.span("generate"):
        pass
    tele.count("events_emitted", 123)
    tele.gauge("active_workers", 2)
    return tele.to_report()


class TestReportFormat:
    def test_schema_document_loads(self):
        schema = load_schema()
        assert schema["properties"]["format"]["const"] == REPORT_FORMAT
        assert schema["properties"]["version"]["const"] == REPORT_VERSION

    def test_report_is_schema_valid(self):
        report = _sample_report()
        assert validate_report(report) is report
        assert report["format"] == REPORT_FORMAT
        assert report["version"] == REPORT_VERSION

    def test_report_is_json_serializable(self):
        json.dumps(_sample_report())

    def test_write_and_load_round_trip(self, tmp_path):
        tele = RunTelemetry({"command": "generate"})
        tele.count("events_emitted", 5)
        path = tmp_path / "telemetry.json"
        written = tele.write_report(path)
        loaded = load_report(path)
        assert loaded == json.loads(json.dumps(written))

    @pytest.mark.parametrize(
        "mutate,fragment",
        [
            (lambda r: r.update(format="other"), "format"),
            (lambda r: r.update(version=99), "version"),
            (lambda r: r.pop("counters"), "counters"),
            (lambda r: r.update(extra=1), "extra"),
            (lambda r: r["counters"].update(bad=-1), "minimum"),
            (lambda r: r["counters"].update(bad=1.5), "integer"),
            (lambda r: r["spans"].update(bad={"count": 1}), "wall_s"),
            (lambda r: r.update(spans=[]), "object"),
        ],
    )
    def test_invalid_reports_rejected(self, mutate, fragment):
        report = _sample_report()
        mutate(report)
        with pytest.raises(TelemetryReportError, match=fragment):
            validate_report(report)

    def test_non_dict_rejected(self):
        with pytest.raises(TelemetryReportError, match="object"):
            validate_report([1, 2, 3])

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(TelemetryReportError, match="cannot read"):
            load_report(tmp_path / "nope.json")

    def test_load_garbage_file(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("not json at all")
        with pytest.raises(TelemetryReportError, match="cannot read"):
            load_report(path)


class TestSummary:
    def test_summary_mentions_all_sections(self):
        text = summarize_report(_sample_report())
        assert "command=generate" in text
        assert "generate" in text
        assert "events_emitted" in text
        assert "active_workers" in text
        assert "share" in text

    def test_empty_report_summary(self):
        text = summarize_report(RunTelemetry().to_report())
        # peak RSS is sampled by to_report, so gauges are present even
        # on an otherwise empty run.
        assert "peak_rss_bytes" in text

    def test_summary_validates_first(self):
        report = _sample_report()
        report.pop("spans")
        with pytest.raises(TelemetryReportError):
            summarize_report(report)


# ---------------------------------------------------------------------------
# Generation entry points maintain the counters
# ---------------------------------------------------------------------------


def _generate_with_telemetry(model_set, mode, engine):
    tele = RunTelemetry()
    gen = TrafficGenerator(model_set)
    if mode == "serial":
        trace = gen.generate(POP, engine=engine, telemetry=tele, **RUN)
    elif mode == "parallel":
        trace = generate_parallel(
            model_set,
            POP,
            engine=engine,
            processes=1,
            chunk_size=8,
            telemetry=tele,
            **RUN,
        )
    else:
        with use_telemetry(tele):
            chunks = list(stream_events(model_set, POP, engine=engine, **RUN))
        trace = None if not chunks else chunks
    return tele, trace


class TestGenerationCounters:
    @pytest.mark.parametrize("engine", ("compiled", "reference"))
    def test_serial_counters(self, ours_model_set, engine):
        tele, trace = _generate_with_telemetry(ours_model_set, "serial", engine)
        assert tele.counters["events_emitted"] == len(trace)
        assert tele.counters["ue_hours"] == POP * RUN["num_hours"]
        assert tele.counters["rng_draws"] > 0
        assert "generate" in tele.spans
        assert tele.gauges.get("peak_rss_bytes", 0) > 0

    @pytest.mark.parametrize("engine", ("compiled", "reference"))
    def test_parallel_agrees_with_serial(self, ours_model_set, engine):
        serial, _ = _generate_with_telemetry(ours_model_set, "serial", engine)
        par, _ = _generate_with_telemetry(ours_model_set, "parallel", engine)
        for counter in ("events_emitted", "ue_hours", "rng_draws"):
            assert par.counters[counter] == serial.counters[counter], counter
        assert par.gauges["active_workers"] >= 1

    @pytest.mark.parametrize("engine", ("compiled", "reference"))
    def test_streaming_agrees_with_serial(self, ours_model_set, engine):
        serial, _ = _generate_with_telemetry(ours_model_set, "serial", engine)
        stream, _ = _generate_with_telemetry(ours_model_set, "stream", engine)
        for counter in ("events_emitted", "ue_hours", "rng_draws"):
            assert stream.counters[counter] == serial.counters[counter], counter

    def test_checkpointed_run_counts_snapshots(self, ours_model_set, tmp_path):
        tele = RunTelemetry()
        TrafficGenerator(ours_model_set).generate(
            POP,
            telemetry=tele,
            checkpoint_path=tmp_path / "ck.npz",
            **RUN,
        )
        # One snapshot before the first hour plus one per completed hour.
        assert tele.counters["checkpoint_snapshots"] == RUN["num_hours"] + 1
        assert tele.counters["checkpoint_bytes"] > 0
        assert "checkpoint" in tele.spans

    def test_mcn_counters(self, ours_model_set):
        trace = TrafficGenerator(ours_model_set).generate(POP, **RUN)
        tele = RunTelemetry()
        report = CoreNetworkSimulator("epc").process(trace, telemetry=tele)
        assert tele.counters["mcn_events"] == report.num_events
        assert tele.counters["mcn_messages"] == report.num_messages
        assert "mcn-drive" in tele.spans

    def test_explicit_telemetry_wins_over_ambient(self, ours_model_set):
        ambient, mine = RunTelemetry(), RunTelemetry()
        with use_telemetry(ambient):
            TrafficGenerator(ours_model_set).generate(
                POP, telemetry=mine, **RUN
            )
        assert mine.counters.get("events_emitted", 0) > 0
        assert ambient.counters == {}


# ---------------------------------------------------------------------------
# CLI integration
# ---------------------------------------------------------------------------


class TestCliTelemetry:
    def test_generate_writes_report_and_summarize_renders(
        self, ours_model_set, tmp_path, capsys
    ):
        from repro.cli import main

        model_path = tmp_path / "model.json.gz"
        ours_model_set.save(model_path)
        report_path = tmp_path / "telemetry.json"
        assert (
            main(
                [
                    "generate",
                    "--model",
                    str(model_path),
                    "--ues",
                    "20",
                    "--start-hour",
                    str(TRACE_START_HOUR),
                    "--hours",
                    "1",
                    "--seed",
                    "3",
                    "--out",
                    str(tmp_path / "trace.npz"),
                    "--telemetry",
                    str(report_path),
                ]
            )
            == 0
        )
        report = load_report(report_path)
        assert report["run"]["command"] == "generate"
        assert report["counters"]["events_emitted"] > 0

        capsys.readouterr()
        assert main(["telemetry", "summarize", str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "events_emitted" in out
        assert "Per-phase breakdown" in out

    def test_summarize_rejects_bad_file(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "bad.json"
        path.write_text("{}")
        with pytest.raises(SystemExit):
            main(["telemetry", "summarize", str(path)])
