"""The compiled generation engine: correctness against the reference.

Three layers of guarantees, mirroring the engine's design:

- the vectorized Philox implementation is bit-validated against
  ``np.random.Philox``;
- compiled output is *statistically* equivalent to the reference engine
  (two-sample KS on sojourn and per-UE volume distributions, alpha=0.01
  with fixed seeds, so the tests are deterministic);
- compiled output is *bit-identical* across serial, process-parallel and
  streaming production, including the scalar drain path for long-tail
  UEs, and respects the same structural limits (hour boundaries,
  absorbing states, ``MAX_EVENTS_PER_HOUR``).
"""

import numpy as np
import pytest
from scipy import stats

from repro.baselines import METHOD_NAMES, fit_method
from repro.generator import (
    ENGINES,
    TrafficGenerator,
    generate_parallel,
    stream_events,
    stream_to_trace,
)
from repro.generator.compiled import philox4x64
from repro.model import scale_to_nsa, scale_to_sa
from repro.trace import DeviceType, EventType

from conftest import TRACE_START_HOUR, make_trace

P = DeviceType.PHONE
E = EventType


class TestPhilox:
    def test_matches_numpy_philox(self):
        """Bit-exact vs np.random.Philox (which pre-increments the
        counter before emitting its first block)."""
        rng = np.random.default_rng(99)
        for _ in range(10):
            counter = rng.integers(0, 2**63, size=4, dtype=np.uint64)
            key = rng.integers(0, 2**63, size=2, dtype=np.uint64)
            expected = np.random.Generator(
                np.random.Philox(counter=counter, key=key)
            ).bit_generator.random_raw(4)
            got = philox4x64(
                counter[0] + np.uint64(1), counter[1], counter[2],
                counter[3], key[0], key[1],
            )
            assert [int(g) for g in got] == [int(x) for x in expected]

    def test_vectorized_lanes_match_scalar_calls(self):
        c0 = np.arange(100, dtype=np.uint64)
        k0 = np.full(100, 7, dtype=np.uint64)
        k1 = np.full(100, 11, dtype=np.uint64)
        batch = philox4x64(c0, 1, 2, 3, k0, k1)
        one = philox4x64(np.uint64(42), 1, 2, 3, np.uint64(7), np.uint64(11))
        for lane in range(4):
            assert int(batch[lane][42]) == int(one[lane])


class TestStatisticalEquivalence:
    """Compiled vs reference: same fitted model, different RNG streams."""

    @pytest.fixture(scope="class")
    def traces(self, ours_model_set):
        gen = TrafficGenerator(ours_model_set)
        kwargs = dict(start_hour=TRACE_START_HOUR, num_hours=2, seed=5)
        return (
            gen.generate(300, engine="compiled", **kwargs),
            gen.generate(300, engine="reference", **kwargs),
        )

    def test_volume_is_comparable(self, traces):
        compiled, reference = traces
        assert 0.8 < len(compiled) / len(reference) < 1.25

    def test_per_ue_event_counts_ks(self, traces):
        compiled, reference = traces

        def counts(trace):
            _, c = np.unique(trace.ue_ids, return_counts=True)
            return c

        result = stats.ks_2samp(counts(compiled), counts(reference))
        assert result.pvalue > 0.01

    def test_sojourn_distribution_ks(self, traces):
        """Within-UE inter-event times are the chains' dwell draws."""

        def gaps(trace):
            order = np.lexsort((trace.times, trace.ue_ids))
            ue = trace.ue_ids[order]
            t = trace.times[order]
            same = ue[1:] == ue[:-1]
            return np.diff(t)[same]

        compiled, reference = traces
        result = stats.ks_2samp(gaps(compiled), gaps(reference))
        assert result.pvalue > 0.01

    def test_event_type_mix_is_comparable(self, traces):
        compiled, reference = traces

        def mix(trace):
            share = np.zeros(max(int(e) for e in EventType) + 1)
            codes, counts = np.unique(trace.event_types, return_counts=True)
            share[codes] = counts / len(trace)
            return share

        assert np.abs(mix(compiled) - mix(reference)).max() < 0.05


class TestBitIdentity:
    """Serial, parallel and streaming compiled output must be identical."""

    KWARGS = dict(start_hour=TRACE_START_HOUR, num_hours=2, seed=11)

    @pytest.fixture(scope="class")
    def serial(self, ours_model_set):
        return TrafficGenerator(ours_model_set).generate(150, **self.KWARGS)

    def test_generation_is_deterministic(self, ours_model_set, serial):
        again = TrafficGenerator(ours_model_set).generate(150, **self.KWARGS)
        assert serial == again

    def test_parallel_single_process_small_chunks(self, ours_model_set, serial):
        # chunk_size below the drain threshold forces every chunk through
        # the scalar path, proving it bit-matches vectorized stepping.
        par = generate_parallel(
            ours_model_set, 150, processes=1, chunk_size=7, **self.KWARGS
        )
        assert serial == par

    def test_parallel_multiprocess(self, ours_model_set, serial):
        par = generate_parallel(
            ours_model_set, 150, processes=2, chunk_size=64, **self.KWARGS
        )
        assert serial == par

    def test_streaming_matches_batch(self, ours_model_set, serial):
        streamed = stream_to_trace(
            stream_events(ours_model_set, 150, **self.KWARGS)
        )
        assert serial == streamed

    def test_order_independence(self, ours_model_set):
        gen = TrafficGenerator(ours_model_set)
        small = gen.generate({P: 20}, start_hour=TRACE_START_HOUR, seed=6)
        large = gen.generate({P: 60}, start_hour=TRACE_START_HOUR, seed=6)
        for ue in small.unique_ues():
            assert small.ue_trace(int(ue)) == large.ue_trace(int(ue))

    def test_reference_engine_unchanged_by_switch(self, ours_model_set):
        by_ctor = TrafficGenerator(
            ours_model_set, engine="reference"
        ).generate(40, **self.KWARGS)
        by_call = TrafficGenerator(ours_model_set).generate(
            40, engine="reference", **self.KWARGS
        )
        assert by_ctor == by_call


class TestEngineSelection:
    def test_engines_tuple(self):
        assert ENGINES == ("compiled", "reference")

    def test_unknown_engine_rejected(self, ours_model_set):
        with pytest.raises(ValueError, match="unknown engine"):
            TrafficGenerator(ours_model_set, engine="turbo")
        with pytest.raises(ValueError, match="unknown engine"):
            TrafficGenerator(ours_model_set).generate(10, engine="turbo")
        with pytest.raises(ValueError, match="unknown engine"):
            generate_parallel(ours_model_set, 10, engine="turbo")

    def test_non_positive_hours_rejected(self, ours_model_set):
        with pytest.raises(ValueError, match="num_hours"):
            TrafficGenerator(ours_model_set).generate(10, num_hours=0)


class TestStructuralLimits:
    def test_events_stay_inside_generated_hours(self, ours_model_set):
        trace = TrafficGenerator(ours_model_set).generate(
            100, start_hour=TRACE_START_HOUR, num_hours=3, seed=2
        )
        assert trace.times.min() >= 0.0
        assert trace.times.max() < 3 * 3600.0

    def test_times_are_quantized_and_sorted(self, ours_model_set):
        trace = TrafficGenerator(ours_model_set).generate(
            100, start_hour=TRACE_START_HOUR, num_hours=2, seed=2
        )
        assert np.all(np.diff(trace.times) >= 0.0)
        ms = np.round(trace.times / 1e-3) * 1e-3
        assert np.array_equal(ms, trace.times)

    def test_max_events_per_hour_cap(self, ours_model_set, monkeypatch):
        # The compiled engine reads the cap dynamically, so the same
        # monkeypatch that limits the reference engine limits it too.
        from repro.generator import ue_generator

        monkeypatch.setattr(ue_generator, "MAX_EVENTS_PER_HOUR", 3)
        trace = TrafficGenerator(ours_model_set).generate(
            100, start_hour=TRACE_START_HOUR, num_hours=2, seed=9
        )
        assert len(trace) > 0
        for hour in (0, 1):
            hour_trace = trace.window(hour * 3600.0, (hour + 1) * 3600.0)
            if len(hour_trace) == 0:
                continue
            _, per_ue = np.unique(hour_trace.ue_ids, return_counts=True)
            # at most: one first event + the capped chain steps
            assert per_ue.max() <= 4

    def test_degenerate_fit_still_bit_identical(self, tiny_trace):
        """A tiny fit exercises absorbing states and silent hours; the
        three production modes must still agree event for event."""
        from repro.baselines import fit_method

        ms = fit_method("ours", tiny_trace, theta_n=5, trace_start_hour=0)
        kwargs = dict(start_hour=0, num_hours=3, seed=4)
        serial = TrafficGenerator(ms).generate({P: 50}, **kwargs)
        par = generate_parallel(
            ms, {P: 50}, processes=1, chunk_size=9, **kwargs
        )
        streamed = stream_to_trace(stream_events(ms, {P: 50}, **kwargs))
        assert serial == par
        assert serial == streamed

    def test_absorbing_ue_parks_until_model_offers_exit(self, tiny_trace):
        """UEs whose state has no outgoing edges stop emitting chain
        events but are not dropped from the population."""
        ms = fit_method("ours", tiny_trace, theta_n=5, trace_start_hour=0)
        trace = TrafficGenerator(ms).generate(
            {P: 50}, start_hour=0, num_hours=3, seed=4
        )
        # bounded output is the observable effect of parking: no UE can
        # emit unboundedly from a chain this small
        if len(trace):
            _, per_ue = np.unique(trace.ue_ids, return_counts=True)
            assert per_ue.max() < 10_000


# ---------------------------------------------------------------------------
# Differential sweep: every method x RAT x device type
# ---------------------------------------------------------------------------

#: Radio access technologies the sweep covers.  LTE is the fitted model;
#: NSA/SA are derived with the paper's §6 parameter scaling.
RATS = ("lte", "nsa", "sa")

_SWEEP_POP = {
    DeviceType.PHONE: 50,
    DeviceType.CONNECTED_CAR: 25,
    DeviceType.TABLET: 15,
}
_SWEEP_KWARGS = dict(start_hour=TRACE_START_HOUR, num_hours=2, seed=13)

#: §6 parameter scaling is defined on the paper's two-level machine, so
#: only V2/Ours have NSA/SA variants; Base/V1 (flat EMM/ECM machine)
#: participate as LTE only.
def _rats_for(method: str):
    return RATS if method in ("v2", "ours") else ("lte",)


_SWEEP_COMBOS = [
    (method, rat) for method in METHOD_NAMES for rat in _rats_for(method)
]


@pytest.fixture(scope="session")
def sweep_model_sets(ground_truth_trace):
    """``(method, rat) -> ModelSet``: all four methods, every valid RAT."""
    sets = {}
    for method in METHOD_NAMES:
        lte = fit_method(
            method,
            ground_truth_trace,
            theta_n=25,
            trace_start_hour=TRACE_START_HOUR,
        )
        sets[(method, "lte")] = lte
        if "nsa" in _rats_for(method):
            sets[(method, "nsa")] = scale_to_nsa(lte)
            sets[(method, "sa")] = scale_to_sa(lte)
    return sets


@pytest.fixture(scope="session")
def sweep_traces(sweep_model_sets):
    """``(method, rat) -> (compiled_trace, reference_trace)``."""
    traces = {}
    for combo, model_set in sweep_model_sets.items():
        gen = TrafficGenerator(model_set)
        traces[combo] = (
            gen.generate(_SWEEP_POP, engine="compiled", **_SWEEP_KWARGS),
            gen.generate(_SWEEP_POP, engine="reference", **_SWEEP_KWARGS),
        )
    return traces


def _per_transition_gaps(trace, cap=20, min_group=4):
    """Within-UE inter-event gaps keyed by the transition's destination
    event code — the observable footprint of each chain transition's
    dwell distribution.

    The raw gap populations are dominated by heavy-tail noise: baseline
    fits produce near-singleton clusters whose overlay rates reach
    hundreds of events per UE-hour, so a single UE landing in such a
    cluster (the engines use independent RNG streams for persona draws)
    swings a transition's sample by thousands of points.  Two
    robustness measures make the statistic compare dwell *shapes*
    instead of which UE drew which persona: each (UE, transition)
    contributes at most ``cap`` gaps, and each contribution is
    normalized by its own mean (cancelling per-UE rate scale).  Groups
    smaller than ``min_group`` carry no shape signal and are dropped.
    """
    order = np.lexsort((trace.times, trace.ue_ids))
    ue = trace.ue_ids[order]
    t = trace.times[order]
    ev = trace.event_types[order]
    same = ue[1:] == ue[:-1]
    gaps = np.diff(t)[same]
    dest = ev[1:][same].astype(np.int64)
    ue_g = ue[1:][same].astype(np.int64)

    key = ue_g * 64 + dest  # event codes are tiny; 64 keeps keys unique
    order2 = np.argsort(key, kind="stable")
    keys = key[order2]
    gaps2 = gaps[order2]
    dest2 = dest[order2]
    starts = np.r_[0, np.flatnonzero(np.diff(keys)) + 1]
    counts = np.diff(np.r_[starts, keys.size])

    out = {}
    for start, n in zip(starts, counts):
        if n < min_group:
            continue
        segment = gaps2[start : start + min(n, cap)]
        mean = segment.mean()
        if mean <= 0:
            continue
        out.setdefault(int(dest2[start]), []).append(segment / mean)
    return {code: np.concatenate(parts) for code, parts in out.items()}


def _per_ue_counts(trace):
    """Events per UE, for every UE that emitted at least one event."""
    _, counts = np.unique(trace.ue_ids, return_counts=True)
    return counts


@pytest.mark.slow
class TestDifferentialSweep:
    """Compiled vs reference across method x RAT x device type.

    The two engines share the fitted model but draw from different RNG
    streams, so equivalence is statistical: for every combination the
    per-transition dwell distributions must agree under two-sample KS
    on the capped, mean-normalized gap statistic (see
    :func:`_per_transition_gaps`).  Seeds are fixed, so every assertion
    is deterministic.  KS p-values are aggregated per combination (most
    transitions must clear alpha=0.01 and none may collapse outright)
    because a sweep this wide makes isolated small p-values expected
    under the null, and KS groups sharing UEs are not independent —
    combinations where overlay events concentrate in a handful of
    heavy-persona UEs (e.g. NSA-scaled handover on small device
    populations) legitimately sit in the 1e-5 range without any
    per-gap distributional divergence.
    """

    @pytest.mark.parametrize("method,rat", _SWEEP_COMBOS)
    @pytest.mark.parametrize("device", list(DeviceType))
    def test_per_transition_ks(self, sweep_traces, method, rat, device):
        compiled, reference = sweep_traces[(method, rat)]
        compiled = compiled.filter_device(device)
        reference = reference.filter_device(device)
        assert len(compiled) > 0 and len(reference) > 0

        compiled_gaps = _per_transition_gaps(compiled)
        reference_gaps = _per_transition_gaps(reference)
        pvalues = []
        for code, gaps_c in compiled_gaps.items():
            gaps_r = reference_gaps.get(code)
            if gaps_r is None or len(gaps_c) < 30 or len(gaps_r) < 30:
                continue  # too sparse for a meaningful KS decision
            pvalues.append(float(stats.ks_2samp(gaps_c, gaps_r).pvalue))
        assert pvalues, (
            f"{method}/{rat}/{device.name}: no transition had enough "
            "samples for a KS comparison"
        )
        pvalues = np.asarray(pvalues)
        assert (pvalues > 0.01).mean() >= 0.5, pvalues
        assert pvalues.min() > 1e-7, pvalues

    @pytest.mark.parametrize("method,rat", _SWEEP_COMBOS)
    def test_volume_is_comparable(self, sweep_traces, method, rat):
        """The typical UE emits a comparable number of events under
        either engine.  The *median* per-UE count is the right volume
        statistic: raw totals are swung by single UEs landing in
        extreme-rate overlay clusters (different persona RNG streams),
        which is rate noise, not an engine divergence."""
        compiled, reference = sweep_traces[(method, rat)]
        assert len(reference) > 0
        median_c = float(np.median(_per_ue_counts(compiled)))
        median_r = float(np.median(_per_ue_counts(reference)))
        assert median_r > 0
        assert 0.5 < median_c / median_r < 2.0

    @pytest.mark.parametrize("method,rat", _SWEEP_COMBOS)
    def test_event_totals_identical_per_seed(
        self, sweep_model_sets, sweep_traces, method, rat
    ):
        """Same seed, same engine => identical traces (hence identical
        per-device event-count totals), for every combination."""
        compiled, reference = sweep_traces[(method, rat)]
        gen = TrafficGenerator(sweep_model_sets[(method, rat)])
        assert compiled == gen.generate(
            _SWEEP_POP, engine="compiled", **_SWEEP_KWARGS
        )
        assert reference == gen.generate(
            _SWEEP_POP, engine="reference", **_SWEEP_KWARGS
        )

    @pytest.mark.parametrize("device", list(DeviceType))
    def test_sa_emits_only_nr_event_codes(self, sweep_traces, device):
        """SA has no tracking-area-update procedure: every emitted code
        must be a valid :class:`NrEventType` member (which has no TAU),
        for any device type and either engine."""
        from repro.trace import NrEventType

        valid = {int(code) for code in NrEventType}
        compiled, reference = sweep_traces[("ours", "sa")]
        for trace in (compiled, reference):
            codes = set(
                np.unique(trace.filter_device(device).event_types).tolist()
            )
            assert codes <= valid
