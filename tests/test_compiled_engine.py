"""The compiled generation engine: correctness against the reference.

Three layers of guarantees, mirroring the engine's design:

- the vectorized Philox implementation is bit-validated against
  ``np.random.Philox``;
- compiled output is *statistically* equivalent to the reference engine
  (two-sample KS on sojourn and per-UE volume distributions, alpha=0.01
  with fixed seeds, so the tests are deterministic);
- compiled output is *bit-identical* across serial, process-parallel and
  streaming production, including the scalar drain path for long-tail
  UEs, and respects the same structural limits (hour boundaries,
  absorbing states, ``MAX_EVENTS_PER_HOUR``).
"""

import numpy as np
import pytest
from scipy import stats

from repro.generator import (
    ENGINES,
    TrafficGenerator,
    generate_parallel,
    stream_events,
    stream_to_trace,
)
from repro.generator.compiled import philox4x64
from repro.trace import DeviceType, EventType

from conftest import TRACE_START_HOUR, make_trace

P = DeviceType.PHONE
E = EventType


class TestPhilox:
    def test_matches_numpy_philox(self):
        """Bit-exact vs np.random.Philox (which pre-increments the
        counter before emitting its first block)."""
        rng = np.random.default_rng(99)
        for _ in range(10):
            counter = rng.integers(0, 2**63, size=4, dtype=np.uint64)
            key = rng.integers(0, 2**63, size=2, dtype=np.uint64)
            expected = np.random.Generator(
                np.random.Philox(counter=counter, key=key)
            ).bit_generator.random_raw(4)
            got = philox4x64(
                counter[0] + np.uint64(1), counter[1], counter[2],
                counter[3], key[0], key[1],
            )
            assert [int(g) for g in got] == [int(x) for x in expected]

    def test_vectorized_lanes_match_scalar_calls(self):
        c0 = np.arange(100, dtype=np.uint64)
        k0 = np.full(100, 7, dtype=np.uint64)
        k1 = np.full(100, 11, dtype=np.uint64)
        batch = philox4x64(c0, 1, 2, 3, k0, k1)
        one = philox4x64(np.uint64(42), 1, 2, 3, np.uint64(7), np.uint64(11))
        for lane in range(4):
            assert int(batch[lane][42]) == int(one[lane])


class TestStatisticalEquivalence:
    """Compiled vs reference: same fitted model, different RNG streams."""

    @pytest.fixture(scope="class")
    def traces(self, ours_model_set):
        gen = TrafficGenerator(ours_model_set)
        kwargs = dict(start_hour=TRACE_START_HOUR, num_hours=2, seed=5)
        return (
            gen.generate(300, engine="compiled", **kwargs),
            gen.generate(300, engine="reference", **kwargs),
        )

    def test_volume_is_comparable(self, traces):
        compiled, reference = traces
        assert 0.8 < len(compiled) / len(reference) < 1.25

    def test_per_ue_event_counts_ks(self, traces):
        compiled, reference = traces

        def counts(trace):
            _, c = np.unique(trace.ue_ids, return_counts=True)
            return c

        result = stats.ks_2samp(counts(compiled), counts(reference))
        assert result.pvalue > 0.01

    def test_sojourn_distribution_ks(self, traces):
        """Within-UE inter-event times are the chains' dwell draws."""

        def gaps(trace):
            order = np.lexsort((trace.times, trace.ue_ids))
            ue = trace.ue_ids[order]
            t = trace.times[order]
            same = ue[1:] == ue[:-1]
            return np.diff(t)[same]

        compiled, reference = traces
        result = stats.ks_2samp(gaps(compiled), gaps(reference))
        assert result.pvalue > 0.01

    def test_event_type_mix_is_comparable(self, traces):
        compiled, reference = traces

        def mix(trace):
            share = np.zeros(max(int(e) for e in EventType) + 1)
            codes, counts = np.unique(trace.event_types, return_counts=True)
            share[codes] = counts / len(trace)
            return share

        assert np.abs(mix(compiled) - mix(reference)).max() < 0.05


class TestBitIdentity:
    """Serial, parallel and streaming compiled output must be identical."""

    KWARGS = dict(start_hour=TRACE_START_HOUR, num_hours=2, seed=11)

    @pytest.fixture(scope="class")
    def serial(self, ours_model_set):
        return TrafficGenerator(ours_model_set).generate(150, **self.KWARGS)

    def test_generation_is_deterministic(self, ours_model_set, serial):
        again = TrafficGenerator(ours_model_set).generate(150, **self.KWARGS)
        assert serial == again

    def test_parallel_single_process_small_chunks(self, ours_model_set, serial):
        # chunk_size below the drain threshold forces every chunk through
        # the scalar path, proving it bit-matches vectorized stepping.
        par = generate_parallel(
            ours_model_set, 150, processes=1, chunk_size=7, **self.KWARGS
        )
        assert serial == par

    def test_parallel_multiprocess(self, ours_model_set, serial):
        par = generate_parallel(
            ours_model_set, 150, processes=2, chunk_size=64, **self.KWARGS
        )
        assert serial == par

    def test_streaming_matches_batch(self, ours_model_set, serial):
        streamed = stream_to_trace(
            stream_events(ours_model_set, 150, **self.KWARGS)
        )
        assert serial == streamed

    def test_order_independence(self, ours_model_set):
        gen = TrafficGenerator(ours_model_set)
        small = gen.generate({P: 20}, start_hour=TRACE_START_HOUR, seed=6)
        large = gen.generate({P: 60}, start_hour=TRACE_START_HOUR, seed=6)
        for ue in small.unique_ues():
            assert small.ue_trace(int(ue)) == large.ue_trace(int(ue))

    def test_reference_engine_unchanged_by_switch(self, ours_model_set):
        by_ctor = TrafficGenerator(
            ours_model_set, engine="reference"
        ).generate(40, **self.KWARGS)
        by_call = TrafficGenerator(ours_model_set).generate(
            40, engine="reference", **self.KWARGS
        )
        assert by_ctor == by_call


class TestEngineSelection:
    def test_engines_tuple(self):
        assert ENGINES == ("compiled", "reference")

    def test_unknown_engine_rejected(self, ours_model_set):
        with pytest.raises(ValueError, match="unknown engine"):
            TrafficGenerator(ours_model_set, engine="turbo")
        with pytest.raises(ValueError, match="unknown engine"):
            TrafficGenerator(ours_model_set).generate(10, engine="turbo")
        with pytest.raises(ValueError, match="unknown engine"):
            generate_parallel(ours_model_set, 10, engine="turbo")

    def test_non_positive_hours_rejected(self, ours_model_set):
        with pytest.raises(ValueError, match="num_hours"):
            TrafficGenerator(ours_model_set).generate(10, num_hours=0)


class TestStructuralLimits:
    def test_events_stay_inside_generated_hours(self, ours_model_set):
        trace = TrafficGenerator(ours_model_set).generate(
            100, start_hour=TRACE_START_HOUR, num_hours=3, seed=2
        )
        assert trace.times.min() >= 0.0
        assert trace.times.max() < 3 * 3600.0

    def test_times_are_quantized_and_sorted(self, ours_model_set):
        trace = TrafficGenerator(ours_model_set).generate(
            100, start_hour=TRACE_START_HOUR, num_hours=2, seed=2
        )
        assert np.all(np.diff(trace.times) >= 0.0)
        ms = np.round(trace.times / 1e-3) * 1e-3
        assert np.array_equal(ms, trace.times)

    def test_max_events_per_hour_cap(self, ours_model_set, monkeypatch):
        # The compiled engine reads the cap dynamically, so the same
        # monkeypatch that limits the reference engine limits it too.
        from repro.generator import ue_generator

        monkeypatch.setattr(ue_generator, "MAX_EVENTS_PER_HOUR", 3)
        trace = TrafficGenerator(ours_model_set).generate(
            100, start_hour=TRACE_START_HOUR, num_hours=2, seed=9
        )
        assert len(trace) > 0
        for hour in (0, 1):
            hour_trace = trace.window(hour * 3600.0, (hour + 1) * 3600.0)
            if len(hour_trace) == 0:
                continue
            _, per_ue = np.unique(hour_trace.ue_ids, return_counts=True)
            # at most: one first event + the capped chain steps
            assert per_ue.max() <= 4

    def test_degenerate_fit_still_bit_identical(self, tiny_trace):
        """A tiny fit exercises absorbing states and silent hours; the
        three production modes must still agree event for event."""
        from repro.baselines import fit_method

        ms = fit_method("ours", tiny_trace, theta_n=5, trace_start_hour=0)
        kwargs = dict(start_hour=0, num_hours=3, seed=4)
        serial = TrafficGenerator(ms).generate({P: 50}, **kwargs)
        par = generate_parallel(
            ms, {P: 50}, processes=1, chunk_size=9, **kwargs
        )
        streamed = stream_to_trace(stream_events(ms, {P: 50}, **kwargs))
        assert serial == par
        assert serial == streamed

    def test_absorbing_ue_parks_until_model_offers_exit(self, tiny_trace):
        """UEs whose state has no outgoing edges stop emitting chain
        events but are not dropped from the population."""
        from repro.baselines import fit_method

        ms = fit_method("ours", tiny_trace, theta_n=5, trace_start_hour=0)
        trace = TrafficGenerator(ms).generate(
            {P: 50}, start_hour=0, num_hours=3, seed=4
        )
        # bounded output is the observable effect of parking: no UE can
        # emit unboundedly from a chain this small
        if len(trace):
            _, per_ue = np.unique(trace.ue_ids, return_counts=True)
            assert per_ue.max() < 10_000
