"""Tests for the MME queueing consumer (repro.mcn)."""

import numpy as np
import pytest

from repro.mcn import DEFAULT_SERVICE_MEANS, MmeReport, MmeSimulator
from repro.trace import DeviceType, EventType, Trace

from conftest import make_trace

E = EventType
P = DeviceType.PHONE


def poisson_trace(rate: float, duration: float, seed: int = 0) -> Trace:
    rng = np.random.default_rng(seed)
    n = rng.poisson(rate * duration)
    times = np.sort(rng.uniform(0, duration, n))
    return make_trace([(i % 10, float(t), E.SRV_REQ, P) for i, t in enumerate(times)])


class TestConstruction:
    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            MmeSimulator(num_workers=0)

    def test_rejects_bad_jitter(self):
        with pytest.raises(ValueError):
            MmeSimulator(service_jitter=1.5)

    def test_default_service_covers_all_events(self):
        assert set(DEFAULT_SERVICE_MEANS) == set(EventType)


class TestProcessing:
    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            MmeSimulator().process(Trace.empty())

    def test_report_fields(self, ground_truth_trace):
        report = MmeSimulator(num_workers=4).process(
            ground_truth_trace.window(0, 1800.0)
        )
        assert isinstance(report, MmeReport)
        assert report.num_events > 0
        assert report.mean_wait >= 0
        assert report.p50_wait <= report.p95_wait <= report.p99_wait <= report.max_wait
        assert 0 <= report.utilization <= 1
        assert report.throughput > 0

    def test_events_by_type_totals(self, ground_truth_trace):
        window = ground_truth_trace.window(0, 1800.0)
        report = MmeSimulator().process(window)
        assert sum(report.events_by_type.values()) == len(window)

    def test_light_load_has_no_waits(self):
        tr = poisson_trace(rate=0.5, duration=600.0)
        report = MmeSimulator(num_workers=8).process(tr)
        assert report.p95_wait == pytest.approx(0.0, abs=1e-6)

    def test_overload_queues(self):
        # 1 worker at 4ms/event with 500 events/s -> heavy overload.
        tr = poisson_trace(rate=500.0, duration=20.0)
        report = MmeSimulator(num_workers=1).process(tr)
        assert report.mean_wait > 0.1
        assert report.utilization > 0.9

    def test_more_workers_reduce_wait(self):
        tr = poisson_trace(rate=400.0, duration=30.0)
        slow = MmeSimulator(num_workers=1).process(tr)
        fast = MmeSimulator(num_workers=8).process(tr)
        assert fast.mean_wait < slow.mean_wait

    def test_deterministic_given_seed(self, ground_truth_trace):
        window = ground_truth_trace.window(0, 900.0)
        a = MmeSimulator(seed=5).process(window)
        b = MmeSimulator(seed=5).process(window)
        assert a.mean_wait == b.mean_wait

    def test_valid_trace_has_no_violations(self, ground_truth_trace):
        report = MmeSimulator().process(ground_truth_trace.window(0, 1800.0))
        assert report.protocol_violations == 0

    def test_invalid_trace_flagged(self):
        # HO right after release: a protocol violation an MME would reject.
        tr = make_trace(
            [
                (1, 1.0, E.SRV_REQ, P),
                (1, 2.0, E.S1_CONN_REL, P),
                (1, 3.0, E.HO, P),
            ]
        )
        report = MmeSimulator().process(tr)
        assert report.protocol_violations == 1

    def test_base_traffic_triggers_violations(self, base_model_set):
        """The Base baseline's overlay HO/TAU violate the protocol."""
        from repro.generator import TrafficGenerator

        tr = TrafficGenerator(base_model_set).generate(60, start_hour=18, seed=4)
        report = MmeSimulator().process(tr)
        assert report.protocol_violations > 0
