"""Tests for diversity quantification (repro.analysis.diversity)."""

import math

import numpy as np
import pytest

from repro.analysis import (
    DOMINANT_FIG2_EVENTS,
    diversity_report,
    diversity_table,
    justifies_clustering,
)
from repro.analysis.diversity import _gini
from repro.trace import DeviceType, EventType

from conftest import make_trace

E = EventType
P = DeviceType.PHONE


class TestGini:
    def test_equal_values_zero(self):
        assert _gini(np.array([5.0, 5.0, 5.0, 5.0])) == pytest.approx(0.0, abs=1e-9)

    def test_extreme_inequality(self):
        g = _gini(np.array([0.0] * 99 + [100.0]))
        assert g > 0.9

    def test_empty(self):
        assert _gini(np.array([])) == 0.0

    def test_bounded(self):
        rng = np.random.default_rng(1)
        g = _gini(rng.lognormal(0, 2, 500))
        assert 0.0 <= g <= 1.0


class TestDiversityReport:
    def test_spread_computed(self):
        # Hour 0: UE1 has 3 events, UE2 has 0 -> spread 3.
        rows = [(1, float(i), E.SRV_REQ, P) for i in range(3)]
        rows.append((2, 100.0, E.TAU, P))
        report = diversity_report(make_trace(rows), P, E.SRV_REQ)
        assert report.max_spread == 3

    def test_ground_truth_diversity(self, ground_truth_trace):
        report = diversity_report(ground_truth_trace, P, E.SRV_REQ)
        assert report.peak_to_trough > 1.0
        assert report.max_spread > 5  # the clustering premise
        assert 0.2 < report.gini < 1.0  # strong cross-UE skew

    def test_table_covers_devices_and_events(self, ground_truth_trace):
        table = diversity_table(ground_truth_trace)
        assert len(table) == 3 * len(DOMINANT_FIG2_EVENTS)

    def test_justifies_clustering_on_ground_truth(self, ground_truth_trace):
        for dt in DeviceType:
            assert justifies_clustering(ground_truth_trace, dt)

    def test_uniform_traffic_does_not_justify_clustering(self):
        # Every UE exactly one event: spread 1 < theta_f.
        rows = [(u, float(u), E.SRV_REQ, P) for u in range(20)]
        assert not justifies_clustering(make_trace(rows), P)
