"""Tests for trace replay (repro.statemachines.replay)."""

import numpy as np
import pytest

from repro.statemachines import (
    CONNECTED,
    DEREGISTERED,
    IDLE,
    classify_category2_events,
    emm_ecm_machine,
    replay_trace,
    replay_ue,
    sojourn_samples,
    top_level_intervals,
    top_state_sojourns,
    transition_counts,
    two_level_machine,
)
from repro.trace import DeviceType, EventType

from conftest import make_trace

E = EventType
P = DeviceType.PHONE


class TestReplayUe:
    def test_valid_sequence_no_violations(self):
        events = [E.ATCH, E.HO, E.TAU, E.S1_CONN_REL, E.SRV_REQ, E.DTCH]
        times = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        result = replay_ue(events, times)
        assert result.violations == 0
        assert result.final_state == DEREGISTERED

    def test_first_record_has_unknown_enter_time(self):
        result = replay_ue([E.ATCH], [1.0])
        assert result.records[0].enter_time is None
        assert result.records[0].sojourn is None

    def test_sojourn_computed_from_second_record(self):
        result = replay_ue([E.ATCH, E.S1_CONN_REL], [1.0, 11.0])
        assert result.records[1].sojourn == pytest.approx(10.0)

    def test_violation_forces_state(self):
        # HO while (inferred) IDLE is invalid in the two-level machine.
        result = replay_ue([E.SRV_REQ, E.S1_CONN_REL, E.HO], [1.0, 2.0, 3.0])
        assert result.violations == 1
        assert result.records[2].forced

    def test_initial_state_supplied(self):
        result = replay_ue([E.SRV_REQ], [5.0], initial_state="S1_REL_S_1")
        assert result.violations == 0
        assert not result.records[0].forced

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            replay_ue([E.ATCH], [1.0, 2.0])

    def test_first_event_inference(self):
        # A first SRV_REQ implies the UE was idle in S1_REL_S_1.
        result = replay_ue([E.SRV_REQ], [1.0])
        assert result.records[0].source == "S1_REL_S_1"
        assert result.violations == 0

    def test_emm_ecm_machine_replay(self):
        m = emm_ecm_machine()
        result = replay_ue(
            [E.ATCH, E.S1_CONN_REL, E.SRV_REQ, E.DTCH],
            [1.0, 2.0, 3.0, 4.0],
            m,
        )
        assert result.violations == 0
        assert result.final_state == DEREGISTERED


class TestDerivedQuantities:
    @pytest.fixture()
    def results(self, tiny_trace):
        return replay_trace(tiny_trace)

    def test_replay_trace_covers_all_ues(self, results, tiny_trace):
        assert set(results) == {1, 2}
        total_records = sum(len(r.records) for r in results.values())
        assert total_records == len(tiny_trace)

    def test_sojourn_samples_grouped(self, results):
        samples = sojourn_samples(results)
        # UE1: HO fired 9.5s after entering SRV_REQ_S via ATCH.
        assert ("SRV_REQ_S", E.HO) in samples
        assert samples[("SRV_REQ_S", E.HO)][0] == pytest.approx(9.5)

    def test_transition_counts(self, results):
        counts = transition_counts(results)
        # UE2 fires SRV_REQ twice, UE1 once: but UE2's first SRV_REQ and
        # second both come from S1_REL_S_1; UE1's once.
        assert counts[("S1_REL_S_1", E.SRV_REQ, "SRV_REQ_S")] >= 2

    def test_top_level_intervals_structure(self, results):
        intervals = top_level_intervals(results[1].records, end_time=200.0)
        states = [i.state for i in intervals]
        assert states == [DEREGISTERED, CONNECTED, IDLE, CONNECTED, DEREGISTERED]
        # First interval start is unknown, last ends at the given time.
        assert intervals[0].start is None
        assert intervals[-1].end == 200.0

    def test_top_state_sojourns(self, results):
        sojourns = top_state_sojourns(results)
        # UE1 CONNECTED from 0.5 (ATCH) to 30.0 (S1_CONN_REL).
        assert CONNECTED in sojourns
        assert 29.5 in [pytest.approx(v) for v in sojourns[CONNECTED]]

    def test_interval_complete_flag(self):
        result = replay_ue([E.ATCH, E.S1_CONN_REL], [1.0, 5.0])
        intervals = top_level_intervals(result.records)
        assert not intervals[0].complete   # DEREGISTERED since unknown
        assert intervals[1].complete       # CONNECTED [1, 5]
        assert not intervals[-1].complete  # IDLE, trace ends


class TestClassifyCategory2:
    def test_ho_classified_connected(self):
        tr = make_trace(
            [(1, 1.0, E.SRV_REQ, P), (1, 2.0, E.HO, P), (1, 3.0, E.S1_CONN_REL, P)]
        )
        counts = classify_category2_events(tr)
        assert counts[(E.HO, CONNECTED)] == 1
        assert counts[(E.HO, IDLE)] == 0

    def test_ho_in_idle_detected(self):
        """A baseline-style trace placing HO after release must count it."""
        tr = make_trace(
            [(1, 1.0, E.SRV_REQ, P), (1, 2.0, E.S1_CONN_REL, P), (1, 3.0, E.HO, P)]
        )
        counts = classify_category2_events(tr)
        assert counts[(E.HO, IDLE)] == 1

    def test_tau_split_by_state(self):
        tr = make_trace(
            [
                (1, 1.0, E.SRV_REQ, P),
                (1, 2.0, E.TAU, P),          # connected
                (1, 3.0, E.S1_CONN_REL, P),
                (1, 4.0, E.TAU, P),          # idle
            ]
        )
        counts = classify_category2_events(tr)
        assert counts[(E.TAU, CONNECTED)] == 1
        assert counts[(E.TAU, IDLE)] == 1

    def test_initial_state_inferred_from_later_event(self):
        # First event TAU, then S1_CONN_REL -> UE was CONNECTED.
        tr = make_trace([(1, 1.0, E.TAU, P), (1, 2.0, E.S1_CONN_REL, P)])
        counts = classify_category2_events(tr)
        assert counts[(E.TAU, CONNECTED)] == 1

    def test_ground_truth_has_no_idle_ho(self, ground_truth_trace):
        counts = classify_category2_events(ground_truth_trace)
        assert counts[(E.HO, IDLE)] == 0
        assert counts[(E.HO, CONNECTED)] > 0

    def test_ground_truth_replay_is_violation_free(self, ground_truth_trace):
        results = replay_trace(ground_truth_trace)
        assert sum(r.violations for r in results.values()) == 0
