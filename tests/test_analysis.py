"""Tests for the §4 study pipelines (repro.analysis)."""

import numpy as np
import pytest

from repro.analysis import (
    EMM_ECM_STATES,
    FIG34_QUANTITIES,
    TESTS,
    burstiness_analysis,
    gof_study,
    quantity_samples,
    tail_analysis,
)
from repro.trace import DeviceType, EventType

from conftest import TRACE_START_HOUR

P = DeviceType.PHONE


class TestGofStudy:
    def test_structure(self, ground_truth_trace):
        result = gof_study(
            ground_truth_trace,
            P,
            clustered=False,
            trace_start_hour=TRACE_START_HOUR,
        )
        assert set(result.rates) == set(TESTS)
        assert result.combos  # at least some testable combinations

    def test_classic_families_mostly_fail(self, ground_truth_trace):
        """The paper's core negative result (§4.1.2, Tables 8/9)."""
        result = gof_study(
            ground_truth_trace,
            P,
            clustered=False,
            trace_start_hour=TRACE_START_HOUR,
        )
        # Average pass rate over all testable quantities stays low for
        # the Poisson model on bursty lognormal-mixture traffic.
        poisson_rates = list(result.rates["poisson_ks"].values())
        assert np.mean(poisson_rates) < 0.35

    def test_state_quantities_present(self, ground_truth_trace):
        result = gof_study(
            ground_truth_trace,
            P,
            clustered=False,
            trace_start_hour=TRACE_START_HOUR,
        )
        assert "CONNECTED" in result.combos
        assert "IDLE" in result.combos

    def test_transitions_mode(self, ground_truth_trace):
        result = gof_study(
            ground_truth_trace,
            P,
            clustered=True,
            theta_n=30,
            trace_start_hour=TRACE_START_HOUR,
            quantities="transitions",
        )
        # Quantity keys look like "SRV_REQ_S-HO".
        assert all("-" in q for q in result.combos)

    def test_unknown_quantities_rejected(self, ground_truth_trace):
        with pytest.raises(ValueError, match="quantities"):
            gof_study(ground_truth_trace, P, clustered=False, quantities="x")

    def test_empty_device_rejected(self, tiny_trace):
        with pytest.raises(ValueError, match="no"):
            gof_study(tiny_trace, DeviceType.TABLET, clustered=False)


class TestQuantitySamples:
    def test_state_quantities(self, ground_truth_trace):
        durations, entries = quantity_samples(ground_truth_trace, P, "CONNECTED")
        assert durations.size > 0
        assert entries.size > 0
        assert np.all(durations > 0)

    def test_event_quantities(self, ground_truth_trace):
        durations, arrivals = quantity_samples(ground_truth_trace, P, "HO")
        assert arrivals.size > 0
        # inter-arrivals only from UEs with >= 2 HOs.
        assert durations.size <= arrivals.size

    def test_all_fig34_quantities_defined(self):
        assert FIG34_QUANTITIES == ("CONNECTED", "IDLE", "HO", "TAU")


class TestBurstiness:
    def test_real_traffic_burstier_than_poisson(self, ground_truth_trace):
        """Fig. 3: the observed curve sits above the fitted Poisson."""
        report = burstiness_analysis(ground_truth_trace, P, "CONNECTED", seed=1)
        # Positive gap at the larger scales.
        assert report.log_gap[-3:].mean() > 0.0

    def test_too_few_occurrences_rejected(self, tiny_trace):
        with pytest.raises(ValueError, match="too few"):
            burstiness_analysis(tiny_trace, P, "HO")


class TestTails:
    def test_observed_max_exceeds_fitted(self, ground_truth_trace):
        """Fig. 4: heavy upper tails the exponential fit cannot reach."""
        report = tail_analysis(ground_truth_trace, P, "CONNECTED", seed=2)
        assert report.observed_max > report.fitted_max

    def test_report_fields_consistent(self, ground_truth_trace):
        report = tail_analysis(ground_truth_trace, P, "IDLE")
        assert report.observed_min <= report.observed_max
        assert report.fitted_min <= report.fitted_max
        assert report.fitted_rate > 0
        assert report.upper_tail_ratio > 0

    def test_too_few_samples_rejected(self, tiny_trace):
        with pytest.raises(ValueError, match="too few"):
            tail_analysis(tiny_trace, P, "TAU")
