"""Failure-injection tests: corrupted files, adversarial inputs.

A production library must fail loudly and legibly on bad inputs rather
than producing silently wrong models or traces.
"""

import gzip
import json

import numpy as np
import pytest

from repro.model import ModelSet, fit_model_set
from repro.trace import (
    DeviceType,
    EventType,
    Trace,
    read_csv,
    read_npz,
    write_npz,
)

from conftest import make_trace

E = EventType
P = DeviceType.PHONE


class TestCorruptTraceFiles:
    def test_truncated_npz(self, tmp_path, tiny_trace):
        path = tmp_path / "trace.npz"
        write_npz(tiny_trace, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(Exception):
            read_npz(path)

    def test_npz_missing_column(self, tmp_path, tiny_trace):
        path = tmp_path / "trace.npz"
        np.savez(path, ue_ids=tiny_trace.ue_ids, times=tiny_trace.times)
        with pytest.raises(KeyError):
            read_npz(path)

    def test_csv_with_garbage_event(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("ue_id,time,event,device\n1,1.0,EXPLODE,PHONE\n")
        with pytest.raises(KeyError):
            read_csv(path)

    def test_csv_with_non_numeric_time(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("ue_id,time,event,device\n1,abc,ATCH,PHONE\n")
        with pytest.raises(ValueError):
            read_csv(path)

    def test_csv_negative_time_rejected_at_construction(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("ue_id,time,event,device\n1,-5.0,ATCH,PHONE\n")
        with pytest.raises(ValueError, match="negative"):
            read_csv(path)


class TestCorruptModelFiles:
    def test_not_json(self, tmp_path):
        path = tmp_path / "model.json"
        path.write_text("this is not json {")
        with pytest.raises(json.JSONDecodeError):
            ModelSet.load(path)

    def test_wrong_format_marker(self, tmp_path):
        path = tmp_path / "model.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ValueError, match="format"):
            ModelSet.load(path)

    def test_gzip_extension_on_plain_file(self, tmp_path, ours_model_set):
        path = tmp_path / "model.json.gz"
        path.write_text("{}")  # not gzipped
        with pytest.raises(Exception):
            ModelSet.load(path)

    def test_missing_fields(self, tmp_path):
        path = tmp_path / "model.json"
        path.write_text(json.dumps({"format": "repro-model-set-v1"}))
        with pytest.raises(KeyError):
            ModelSet.load(path)

    def test_corrupted_event_name_in_chain(self, tmp_path, ours_model_set):
        payload = ours_model_set.to_dict()
        device = next(iter(payload["models"]))
        hour = next(iter(payload["models"][device]))
        clusters = payload["models"][device][hour]["clusters"]
        chain = clusters[0]["chain"]
        state = next(s for s, edges in chain.items() if edges)
        chain[state][0]["event"] = "NOT_AN_EVENT"
        path = tmp_path / "model.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(KeyError):
            ModelSet.load(path)


class TestAdversarialTraces:
    def test_fit_single_event_trace(self):
        """One lonely event must still produce a usable model."""
        tr = make_trace([(1, 10.0, E.SRV_REQ, P)])
        ms = fit_model_set(tr)
        from repro.generator import TrafficGenerator

        out = TrafficGenerator(ms).generate({P: 5}, start_hour=0, seed=1)
        assert isinstance(out, Trace)

    def test_fit_trace_of_identical_timestamps(self):
        rows = [(1, 5.0, E.SRV_REQ, P), (1, 5.0, E.S1_CONN_REL, P)]
        ms = fit_model_set(make_trace(rows))
        assert ms.num_models >= 1

    def test_fit_protocol_violating_trace(self):
        """HO-in-IDLE inputs must not crash fitting (lenient replay)."""
        rows = [
            (1, 1.0, E.SRV_REQ, P),
            (1, 2.0, E.S1_CONN_REL, P),
            (1, 3.0, E.HO, P),       # invalid
            (1, 4.0, E.HO, P),       # invalid
            (1, 5.0, E.SRV_REQ, P),  # invalid from HO_S
        ]
        ms = fit_model_set(make_trace(rows))
        assert ms.num_models >= 1

    def test_fit_trace_with_one_device_only(self, ground_truth_trace):
        phones = ground_truth_trace.filter_device(P)
        ms = fit_model_set(phones, theta_n=25, trace_start_hour=17)
        assert list(ms.models) == [P]

    def test_generator_with_huge_population_request(self, ours_model_set):
        """A 100x scale-up request must work (design goal 3)."""
        from repro.generator import TrafficGenerator

        trace = TrafficGenerator(ours_model_set).generate(
            5000, start_hour=18, num_hours=1, seed=1
        )
        assert trace.num_ues > 2000

    def test_events_at_hour_boundaries(self):
        """Events exactly on hour edges land in the right segment."""
        rows = [
            (1, 0.0, E.SRV_REQ, P),
            (1, 3599.999, E.S1_CONN_REL, P),
            (1, 3600.0, E.SRV_REQ, P),
            (1, 7199.0, E.S1_CONN_REL, P),
        ]
        ms = fit_model_set(make_trace(rows), trace_start_hour=0)
        assert set(ms.hours(P)) == {0, 1}

    def test_mme_with_simultaneous_arrivals(self):
        from repro.mcn import MmeSimulator

        rows = [(i, 1.0, E.SRV_REQ, P) for i in range(50)]
        report = MmeSimulator(num_workers=2).process(make_trace(rows))
        assert report.num_events == 50
        assert report.max_wait > 0  # they must queue
