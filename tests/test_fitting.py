"""Tests for the fitting pipeline (repro.model.fitting)."""

import numpy as np
import pytest

from repro.model import fit_model_set
from repro.statemachines import lte
from repro.trace import DeviceType, EventType, Trace

from conftest import TRACE_START_HOUR, make_trace

E = EventType
P = DeviceType.PHONE


class TestValidation:
    def test_rejects_empty_trace(self):
        with pytest.raises(ValueError, match="empty"):
            fit_model_set(Trace.empty())

    def test_rejects_unknown_machine(self, tiny_trace):
        with pytest.raises(ValueError, match="machine_kind"):
            fit_model_set(tiny_trace, machine_kind="mealy")

    def test_rejects_unknown_family(self, tiny_trace):
        with pytest.raises(ValueError, match="family"):
            fit_model_set(tiny_trace, family="gamma")


class TestStructure:
    def test_devices_present(self, ours_model_set, ground_truth_trace):
        assert set(ours_model_set.models) == set(DeviceType)
        for dt in DeviceType:
            n_train = len(ours_model_set.device_ues[dt])
            assert n_train == ground_truth_trace.filter_device(dt).num_ues

    def test_hours_match_trace_span(self, ours_model_set):
        # 4-hour trace starting at TRACE_START_HOUR.
        expected = {(TRACE_START_HOUR + i) % 24 for i in range(4)}
        for dt in DeviceType:
            assert set(ours_model_set.hours(dt)) == expected

    def test_num_models_counts_clusters(self, ours_model_set):
        total = sum(
            len(ours_model_set.models[dt][h].clusters)
            for dt in ours_model_set.models
            for h in ours_model_set.models[dt]
        )
        assert ours_model_set.num_models == total
        assert total >= 12  # at least one per (device, hour)

    def test_clustered_flag(self, ours_model_set, base_model_set):
        assert ours_model_set.clustered
        assert not base_model_set.clustered
        for dt in DeviceType:
            for h in base_model_set.hours(dt):
                assert len(base_model_set.models[dt][h].clusters) == 1

    def test_assignment_covers_training_ues(self, ours_model_set):
        for dt in DeviceType:
            ues = set(ours_model_set.device_ues[dt])
            for h in ours_model_set.hours(dt):
                hm = ours_model_set.models[dt][h]
                assert set(hm.assignment) == ues


class TestChainContents:
    def test_transition_probs_sum_to_one(self, ours_model_set):
        for dt in DeviceType:
            for h in ours_model_set.hours(dt):
                for cm in ours_model_set.models[dt][h].clusters:
                    for state, model in cm.chain.states.items():
                        if model.edges:
                            total = sum(e.probability for e in model.edges)
                            assert total == pytest.approx(1.0)

    def test_chain_edges_are_valid_machine_edges(self, ours_model_set):
        machine = ours_model_set.machine()
        for dt in DeviceType:
            for h in ours_model_set.hours(dt):
                for cm in ours_model_set.models[dt][h].clusters:
                    for state, model in cm.chain.states.items():
                        for edge in model.edges:
                            assert machine.can_fire(state, edge.event)
                            assert machine.next_state(state, edge.event) == edge.target

    def test_empirical_family_used(self, ours_model_set):
        from repro.distributions import EmpiricalCDF

        found_empirical = False
        for dt in DeviceType:
            for h in ours_model_set.hours(dt):
                for cm in ours_model_set.models[dt][h].clusters:
                    for model in cm.chain.states.values():
                        for edge in model.edges:
                            if isinstance(edge.sojourn, EmpiricalCDF):
                                found_empirical = True
        assert found_empirical

    def test_poisson_family_used_by_base(self, base_model_set):
        from repro.distributions import Exponential

        for dt in DeviceType:
            for h in base_model_set.hours(dt):
                for cm in base_model_set.models[dt][h].clusters:
                    for model in cm.chain.states.values():
                        for edge in model.edges:
                            assert isinstance(edge.sojourn, Exponential)

    def test_overlay_only_for_emm_ecm(self, ours_model_set, base_model_set):
        for dt in DeviceType:
            for h in ours_model_set.hours(dt):
                for cm in ours_model_set.models[dt][h].clusters:
                    assert cm.overlay_rates == {}
        found_rate = False
        for dt in DeviceType:
            for h in base_model_set.hours(dt):
                for cm in base_model_set.models[dt][h].clusters:
                    assert set(cm.overlay_rates) == {E.HO, E.TAU}
                    if cm.overlay_rates[E.HO] > 0:
                        found_rate = True
        assert found_rate


class TestSojournFidelity:
    def test_fitted_cdf_reproduces_observed_sojourns(self, ground_truth_trace):
        """The fitted F_xy spans the observed sojourn range (§4.2's gap
        between data and Poisson fits is what the empirical CDF fixes)."""
        from repro.statemachines import replay_trace, sojourn_samples

        ms = fit_model_set(
            ground_truth_trace,
            theta_n=10_000,  # one cluster: pool everything
            trace_start_hour=TRACE_START_HOUR,
        )
        hour = TRACE_START_HOUR
        sub = ground_truth_trace.filter_device(P).window(0.0, 3600.0)
        samples = sojourn_samples(replay_trace(sub))
        key = (lte.SRV_REQ_S, E.S1_CONN_REL)
        if key not in samples or len(samples[key]) < 30:
            pytest.skip("not enough sojourn samples in this window")
        observed = samples[key]
        cm = ms.models[P][hour].clusters[0]
        edge = next(
            e
            for e in cm.chain.states[lte.SRV_REQ_S].edges
            if e.event == E.S1_CONN_REL
        )
        lo, hi = edge.sojourn.support
        assert lo <= np.percentile(observed, 5)
        assert hi >= np.percentile(observed, 95)


class TestHourSlicing:
    def test_single_hour_trace(self):
        rows = [
            (1, 10.0, E.SRV_REQ, P),
            (1, 20.0, E.S1_CONN_REL, P),
            (2, 30.0, E.SRV_REQ, P),
            (2, 45.0, E.S1_CONN_REL, P),
        ]
        ms = fit_model_set(make_trace(rows), trace_start_hour=5)
        assert ms.hours(P) == [5]

    def test_multi_day_pooling_same_hour(self):
        day = 86400.0
        rows = []
        for d in range(2):
            rows += [
                (1, d * day + 10.0, E.SRV_REQ, P),
                (1, d * day + 20.0, E.S1_CONN_REL, P),
            ]
        ms = fit_model_set(make_trace(rows), trace_start_hour=0)
        hm = ms.models[P][0]
        # Both days' transitions pooled into hour 0.
        cm = hm.clusters[0]
        edges = cm.chain.states["SRV_REQ_S"].edges
        assert any(e.event == E.S1_CONN_REL for e in edges)
        # first-event model saw 2 active segments out of 2 (UE active
        # both days) -> p_active reflects slot accounting.
        assert 0.0 < cm.first_event.p_active <= 1.0
