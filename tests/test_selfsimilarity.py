"""Tests for Hurst estimation (repro.stats.selfsimilarity)."""

import numpy as np
import pytest

from repro.stats import hurst_rescaled_range, hurst_variance_time


@pytest.fixture()
def rng():
    return np.random.default_rng(11)


def poisson_times(rng, rate=3.0, duration=20_000.0):
    n = rng.poisson(rate * duration)
    return np.sort(rng.uniform(0, duration, n))


def bursty_times(rng, duration=20_000.0):
    """On/off bursts with heavy-tailed off periods (LRD-like)."""
    times = []
    t = 0.0
    while t < duration:
        n = int(rng.integers(40, 160))
        times.append(t + np.sort(rng.uniform(0, 8.0, n)))
        t += float(rng.pareto(1.3) + 1.0) * 60.0
    return np.concatenate(times)


class TestVarianceTimeHurst:
    def test_poisson_near_half(self, rng):
        est = hurst_variance_time(poisson_times(rng))
        assert est.hurst == pytest.approx(0.5, abs=0.1)
        assert not est.is_long_range_dependent or est.hurst < 0.6

    def test_bursty_traffic_lrd(self, rng):
        est = hurst_variance_time(bursty_times(rng))
        assert est.hurst > 0.65
        assert est.is_long_range_dependent

    def test_regression_quality_reported(self, rng):
        est = hurst_variance_time(poisson_times(rng))
        assert 0.0 <= est.r_squared <= 1.0
        assert est.num_points >= 3

    def test_too_short_series_rejected(self, rng):
        with pytest.raises(ValueError, match="scales"):
            hurst_variance_time(rng.uniform(0, 5.0, 50), duration=5.0)

    def test_hurst_clamped_to_unit_interval(self, rng):
        est = hurst_variance_time(bursty_times(rng))
        assert 0.0 <= est.hurst <= 1.0


class TestRescaledRange:
    def test_poisson_near_half(self, rng):
        est = hurst_rescaled_range(poisson_times(rng))
        assert est.hurst == pytest.approx(0.55, abs=0.15)

    def test_bursty_above_poisson(self, rng):
        poisson = hurst_rescaled_range(poisson_times(rng))
        bursty = hurst_rescaled_range(bursty_times(rng))
        assert bursty.hurst > poisson.hurst

    def test_needs_events(self):
        with pytest.raises(ValueError):
            hurst_rescaled_range([])

    def test_short_series_rejected(self, rng):
        with pytest.raises(ValueError):
            hurst_rescaled_range(rng.uniform(0, 3.0, 10), duration=3.0)


class TestOnGroundTruth:
    def test_control_traffic_is_lrd(self, ground_truth_trace):
        """The paper's premise: control traffic is bursty/self-similar."""
        est = hurst_variance_time(ground_truth_trace.times)
        assert est.is_long_range_dependent
