"""Cross-cutting edge cases not covered by the per-module suites."""

import math

import numpy as np
import pytest

from repro.distributions import EmpiricalCDF, Exponential
from repro.model import Edge, SemiMarkovChain, StateModel
from repro.statemachines import two_level_machine
from repro.trace import DeviceType, EventType, Trace, quantize_timestamp

from conftest import TRACE_START_HOUR, make_trace

E = EventType
P = DeviceType.PHONE


class TestTraceBoundaries:
    def test_window_of_width_zero(self, tiny_trace):
        assert len(tiny_trace.window(5.0, 5.0)) == 0

    def test_window_beyond_trace(self, tiny_trace):
        assert len(tiny_trace.window(10_000.0, 20_000.0)) == 0

    def test_filter_ues_with_duplicates(self, tiny_trace):
        a = tiny_trace.filter_ues([1, 1, 1])
        b = tiny_trace.filter_ues([1])
        assert a == b

    def test_filter_ues_empty_set(self, tiny_trace):
        assert len(tiny_trace.filter_ues([])) == 0

    def test_same_millisecond_events_keep_per_ue_order(self):
        # Two events of one UE on the same quantized millisecond must
        # remain in their original relative order after construction.
        t = quantize_timestamp(10.0001)
        tr = make_trace(
            [(1, t, E.SRV_REQ, P), (1, t, E.S1_CONN_REL, P)]
        )
        assert [int(e) for e in tr.event_types] == [
            int(E.SRV_REQ),
            int(E.S1_CONN_REL),
        ]

    def test_shift_negative_offset_hits_validation(self, tiny_trace):
        with pytest.raises(ValueError, match="negative"):
            tiny_trace.shift(-10_000.0)


class TestDistributionBoundaries:
    def test_exponential_ppf_at_one_is_infinite(self):
        dist = Exponential(rate=1.0)
        assert dist.ppf(np.array([1.0]))[0] == math.inf

    def test_exponential_ppf_at_zero(self):
        dist = Exponential(rate=2.0)
        assert dist.ppf(np.array([0.0]))[0] == 0.0

    def test_empirical_two_points_interpolates_between(self):
        dist = EmpiricalCDF([10.0, 20.0])
        mid = dist.ppf(np.array([0.5]))[0]
        assert 10.0 <= mid <= 20.0

    def test_empirical_rejects_negative(self):
        with pytest.raises(ValueError, match="negative"):
            EmpiricalCDF([-1.0, 2.0])

    def test_empirical_rejects_nan(self):
        with pytest.raises(ValueError, match="non-finite"):
            EmpiricalCDF([1.0, float("nan")])


class TestChainBoundaries:
    def test_single_edge_state_is_deterministic_in_choice(self, rng):
        chain = SemiMarkovChain(
            {
                "A": StateModel(
                    edges=(Edge(E.HO, "A", 1.0, Exponential(rate=1.0)),)
                )
            }
        )
        # Only the sojourn draw consumes randomness; the edge pick must
        # not (single-edge fast path).
        _, event, target = chain.step("A", rng)
        assert event == E.HO
        assert target == "A"

    def test_machine_walk_from_every_registered_leaf_to_dtch(self):
        machine = two_level_machine()
        for state in machine.states - {"DEREGISTERED"}:
            assert machine.next_state(state, E.DTCH) == "DEREGISTERED"


class TestModelSetBoundaries:
    def test_hour_model_wraps_mod_24(self, ours_model_set):
        hour = ours_model_set.hours(P)[0]
        direct = ours_model_set.hour_model(P, hour)
        wrapped = ours_model_set.hour_model(P, hour + 24)
        assert direct is wrapped

    def test_hour_model_missing_hour_is_none(self, ours_model_set):
        assert ours_model_set.hour_model(P, 3) is None

    def test_generation_is_order_independent(self, ours_model_set):
        """Per-UE substreams: generating more UEs never changes the
        events of the UEs already generated."""
        from repro.generator import TrafficGenerator

        gen = TrafficGenerator(ours_model_set)
        small = gen.generate(
            {P: 10}, start_hour=TRACE_START_HOUR, seed=6
        )
        large = gen.generate(
            {P: 30}, start_hour=TRACE_START_HOUR, seed=6
        )
        for ue in small.unique_ues():
            assert small.ue_trace(int(ue)) == large.ue_trace(int(ue))


class TestValidationBoundaries:
    def test_breakdown_difference_of_trace_with_itself(self, tiny_trace):
        from repro.validation import breakdown_difference

        diff = breakdown_difference(tiny_trace, tiny_trace, P)
        assert all(v == 0.0 for v in diff.values())

    def test_max_y_distance_single_samples(self):
        from repro.stats import max_y_distance

        assert max_y_distance([1.0], [1.0]) == 0.0
        assert max_y_distance([1.0], [2.0]) == 1.0

    def test_format_table_no_rows(self):
        from repro.validation import format_table

        text = format_table(["a", "b"], [])
        assert "a" in text


class TestMcnBoundaries:
    def test_mme_single_event(self):
        from repro.mcn import MmeSimulator

        tr = make_trace([(1, 5.0, E.ATCH, P)])
        report = MmeSimulator().process(tr)
        assert report.num_events == 1
        assert report.mean_wait == 0.0

    def test_core_single_event(self):
        from repro.mcn import CoreNetworkSimulator

        tr = make_trace([(1, 5.0, E.ATCH, P)])
        report = CoreNetworkSimulator(seed=0).process(tr)
        assert report.procedures["attach"].count == 1

    def test_mme_zero_jitter_deterministic_service(self):
        from repro.mcn import DEFAULT_SERVICE_MEANS, MmeSimulator

        tr = make_trace([(1, 5.0, E.SRV_REQ, P)])
        report = MmeSimulator(num_workers=1, service_jitter=0.0).process(tr)
        assert report.mean_latency == pytest.approx(
            DEFAULT_SERVICE_MEANS[E.SRV_REQ]
        )

    @pytest.mark.parametrize("core", ["epc", "5gc"])
    def test_core_empty_trace_yields_empty_report(self, core):
        from repro.mcn import CoreNetworkSimulator

        report = CoreNetworkSimulator(core).process(Trace.empty())
        assert report.num_events == 0
        assert report.num_messages == 0
        assert report.span == 0.0
        assert report.functions == {}
        assert report.procedures == {}

    def test_core_empty_report_has_no_bottleneck(self):
        from repro.mcn import CoreNetworkSimulator

        report = CoreNetworkSimulator().process(Trace.empty())
        assert report.bottleneck() is None

    def test_core_nonempty_report_names_bottleneck(self):
        from repro.mcn import CoreNetworkSimulator

        tr = make_trace([(1, 5.0, E.ATCH, P)])
        report = CoreNetworkSimulator().process(tr)
        assert report.bottleneck() in report.functions


class TestRunArgumentValidation:
    """All generation entry points reject bad run parameters eagerly."""

    @staticmethod
    def entry_points(model_set):
        from repro.generator import (
            TrafficGenerator,
            generate_parallel,
            stream_events,
        )

        gen = TrafficGenerator(model_set)
        return [
            lambda **kw: gen.generate({P: 5}, **kw),
            lambda **kw: generate_parallel(
                model_set, {P: 5}, processes=1, **kw
            ),
            lambda **kw: stream_events(model_set, {P: 5}, **kw),
        ]

    @pytest.mark.parametrize(
        "bad_args, match",
        [
            (dict(start_hour=-1), "start_hour"),
            (dict(num_hours=0), "num_hours"),
            (dict(num_hours=-3), "num_hours"),
            (dict(first_ue_id=-1), "first_ue_id"),
            (dict(seed=-1), "seed"),
            (dict(seed=2 ** 64), "seed"),
        ],
    )
    def test_value_errors(self, ours_model_set, bad_args, match):
        for entry in self.entry_points(ours_model_set):
            kwargs = dict(start_hour=TRACE_START_HOUR)
            kwargs.update(bad_args)
            with pytest.raises(ValueError, match=match):
                entry(**kwargs)

    @pytest.mark.parametrize(
        "bad_args, match",
        [
            (dict(start_hour=1.5), "start_hour"),
            (dict(num_hours="2"), "num_hours"),
            (dict(seed=0.5), "seed"),
        ],
    )
    def test_type_errors(self, ours_model_set, bad_args, match):
        for entry in self.entry_points(ours_model_set):
            kwargs = dict(start_hour=TRACE_START_HOUR)
            kwargs.update(bad_args)
            with pytest.raises(TypeError, match=match):
                entry(**kwargs)

    def test_negative_device_counts_rejected(self, ours_model_set):
        from repro.generator import TrafficGenerator

        gen = TrafficGenerator(ours_model_set)
        with pytest.raises(ValueError, match="non-negative"):
            gen.generate({P: -5}, start_hour=TRACE_START_HOUR)

    def test_stream_events_validates_before_first_next(self, ours_model_set):
        from repro.generator import stream_events

        # The error must surface at call time, not at first iteration.
        with pytest.raises(ValueError, match="num_hours"):
            stream_events(ours_model_set, {P: 5}, num_hours=0)

    def test_parallel_rejects_bad_chunk_size(self, ours_model_set):
        from repro.generator import generate_parallel

        with pytest.raises(ValueError, match="chunk_size"):
            generate_parallel(
                ours_model_set,
                {P: 5},
                start_hour=TRACE_START_HOUR,
                chunk_size=0,
            )
