"""Tests for model persistence and containers (repro.model.model_set)."""

import numpy as np
import pytest

from repro.generator import TrafficGenerator
from repro.model import ModelSet, build_machine
from repro.trace import DeviceType


class TestBuildMachine:
    def test_known_kinds(self):
        assert len(build_machine("two_level").states) == 7
        assert len(build_machine("emm_ecm").states) == 3
        assert len(build_machine("nr_sa").states) == 4

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="machine_kind"):
            build_machine("pda")


class TestHourModel:
    def test_weights(self, ours_model_set):
        for dt in DeviceType:
            for h in ours_model_set.hours(dt):
                hm = ours_model_set.models[dt][h]
                w = hm.weights()
                assert w.sum() == pytest.approx(1.0)
                assert len(w) == len(hm.clusters)

    def test_cluster_for_known_ue(self, ours_model_set, rng):
        dt = DeviceType.PHONE
        h = ours_model_set.hours(dt)[0]
        hm = ours_model_set.models[dt][h]
        ue = next(iter(hm.assignment))
        assert hm.cluster_for_ue(ue, rng) == hm.assignment[ue]

    def test_cluster_for_unknown_ue_weighted_draw(self, ours_model_set, rng):
        dt = DeviceType.PHONE
        h = ours_model_set.hours(dt)[0]
        hm = ours_model_set.models[dt][h]
        cid = hm.cluster_for_ue(10**9, rng)
        assert 0 <= cid < len(hm.clusters)


class TestPersistence:
    def test_dict_roundtrip(self, ours_model_set):
        back = ModelSet.from_dict(ours_model_set.to_dict())
        assert back.machine_kind == ours_model_set.machine_kind
        assert back.family == ours_model_set.family
        assert back.num_models == ours_model_set.num_models
        assert back.device_ues == ours_model_set.device_ues

    def test_file_roundtrip_json(self, ours_model_set, tmp_path):
        path = tmp_path / "model.json"
        ours_model_set.save(path)
        back = ModelSet.load(path)
        assert back.num_models == ours_model_set.num_models

    def test_file_roundtrip_gzip(self, ours_model_set, tmp_path):
        path = tmp_path / "model.json.gz"
        ours_model_set.save(path)
        back = ModelSet.load(path)
        assert back.num_models == ours_model_set.num_models

    def test_gzip_smaller_than_plain(self, ours_model_set, tmp_path):
        plain = tmp_path / "model.json"
        packed = tmp_path / "model.json.gz"
        ours_model_set.save(plain)
        ours_model_set.save(packed)
        assert packed.stat().st_size < plain.stat().st_size

    def test_loaded_model_generates_identical_traces(
        self, ours_model_set, tmp_path
    ):
        path = tmp_path / "model.json.gz"
        ours_model_set.save(path)
        back = ModelSet.load(path)
        a = TrafficGenerator(ours_model_set).generate(40, start_hour=18, seed=5)
        b = TrafficGenerator(back).generate(40, start_hour=18, seed=5)
        assert a == b

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="format"):
            ModelSet.from_dict({"format": "v999"})
