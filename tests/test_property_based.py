"""Property-based tests (hypothesis) on core data structures and invariants."""

import itertools
import pathlib
import tempfile

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.clustering import adaptive_cluster
from repro.clustering.quadtree import DEFAULT_THETA_F
from repro.distributions import EmpiricalCDF, Exponential, Pareto, Weibull
from repro.generator import TrafficGenerator, UeSession, generate_parallel
from repro.generator.compiled import CompiledPopulation
from repro.stats import ecdf, kolmogorov_sf, ks_distance_to, max_y_distance
from repro.statemachines import replay_ue, two_level_machine
from repro.trace import DeviceType, EventType, Trace

from conftest import TRACE_START_HOUR

SETTINGS = settings(
    max_examples=50, suppress_health_check=[HealthCheck.too_slow], deadline=None
)

positive_floats = st.floats(
    min_value=1e-3, max_value=1e6, allow_nan=False, allow_infinity=False
)
sample_lists = st.lists(positive_floats, min_size=2, max_size=200)


class TestDistributionInvariants:
    @SETTINGS
    @given(sample_lists)
    def test_exponential_mean_matches_samples(self, samples):
        dist = Exponential.fit(samples)
        assert abs(dist.mean() - float(np.mean(samples))) < 1e-6 * max(samples)

    @SETTINGS
    @given(sample_lists)
    def test_empirical_cdf_bounds(self, samples):
        dist = EmpiricalCDF.fit(samples)
        lo, hi = dist.support
        assert lo == min(samples)
        assert hi == max(samples)
        qs = dist.ppf(np.linspace(0, 1, 21))
        assert np.all(qs >= lo - 1e-12)
        assert np.all(qs <= hi + 1e-12)
        assert np.all(np.diff(qs) >= -1e-12)

    @SETTINGS
    @given(sample_lists)
    def test_empirical_roundtrip_preserves_quantiles(self, samples):
        dist = EmpiricalCDF.fit(samples)
        back = EmpiricalCDF.from_list(dist.to_list())
        assert np.allclose(back.quantiles, dist.quantiles)

    @SETTINGS
    @given(sample_lists, st.integers(min_value=0, max_value=2**31 - 1))
    def test_samples_stay_in_support(self, samples, seed):
        dist = EmpiricalCDF.fit(samples)
        rng = np.random.default_rng(seed)
        out = dist.sample(rng, 50)
        lo, hi = dist.support
        assert np.all((out >= lo - 1e-9) & (out <= hi + 1e-9))

    @SETTINGS
    @given(sample_lists)
    def test_ks_distance_bounded(self, samples):
        dist = Exponential.fit(samples)
        d = ks_distance_to(dist, samples)
        assert 0.0 <= d <= 1.0

    @SETTINGS
    @given(
        st.floats(min_value=0.1, max_value=10.0),
        st.floats(min_value=0.01, max_value=100.0),
    )
    def test_pareto_ppf_cdf_inverse(self, alpha, x_m):
        dist = Pareto(alpha=alpha, x_m=x_m)
        qs = np.array([0.01, 0.5, 0.99])
        assert np.allclose(dist.cdf(dist.ppf(qs)), qs, atol=1e-9)

    @SETTINGS
    @given(
        st.floats(min_value=0.2, max_value=10.0),
        st.floats(min_value=0.01, max_value=1000.0),
    )
    def test_weibull_ppf_cdf_inverse(self, k, lam):
        dist = Weibull(k=k, lam=lam)
        qs = np.array([0.05, 0.5, 0.95])
        assert np.allclose(dist.cdf(dist.ppf(qs)), qs, atol=1e-9)


class TestStatsInvariants:
    @SETTINGS
    @given(sample_lists)
    def test_ecdf_is_nondecreasing_and_hits_one(self, samples):
        xs, ps = ecdf(samples)
        assert np.all(np.diff(ps) >= 0)
        assert ps[-1] == 1.0

    @SETTINGS
    @given(sample_lists, sample_lists)
    def test_max_y_distance_is_metric_like(self, a, b):
        d = max_y_distance(a, b)
        assert 0.0 <= d <= 1.0
        assert d == max_y_distance(b, a)
        assert max_y_distance(a, a) == 0.0

    @SETTINGS
    @given(st.floats(min_value=0.0, max_value=10.0))
    def test_kolmogorov_sf_is_probability(self, x):
        q = kolmogorov_sf(x)
        assert 0.0 <= q <= 1.0


cluster_features = st.dictionaries(
    st.integers(min_value=0, max_value=10_000),
    st.lists(
        st.floats(min_value=0, max_value=1e4, allow_nan=False),
        min_size=4,
        max_size=4,
    ),
    min_size=1,
    max_size=60,
)
cluster_theta_n = st.integers(min_value=1, max_value=50)


class TestClusteringInvariants:
    @SETTINGS
    @given(cluster_features, cluster_theta_n)
    def test_partition_properties(self, raw, theta_n):
        features = {ue: np.asarray(v) for ue, v in raw.items()}
        result = adaptive_cluster(features, theta_n=theta_n)
        # Exact partition: disjoint clusters that cover every UE.
        members = [ue for c in result.clusters for ue in c.ue_ids]
        assert sorted(members) == sorted(features)
        assert len(members) == len(set(members))
        # Assignment is consistent.
        for cluster in result.clusters:
            for ue in cluster.ue_ids:
                assert result.assignment[ue] == cluster.cluster_id

    @SETTINGS
    @given(cluster_features, cluster_theta_n)
    def test_members_lie_in_cell_bounds(self, raw, theta_n):
        features = {ue: np.asarray(v) for ue, v in raw.items()}
        result = adaptive_cluster(features, theta_n=theta_n)
        for cluster in result.clusters:
            points = np.vstack([features[ue] for ue in cluster.ue_ids])
            assert np.all(points >= cluster.lower - 1e-9)
            assert np.all(points <= cluster.upper + 1e-9)

    @SETTINGS
    @given(cluster_features, cluster_theta_n)
    def test_theta_n_stopping_rule(self, raw, theta_n):
        """A cluster at or above ``theta_n`` only survives unsplit when
        the paper's other stop condition holds (every feature's spread
        below ``theta_f``) or when a midpoint split cannot separate its
        members (degenerate cell)."""
        features = {ue: np.asarray(v) for ue, v in raw.items()}
        result = adaptive_cluster(features, theta_n=theta_n)
        for cluster in result.clusters:
            if cluster.size < theta_n:
                continue
            points = np.vstack([features[ue] for ue in cluster.ue_ids])
            spread = points.max(axis=0) - points.min(axis=0)
            if np.all(spread < DEFAULT_THETA_F):
                continue
            mid = (cluster.lower + cluster.upper) / 2.0
            bits = (points >= mid).astype(np.int64)
            child = bits @ (1 << np.arange(points.shape[1]))
            assert len(np.unique(child)) == 1, (
                f"cluster {cluster.cluster_id} has {cluster.size} >= "
                f"{theta_n} UEs, spread {spread}, yet a midpoint split "
                "would have separated it"
            )

    @SETTINGS
    @given(cluster_features, cluster_theta_n, st.randoms())
    def test_permutation_invariance(self, raw, theta_n, rnd):
        """The partition is a function of the feature *set*: feeding the
        UEs in any order yields identical clusters and assignment."""
        features = {ue: np.asarray(v) for ue, v in raw.items()}
        items = list(features.items())
        rnd.shuffle(items)
        baseline = adaptive_cluster(features, theta_n=theta_n)
        shuffled = adaptive_cluster(dict(items), theta_n=theta_n)
        assert baseline.assignment == shuffled.assignment
        assert [c.ue_ids for c in baseline.clusters] == [
            c.ue_ids for c in shuffled.clusters
        ]
        for a, b in zip(baseline.clusters, shuffled.clusters):
            assert np.array_equal(a.lower, b.lower)
            assert np.array_equal(a.upper, b.upper)


valid_event_walks = st.lists(
    st.sampled_from(list(EventType)), min_size=0, max_size=40
)


class TestReplayInvariants:
    @SETTINGS
    @given(valid_event_walks)
    def test_replay_never_crashes_and_counts_records(self, events):
        times = [float(i) for i in range(len(events))]
        result = replay_ue(events, times)
        assert len(result.records) == len(events)
        assert result.violations >= 0

    @SETTINGS
    @given(valid_event_walks)
    def test_replay_respects_machine_for_unforced_records(self, events):
        machine = two_level_machine()
        times = [float(i) for i in range(len(events))]
        result = replay_ue(events, times)
        for rec in result.records:
            assert machine.next_state(rec.source, rec.event) == rec.target


class TestTraceInvariants:
    @SETTINGS
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=50),
                st.floats(min_value=0, max_value=1e5, allow_nan=False),
                st.sampled_from(list(EventType)),
                st.sampled_from(list(DeviceType)),
            ),
            max_size=100,
        )
    )
    def test_trace_always_sorted_and_partitionable(self, rows):
        tr = Trace(
            np.array([r[0] for r in rows], dtype=np.int64),
            np.array([r[1] for r in rows], dtype=np.float64),
            np.array([int(r[2]) for r in rows], dtype=np.int8),
            np.array([int(r[3]) for r in rows], dtype=np.int8),
        )
        assert np.all(np.diff(tr.times) >= 0)
        total = sum(len(sub) for _, sub in tr.per_ue())
        assert total == len(tr)
        if len(tr):
            assert abs(sum(tr.breakdown().values()) - 1.0) < 1e-9


# ---------------------------------------------------------------------------
# Checkpoint/resume round-trips under arbitrary interruption points
# ---------------------------------------------------------------------------

CK_POP = 12
CK_RUN = dict(start_hour=TRACE_START_HOUR, num_hours=2)
CK_SETTINGS = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: ``advance_hour`` call counts per engine for ``CK_POP`` UEs over the
#: run: the compiled engine steps once per hour for the whole
#: population, the reference engine once per (UE, hour).
_CK_CALLS = {
    "compiled": CK_RUN["num_hours"],
    "reference": CK_POP * CK_RUN["num_hours"],
}


class TestCheckpointRoundTripProperties:
    """An interrupted checkpointed run, resumed, is bit-identical to an
    uninterrupted run with the same arguments — wherever the interrupt
    lands (hypothesis draws the kill point), for either engine."""

    _clean = {}

    def _clean_trace(self, model_set, engine, seed):
        """Uninterrupted serial oracle, cached across examples.  The
        parallel path is specified to be bit-identical to serial, so
        one oracle serves both round-trip properties."""
        key = (engine, seed)
        if key not in self._clean:
            self._clean[key] = TrafficGenerator(model_set).generate(
                CK_POP, engine=engine, seed=seed, **CK_RUN
            )
        return self._clean[key]

    @CK_SETTINGS
    @given(
        engine=st.sampled_from(["compiled", "reference"]),
        seed=st.integers(min_value=0, max_value=5),
        kill_frac=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_interrupt_any_hour_resume_bit_identical(
        self, ours_model_set, engine, seed, kill_frac
    ):
        gen = TrafficGenerator(ours_model_set)
        clean = self._clean_trace(ours_model_set, engine, seed)
        # kill_frac == 1.0 maps past the last call: the run completes
        # and resume-after-completion must still reproduce it.
        kill_after = int(kill_frac * _CK_CALLS[engine])

        target = CompiledPopulation if engine == "compiled" else UeSession
        original = target.advance_hour
        calls = itertools.count()

        def dying(self, *args, **kwargs):
            if next(calls) >= kill_after:
                raise KeyboardInterrupt
            return original(self, *args, **kwargs)

        with tempfile.TemporaryDirectory() as tmp:
            path = pathlib.Path(tmp) / "run.npz"
            target.advance_hour = dying
            try:
                try:
                    gen.generate(
                        CK_POP,
                        engine=engine,
                        seed=seed,
                        checkpoint_path=path,
                        **CK_RUN,
                    )
                except KeyboardInterrupt:
                    pass
            finally:
                target.advance_hour = original
            resumed = gen.generate(
                CK_POP,
                engine=engine,
                seed=seed,
                checkpoint_path=path,
                resume=True,
                **CK_RUN,
            )
        assert resumed == clean

    @CK_SETTINGS
    @given(
        engine=st.sampled_from(["compiled", "reference"]),
        seed=st.integers(min_value=0, max_value=5),
        kill_chunk=st.integers(min_value=0, max_value=3),
    )
    def test_parallel_interrupt_any_chunk_resume_bit_identical(
        self, ours_model_set, engine, seed, kill_chunk
    ):
        """``generate_parallel`` killed after an arbitrary number of
        completed chunks resumes to the serial oracle bit-for-bit."""
        clean = self._clean_trace(ours_model_set, engine, seed)
        kwargs = dict(
            engine=engine, seed=seed, processes=1, chunk_size=4, **CK_RUN
        )

        def interrupt_hook(chunk_idx, attempt):
            # Chunks run in index order inline; >= kill_chunk means
            # exactly kill_chunk chunks have checkpointed results.
            if chunk_idx >= kill_chunk:
                raise KeyboardInterrupt

        with tempfile.TemporaryDirectory() as tmp:
            path = pathlib.Path(tmp) / "run.npz"
            try:
                generate_parallel(
                    ours_model_set,
                    CK_POP,
                    checkpoint_path=path,
                    fault_hook=interrupt_hook,
                    **kwargs,
                )
            except KeyboardInterrupt:
                pass
            resumed = generate_parallel(
                ours_model_set,
                CK_POP,
                checkpoint_path=path,
                resume=True,
                **kwargs,
            )
        assert resumed == clean
