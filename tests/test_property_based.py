"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.clustering import adaptive_cluster
from repro.distributions import EmpiricalCDF, Exponential, Pareto, Weibull
from repro.stats import ecdf, kolmogorov_sf, ks_distance_to, max_y_distance
from repro.statemachines import replay_ue, two_level_machine
from repro.trace import DeviceType, EventType, Trace

SETTINGS = settings(
    max_examples=50, suppress_health_check=[HealthCheck.too_slow], deadline=None
)

positive_floats = st.floats(
    min_value=1e-3, max_value=1e6, allow_nan=False, allow_infinity=False
)
sample_lists = st.lists(positive_floats, min_size=2, max_size=200)


class TestDistributionInvariants:
    @SETTINGS
    @given(sample_lists)
    def test_exponential_mean_matches_samples(self, samples):
        dist = Exponential.fit(samples)
        assert abs(dist.mean() - float(np.mean(samples))) < 1e-6 * max(samples)

    @SETTINGS
    @given(sample_lists)
    def test_empirical_cdf_bounds(self, samples):
        dist = EmpiricalCDF.fit(samples)
        lo, hi = dist.support
        assert lo == min(samples)
        assert hi == max(samples)
        qs = dist.ppf(np.linspace(0, 1, 21))
        assert np.all(qs >= lo - 1e-12)
        assert np.all(qs <= hi + 1e-12)
        assert np.all(np.diff(qs) >= -1e-12)

    @SETTINGS
    @given(sample_lists)
    def test_empirical_roundtrip_preserves_quantiles(self, samples):
        dist = EmpiricalCDF.fit(samples)
        back = EmpiricalCDF.from_list(dist.to_list())
        assert np.allclose(back.quantiles, dist.quantiles)

    @SETTINGS
    @given(sample_lists, st.integers(min_value=0, max_value=2**31 - 1))
    def test_samples_stay_in_support(self, samples, seed):
        dist = EmpiricalCDF.fit(samples)
        rng = np.random.default_rng(seed)
        out = dist.sample(rng, 50)
        lo, hi = dist.support
        assert np.all((out >= lo - 1e-9) & (out <= hi + 1e-9))

    @SETTINGS
    @given(sample_lists)
    def test_ks_distance_bounded(self, samples):
        dist = Exponential.fit(samples)
        d = ks_distance_to(dist, samples)
        assert 0.0 <= d <= 1.0

    @SETTINGS
    @given(
        st.floats(min_value=0.1, max_value=10.0),
        st.floats(min_value=0.01, max_value=100.0),
    )
    def test_pareto_ppf_cdf_inverse(self, alpha, x_m):
        dist = Pareto(alpha=alpha, x_m=x_m)
        qs = np.array([0.01, 0.5, 0.99])
        assert np.allclose(dist.cdf(dist.ppf(qs)), qs, atol=1e-9)

    @SETTINGS
    @given(
        st.floats(min_value=0.2, max_value=10.0),
        st.floats(min_value=0.01, max_value=1000.0),
    )
    def test_weibull_ppf_cdf_inverse(self, k, lam):
        dist = Weibull(k=k, lam=lam)
        qs = np.array([0.05, 0.5, 0.95])
        assert np.allclose(dist.cdf(dist.ppf(qs)), qs, atol=1e-9)


class TestStatsInvariants:
    @SETTINGS
    @given(sample_lists)
    def test_ecdf_is_nondecreasing_and_hits_one(self, samples):
        xs, ps = ecdf(samples)
        assert np.all(np.diff(ps) >= 0)
        assert ps[-1] == 1.0

    @SETTINGS
    @given(sample_lists, sample_lists)
    def test_max_y_distance_is_metric_like(self, a, b):
        d = max_y_distance(a, b)
        assert 0.0 <= d <= 1.0
        assert d == max_y_distance(b, a)
        assert max_y_distance(a, a) == 0.0

    @SETTINGS
    @given(st.floats(min_value=0.0, max_value=10.0))
    def test_kolmogorov_sf_is_probability(self, x):
        q = kolmogorov_sf(x)
        assert 0.0 <= q <= 1.0


class TestClusteringInvariants:
    @SETTINGS
    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=10_000),
            st.lists(
                st.floats(min_value=0, max_value=1e4, allow_nan=False),
                min_size=4,
                max_size=4,
            ),
            min_size=1,
            max_size=60,
        ),
        st.integers(min_value=1, max_value=50),
    )
    def test_partition_properties(self, raw, theta_n):
        features = {ue: np.asarray(v) for ue, v in raw.items()}
        result = adaptive_cluster(features, theta_n=theta_n)
        # Exact partition.
        members = [ue for c in result.clusters for ue in c.ue_ids]
        assert sorted(members) == sorted(features)
        assert len(members) == len(set(members))
        # Assignment is consistent.
        for cluster in result.clusters:
            for ue in cluster.ue_ids:
                assert result.assignment[ue] == cluster.cluster_id


valid_event_walks = st.lists(
    st.sampled_from(list(EventType)), min_size=0, max_size=40
)


class TestReplayInvariants:
    @SETTINGS
    @given(valid_event_walks)
    def test_replay_never_crashes_and_counts_records(self, events):
        times = [float(i) for i in range(len(events))]
        result = replay_ue(events, times)
        assert len(result.records) == len(events)
        assert result.violations >= 0

    @SETTINGS
    @given(valid_event_walks)
    def test_replay_respects_machine_for_unforced_records(self, events):
        machine = two_level_machine()
        times = [float(i) for i in range(len(events))]
        result = replay_ue(events, times)
        for rec in result.records:
            assert machine.next_state(rec.source, rec.event) == rec.target


class TestTraceInvariants:
    @SETTINGS
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=50),
                st.floats(min_value=0, max_value=1e5, allow_nan=False),
                st.sampled_from(list(EventType)),
                st.sampled_from(list(DeviceType)),
            ),
            max_size=100,
        )
    )
    def test_trace_always_sorted_and_partitionable(self, rows):
        tr = Trace(
            np.array([r[0] for r in rows], dtype=np.int64),
            np.array([r[1] for r in rows], dtype=np.float64),
            np.array([int(r[2]) for r in rows], dtype=np.int8),
            np.array([int(r[3]) for r in rows], dtype=np.int8),
        )
        assert np.all(np.diff(tr.times) >= 0)
        total = sum(len(sub) for _, sub in tr.per_ue())
        assert total == len(tr)
        if len(tr):
            assert abs(sum(tr.breakdown().values()) - 1.0) < 1e-9
