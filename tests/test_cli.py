"""Tests for the command-line interface (repro.cli)."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.model import ModelSet
from repro.trace import read_npz


@pytest.fixture()
def workspace(tmp_path, ground_truth_trace, ours_model_set):
    """A tmp dir pre-seeded with a trace and a fitted model."""
    from repro.trace import write_npz

    trace_path = tmp_path / "real.npz"
    write_npz(ground_truth_trace, trace_path)
    model_path = tmp_path / "model.json.gz"
    ours_model_set.save(model_path)
    return tmp_path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_registered(self):
        parser = build_parser()
        for command in (
            "simulate", "fit", "generate", "inspect", "validate",
            "scale5g", "gof", "mme", "dot",
        ):
            args = parser.parse_args(_minimal_args(command))
            assert args.command == command


def _minimal_args(command):
    stubs = {
        "simulate": ["simulate", "--ues", "1", "--out", "x.npz"],
        "fit": ["fit", "--trace", "x.npz", "--out", "m.json"],
        "generate": ["generate", "--model", "m.json", "--ues", "1", "--out", "y.npz"],
        "inspect": ["inspect", "--model", "m.json"],
        "validate": ["validate", "--real", "a.npz", "--synthesized", "b.npz"],
        "scale5g": ["scale5g", "--model", "m.json", "--mode", "sa", "--out", "n.json"],
        "gof": ["gof", "--trace", "x.npz"],
        "mme": ["mme", "--trace", "x.npz"],
        "dot": ["dot"],
    }
    return stubs[command]


class TestSimulate:
    def test_writes_trace(self, tmp_path, capsys):
        out = tmp_path / "trace.npz"
        rc = main(
            [
                "simulate", "--phones", "5", "--tablets", "2",
                "--hours", "1", "--seed", "3", "--out", str(out),
            ]
        )
        assert rc == 0
        trace = read_npz(out)
        assert trace.num_ues <= 7
        assert "wrote" in capsys.readouterr().out

    def test_rejects_conflicting_population(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                ["simulate", "--ues", "5", "--phones", "2",
                 "--out", str(tmp_path / "t.npz")]
            )

    def test_rejects_missing_population(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["simulate", "--out", str(tmp_path / "t.npz")])

    def test_rejects_unknown_extension(self, tmp_path):
        with pytest.raises(SystemExit, match="extension"):
            main(["simulate", "--ues", "2", "--out", str(tmp_path / "t.parquet")])


class TestFitGenerateRoundtrip:
    def test_fit_then_generate(self, workspace, capsys):
        model_out = workspace / "fitted.json.gz"
        rc = main(
            [
                "fit", "--trace", str(workspace / "real.npz"),
                "--method", "ours", "--theta-n", "25",
                "--start-hour", "17", "--out", str(model_out),
            ]
        )
        assert rc == 0
        assert ModelSet.load(model_out).machine_kind == "two_level"

        trace_out = workspace / "syn.npz"
        rc = main(
            [
                "generate", "--model", str(model_out), "--ues", "30",
                "--start-hour", "18", "--out", str(trace_out),
            ]
        )
        assert rc == 0
        assert len(read_npz(trace_out)) > 0

    def test_generate_parallel_flag(self, workspace):
        trace_out = workspace / "syn_par.npz"
        rc = main(
            [
                "generate", "--model", str(workspace / "model.json.gz"),
                "--ues", "20", "--start-hour", "18",
                "--processes", "2", "--out", str(trace_out),
            ]
        )
        assert rc == 0
        serial_out = workspace / "syn_ser.npz"
        main(
            [
                "generate", "--model", str(workspace / "model.json.gz"),
                "--ues", "20", "--start-hour", "18",
                "--out", str(serial_out),
            ]
        )
        assert read_npz(trace_out) == read_npz(serial_out)

    def test_generate_checkpoint_roundtrip(self, workspace):
        model = str(workspace / "model.json.gz")
        plain_out = workspace / "plain.npz"
        main(
            [
                "generate", "--model", model, "--ues", "20",
                "--start-hour", "18", "--hours", "2",
                "--out", str(plain_out),
            ]
        )
        checkpoint = workspace / "run-checkpoint.npz"
        first_out = workspace / "first.npz"
        rc = main(
            [
                "generate", "--model", model, "--ues", "20",
                "--start-hour", "18", "--hours", "2",
                "--checkpoint", str(checkpoint), "--out", str(first_out),
            ]
        )
        assert rc == 0
        assert checkpoint.exists()
        resumed_out = workspace / "resumed.npz"
        rc = main(
            [
                "generate", "--model", model, "--ues", "20",
                "--start-hour", "18", "--hours", "2",
                "--checkpoint", str(checkpoint), "--resume",
                "--out", str(resumed_out),
            ]
        )
        assert rc == 0
        assert read_npz(plain_out) == read_npz(first_out)
        assert read_npz(plain_out) == read_npz(resumed_out)

    def test_resume_requires_checkpoint(self, workspace):
        with pytest.raises(SystemExit, match="--resume requires"):
            main(
                [
                    "generate", "--model", str(workspace / "model.json.gz"),
                    "--ues", "5", "--start-hour", "18", "--resume",
                    "--out", str(workspace / "x.npz"),
                ]
            )


class TestOtherCommands:
    def test_inspect(self, workspace, capsys):
        rc = main(["inspect", "--model", str(workspace / "model.json.gz")])
        assert rc == 0
        assert "predicted events/UE-hour" in capsys.readouterr().out

    def test_validate(self, workspace, capsys):
        syn = workspace / "syn.npz"
        main(
            ["generate", "--model", str(workspace / "model.json.gz"),
             "--ues", "100", "--start-hour", "18", "--out", str(syn)]
        )
        capsys.readouterr()
        rc = main(
            ["validate", "--real", str(workspace / "real.npz"),
             "--synthesized", str(syn)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Breakdown - PHONE" in out

    def test_scale5g(self, workspace, capsys):
        out = workspace / "sa.json.gz"
        rc = main(
            ["scale5g", "--model", str(workspace / "model.json.gz"),
             "--mode", "sa", "--out", str(out)]
        )
        assert rc == 0
        assert ModelSet.load(out).machine_kind == "nr_sa"

    def test_gof(self, workspace, capsys):
        rc = main(
            ["gof", "--trace", str(workspace / "real.npz"),
             "--device", "phone", "--start-hour", "17"]
        )
        assert rc == 0
        assert "GoF pass rates" in capsys.readouterr().out

    def test_mme(self, workspace, capsys):
        rc = main(["mme", "--trace", str(workspace / "real.npz"), "--workers", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "protocol violations" in out
        assert "utilization" in out

    def test_dot(self, capsys):
        rc = main(["dot", "--machine", "two_level"])
        assert rc == 0
        assert capsys.readouterr().out.startswith('digraph "LTE-two-level"')


class TestExtendedCommands:
    def test_core(self, workspace, capsys):
        rc = main(
            ["core", "--trace", str(workspace / "real.npz"),
             "--core", "epc", "--workers", "2"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "bottleneck" in out
        assert "MME" in out

    def test_core_5gc(self, workspace, capsys):
        rc = main(
            ["core", "--trace", str(workspace / "real.npz"), "--core", "5gc"]
        )
        assert rc == 0
        assert "AMF" in capsys.readouterr().out

    def test_sessions(self, workspace, capsys):
        rc = main(["sessions", "--trace", str(workspace / "real.npz")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "sessions" in out
        assert "PHONE" in out

    def test_hurst(self, workspace, capsys):
        rc = main(["hurst", "--trace", str(workspace / "real.npz")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "variance-time" in out
        assert "verdict" in out

    def test_check_clean_model(self, workspace, capsys):
        rc = main(["check", "--model", str(workspace / "model.json.gz")])
        assert rc == 0
        assert "OK" in capsys.readouterr().out

    def test_anonymize(self, workspace, capsys):
        out = workspace / "anon.npz"
        rc = main(
            ["anonymize", "--trace", str(workspace / "real.npz"),
             "--seed", "4", "--out", str(out)]
        )
        assert rc == 0
        original = read_npz(workspace / "real.npz")
        anon = read_npz(out)
        assert len(anon) == len(original)
        assert anon != original  # ids and epoch moved

    def test_evaluate(self, workspace, capsys):
        rc = main(
            ["evaluate", "--train", str(workspace / "real.npz"),
             "--real", str(workspace / "real.npz"),
             "--methods", "ours", "--theta-n", "25",
             "--train-start-hour", "17", "--hour", "17", "--ues", "40"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Macroscopic breakdown" in out
        assert "winner" in out


class TestFitFlags:
    def _fit_args(self, workspace, out, extra):
        return [
            "fit", "--trace", str(workspace / "real.npz"),
            "--theta-n", "25", "--start-hour", "17",
            "--out", str(out), *extra,
        ]

    def test_engines_produce_equal_models(self, workspace):
        ref_out = workspace / "ref.json.gz"
        comp_out = workspace / "comp.json.gz"
        assert main(self._fit_args(
            workspace, ref_out, ["--engine", "reference", "--no-cache"]
        )) == 0
        assert main(self._fit_args(
            workspace, comp_out, ["--engine", "compiled", "--no-cache"]
        )) == 0
        assert (
            ModelSet.load(ref_out).to_dict() == ModelSet.load(comp_out).to_dict()
        )

    def test_second_fit_is_a_cache_hit(self, workspace, tmp_path, capsys):
        cache = tmp_path / "cache"
        cold_out = workspace / "cold.json.gz"
        warm_out = workspace / "warm.json.gz"
        assert main(self._fit_args(
            workspace, cold_out, ["--cache-dir", str(cache)]
        )) == 0
        out = capsys.readouterr().out
        assert "(cache hit)" not in out
        assert main(self._fit_args(
            workspace, warm_out, ["--cache-dir", str(cache)]
        )) == 0
        out = capsys.readouterr().out
        assert "(cache hit)" in out
        assert (
            ModelSet.load(cold_out).to_dict() == ModelSet.load(warm_out).to_dict()
        )

    def test_telemetry_report_written(self, workspace, tmp_path):
        import json

        report_path = tmp_path / "fit_tele.json"
        assert main(self._fit_args(
            workspace, workspace / "tele.json.gz",
            ["--no-cache", "--telemetry", str(report_path)],
        )) == 0
        report = json.loads(report_path.read_text())
        assert report["run"]["command"] == "fit"
        assert report["run"]["engine"] == "compiled"
        assert report["counters"]["segments_replayed"] > 0
        assert report["counters"]["transitions_counted"] > 0

    @pytest.mark.slow
    def test_processes_flag_matches_serial(self, workspace):
        par_out = workspace / "par.json.gz"
        ser_out = workspace / "ser.json.gz"
        assert main(self._fit_args(
            workspace, par_out, ["--no-cache", "--processes", "2"]
        )) == 0
        assert main(self._fit_args(workspace, ser_out, ["--no-cache"])) == 0
        assert (
            ModelSet.load(par_out).to_dict() == ModelSet.load(ser_out).to_dict()
        )
