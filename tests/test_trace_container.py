"""Tests for the Trace container (repro.trace.trace)."""

import numpy as np
import pytest

from repro.trace import DeviceType, Event, EventType, Trace

from conftest import make_trace

P = DeviceType.PHONE
CC = DeviceType.CONNECTED_CAR
E = EventType


class TestConstruction:
    def test_sorts_by_time(self):
        tr = make_trace(
            [(1, 5.0, E.SRV_REQ, P), (2, 1.0, E.ATCH, P), (1, 3.0, E.TAU, P)]
        )
        assert list(tr.times) == [1.0, 3.0, 5.0]

    def test_ties_broken_by_ue_id(self):
        tr = make_trace([(5, 1.0, E.HO, P), (2, 1.0, E.TAU, P)])
        assert list(tr.ue_ids) == [2, 5]

    def test_mismatched_columns_rejected(self):
        with pytest.raises(ValueError, match="lengths differ"):
            Trace(
                np.array([1]),
                np.array([1.0, 2.0]),
                np.array([0]),
                np.array([0]),
            )

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            make_trace([(1, -1.0, E.ATCH, P)])

    def test_unknown_event_rejected(self):
        with pytest.raises(ValueError, match="unknown event"):
            Trace(
                np.array([1]),
                np.array([1.0]),
                np.array([99], dtype=np.int8),
                np.array([0], dtype=np.int8),
            )

    def test_from_events_roundtrip(self):
        events = [
            Event(1, 2.0, E.SRV_REQ, P),
            Event(1, 1.0, E.ATCH, P),
        ]
        tr = Trace.from_events(events)
        assert len(tr) == 2
        assert tr[0].event_type == E.ATCH

    def test_event_rejects_negative_time(self):
        with pytest.raises(ValueError):
            Event(1, -0.1, E.ATCH, P)

    def test_empty(self):
        tr = Trace.empty()
        assert len(tr) == 0
        assert tr.num_ues == 0
        assert tr.duration == 0.0

    def test_concatenate_resorts(self):
        a = make_trace([(1, 10.0, E.SRV_REQ, P)])
        b = make_trace([(2, 5.0, E.ATCH, CC)])
        merged = Trace.concatenate([a, b])
        assert list(merged.times) == [5.0, 10.0]
        assert merged.num_ues == 2

    def test_concatenate_empty_list(self):
        assert len(Trace.concatenate([])) == 0


class TestAccess:
    def test_len_and_iter(self, tiny_trace):
        assert len(tiny_trace) == 12
        events = list(tiny_trace)
        assert len(events) == 12
        assert all(isinstance(e, Event) for e in events)

    def test_getitem(self, tiny_trace):
        first = tiny_trace[0]
        assert first.ue_id == 1
        assert first.event_type == E.ATCH

    def test_equality(self, tiny_trace):
        clone = make_trace(
            [(e.ue_id, e.time, e.event_type, e.device_type) for e in tiny_trace]
        )
        assert clone == tiny_trace
        assert tiny_trace != Trace.empty()

    def test_repr_mentions_counts(self, tiny_trace):
        text = repr(tiny_trace)
        assert "12 events" in text
        assert "2 UEs" in text

    def test_num_ues(self, tiny_trace):
        assert tiny_trace.num_ues == 2

    def test_duration(self, tiny_trace):
        assert tiny_trace.duration == pytest.approx(129.5)

    def test_device_of(self, tiny_trace):
        mapping = tiny_trace.device_of()
        assert mapping == {1: P, 2: P}


class TestSlicing:
    def test_filter_device(self):
        tr = make_trace([(1, 1.0, E.HO, P), (2, 2.0, E.HO, CC)])
        assert len(tr.filter_device(P)) == 1
        assert len(tr.filter_device(CC)) == 1
        assert len(tr.filter_device(DeviceType.TABLET)) == 0

    def test_filter_event(self, tiny_trace):
        srv = tiny_trace.filter_event(E.SRV_REQ)
        assert len(srv) == 3
        assert set(srv.event_types.tolist()) == {int(E.SRV_REQ)}

    def test_filter_ues(self, tiny_trace):
        only_two = tiny_trace.filter_ues([2])
        assert only_two.num_ues == 1
        assert len(only_two) == 4

    def test_window_half_open(self):
        tr = make_trace(
            [(1, 0.0, E.HO, P), (1, 10.0, E.HO, P), (1, 20.0, E.HO, P)]
        )
        win = tr.window(0.0, 20.0)
        assert list(win.times) == [0.0, 10.0]

    def test_window_rejects_inverted(self, tiny_trace):
        with pytest.raises(ValueError, match="precedes"):
            tiny_trace.window(10.0, 5.0)

    def test_hour_window(self):
        tr = make_trace(
            [(1, 100.0, E.HO, P), (1, 3700.0, E.HO, P), (1, 7300.0, E.HO, P)]
        )
        assert len(tr.hour_window(0)) == 1
        assert len(tr.hour_window(1)) == 1
        assert len(tr.hour_window(2)) == 1
        assert len(tr.hour_window(3)) == 0

    def test_shift(self, tiny_trace):
        shifted = tiny_trace.shift(100.0)
        assert shifted.times[0] == tiny_trace.times[0] + 100.0
        assert len(shifted) == len(tiny_trace)


class TestPerUe:
    def test_per_ue_order_and_partition(self, tiny_trace):
        parts = dict(tiny_trace.per_ue())
        assert sorted(parts) == [1, 2]
        assert sum(len(p) for p in parts.values()) == len(tiny_trace)

    def test_per_ue_preserves_time_order(self, tiny_trace):
        for _, sub in tiny_trace.per_ue():
            assert np.all(np.diff(sub.times) >= 0)

    def test_ue_trace_missing_ue(self, tiny_trace):
        assert len(tiny_trace.ue_trace(99)) == 0

    def test_events_per_ue_total(self, tiny_trace):
        counts = tiny_trace.events_per_ue()
        assert counts == {1: 8, 2: 4}

    def test_events_per_ue_filtered_includes_zero(self, tiny_trace):
        counts = tiny_trace.events_per_ue(E.HO)
        assert counts == {1: 1, 2: 0}

    def test_breakdown_sums_to_one(self, tiny_trace):
        assert sum(tiny_trace.breakdown().values()) == pytest.approx(1.0)

    def test_breakdown_empty_trace_all_zero(self):
        assert all(v == 0.0 for v in Trace.empty().breakdown().values())

    def test_device_mix(self, tiny_trace):
        mix = tiny_trace.device_mix()
        assert mix[P] == 2
        assert mix[CC] == 0
