"""Tests for the validation metrics (repro.validation)."""

import math

import numpy as np
import pytest

from repro.statemachines import lte
from repro.trace import DeviceType, EventType
from repro.validation import (
    BREAKDOWN_ROWS,
    activity_split_ydistance,
    breakdown_difference,
    breakdown_with_states,
    count_ydistance,
    format_percent,
    format_ratio,
    format_table,
    macro_comparison,
    max_abs_breakdown_difference,
    micro_comparison,
    micro_comparison_partial,
    per_ue_counts,
    sojourn_ydistance,
)

from conftest import make_trace

E = EventType
P = DeviceType.PHONE


class TestBreakdownWithStates:
    def test_eight_rows(self):
        assert len(BREAKDOWN_ROWS) == 8

    def test_fractions_sum_to_one(self, ground_truth_trace):
        for dt in DeviceType:
            bd = breakdown_with_states(ground_truth_trace, dt)
            assert sum(bd.values()) == pytest.approx(1.0)

    def test_ho_rows_split_by_state(self):
        tr = make_trace(
            [
                (1, 1.0, E.SRV_REQ, P),
                (1, 2.0, E.HO, P),
                (1, 3.0, E.S1_CONN_REL, P),
                (1, 4.0, E.HO, P),  # invalid but must be *counted* as IDLE
            ]
        )
        bd = breakdown_with_states(tr, P)
        assert bd["HO (CONN.)"] == pytest.approx(0.25)
        assert bd["HO (IDLE)"] == pytest.approx(0.25)

    def test_empty_device(self, tiny_trace):
        bd = breakdown_with_states(tiny_trace, DeviceType.TABLET)
        assert all(v == 0.0 for v in bd.values())

    def test_difference_is_signed(self, ground_truth_trace, synthesized_trace):
        diff = breakdown_difference(ground_truth_trace, synthesized_trace, P)
        assert set(diff) == set(BREAKDOWN_ROWS)
        # Differences must cancel: both breakdowns sum to 1.
        assert sum(diff.values()) == pytest.approx(0.0, abs=1e-9)

    def test_max_abs_difference(self, ground_truth_trace, synthesized_trace):
        value = max_abs_breakdown_difference(
            ground_truth_trace, synthesized_trace, P
        )
        diffs = breakdown_difference(ground_truth_trace, synthesized_trace, P)
        assert value == max(abs(v) for v in diffs.values())

    def test_macro_comparison_structure(self, ground_truth_trace, synthesized_trace):
        table = macro_comparison(
            ground_truth_trace, {"ours": synthesized_trace}, [P]
        )
        assert set(table) == {P}
        assert set(table[P]) == {"real", "ours"}


class TestPerUeCounts:
    def test_zero_padding(self):
        tr = make_trace([(1, 1.0, E.SRV_REQ, P)])
        counts = per_ue_counts(tr, P, E.SRV_REQ, num_ues=4)
        assert list(counts) == [0.0, 0.0, 0.0, 1.0]

    def test_padding_smaller_than_present_rejected(self):
        tr = make_trace([(1, 1.0, E.SRV_REQ, P), (2, 2.0, E.SRV_REQ, P)])
        with pytest.raises(ValueError, match="smaller"):
            per_ue_counts(tr, P, E.SRV_REQ, num_ues=1)


class TestYdistances:
    def test_identical_traces_zero_distance(self, ground_truth_trace):
        assert (
            count_ydistance(
                ground_truth_trace, ground_truth_trace, P, E.SRV_REQ
            )
            == 0.0
        )

    def test_count_ydistance_range(self, ground_truth_trace, synthesized_trace):
        d = count_ydistance(
            ground_truth_trace.window(3600.0, 7200.0),
            synthesized_trace,
            P,
            E.SRV_REQ,
        )
        assert 0.0 <= d <= 1.0

    def test_sojourn_ydistance_identical(self, ground_truth_trace):
        assert (
            sojourn_ydistance(
                ground_truth_trace, ground_truth_trace, P, lte.CONNECTED
            )
            == 0.0
        )

    def test_sojourn_ydistance_missing_state(self, tiny_trace):
        silent = make_trace([(9, 1.0, E.ATCH, P)])
        with pytest.raises(ValueError, match="sojourns"):
            sojourn_ydistance(tiny_trace, silent, P, lte.CONNECTED)

    def test_activity_split(self, ground_truth_trace, synthesized_trace):
        inactive, active = activity_split_ydistance(
            ground_truth_trace.window(3600.0, 7200.0),
            synthesized_trace,
            P,
            E.SRV_REQ,
        )
        for v in (inactive, active):
            assert math.isnan(v) or 0.0 <= v <= 1.0

    def test_micro_comparison_keys(self, ground_truth_trace, synthesized_trace):
        metrics = micro_comparison(
            ground_truth_trace.window(3600.0, 7200.0), synthesized_trace, P
        )
        assert set(metrics) == {"SRV_REQ", "S1_CONN_REL", "CONNECTED", "IDLE"}

    def test_count_padding_changes_distance(self):
        # Regression (Scenario 2 bias): without population padding two
        # cohorts of different sizes but identical per-active-UE counts
        # look indistinguishable; the zero-event UEs are the difference.
        real = make_trace([(1, 1.0, E.SRV_REQ, P), (2, 2.0, E.SRV_REQ, P)])
        syn = make_trace([(7, 1.5, E.SRV_REQ, P)])
        assert count_ydistance(real, syn, P, E.SRV_REQ) == 0.0
        assert (
            count_ydistance(real, syn, P, E.SRV_REQ, syn_num_ues=2) == 0.5
        )


#: Each UE closes an IDLE sojourn (release -> service request) but its
#: CONNECTED interval never closes: first interval has no start, last
#: has no end.
_NO_CONNECTED_ROWS = [
    (1, 10.0, E.S1_CONN_REL, P),
    (1, 20.0, E.SRV_REQ, P),
    (2, 5.0, E.S1_CONN_REL, P),
    (2, 50.0, E.SRV_REQ, P),
]


class TestMicroComparisonPartial:
    def test_partial_reports_computable_quantities(self, ground_truth_trace):
        # Regression: the harness used to wrap all four quantities in a
        # single try/except, so one missing sojourn discarded every
        # micro-metric for the device.
        real = make_trace(_NO_CONNECTED_ROWS)
        syn = ground_truth_trace.window(3600.0, 7200.0)
        values, skipped = micro_comparison_partial(real, syn, P)
        assert set(values) == {"SRV_REQ", "S1_CONN_REL", "IDLE"}
        assert set(skipped) == {"CONNECTED"}
        assert "CONNECTED" in skipped["CONNECTED"]
        assert "PHONE" in skipped["CONNECTED"]

    def test_strict_comparison_raises(self, ground_truth_trace):
        real = make_trace(_NO_CONNECTED_ROWS)
        syn = ground_truth_trace.window(3600.0, 7200.0)
        with pytest.raises(ValueError, match="CONNECTED"):
            micro_comparison(real, syn, P)

    def test_engines_agree(self, ground_truth_trace, synthesized_trace):
        real = ground_truth_trace.window(3600.0, 7200.0)
        ref = micro_comparison_partial(
            real, synthesized_trace, P, engine="reference"
        )
        comp = micro_comparison_partial(
            real, synthesized_trace, P, engine="compiled"
        )
        assert ref == comp


class TestReportFormatting:
    def test_format_table_alignment(self):
        text = format_table(
            ["name", "value"], [["a", 1], ["long-name", 22]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[2]
        assert all(len(line) > 0 for line in lines)

    def test_format_percent(self):
        assert format_percent(0.123) == "12.3%"
        assert format_percent(-0.05, signed=True) == "-5.0%"
        assert format_percent(0.05, signed=True) == "+5.0%"

    def test_format_ratio(self):
        assert format_ratio(4.768) == "4.77x"
