"""Tests for model validation (repro.model.checks) and anonymization."""

import copy

import numpy as np
import pytest

from repro.distributions import Exponential
from repro.model import (
    Edge,
    ModelSet,
    SemiMarkovChain,
    StateModel,
    validate_model_set,
)
from repro.trace import DeviceType, EventType, anonymize, remap_ue_ids, shift_epoch

from conftest import make_trace

E = EventType
P = DeviceType.PHONE


class TestValidateModelSet:
    def test_fitted_model_is_clean(self, ours_model_set):
        assert validate_model_set(ours_model_set) == []

    def test_baseline_model_is_clean(self, base_model_set):
        assert validate_model_set(base_model_set) == []

    def test_empty_model_set_flagged(self):
        ms = ModelSet(
            machine_kind="two_level",
            family="empirical",
            clustered=True,
            models={},
            device_ues={},
            theta_f=5.0,
            theta_n=1000,
        )
        problems = validate_model_set(ms)
        assert any("no device types" in p for p in problems)

    def test_forbidden_edge_detected(self, ours_model_set):
        corrupted = ModelSet.from_dict(ours_model_set.to_dict())
        dt = DeviceType.PHONE
        hour = corrupted.hours(dt)[0]
        cluster = corrupted.models[dt][hour].clusters[0]
        # Inject an HO edge out of DEREGISTERED — illegal in Fig. 5.
        cluster.chain.states["DEREGISTERED"] = StateModel(
            edges=(
                Edge(E.HO, "HO_S", 1.0, Exponential(rate=1.0)),
            )
        )
        problems = validate_model_set(corrupted)
        assert any("forbidden edge" in p for p in problems)

    def test_bad_probabilities_detected(self, ours_model_set):
        corrupted = ModelSet.from_dict(ours_model_set.to_dict())
        dt = DeviceType.PHONE
        hour = corrupted.hours(dt)[0]
        cluster = corrupted.models[dt][hour].clusters[0]
        chain = cluster.chain
        state, model = next(
            (s, m) for s, m in chain.states.items() if m.edges
        )
        # Bypass StateModel's constructor check to simulate corruption.
        broken = StateModel.__new__(StateModel)
        object.__setattr__(
            broken,
            "edges",
            tuple(
                Edge(e.event, e.target, e.probability * 0.5, e.sojourn)
                for e in model.edges
            ),
        )
        chain.states[state] = broken
        problems = validate_model_set(corrupted)
        assert any("sum to" in p for p in problems)

    def test_wrong_target_detected(self, ours_model_set):
        corrupted = ModelSet.from_dict(ours_model_set.to_dict())
        dt = DeviceType.PHONE
        hour = corrupted.hours(dt)[0]
        cluster = corrupted.models[dt][hour].clusters[0]
        cluster.chain.states["DEREGISTERED"] = StateModel(
            edges=(Edge(E.ATCH, "HO_S", 1.0, Exponential(rate=1.0)),)
        )
        problems = validate_model_set(corrupted)
        assert any("disagrees" in p for p in problems)


class TestAnonymize:
    @pytest.fixture()
    def sample(self):
        return make_trace(
            [
                (10, 1.0, E.SRV_REQ, P),
                (10, 5.0, E.S1_CONN_REL, P),
                (20, 2.0, E.ATCH, DeviceType.TABLET),
            ]
        )

    def test_remap_preserves_structure(self, sample):
        remapped, mapping = remap_ue_ids(sample, seed=1)
        assert len(remapped) == len(sample)
        assert set(mapping) == {10, 20}
        # Per-UE sequences survive intact under the mapping.
        for old, new in mapping.items():
            before = sample.ue_trace(old)
            after = remapped.ue_trace(new)
            assert np.array_equal(before.times, after.times)
            assert np.array_equal(before.event_types, after.event_types)

    def test_remap_changes_ids(self, sample):
        remapped, mapping = remap_ue_ids(sample, seed=1, start_id=1000)
        assert set(remapped.unique_ues()) == {1000, 1001}

    def test_remap_deterministic(self, sample):
        a, _ = remap_ue_ids(sample, seed=7)
        b, _ = remap_ue_ids(sample, seed=7)
        assert a == b

    def test_shift_preserves_interarrivals(self, sample):
        shifted = shift_epoch(sample, seed=3)
        assert np.allclose(np.diff(shifted.times), np.diff(sample.times))
        assert shifted.times[0] >= sample.times[0]

    def test_shift_rejects_negative(self, sample):
        with pytest.raises(ValueError):
            shift_epoch(sample, max_shift=-1.0)

    def test_anonymized_trace_fits_identically(self, ground_truth_trace):
        """Anonymization is loss-free for modeling (breakdown identical)."""
        anon = anonymize(ground_truth_trace, seed=5)
        assert anon.breakdown() == ground_truth_trace.breakdown()
        assert anon.num_ues == ground_truth_trace.num_ues
