"""Tests for parallel generation (repro.generator.parallel)."""

import numpy as np
import pytest

from repro.generator import TrafficGenerator, generate_parallel
from repro.generator.parallel import _plan_chunks
from repro.trace import DeviceType


class TestChunkPlanning:
    def test_contiguous_coverage(self):
        chunks = _plan_chunks(
            {DeviceType.PHONE: 7, DeviceType.TABLET: 3}, chunk_size=3, first_ue_id=0
        )
        total = sum(n for _, _, n, _ in chunks)
        assert total == 10
        # positions are contiguous from zero.
        positions = sorted((start, n) for _, start, n, _ in chunks)
        expected = 0
        for start, n in positions:
            assert start == expected
            expected += n

    def test_ue_ids_contiguous(self):
        chunks = _plan_chunks({DeviceType.PHONE: 5}, chunk_size=2, first_ue_id=100)
        ids = sorted(ue0 for _, _, _, ue0 in chunks)
        assert ids == [100, 102, 104]


class TestGenerateParallel:
    def test_single_process_matches_serial(self, ours_model_set):
        serial = TrafficGenerator(ours_model_set).generate(
            60, start_hour=18, num_hours=1, seed=9
        )
        chunked = generate_parallel(
            ours_model_set,
            60,
            start_hour=18,
            num_hours=1,
            seed=9,
            processes=1,
            chunk_size=7,
        )
        assert chunked == serial

    def test_multiprocess_matches_serial(self, ours_model_set):
        serial = TrafficGenerator(ours_model_set).generate(
            40, start_hour=18, num_hours=1, seed=12
        )
        parallel = generate_parallel(
            ours_model_set,
            40,
            start_hour=18,
            num_hours=1,
            seed=12,
            processes=2,
            chunk_size=5,
        )
        assert parallel == serial

    def test_chunk_size_does_not_change_output(self, ours_model_set):
        a = generate_parallel(
            ours_model_set, 30, start_hour=18, seed=3, processes=1, chunk_size=1
        )
        b = generate_parallel(
            ours_model_set, 30, start_hour=18, seed=3, processes=1, chunk_size=100
        )
        assert a == b

    def test_empty_hours_give_empty_trace(self, ours_model_set):
        trace = generate_parallel(
            ours_model_set, 10, start_hour=3, seed=1, processes=1
        )
        assert len(trace) == 0
