"""Tests for the procedure-level core simulator (repro.mcn.network)."""

import numpy as np
import pytest

from repro.mcn import (
    EPC_FUNCTIONS,
    EPC_PROCEDURES,
    EPC_TO_5GC,
    FIVEGC_FUNCTIONS,
    FIVEGC_PROCEDURES,
    CoreNetworkSimulator,
    functions_for,
    procedures_for,
)
from repro.trace import DeviceType, EventType, Trace

from conftest import make_trace

E = EventType
P = DeviceType.PHONE


class TestProcedures:
    def test_every_lte_event_has_a_procedure(self):
        assert set(EPC_PROCEDURES) == set(EventType)

    def test_5gc_has_no_tau(self):
        assert E.TAU not in FIVEGC_PROCEDURES
        assert set(FIVEGC_PROCEDURES) == set(EventType) - {E.TAU}

    def test_procedures_use_declared_functions(self):
        for proc in EPC_PROCEDURES.values():
            assert set(proc.functions()) <= set(EPC_FUNCTIONS)
        for proc in FIVEGC_PROCEDURES.values():
            assert set(proc.functions()) <= set(FIVEGC_FUNCTIONS)

    def test_attach_is_heaviest_procedure(self):
        attach = EPC_PROCEDURES[E.ATCH].total_service
        for event, proc in EPC_PROCEDURES.items():
            if event != E.ATCH:
                assert attach >= proc.total_service

    def test_attach_touches_hss(self):
        assert "HSS" in EPC_PROCEDURES[E.ATCH].functions()

    def test_role_mapping_complete(self):
        assert set(EPC_TO_5GC) == set(EPC_FUNCTIONS)
        assert set(EPC_TO_5GC.values()) == set(FIVEGC_FUNCTIONS)

    def test_registry_accessors(self):
        assert procedures_for("epc") is EPC_PROCEDURES
        assert functions_for("5gc") == FIVEGC_FUNCTIONS
        with pytest.raises(ValueError):
            procedures_for("6gc")
        with pytest.raises(ValueError):
            functions_for("6gc")


class TestSimulatorConstruction:
    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError):
            CoreNetworkSimulator(workers=0)
        with pytest.raises(ValueError):
            CoreNetworkSimulator(workers={"MME": 0})

    def test_rejects_bad_link_delay(self):
        with pytest.raises(ValueError):
            CoreNetworkSimulator(link_delay=-1.0)

    def test_per_function_workers(self):
        sim = CoreNetworkSimulator(workers={"MME": 8})
        assert sim.workers["MME"] == 8
        assert sim.workers["HSS"] == 4  # default


class TestProcessing:
    def test_empty_trace_yields_empty_report(self):
        report = CoreNetworkSimulator().process(Trace.empty())
        assert report.num_events == 0
        assert report.bottleneck() is None

    def test_message_count(self):
        tr = make_trace([(1, 0.0, E.SRV_REQ, P), (1, 10.0, E.S1_CONN_REL, P)])
        report = CoreNetworkSimulator(seed=1).process(tr)
        expected = len(EPC_PROCEDURES[E.SRV_REQ].steps) + len(
            EPC_PROCEDURES[E.S1_CONN_REL].steps
        )
        assert report.num_messages == expected
        assert report.num_events == 2

    def test_procedure_latency_exceeds_service_floor(self):
        tr = make_trace([(1, 0.0, E.ATCH, P)])
        sim = CoreNetworkSimulator(seed=0, service_jitter=0.0)
        report = sim.process(tr)
        attach = report.procedures["attach"]
        proc = EPC_PROCEDURES[E.ATCH]
        floor = proc.total_service + sim.link_delay * (len(proc.steps) - 1)
        assert attach.mean_latency == pytest.approx(floor, rel=1e-6)

    def test_function_reports_cover_all_nfs(self, ground_truth_trace):
        report = CoreNetworkSimulator(seed=2).process(
            ground_truth_trace.window(0, 900.0)
        )
        assert set(report.functions) == set(EPC_FUNCTIONS)
        mme = report.functions["MME"]
        assert mme.messages > 0
        assert 0.0 <= mme.utilization <= 1.0

    def test_mme_is_bottleneck_under_lte(self, ground_truth_trace):
        """The MME fronts every procedure, so it carries the most load."""
        report = CoreNetworkSimulator(seed=2).process(
            ground_truth_trace.window(0, 1800.0)
        )
        assert report.bottleneck() == "MME"

    def test_overload_produces_waits(self):
        rng = np.random.default_rng(3)
        times = np.sort(rng.uniform(0, 5.0, 3000))
        tr = make_trace([(i % 40, float(t), E.SRV_REQ, P) for i, t in enumerate(times)])
        report = CoreNetworkSimulator(workers=1, seed=1).process(tr)
        assert report.functions["MME"].mean_wait > 0.01
        assert report.functions["MME"].utilization > 0.9

    def test_more_workers_help(self):
        rng = np.random.default_rng(3)
        times = np.sort(rng.uniform(0, 10.0, 2000))
        tr = make_trace([(i % 40, float(t), E.SRV_REQ, P) for i, t in enumerate(times)])
        small = CoreNetworkSimulator(workers=1, seed=1).process(tr)
        big = CoreNetworkSimulator(workers=8, seed=1).process(tr)
        assert big.functions["MME"].mean_wait < small.functions["MME"].mean_wait

    def test_deterministic(self, ground_truth_trace):
        window = ground_truth_trace.window(0, 600.0)
        a = CoreNetworkSimulator(seed=9).process(window)
        b = CoreNetworkSimulator(seed=9).process(window)
        assert a.functions["MME"].mean_wait == b.functions["MME"].mean_wait

    def test_5gc_skips_tau(self):
        tr = make_trace([(1, 0.0, E.SRV_REQ, P), (1, 5.0, E.TAU, P)])
        report = CoreNetworkSimulator(core="5gc", seed=1).process(tr)
        assert report.num_events == 1  # the TAU is not a 5GC procedure
        assert set(report.functions) == set(FIVEGC_FUNCTIONS)

    def test_5gc_procedure_names(self, ground_truth_trace):
        report = CoreNetworkSimulator(core="5gc", seed=1).process(
            ground_truth_trace.window(0, 900.0)
        )
        assert "registration" in report.procedures or "service_request" in report.procedures
