"""Checkpoint/resume and fault-tolerance tests.

The contract under test: a run interrupted at *any* point and resumed
from its checkpoint produces output bit-identical to an uninterrupted
run with the same arguments — for both engines, across the serial,
streaming, and parallel entry points — and worker failures in
``generate_parallel`` are either masked transparently or reported as a
structured :class:`ChunkFailedError`.
"""

import itertools
import os

import numpy as np
import pytest

from repro.generator import (
    CheckpointError,
    CheckpointMismatchError,
    ChunkFailedError,
    GenerationCheckpoint,
    TrafficGenerator,
    UeSession,
    generate_parallel,
    stream_events,
)
from repro.generator.compiled import CompiledPopulation
from repro.generator.parallel import FAULT_ENV
from repro.trace import DeviceType

from conftest import TRACE_START_HOUR

ENGINES = ("compiled", "reference")

RUN = dict(start_hour=TRACE_START_HOUR, num_hours=3, seed=7)
POP = 40


def assert_traces_equal(a, b):
    assert np.array_equal(a.ue_ids, b.ue_ids)
    assert np.array_equal(a.times, b.times)
    assert np.array_equal(a.event_types, b.event_types)
    assert np.array_equal(a.device_types, b.device_types)


@pytest.fixture(scope="module")
def generator(ours_model_set):
    return TrafficGenerator(ours_model_set)


@pytest.fixture(scope="module")
def baselines(generator):
    """Uninterrupted serial traces per engine — the bit-identity oracle."""
    return {
        engine: generator.generate(POP, engine=engine, **RUN)
        for engine in ENGINES
    }


class TestModelHash:
    def test_stable(self, ours_model_set):
        assert ours_model_set.content_hash() == ours_model_set.content_hash()

    def test_roundtrip_preserves_hash(self, ours_model_set):
        from repro.model import ModelSet

        clone = ModelSet.from_dict(ours_model_set.to_dict())
        assert clone.content_hash() == ours_model_set.content_hash()

    def test_differs_across_model_sets(self, ours_model_set, base_model_set):
        assert ours_model_set.content_hash() != base_model_set.content_hash()


class TestSerialCheckpoint:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_checkpointed_run_matches_plain(
        self, generator, baselines, engine, tmp_path
    ):
        path = tmp_path / "run.npz"
        trace = generator.generate(
            POP, engine=engine, checkpoint_path=path, **RUN
        )
        assert_traces_equal(baselines[engine], trace)
        assert path.exists()

    @pytest.mark.parametrize("engine", ENGINES)
    def test_interrupt_and_resume_bit_identical(
        self, generator, baselines, engine, tmp_path, monkeypatch
    ):
        path = tmp_path / "run.npz"
        calls = itertools.count()

        # Kill the run partway through the second hour.
        if engine == "compiled":
            target, name = CompiledPopulation, "advance_hour"
            kill_after = 1
        else:
            target, name = UeSession, "advance_hour"
            kill_after = POP + POP // 2
        original = getattr(target, name)

        def dying(self, *args, **kwargs):
            if next(calls) >= kill_after:
                raise KeyboardInterrupt
            return original(self, *args, **kwargs)

        monkeypatch.setattr(target, name, dying)
        with pytest.raises(KeyboardInterrupt):
            generator.generate(POP, engine=engine, checkpoint_path=path, **RUN)
        monkeypatch.setattr(target, name, original)

        resumed = generator.generate(
            POP, engine=engine, checkpoint_path=path, resume=True, **RUN
        )
        assert_traces_equal(baselines[engine], resumed)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_resume_after_completion(
        self, generator, baselines, engine, tmp_path
    ):
        path = tmp_path / "run.npz"
        generator.generate(POP, engine=engine, checkpoint_path=path, **RUN)
        again = generator.generate(
            POP, engine=engine, checkpoint_path=path, resume=True, **RUN
        )
        assert_traces_equal(baselines[engine], again)

    def test_checkpoint_written_before_first_hour(
        self, generator, tmp_path, monkeypatch
    ):
        """A kill before any hour completes still leaves a resumable file."""
        path = tmp_path / "run.npz"

        def dying(self, *args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(CompiledPopulation, "advance_hour", dying)
        with pytest.raises(KeyboardInterrupt):
            generator.generate(POP, checkpoint_path=path, **RUN)
        assert path.exists()
        assert GenerationCheckpoint.load(path).hours_done == 0

    def test_mismatched_seed_rejected(self, generator, tmp_path):
        path = tmp_path / "run.npz"
        generator.generate(POP, checkpoint_path=path, **RUN)
        with pytest.raises(CheckpointMismatchError, match="seed"):
            generator.generate(
                POP,
                checkpoint_path=path,
                resume=True,
                start_hour=RUN["start_hour"],
                num_hours=RUN["num_hours"],
                seed=RUN["seed"] + 1,
            )

    def test_mismatched_model_rejected(
        self, generator, base_model_set, tmp_path
    ):
        path = tmp_path / "run.npz"
        generator.generate(POP, checkpoint_path=path, **RUN)
        other = TrafficGenerator(base_model_set)
        with pytest.raises(CheckpointMismatchError, match="model_hash"):
            other.generate(POP, checkpoint_path=path, resume=True, **RUN)

    def test_mismatch_message_names_all_fields(self, generator, tmp_path):
        path = tmp_path / "run.npz"
        generator.generate(POP, checkpoint_path=path, **RUN)
        with pytest.raises(CheckpointMismatchError) as excinfo:
            generator.generate(
                POP,
                checkpoint_path=path,
                resume=True,
                start_hour=RUN["start_hour"] + 1,
                num_hours=RUN["num_hours"] + 1,
                seed=RUN["seed"],
            )
        message = str(excinfo.value)
        assert "start_hour" in message and "num_hours" in message

    def test_resume_without_checkpoint_path(self, generator):
        with pytest.raises(ValueError, match="checkpoint_path"):
            generator.generate(POP, resume=True, **RUN)

    def test_missing_file(self, generator, tmp_path):
        with pytest.raises(CheckpointError):
            generator.generate(
                POP,
                checkpoint_path=tmp_path / "nope.npz",
                resume=True,
                **RUN,
            )

    def test_garbage_file(self, generator, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is not a checkpoint")
        with pytest.raises(CheckpointError):
            generator.generate(POP, checkpoint_path=path, resume=True, **RUN)


class TestStreamingCheckpoint:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_interrupted_stream_plus_resumed_equals_whole(
        self, ours_model_set, engine, tmp_path
    ):
        """Kill a stream mid-hour; concatenated streams match end to end."""
        path = tmp_path / "stream.npz"
        whole = list(
            stream_events(ours_model_set, POP, engine=engine, **RUN)
        )

        stream = stream_events(
            ours_model_set, POP, engine=engine, checkpoint_path=path, **RUN
        )
        # Consume into the middle of the second hour, then drop the stream
        # (simulating a crash between checkpoints).
        consumed = [next(stream) for _ in range(len(whole) // 2)]
        stream.close()

        # The checkpoint tells the consumer exactly how many of its
        # events precede the resume point.
        replay_from = GenerationCheckpoint.load(path).events_emitted
        assert 0 < replay_from <= len(consumed)

        resumed = list(
            stream_events(
                ours_model_set,
                POP,
                engine=engine,
                checkpoint_path=path,
                resume=True,
                **RUN,
            )
        )
        assert consumed[:replay_from] + resumed == whole

    @pytest.mark.parametrize("engine", ENGINES)
    def test_stream_checkpoint_written_eagerly(
        self, ours_model_set, engine, tmp_path
    ):
        path = tmp_path / "stream.npz"
        stream = stream_events(
            ours_model_set, POP, engine=engine, checkpoint_path=path, **RUN
        )
        next(stream)  # killed in the very first hour
        stream.close()
        assert GenerationCheckpoint.load(path).events_emitted == 0

    def test_stream_resume_requires_checkpoint_path(self, ours_model_set):
        with pytest.raises(ValueError, match="checkpoint_path"):
            stream_events(ours_model_set, POP, resume=True, **RUN)

    def test_stream_rejects_serial_checkpoint(
        self, generator, ours_model_set, tmp_path
    ):
        path = tmp_path / "run.npz"
        generator.generate(POP, checkpoint_path=path, **RUN)
        with pytest.raises(CheckpointMismatchError, match="kind"):
            next(
                iter(
                    stream_events(
                        ours_model_set,
                        POP,
                        checkpoint_path=path,
                        resume=True,
                        **RUN,
                    )
                )
            )


class TestParallelCheckpoint:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_checkpointed_parallel_matches_serial(
        self, ours_model_set, baselines, engine, tmp_path
    ):
        path = tmp_path / "par.npz"
        trace = generate_parallel(
            ours_model_set,
            POP,
            engine=engine,
            processes=1,
            chunk_size=7,
            checkpoint_path=path,
            **RUN,
        )
        assert_traces_equal(baselines[engine], trace)

    def test_interrupted_parallel_resumes(
        self, ours_model_set, baselines, tmp_path
    ):
        path = tmp_path / "par.npz"

        def bomb(chunk_idx, attempt):
            if chunk_idx == 3:
                raise RuntimeError("interrupted")

        with pytest.raises(ChunkFailedError):
            generate_parallel(
                ours_model_set,
                POP,
                processes=1,
                chunk_size=7,
                checkpoint_path=path,
                max_retries=0,
                fault_hook=bomb,
                **RUN,
            )
        # Chunks 0-2 are in the checkpoint; the resume regenerates the rest.
        assert len(GenerationCheckpoint.load(path).chunk_columns) == 3
        resumed = generate_parallel(
            ours_model_set,
            POP,
            processes=1,
            chunk_size=7,
            checkpoint_path=path,
            resume=True,
            **RUN,
        )
        assert_traces_equal(baselines["compiled"], resumed)

    def test_inline_retry_masks_transient_failure(
        self, ours_model_set, baselines
    ):
        failures = {"left": 2}

        def flaky(chunk_idx, attempt):
            if chunk_idx == 1 and failures["left"] > 0:
                failures["left"] -= 1
                raise RuntimeError("transient")

        trace = generate_parallel(
            ours_model_set,
            POP,
            processes=1,
            chunk_size=7,
            max_retries=2,
            retry_backoff=0.0,
            fault_hook=flaky,
            **RUN,
        )
        assert failures["left"] == 0
        assert_traces_equal(baselines["compiled"], trace)

    def test_inline_poisoned_chunk_fails_structured(self, ours_model_set):
        def poisoned(chunk_idx, attempt):
            if chunk_idx == 2:
                raise RuntimeError("always broken")

        with pytest.raises(ChunkFailedError) as excinfo:
            generate_parallel(
                ours_model_set,
                POP,
                processes=1,
                chunk_size=7,
                max_retries=1,
                retry_backoff=0.0,
                fault_hook=poisoned,
                **RUN,
            )
        err = excinfo.value
        assert err.ue_range == (14, 21)
        assert err.device_type == DeviceType.PHONE
        assert err.attempts == 2
        assert err.hour_range == (
            RUN["start_hour"],
            RUN["start_hour"] + RUN["num_hours"],
        )
        assert "UEs [14, 21)" in str(err)


@pytest.mark.slow
class TestParallelWorkerCrash:
    """Real multiprocess fault injection via the env knob."""

    def _run(self, model_set, **kwargs):
        return generate_parallel(
            model_set,
            POP,
            processes=2,
            chunk_size=7,
            retry_backoff=0.01,
            **RUN,
            **kwargs,
        )

    def test_killed_worker_recovers_bit_identical(
        self, ours_model_set, baselines, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(
            FAULT_ENV, f"chunk=2;fails=1;mode=exit;dir={tmp_path}"
        )
        trace = self._run(ours_model_set)
        assert_traces_equal(baselines["compiled"], trace)
        # Exactly one injected death.
        assert sorted(os.listdir(tmp_path)) == ["fault-2-0"]

    def test_raising_worker_recovers_bit_identical(
        self, ours_model_set, baselines, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(
            FAULT_ENV, f"chunk=0;fails=2;mode=raise;dir={tmp_path}"
        )
        trace = self._run(ours_model_set, max_retries=2)
        assert_traces_equal(baselines["compiled"], trace)

    def test_poisoned_raising_chunk_names_itself(
        self, ours_model_set, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(
            FAULT_ENV, f"chunk=1;fails=99;mode=raise;dir={tmp_path}"
        )
        with pytest.raises(ChunkFailedError) as excinfo:
            self._run(ours_model_set, max_retries=1)
        assert excinfo.value.ue_range == (7, 14)
        assert excinfo.value.device_type == DeviceType.PHONE

    def test_poisoned_crashing_chunk_isolated_and_named(
        self, ours_model_set, tmp_path, monkeypatch
    ):
        """A chunk that always kills its worker is confirmed via the
        single-worker isolation round, never a bare BrokenProcessPool."""
        monkeypatch.setenv(
            FAULT_ENV, f"chunk=0;fails=99;mode=exit;dir={tmp_path}"
        )
        with pytest.raises(ChunkFailedError) as excinfo:
            self._run(ours_model_set, max_retries=1)
        assert excinfo.value.ue_range == (0, 7)
        assert "died" in str(excinfo.value)

    def test_crash_then_resume_from_checkpoint(
        self, ours_model_set, baselines, tmp_path, monkeypatch
    ):
        path = tmp_path / "par.npz"
        monkeypatch.setenv(
            FAULT_ENV, f"chunk=3;fails=99;mode=raise;dir={tmp_path}"
        )
        with pytest.raises(ChunkFailedError):
            self._run(ours_model_set, max_retries=0, checkpoint_path=path)
        monkeypatch.delenv(FAULT_ENV)
        resumed = self._run(
            ours_model_set, checkpoint_path=path, resume=True
        )
        assert_traces_equal(baselines["compiled"], resumed)
