"""Structural tests for the LTE machines (Figs. 1 and 5 of the paper)."""

import pytest

from repro.statemachines import (
    CONNECTED,
    CONNECTED_SUBSTATES,
    DEREGISTERED,
    HO_S,
    IDLE,
    IDLE_SUBSTATES,
    S1_REL_S_1,
    S1_REL_S_2,
    SECOND_LEVEL_TRANSITIONS,
    SRV_REQ_S,
    TAU_S_CONN,
    TAU_S_IDLE,
    ecm_machine,
    emm_ecm_machine,
    emm_machine,
    two_level_machine,
)
from repro.trace import EventType

E = EventType


class TestEmmEcmFig1:
    def test_emm_two_states(self):
        m = emm_machine()
        assert len(m.states) == 2
        assert m.next_state("EMM_DEREGISTERED", E.ATCH) == "EMM_REGISTERED"
        assert m.next_state("EMM_REGISTERED", E.DTCH) == "EMM_DEREGISTERED"

    def test_ecm_two_states(self):
        m = ecm_machine()
        assert m.next_state("ECM_IDLE", E.SRV_REQ) == "ECM_CONNECTED"
        assert m.next_state("ECM_CONNECTED", E.S1_CONN_REL) == "ECM_IDLE"

    def test_merged_machine_attach_enters_connected(self):
        """§5.1: leaving DEREGISTERED always enters CONNECTED."""
        m = emm_ecm_machine()
        assert m.next_state(DEREGISTERED, E.ATCH) == CONNECTED

    def test_merged_machine_detach_from_both(self):
        m = emm_ecm_machine()
        assert m.next_state(CONNECTED, E.DTCH) == DEREGISTERED
        assert m.next_state(IDLE, E.DTCH) == DEREGISTERED

    def test_merged_machine_rejects_category2(self):
        m = emm_ecm_machine()
        for state in (DEREGISTERED, CONNECTED, IDLE):
            assert not m.can_fire(state, E.HO)
            assert not m.can_fire(state, E.TAU)


class TestTwoLevelFig5:
    @pytest.fixture()
    def m(self):
        return two_level_machine()

    def test_seven_states(self, m):
        assert len(m.states) == 7

    def test_parents(self, m):
        for leaf in CONNECTED_SUBSTATES:
            assert m.parent(leaf) == CONNECTED
        for leaf in IDLE_SUBSTATES:
            assert m.parent(leaf) == IDLE
        assert m.parent(DEREGISTERED) == DEREGISTERED

    def test_attach_enters_srv_req_s(self, m):
        assert m.next_state(DEREGISTERED, E.ATCH) == SRV_REQ_S

    def test_srv_req_only_from_s1_rel_states(self, m):
        """The starred edge of Fig. 5."""
        assert m.can_fire(S1_REL_S_1, E.SRV_REQ)
        assert m.can_fire(S1_REL_S_2, E.SRV_REQ)
        assert not m.can_fire(TAU_S_IDLE, E.SRV_REQ)
        for leaf in CONNECTED_SUBSTATES:
            assert not m.can_fire(leaf, E.SRV_REQ)

    def test_s1_rel_from_any_connected_substate(self, m):
        for leaf in CONNECTED_SUBSTATES:
            assert m.next_state(leaf, E.S1_CONN_REL) == S1_REL_S_1

    def test_tau_in_idle_followed_by_release(self, m):
        """§5.1: after TAU in IDLE, S1_CONN_REL always follows."""
        assert m.next_state(TAU_S_IDLE, E.S1_CONN_REL) == S1_REL_S_2
        assert m.events_from(TAU_S_IDLE) == [E.DTCH, E.S1_CONN_REL]

    def test_ho_only_in_connected(self, m):
        for leaf in CONNECTED_SUBSTATES:
            assert m.next_state(leaf, E.HO) == HO_S
        for leaf in IDLE_SUBSTATES + (DEREGISTERED,):
            assert not m.can_fire(leaf, E.HO)

    def test_ho_self_loop(self, m):
        assert m.next_state(HO_S, E.HO) == HO_S

    def test_tau_self_loop_in_connected(self, m):
        assert m.next_state(TAU_S_CONN, E.TAU) == TAU_S_CONN

    def test_tau_targets_depend_on_top_state(self, m):
        assert m.next_state(SRV_REQ_S, E.TAU) == TAU_S_CONN
        assert m.next_state(S1_REL_S_1, E.TAU) == TAU_S_IDLE
        assert m.next_state(S1_REL_S_2, E.TAU) == TAU_S_IDLE

    def test_detach_from_every_registered_substate(self, m):
        for leaf in CONNECTED_SUBSTATES + IDLE_SUBSTATES:
            assert m.next_state(leaf, E.DTCH) == DEREGISTERED

    def test_no_tau_in_deregistered(self, m):
        assert not m.can_fire(DEREGISTERED, E.TAU)

    def test_all_states_reachable(self, m):
        assert m.reachable_states() == m.states

    def test_second_level_transitions_are_valid_edges(self, m):
        assert len(SECOND_LEVEL_TRANSITIONS) == 9
        for source, event in SECOND_LEVEL_TRANSITIONS:
            assert m.can_fire(source, event)

    def test_accepts_canonical_lifecycle(self, m):
        sequence = [
            E.ATCH,          # -> SRV_REQ_S
            E.HO,            # -> HO_S
            E.HO,            # self-loop
            E.TAU,           # -> TAU_S_CONN
            E.S1_CONN_REL,   # -> S1_REL_S_1
            E.TAU,           # -> TAU_S_IDLE
            E.S1_CONN_REL,   # -> S1_REL_S_2
            E.SRV_REQ,       # -> SRV_REQ_S
            E.DTCH,          # -> DEREGISTERED
        ]
        assert m.accepts(sequence)

    def test_rejects_ho_in_idle_sequence(self, m):
        assert not m.accepts([E.ATCH, E.S1_CONN_REL, E.HO])

    def test_rejects_srv_req_while_connected(self, m):
        assert not m.accepts([E.ATCH, E.SRV_REQ])
