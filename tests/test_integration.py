"""End-to-end integration tests: the paper's full pipeline.

These tests run the complete loop — simulate "real" traffic, fit all
four methods, synthesize traces, validate — and assert the *relative*
claims of §8: the proposed model beats the baselines macroscopically
and microscopically.
"""

import numpy as np
import pytest

from repro.baselines import fit_method
from repro.generator import TrafficGenerator
from repro.groundtruth import simulate_ground_truth
from repro.statemachines import lte
from repro.trace import DeviceType, EventType
from repro.validation import (
    breakdown_with_states,
    count_ydistance,
    max_abs_breakdown_difference,
    sojourn_ydistance,
)

E = EventType
P = DeviceType.PHONE
START = 18


@pytest.fixture(scope="module")
def pipeline():
    """Train on 3 evening hours; validate on a fresh 1-hour trace."""
    train = simulate_ground_truth(
        {DeviceType.PHONE: 100, DeviceType.CONNECTED_CAR: 40, DeviceType.TABLET: 30},
        duration=3 * 3600.0,
        seed=2024,
        start_hour=START,
    )
    real = simulate_ground_truth(
        {DeviceType.PHONE: 100, DeviceType.CONNECTED_CAR: 40, DeviceType.TABLET: 30},
        duration=3600.0,
        seed=777,
        start_hour=START + 1,
    )
    synthesized = {}
    for method in ("base", "v2", "ours"):
        ms = fit_method(method, train, theta_n=30, trace_start_hour=START)
        synthesized[method] = TrafficGenerator(ms).generate(
            170, start_hour=START + 1, num_hours=1, seed=5
        )
    return train, real, synthesized


class TestMacroscopic:
    def test_ours_close_to_real(self, pipeline):
        """§8.1.1: our breakdown errors stay small (paper: <~5%)."""
        _, real, syn = pipeline
        for dt in DeviceType:
            err = max_abs_breakdown_difference(real, syn["ours"], dt)
            assert err < 0.10, f"{dt.name}: {err:.3f}"

    def test_ours_beats_base_by_wide_margin(self, pipeline):
        _, real, syn = pipeline
        for dt in (P, DeviceType.CONNECTED_CAR):
            ours = max_abs_breakdown_difference(real, syn["ours"], dt)
            base = max_abs_breakdown_difference(real, syn["base"], dt)
            assert base > 2.0 * ours, f"{dt.name}: base={base:.3f} ours={ours:.3f}"

    def test_base_generates_ho_in_idle_ours_does_not(self, pipeline):
        """Tables 4/11: the EMM-ECM baselines mistakenly emit HO in IDLE."""
        _, _, syn = pipeline
        base_bd = breakdown_with_states(syn["base"], P)
        ours_bd = breakdown_with_states(syn["ours"], P)
        assert base_bd["HO (IDLE)"] > 0.01
        assert ours_bd["HO (IDLE)"] == 0.0

    def test_tau_split_preserved_by_ours(self, pipeline):
        _, real, syn = pipeline
        real_bd = breakdown_with_states(real, P)
        ours_bd = breakdown_with_states(syn["ours"], P)
        for row in ("TAU (CONN.)", "TAU (IDLE)"):
            assert abs(ours_bd[row] - real_bd[row]) < 0.05


class TestMicroscopic:
    def test_ours_beats_v2_on_sojourns(self, pipeline):
        """Table 5: empirical CDFs beat Poisson sojourns for CONNECTED."""
        _, real, syn = pipeline
        ours = sojourn_ydistance(real, syn["ours"], P, lte.CONNECTED)
        v2 = sojourn_ydistance(real, syn["v2"], P, lte.CONNECTED)
        assert ours < v2, f"ours={ours:.3f} v2={v2:.3f}"

    def test_ours_sojourn_fidelity_absolute(self, pipeline):
        _, real, syn = pipeline
        for state in (lte.CONNECTED, lte.IDLE):
            d = sojourn_ydistance(real, syn["ours"], P, state)
            assert d < 0.20, f"{state}: {d:.3f}"

    def test_count_cdf_fidelity(self, pipeline):
        _, real, syn = pipeline
        d = count_ydistance(
            real, syn["ours"], P, E.SRV_REQ,
            real_num_ues=100, syn_num_ues=None,
        )
        assert d < 0.30


class TestScalability:
    def test_10x_population_preserves_breakdown(self, pipeline):
        """§8.1 Scenario 2: scaling 10x leaves the mix intact."""
        train, _, _ = pipeline
        ms = fit_method("ours", train, theta_n=30, trace_start_hour=START)
        small = TrafficGenerator(ms).generate(100, start_hour=START + 1, seed=1)
        large = TrafficGenerator(ms).generate(1000, start_hour=START + 1, seed=1)
        small_bd = breakdown_with_states(small, P)
        large_bd = breakdown_with_states(large, P)
        for row in ("SRV_REQ", "S1_CONN_REL"):
            assert abs(small_bd[row] - large_bd[row]) < 0.05

    def test_event_volume_scales_linearly(self, pipeline):
        train, _, _ = pipeline
        ms = fit_method("ours", train, theta_n=30, trace_start_hour=START)
        n_small = len(TrafficGenerator(ms).generate(100, start_hour=START + 1, seed=1))
        n_large = len(TrafficGenerator(ms).generate(800, start_hour=START + 1, seed=1))
        assert 4.0 < n_large / n_small < 16.0


class TestFiveGPipeline:
    def test_nsa_sa_ordering(self, pipeline):
        """Table 7: HO share NSA > SA > LTE; SA lacks TAU entirely."""
        from repro.model import scale_to_nsa, scale_to_sa

        train, _, _ = pipeline
        ms = fit_method("ours", train, theta_n=30, trace_start_hour=START)
        gen = lambda m: TrafficGenerator(m).generate(200, start_hour=START + 1, seed=3)
        lte_tr = gen(ms)
        nsa_tr = gen(scale_to_nsa(ms))
        sa_tr = gen(scale_to_sa(ms))
        assert (
            lte_tr.breakdown()[E.HO]
            < sa_tr.breakdown()[E.HO]
            < nsa_tr.breakdown()[E.HO]
        )
        assert nsa_tr.breakdown()[E.TAU] > 0
        assert sa_tr.breakdown()[E.TAU] == 0.0


class TestMcnConsumption:
    def test_generated_traffic_drives_mme(self, pipeline):
        from repro.mcn import MmeSimulator

        _, _, syn = pipeline
        report = MmeSimulator(num_workers=2).process(syn["ours"])
        assert report.num_events == len(syn["ours"])
        assert report.protocol_violations == 0

    def test_base_traffic_violates_protocol(self, pipeline):
        from repro.mcn import MmeSimulator

        _, _, syn = pipeline
        report = MmeSimulator(num_workers=2).process(syn["base"])
        assert report.protocol_violations > 0


class TestModelStability:
    def test_refit_on_synthesized_traffic_is_stable(self, pipeline):
        """Fit -> generate -> refit: the second-generation model must
        reproduce the same macroscopic mix (the generator is a fixed
        point of the modeling pipeline up to sampling noise)."""
        from repro.baselines import fit_method
        from repro.validation import max_abs_breakdown_difference

        train, _, syn = pipeline
        first_gen = syn["ours"]
        ms2 = fit_method(
            "ours", first_gen, theta_n=30, trace_start_hour=START + 1
        )
        second_gen = TrafficGenerator(ms2).generate(
            170, start_hour=START + 1, num_hours=1, seed=9
        )
        err = max_abs_breakdown_difference(first_gen, second_gen, P)
        assert err < 0.08, f"refit drift {err:.3f}"

    def test_model_set_audit_clean_for_all_methods(self, pipeline):
        from repro.baselines import fit_method
        from repro.model import validate_model_set

        train, _, _ = pipeline
        for method in ("base", "v1", "v2", "ours"):
            ms = fit_method(method, train, theta_n=30, trace_start_hour=START)
            assert validate_model_set(ms) == [], method

    def test_scaled_5g_models_audit_clean(self, pipeline):
        from repro.baselines import fit_method
        from repro.model import scale_to_nsa, scale_to_sa, validate_model_set

        train, _, _ = pipeline
        ms = fit_method("ours", train, theta_n=30, trace_start_hour=START)
        assert validate_model_set(scale_to_nsa(ms)) == []
        assert validate_model_set(scale_to_sa(ms)) == []
