"""Tests for the Base/V1/V2/Ours method builders (Table 3)."""

import pytest

from repro.baselines import METHOD_NAMES, fit_method
from repro.trace import DeviceType

from conftest import TRACE_START_HOUR


class TestMethodMatrix:
    def test_method_names(self):
        assert METHOD_NAMES == ("base", "v1", "v2", "ours")

    def test_unknown_method(self, tiny_trace):
        with pytest.raises(ValueError, match="unknown method"):
            fit_method("gpt", tiny_trace)

    def test_case_insensitive(self, tiny_trace):
        ms = fit_method("OURS", tiny_trace, theta_n=5)
        assert ms.machine_kind == "two_level"

    @pytest.mark.parametrize(
        "method,machine,family,clustered",
        [
            ("base", "emm_ecm", "poisson", False),
            ("v1", "emm_ecm", "poisson", True),
            ("v2", "two_level", "poisson", True),
            ("ours", "two_level", "empirical", True),
        ],
    )
    def test_table3_configuration(
        self, ground_truth_trace, method, machine, family, clustered
    ):
        ms = fit_method(
            method,
            ground_truth_trace,
            theta_n=25,
            trace_start_hour=TRACE_START_HOUR,
        )
        assert ms.machine_kind == machine
        assert ms.family == family
        assert ms.clustered == clustered

    def test_clustering_produces_more_models_than_base(
        self, ground_truth_trace
    ):
        base = fit_method("base", ground_truth_trace, trace_start_hour=TRACE_START_HOUR)
        v1 = fit_method(
            "v1", ground_truth_trace, theta_n=25, trace_start_hour=TRACE_START_HOUR
        )
        assert v1.num_models > base.num_models
