"""Tests for descriptive trace statistics (repro.trace.stats)."""

import math

import numpy as np
import pytest

from repro.trace import (
    BoxStats,
    DeviceType,
    EventType,
    breakdown_table,
    busiest_hour,
    diurnal_box_stats,
    event_breakdown,
    events_per_device_hour,
    events_per_ue_counts,
    hourly_event_counts,
    peak_to_trough_ratio,
)

from conftest import make_trace

P = DeviceType.PHONE
E = EventType


class TestBoxStats:
    def test_five_number_summary(self):
        stats = BoxStats.from_samples([1, 2, 3, 4, 5])
        assert stats.minimum == 1
        assert stats.median == 3
        assert stats.maximum == 5
        assert stats.mean == 3
        assert stats.count == 5

    def test_quartiles(self):
        stats = BoxStats.from_samples(list(range(101)))
        assert stats.lower_quartile == pytest.approx(25.0)
        assert stats.upper_quartile == pytest.approx(75.0)

    def test_empty_samples_give_nan(self):
        stats = BoxStats.from_samples([])
        assert math.isnan(stats.median)
        assert stats.count == 0


class TestBreakdown:
    def test_fractions(self):
        tr = make_trace(
            [(1, 1.0, E.HO, P), (1, 2.0, E.HO, P), (1, 3.0, E.TAU, P)]
        )
        bd = event_breakdown(tr)
        assert bd[E.HO] == pytest.approx(2 / 3)
        assert bd[E.TAU] == pytest.approx(1 / 3)
        assert bd[E.ATCH] == 0.0

    def test_per_device_isolation(self):
        tr = make_trace(
            [(1, 1.0, E.HO, P), (2, 2.0, E.TAU, DeviceType.TABLET)]
        )
        assert event_breakdown(tr, P)[E.HO] == 1.0
        assert event_breakdown(tr, DeviceType.TABLET)[E.TAU] == 1.0

    def test_breakdown_table_has_all_devices(self, ground_truth_trace):
        table = breakdown_table(ground_truth_trace)
        assert set(table) == set(DeviceType)
        for bd in table.values():
            assert sum(bd.values()) == pytest.approx(1.0)

    def test_ground_truth_matches_table1_shape(self, ground_truth_trace):
        """Dominant events carry the bulk of traffic, like Table 1."""
        for dt in DeviceType:
            bd = breakdown_table(ground_truth_trace)[dt]
            dominant = bd[E.SRV_REQ] + bd[E.S1_CONN_REL]
            assert dominant > 0.75
        # Connected cars have the highest TAU share (mobility).
        tau = {dt: breakdown_table(ground_truth_trace)[dt][E.TAU] for dt in DeviceType}
        assert tau[DeviceType.CONNECTED_CAR] > tau[DeviceType.PHONE]


class TestDiurnal:
    def test_counts_include_zero_samples(self):
        tr = make_trace([(1, 30.0, E.HO, P), (2, 40.0, E.TAU, P)])
        samples = events_per_device_hour(tr, P, E.HO)
        # Two UEs, one day: UE 1 has one HO in hour 0, UE 2 has zero.
        assert sorted(samples[0]) == [0, 1]
        assert sorted(samples[5]) == [0, 0]

    def test_multi_day_pooling(self):
        day = 86400.0
        tr = make_trace(
            [(1, 30.0, E.HO, P), (1, day + 30.0, E.HO, P), (1, day + 40.0, E.HO, P)]
        )
        samples = events_per_device_hour(tr, P, E.HO)
        assert sorted(samples[0]) == [1, 2]

    def test_diurnal_box_stats_has_24_hours(self, ground_truth_trace):
        stats = diurnal_box_stats(ground_truth_trace, P, E.SRV_REQ)
        assert set(stats) == set(range(24))

    def test_peak_to_trough_exceeds_one(self, ground_truth_trace):
        ratio = peak_to_trough_ratio(ground_truth_trace, P, E.SRV_REQ)
        assert ratio > 1.0

    def test_peak_to_trough_nan_when_no_events(self):
        tr = make_trace([(1, 1.0, E.HO, P)])
        assert math.isnan(peak_to_trough_ratio(tr, P, E.TAU))


class TestHourly:
    def test_hourly_event_counts(self):
        tr = make_trace(
            [(1, 100.0, E.HO, P), (1, 200.0, E.HO, P), (1, 3700.0, E.HO, P)]
        )
        counts = hourly_event_counts(tr)
        assert counts[0] == 2
        assert counts[1] == 1

    def test_hourly_empty(self):
        from repro.trace import Trace

        assert len(hourly_event_counts(Trace.empty())) == 0

    def test_busiest_hour(self):
        rows = [(1, float(i), E.HO, P) for i in range(5)]  # hour 0
        rows += [(1, 3600.0 + float(i), E.HO, P) for i in range(2)]
        assert busiest_hour(make_trace(rows)) == 0

    def test_busiest_hour_wraps_hour_of_day(self):
        # Events 25 hours in land on hour-of-day 1.
        rows = [(1, 25 * 3600.0 + float(i), E.HO, P) for i in range(5)]
        assert busiest_hour(make_trace(rows)) == 1

    def test_busiest_hour_empty_raises(self):
        from repro.trace import Trace

        with pytest.raises(ValueError):
            busiest_hour(Trace.empty())


class TestEventsPerUeCounts:
    def test_includes_zero_count_ues(self):
        tr = make_trace([(1, 1.0, E.SRV_REQ, P), (2, 2.0, E.HO, P)])
        counts = events_per_ue_counts(tr, P, E.SRV_REQ)
        assert list(counts) == [0.0, 1.0]

    def test_sorted_output(self, ground_truth_trace):
        counts = events_per_ue_counts(ground_truth_trace, P, E.SRV_REQ)
        assert np.all(np.diff(counts) >= 0)
