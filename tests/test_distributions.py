"""Tests for the probability models (repro.distributions)."""

import math

import numpy as np
import pytest

from repro.distributions import (
    CLASSIC_FAMILIES,
    EmpiricalCDF,
    Exponential,
    FitError,
    Lognormal,
    Pareto,
    Tcplib,
    Weibull,
    fit_family,
)

ALL_CLASSES = [Exponential, Pareto, Weibull, Lognormal, Tcplib]


@pytest.fixture()
def rng():
    return np.random.default_rng(99)


class TestCommonProtocol:
    """Every family honours the shared Distribution contract."""

    @pytest.mark.parametrize("cls", ALL_CLASSES)
    def test_fit_then_sample_positive(self, cls, rng):
        data = rng.lognormal(1.0, 1.0, 200)
        dist = cls.fit(data)
        samples = dist.sample(rng, 100)
        assert np.all(samples >= 0)

    @pytest.mark.parametrize("cls", ALL_CLASSES)
    def test_cdf_monotone(self, cls, rng):
        dist = cls.fit(rng.lognormal(0.0, 1.0, 200))
        xs = np.linspace(0.0, 50.0, 200)
        cdf = dist.cdf(xs)
        assert np.all(np.diff(cdf) >= -1e-12)
        assert np.all((cdf >= 0) & (cdf <= 1))

    @pytest.mark.parametrize("cls", ALL_CLASSES)
    def test_ppf_cdf_consistency(self, cls, rng):
        dist = cls.fit(rng.lognormal(0.0, 1.0, 500))
        qs = np.array([0.1, 0.25, 0.5, 0.75, 0.9])
        xs = dist.ppf(qs)
        back = dist.cdf(xs)
        assert np.all(np.abs(back - qs) < 0.02)

    @pytest.mark.parametrize("cls", ALL_CLASSES)
    def test_ppf_rejects_out_of_range(self, cls, rng):
        dist = cls.fit(rng.lognormal(0.0, 1.0, 50))
        with pytest.raises(ValueError):
            dist.ppf([1.5])

    @pytest.mark.parametrize("cls", ALL_CLASSES)
    def test_scalar_sample(self, cls, rng):
        dist = cls.fit(rng.lognormal(0.0, 1.0, 50))
        value = dist.sample(rng)
        assert isinstance(value, float)

    @pytest.mark.parametrize("cls", ALL_CLASSES)
    def test_fit_rejects_negative_samples(self, cls):
        with pytest.raises(FitError):
            cls.fit([-1.0, 2.0, 3.0])

    @pytest.mark.parametrize("cls", ALL_CLASSES)
    def test_fit_rejects_nan(self, cls):
        with pytest.raises(FitError):
            cls.fit([1.0, float("nan")])


class TestExponential:
    def test_mle_rate_is_inverse_mean(self):
        dist = Exponential.fit([1.0, 2.0, 3.0])
        assert dist.rate == pytest.approx(0.5)

    def test_parameter_recovery(self, rng):
        data = rng.exponential(scale=4.0, size=20_000)
        dist = Exponential.fit(data)
        assert dist.mean() == pytest.approx(4.0, rel=0.05)

    def test_cdf_formula(self):
        dist = Exponential(rate=1.0)
        assert dist.cdf(1.0) == pytest.approx(1.0 - math.exp(-1.0))

    def test_cdf_zero_below_support(self):
        assert Exponential(rate=1.0).cdf(-5.0) == 0.0

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Exponential(rate=0.0)


class TestPareto:
    def test_mle_scale_is_min(self):
        dist = Pareto.fit([2.0, 4.0, 8.0])
        assert dist.x_m == pytest.approx(2.0)

    def test_parameter_recovery(self, rng):
        true = Pareto(alpha=2.5, x_m=1.0)
        data = true.sample(rng, 20_000)
        fit = Pareto.fit(data)
        assert fit.alpha == pytest.approx(2.5, rel=0.05)

    def test_infinite_mean_when_alpha_below_one(self):
        assert Pareto(alpha=0.8, x_m=1.0).mean() == math.inf

    def test_finite_mean(self):
        assert Pareto(alpha=3.0, x_m=1.0).mean() == pytest.approx(1.5)

    def test_constant_samples_rejected(self):
        with pytest.raises(FitError, match="constant"):
            Pareto.fit([2.0, 2.0, 2.0])

    def test_cdf_zero_below_xm(self):
        assert Pareto(alpha=2.0, x_m=1.0).cdf(0.5) == 0.0


class TestWeibull:
    def test_parameter_recovery(self, rng):
        true = Weibull(k=1.7, lam=3.0)
        data = true.sample(rng, 20_000)
        fit = Weibull.fit(data)
        assert fit.k == pytest.approx(1.7, rel=0.05)
        assert fit.lam == pytest.approx(3.0, rel=0.05)

    def test_exponential_special_case(self, rng):
        data = rng.exponential(2.0, 20_000)
        fit = Weibull.fit(data)
        assert fit.k == pytest.approx(1.0, rel=0.05)

    def test_mean_gamma_formula(self):
        dist = Weibull(k=2.0, lam=1.0)
        assert dist.mean() == pytest.approx(math.gamma(1.5))

    def test_constant_samples_rejected(self):
        with pytest.raises(FitError, match="constant"):
            Weibull.fit([5.0] * 10)


class TestLognormal:
    def test_parameter_recovery(self, rng):
        data = rng.lognormal(1.5, 0.8, 20_000)
        fit = Lognormal.fit(data)
        assert fit.mu == pytest.approx(1.5, abs=0.03)
        assert fit.sigma == pytest.approx(0.8, rel=0.05)

    def test_median_is_exp_mu(self):
        dist = Lognormal(mu=2.0, sigma=1.0)
        assert dist.ppf(np.array([0.5]))[0] == pytest.approx(math.exp(2.0), rel=1e-6)

    def test_mean_formula(self):
        dist = Lognormal(mu=0.0, sigma=1.0)
        assert dist.mean() == pytest.approx(math.exp(0.5))

    def test_cdf_zero_at_origin(self):
        assert Lognormal(mu=0.0, sigma=1.0).cdf(0.0) == 0.0

    def test_ppf_edges(self):
        dist = Lognormal(mu=0.0, sigma=1.0)
        edges = dist.ppf(np.array([0.0, 1.0]))
        assert edges[0] == 0.0
        assert edges[1] == math.inf


class TestTcplib:
    def test_scale_fit_matches_median(self, rng):
        data = rng.lognormal(3.0, 1.0, 5_000)
        dist = Tcplib.fit(data)
        assert dist.scale == pytest.approx(float(np.median(data)))

    def test_fixed_shape_heavy_tail(self):
        dist = Tcplib(scale=1.0)
        # P99/P50 ratio of the reference shape is large (long tail).
        p99 = dist.ppf(np.array([0.99]))[0]
        p50 = dist.ppf(np.array([0.5]))[0]
        assert p99 / p50 > 100

    def test_mean_positive_finite(self):
        mean = Tcplib(scale=2.0).mean()
        assert 0 < mean < math.inf

    def test_scaling_linearity(self):
        a = Tcplib(scale=1.0).ppf(np.array([0.5, 0.9]))
        b = Tcplib(scale=10.0).ppf(np.array([0.5, 0.9]))
        assert np.allclose(b, 10.0 * a)


class TestEmpiricalCDF:
    def test_ppf_covers_observed_range(self, rng):
        data = rng.lognormal(0.0, 2.0, 1_000)
        dist = EmpiricalCDF.fit(data)
        lo, hi = dist.support
        assert lo == pytest.approx(data.min())
        assert hi == pytest.approx(data.max())

    def test_samples_within_support(self, rng):
        data = rng.lognormal(0.0, 1.5, 500)
        dist = EmpiricalCDF.fit(data)
        samples = dist.sample(rng, 10_000)
        lo, hi = dist.support
        assert samples.min() >= lo - 1e-9
        assert samples.max() <= hi + 1e-9

    def test_reproduces_distribution_shape(self, rng):
        from repro.stats import max_y_distance

        data = rng.lognormal(0.0, 2.0, 2_000)
        dist = EmpiricalCDF.fit(data)
        resampled = dist.sample(rng, 20_000)
        assert max_y_distance(data, resampled) < 0.03

    def test_compression_preserves_quantiles(self, rng):
        data = rng.lognormal(0.0, 1.0, 10_000)
        full = EmpiricalCDF.fit(data)
        small = EmpiricalCDF.fit(data, max_points=64)
        assert len(small) == 64
        for q in (0.1, 0.5, 0.9):
            assert small.ppf(np.array([q]))[0] == pytest.approx(
                full.ppf(np.array([q]))[0], rel=0.1
            )

    def test_single_sample(self):
        dist = EmpiricalCDF([5.0])
        assert dist.mean() == 5.0
        assert dist.ppf(np.array([0.3]))[0] == 5.0

    def test_serialization_roundtrip(self, rng):
        data = rng.lognormal(0.0, 1.0, 100)
        dist = EmpiricalCDF.fit(data)
        back = EmpiricalCDF.from_list(dist.to_list())
        assert np.allclose(back.quantiles, dist.quantiles)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            EmpiricalCDF([])

    def test_cdf_step_function(self):
        dist = EmpiricalCDF([1.0, 2.0, 3.0, 4.0])
        assert dist.cdf(np.array([2.0]))[0] == pytest.approx(0.5)
        assert dist.cdf(np.array([0.5]))[0] == 0.0
        assert dist.cdf(np.array([4.0]))[0] == 1.0


class TestRegistry:
    def test_classic_families_complete(self):
        assert set(CLASSIC_FAMILIES) == {"poisson", "pareto", "weibull", "tcplib"}

    def test_fit_family_by_name(self, rng):
        data = rng.exponential(1.0, 100)
        for name in CLASSIC_FAMILIES:
            dist = fit_family(name, data)
            assert dist.family == name

    def test_fit_family_empirical(self, rng):
        dist = fit_family("empirical", rng.exponential(1.0, 50))
        assert isinstance(dist, EmpiricalCDF)

    def test_fit_family_unknown(self):
        with pytest.raises(ValueError, match="unknown family"):
            fit_family("gaussian", [1.0, 2.0])
