"""Tests for session analytics (repro.trace.sessions)."""

import math

import numpy as np
import pytest

from repro.trace import (
    DeviceType,
    EventType,
    Session,
    extract_sessions,
    session_stats,
)

from conftest import make_trace

E = EventType
P = DeviceType.PHONE


class TestExtractSessions:
    def test_simple_session(self):
        tr = make_trace(
            [(1, 10.0, E.SRV_REQ, P), (1, 40.0, E.S1_CONN_REL, P)]
        )
        sessions = extract_sessions(tr)
        assert len(sessions) == 1
        s = sessions[0]
        assert s.duration == pytest.approx(30.0)
        assert s.opener == E.SRV_REQ
        assert s.closer == E.S1_CONN_REL
        assert s.num_events == 2

    def test_attach_opened_session(self):
        tr = make_trace([(1, 0.0, E.ATCH, P), (1, 5.0, E.DTCH, P)])
        s = extract_sessions(tr)[0]
        assert s.opener == E.ATCH
        assert s.closer == E.DTCH

    def test_inner_events_counted(self):
        tr = make_trace(
            [
                (1, 0.0, E.SRV_REQ, P),
                (1, 1.0, E.HO, P),
                (1, 2.0, E.HO, P),
                (1, 3.0, E.TAU, P),
                (1, 4.0, E.S1_CONN_REL, P),
            ]
        )
        s = extract_sessions(tr)[0]
        assert s.handovers == 2
        assert s.tracking_updates == 1
        assert s.num_events == 5

    def test_unclosed_session_skipped(self):
        tr = make_trace([(1, 0.0, E.SRV_REQ, P), (1, 1.0, E.HO, P)])
        assert extract_sessions(tr) == []

    def test_leading_idle_events_skipped(self):
        # TAU exchange in IDLE before the first opener is not a session.
        tr = make_trace(
            [
                (1, 0.0, E.TAU, P),
                (1, 1.0, E.S1_CONN_REL, P),
                (1, 5.0, E.SRV_REQ, P),
                (1, 9.0, E.S1_CONN_REL, P),
            ]
        )
        sessions = extract_sessions(tr)
        assert len(sessions) == 1
        assert sessions[0].start == 5.0

    def test_invalid_reopen_restarts(self):
        tr = make_trace(
            [
                (1, 0.0, E.SRV_REQ, P),
                (1, 5.0, E.SRV_REQ, P),       # protocol-invalid re-open
                (1, 8.0, E.S1_CONN_REL, P),
            ]
        )
        sessions = extract_sessions(tr)
        assert len(sessions) == 1
        assert sessions[0].start == 5.0

    def test_multiple_ues(self):
        tr = make_trace(
            [
                (1, 0.0, E.SRV_REQ, P),
                (2, 1.0, E.SRV_REQ, P),
                (1, 2.0, E.S1_CONN_REL, P),
                (2, 3.0, E.S1_CONN_REL, P),
            ]
        )
        sessions = extract_sessions(tr)
        assert {s.ue_id for s in sessions} == {1, 2}

    def test_device_filter(self, ground_truth_trace):
        all_sessions = extract_sessions(ground_truth_trace)
        phone_sessions = extract_sessions(ground_truth_trace, P)
        assert 0 < len(phone_sessions) < len(all_sessions)


class TestSessionStats:
    def test_empty(self):
        stats = session_stats(make_trace([(1, 0.0, E.HO, P)]))
        assert stats.num_sessions == 0
        assert math.isnan(stats.mean_duration)

    def test_basic_numbers(self):
        tr = make_trace(
            [
                (1, 0.0, E.SRV_REQ, P),
                (1, 10.0, E.S1_CONN_REL, P),
                (1, 30.0, E.SRV_REQ, P),
                (1, 50.0, E.S1_CONN_REL, P),
            ]
        )
        stats = session_stats(tr)
        assert stats.num_sessions == 2
        assert stats.mean_duration == pytest.approx(15.0)
        assert stats.sessions_per_ue == pytest.approx(2.0)
        assert stats.mean_intersession_gap == pytest.approx(20.0)

    def test_gap_nan_with_single_sessions(self):
        tr = make_trace(
            [(1, 0.0, E.SRV_REQ, P), (1, 10.0, E.S1_CONN_REL, P)]
        )
        assert math.isnan(session_stats(tr).mean_intersession_gap)

    def test_ground_truth_sessions_sane(self, ground_truth_trace):
        stats = session_stats(ground_truth_trace, P)
        assert stats.num_sessions > 100
        assert stats.mean_duration > 0
        assert stats.p95_duration >= stats.median_duration
        assert stats.mean_events >= 2.0

    def test_cars_have_more_handovers_per_session(self, ground_truth_trace):
        phones = session_stats(ground_truth_trace, P)
        cars = session_stats(ground_truth_trace, DeviceType.CONNECTED_CAR)
        assert cars.mean_handovers > phones.mean_handovers

    def test_synthesized_sessions_match_real_scale(
        self, ground_truth_trace, synthesized_trace
    ):
        real = session_stats(ground_truth_trace.window(3600.0, 7200.0), P)
        syn = session_stats(synthesized_trace, P)
        assert syn.num_sessions > 0
        # Median session duration within ~3x of the real one.
        ratio = syn.median_duration / real.median_duration
        assert 1 / 3 < ratio < 3
