"""Tests for the first-event model (repro.model.first_event)."""

import numpy as np
import pytest

from repro.model import FirstEventModel
from repro.trace import EventType

E = EventType


class TestFit:
    def test_p_active_counts_silent_segments(self):
        model = FirstEventModel.fit(
            [(E.SRV_REQ, 10.0), (E.TAU, 20.0)], num_segments=10
        )
        assert model.p_active == pytest.approx(0.2)

    def test_event_probs(self):
        model = FirstEventModel.fit(
            [(E.SRV_REQ, 1.0), (E.SRV_REQ, 2.0), (E.TAU, 3.0)], num_segments=3
        )
        assert model.event_probs[E.SRV_REQ] == pytest.approx(2 / 3)
        assert model.event_probs[E.TAU] == pytest.approx(1 / 3)

    def test_no_events(self):
        model = FirstEventModel.fit([], num_segments=5)
        assert model.p_active == 0.0
        assert model.event_probs == {}

    def test_more_events_than_segments_rejected(self):
        with pytest.raises(ValueError, match="more first events"):
            FirstEventModel.fit([(E.HO, 1.0)] * 3, num_segments=2)

    def test_zero_segments_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            FirstEventModel.fit([], num_segments=0)

    def test_invalid_p_active_rejected(self):
        from repro.distributions import EmpiricalCDF

        with pytest.raises(ValueError, match="p_active"):
            FirstEventModel(
                p_active=1.5, event_probs={}, offset=EmpiricalCDF([1.0])
            )


class TestSample:
    def test_silent_model_always_none(self, rng):
        model = FirstEventModel.fit([], num_segments=5)
        assert all(model.sample(rng) is None for _ in range(20))

    def test_always_active_model(self, rng):
        model = FirstEventModel.fit([(E.SRV_REQ, 100.0)], num_segments=1)
        event, offset = model.sample(rng)
        assert event == E.SRV_REQ
        assert 0 <= offset < 3600.0

    def test_activity_rate_converges(self, rng):
        model = FirstEventModel.fit(
            [(E.SRV_REQ, 5.0)] * 3, num_segments=10
        )
        hits = sum(model.sample(rng) is not None for _ in range(5000))
        assert hits / 5000 == pytest.approx(0.3, abs=0.03)

    def test_offsets_span_observed_range(self, rng):
        model = FirstEventModel.fit(
            [(E.SRV_REQ, 100.0), (E.SRV_REQ, 3000.0)], num_segments=2
        )
        offsets = [model.sample(rng)[1] for _ in range(200)]
        assert min(offsets) >= 100.0 - 1e-9
        assert max(offsets) <= 3000.0 + 1e-9

    def test_offset_clamped_to_hour(self, rng):
        model = FirstEventModel.fit([(E.HO, 3599.999)], num_segments=1)
        _, offset = model.sample(rng)
        assert offset < 3600.0


class TestSerialization:
    def test_roundtrip(self, rng):
        model = FirstEventModel.fit(
            [(E.SRV_REQ, 5.0), (E.TAU, 200.0), (E.ATCH, 12.0)], num_segments=6
        )
        back = FirstEventModel.from_dict(model.to_dict())
        assert back.p_active == model.p_active
        assert back.event_probs == model.event_probs
        r1, r2 = np.random.default_rng(4), np.random.default_rng(4)
        assert model.sample(r1) == back.sample(r2)
