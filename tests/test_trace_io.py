"""Tests for trace serialization (repro.trace.io)."""

import numpy as np
import pytest

from repro.trace import (
    DeviceType,
    EventType,
    Trace,
    read_csv,
    read_npz,
    write_csv,
    write_npz,
)

from conftest import make_trace

P = DeviceType.PHONE
E = EventType


@pytest.fixture()
def sample():
    return make_trace(
        [
            (1, 0.123, E.ATCH, P),
            (1, 10.5, E.SRV_REQ, P),
            (2, 3.004, E.HO, DeviceType.CONNECTED_CAR),
        ]
    )


class TestCsv:
    def test_roundtrip(self, sample, tmp_path):
        path = tmp_path / "trace.csv"
        write_csv(sample, path)
        back = read_csv(path)
        assert back == sample

    def test_header_written(self, sample, tmp_path):
        path = tmp_path / "trace.csv"
        write_csv(sample, path)
        first_line = path.read_text().splitlines()[0]
        assert first_line == "ue_id,time,event,device"

    def test_uses_protocol_names(self, sample, tmp_path):
        path = tmp_path / "trace.csv"
        write_csv(sample, path)
        body = path.read_text()
        assert "SRV_REQ" in body
        assert "CONNECTED_CAR" in body

    def test_millisecond_precision_preserved(self, sample, tmp_path):
        path = tmp_path / "trace.csv"
        write_csv(sample, path)
        back = read_csv(path)
        assert back.times[0] == pytest.approx(0.123, abs=1e-9)

    def test_rejects_bad_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c,d\n")
        with pytest.raises(ValueError, match="header"):
            read_csv(path)

    def test_rejects_short_row(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("ue_id,time,event,device\n1,2.0,ATCH\n")
        with pytest.raises(ValueError, match="4 columns"):
            read_csv(path)

    def test_empty_trace_roundtrip(self, tmp_path):
        path = tmp_path / "empty.csv"
        write_csv(Trace.empty(), path)
        assert len(read_csv(path)) == 0


class TestNpz:
    def test_roundtrip(self, sample, tmp_path):
        path = tmp_path / "trace.npz"
        write_npz(sample, path)
        back = read_npz(path)
        assert back == sample

    def test_exact_float_preservation(self, sample, tmp_path):
        path = tmp_path / "trace.npz"
        write_npz(sample, path)
        back = read_npz(path)
        assert np.array_equal(back.times, sample.times)

    def test_empty_trace_roundtrip(self, tmp_path):
        path = tmp_path / "empty.npz"
        write_npz(Trace.empty(), path)
        assert len(read_npz(path)) == 0
