"""Tests for trace serialization (repro.trace.io)."""

import numpy as np
import pytest

from repro.trace import (
    DeviceType,
    EventType,
    Trace,
    read_csv,
    read_npz,
    write_csv,
    write_npz,
)

from conftest import make_trace

P = DeviceType.PHONE
E = EventType


@pytest.fixture()
def sample():
    return make_trace(
        [
            (1, 0.123, E.ATCH, P),
            (1, 10.5, E.SRV_REQ, P),
            (2, 3.004, E.HO, DeviceType.CONNECTED_CAR),
        ]
    )


class TestCsv:
    def test_roundtrip(self, sample, tmp_path):
        path = tmp_path / "trace.csv"
        write_csv(sample, path)
        back = read_csv(path)
        assert back == sample

    def test_header_written(self, sample, tmp_path):
        path = tmp_path / "trace.csv"
        write_csv(sample, path)
        first_line = path.read_text().splitlines()[0]
        assert first_line == "ue_id,time,event,device"

    def test_uses_protocol_names(self, sample, tmp_path):
        path = tmp_path / "trace.csv"
        write_csv(sample, path)
        body = path.read_text()
        assert "SRV_REQ" in body
        assert "CONNECTED_CAR" in body

    def test_millisecond_precision_preserved(self, sample, tmp_path):
        path = tmp_path / "trace.csv"
        write_csv(sample, path)
        back = read_csv(path)
        assert back.times[0] == pytest.approx(0.123, abs=1e-9)

    def test_rejects_bad_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c,d\n")
        with pytest.raises(ValueError, match="header"):
            read_csv(path)

    def test_rejects_short_row(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("ue_id,time,event,device\n1,2.0,ATCH\n")
        with pytest.raises(ValueError, match="4 columns"):
            read_csv(path)

    def test_empty_trace_roundtrip(self, tmp_path):
        path = tmp_path / "empty.csv"
        write_csv(Trace.empty(), path)
        assert len(read_csv(path)) == 0


class TestNpz:
    def test_roundtrip(self, sample, tmp_path):
        path = tmp_path / "trace.npz"
        write_npz(sample, path)
        back = read_npz(path)
        assert back == sample

    def test_exact_float_preservation(self, sample, tmp_path):
        path = tmp_path / "trace.npz"
        write_npz(sample, path)
        back = read_npz(path)
        assert np.array_equal(back.times, sample.times)

    def test_empty_trace_roundtrip(self, tmp_path):
        path = tmp_path / "empty.npz"
        write_npz(Trace.empty(), path)
        assert len(read_npz(path)) == 0


class TestNpzMmap:
    def test_uncompressed_roundtrip_is_memory_mapped(self, sample, tmp_path):
        path = tmp_path / "trace.npz"
        write_npz(sample, path, compress=False)
        back = read_npz(path, mmap=True)
        assert back == sample
        # The Trace constructor strips the memmap subclass but keeps the
        # mapping alive (and copy-free) as each column's base.
        assert isinstance(back.times.base, np.memmap)

    def test_compressed_falls_back_to_full_read(self, sample, tmp_path):
        path = tmp_path / "trace.npz"
        write_npz(sample, path, compress=True)
        back = read_npz(path, mmap=True)
        assert back == sample
        assert not isinstance(back.times.base, np.memmap)

    def test_mmap_false_matches_default_reader(self, sample, tmp_path):
        path = tmp_path / "trace.npz"
        write_npz(sample, path, compress=False)
        assert read_npz(path, mmap=False) == sample

    def test_empty_trace_mmap(self, tmp_path):
        path = tmp_path / "empty.npz"
        write_npz(Trace.empty(), path, compress=False)
        assert len(read_npz(path, mmap=True)) == 0

    def test_exact_float_preservation(self, sample, tmp_path):
        path = tmp_path / "trace.npz"
        write_npz(sample, path, compress=False)
        back = read_npz(path, mmap=True)
        assert np.array_equal(back.times, sample.times)


class TestContentHash:
    def test_stable_across_roundtrip(self, sample, tmp_path):
        path = tmp_path / "trace.npz"
        write_npz(sample, path, compress=False)
        assert read_npz(path, mmap=True).content_hash() == sample.content_hash()

    def test_cached_per_instance(self, sample):
        assert sample.content_hash() is sample.content_hash()

    def test_differs_on_content_change(self, sample):
        shifted = Trace(
            sample.ue_ids, sample.times + 1.0,
            sample.event_types, sample.device_types,
        )
        assert shifted.content_hash() != sample.content_hash()
