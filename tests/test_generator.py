"""Tests for the traffic generator (repro.generator)."""

import numpy as np
import pytest

from repro.generator import TrafficGenerator, generate_ue_events
from repro.model import ModelSet
from repro.statemachines import replay_trace
from repro.trace import DeviceType, EventType, Trace

from conftest import TRACE_START_HOUR

E = EventType
P = DeviceType.PHONE


class TestResolveCounts:
    def test_total_split_follows_training_mix(self, ours_model_set):
        gen = TrafficGenerator(ours_model_set)
        counts = gen.resolve_counts(150)
        assert sum(counts.values()) == 150
        # Training mix was ~90/35/25 (UEs that never emitted an event
        # are invisible to the fitter, so allow small drift).
        assert abs(counts[P] - 90) <= 2
        assert abs(counts[DeviceType.CONNECTED_CAR] - 35) <= 2
        assert abs(counts[DeviceType.TABLET] - 25) <= 2

    def test_explicit_mapping(self, ours_model_set):
        gen = TrafficGenerator(ours_model_set)
        counts = gen.resolve_counts({P: 7})
        assert counts == {P: 7}

    def test_rejects_nonpositive(self, ours_model_set):
        with pytest.raises(ValueError):
            TrafficGenerator(ours_model_set).resolve_counts(0)

    def test_rejects_unfitted_device(self, ground_truth_trace):
        from repro.model import fit_model_set

        phones_only = ground_truth_trace.filter_device(P)
        ms = fit_model_set(phones_only, trace_start_hour=TRACE_START_HOUR, theta_n=25)
        gen = TrafficGenerator(ms)
        with pytest.raises(ValueError, match="device type"):
            gen.resolve_counts({DeviceType.TABLET: 5})


class TestGenerate:
    def test_reproducible(self, ours_model_set):
        gen = TrafficGenerator(ours_model_set)
        a = gen.generate(50, start_hour=18, seed=11)
        b = gen.generate(50, start_hour=18, seed=11)
        assert a == b

    def test_seed_matters(self, ours_model_set):
        gen = TrafficGenerator(ours_model_set)
        assert gen.generate(50, start_hour=18, seed=1) != gen.generate(
            50, start_hour=18, seed=2
        )

    def test_ue_ids_contiguous_from_first(self, ours_model_set):
        gen = TrafficGenerator(ours_model_set)
        tr = gen.generate(40, start_hour=18, seed=3, first_ue_id=100)
        assert tr.unique_ues().min() >= 100
        assert tr.unique_ues().max() < 140

    def test_times_within_horizon(self, ours_model_set):
        gen = TrafficGenerator(ours_model_set)
        tr = gen.generate(40, start_hour=18, num_hours=2, seed=3)
        assert tr.times.max() < 2 * 3600.0
        assert tr.times.min() >= 0.0

    def test_multi_hour_generation(self, ours_model_set):
        gen = TrafficGenerator(ours_model_set)
        tr = gen.generate(60, start_hour=TRACE_START_HOUR, num_hours=3, seed=5)
        hours_with_events = set((tr.times // 3600).astype(int).tolist())
        assert len(hours_with_events) >= 2

    def test_output_respects_state_machine(self, ours_model_set):
        gen = TrafficGenerator(ours_model_set)
        tr = gen.generate(80, start_hour=18, seed=7)
        results = replay_trace(tr)
        assert sum(r.violations for r in results.values()) == 0

    def test_scales_beyond_training_population(self, ours_model_set):
        """Design goal 3 (scalability): 4x the training population."""
        gen = TrafficGenerator(ours_model_set)
        tr = gen.generate(600, start_hour=18, seed=3)
        assert tr.num_ues > 300

    def test_every_event_labeled_with_owner(self, ours_model_set):
        """Design goal 2 (event-owner labeling)."""
        gen = TrafficGenerator(ours_model_set)
        tr = gen.generate(50, start_hour=18, seed=3)
        assert np.all(tr.ue_ids >= 0)
        # Device type is constant per UE.
        for _, sub in tr.per_ue():
            assert len(set(sub.device_types.tolist())) == 1

    def test_generate_hour_convenience(self, ours_model_set):
        gen = TrafficGenerator(ours_model_set)
        a = gen.generate_hour(30, 18, seed=4)
        b = gen.generate(30, start_hour=18, num_hours=1, seed=4)
        assert a == b

    def test_unfitted_hour_yields_silence(self, ours_model_set):
        gen = TrafficGenerator(ours_model_set)
        # Hour 3 (night) was never fitted from the 4-hour evening trace.
        tr = gen.generate(30, start_hour=3, num_hours=1, seed=4)
        assert len(tr) == 0

    def test_empty_result_is_trace(self, ours_model_set):
        gen = TrafficGenerator(ours_model_set)
        tr = gen.generate(5, start_hour=3, seed=4)
        assert isinstance(tr, Trace)

    def test_rejects_model_set_without_models(self):
        empty = ModelSet(
            machine_kind="two_level",
            family="empirical",
            clustered=True,
            models={},
            device_ues={},
            theta_f=5.0,
            theta_n=1000,
        )
        with pytest.raises(ValueError, match="no fitted models"):
            TrafficGenerator(empty)


class TestGenerateUeEvents:
    def test_rejects_bad_hours(self, ours_model_set, rng):
        with pytest.raises(ValueError):
            generate_ue_events(
                ours_model_set, P, 0, start_hour=18, num_hours=0, rng=rng
            )

    def test_chronological_per_hour(self, ours_model_set, rng):
        persona = ours_model_set.device_ues[P][0]
        times, events = generate_ue_events(
            ours_model_set, P, persona, start_hour=18, num_hours=2, rng=rng
        )
        assert len(times) == len(events)

    def test_base_overlay_produces_category2(self, base_model_set):
        """Base has no HO/TAU edges but must still emit them (overlay)."""
        gen = TrafficGenerator(base_model_set)
        tr = gen.generate(80, start_hour=18, seed=6)
        assert np.any(tr.event_types == int(E.HO))
        assert np.any(tr.event_types == int(E.TAU))
