"""Tests for the semi-Markov chain (repro.model.semi_markov)."""

import numpy as np
import pytest

from repro.distributions import EmpiricalCDF, Exponential
from repro.model import Edge, SemiMarkovChain, StateModel
from repro.trace import EventType

E = EventType


def two_state_chain() -> SemiMarkovChain:
    return SemiMarkovChain(
        {
            "A": StateModel(
                edges=(
                    Edge(E.SRV_REQ, "B", 0.7, Exponential(rate=1.0)),
                    Edge(E.DTCH, "A", 0.3, Exponential(rate=0.1)),
                )
            ),
            "B": StateModel(
                edges=(Edge(E.S1_CONN_REL, "A", 1.0, EmpiricalCDF([2.0, 4.0])),)
            ),
        }
    )


class TestStateModel:
    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum"):
            StateModel(
                edges=(
                    Edge(E.HO, "x", 0.5, Exponential(1.0)),
                    Edge(E.TAU, "y", 0.3, Exponential(1.0)),
                )
            )

    def test_absorbing(self):
        assert StateModel(edges=()).is_absorbing


class TestStep:
    def test_step_returns_triple(self, rng):
        chain = two_state_chain()
        dwell, event, target = chain.step("B", rng)
        assert event == E.S1_CONN_REL
        assert target == "A"
        assert 2.0 <= dwell <= 4.0

    def test_step_absorbing_returns_none(self, rng):
        chain = SemiMarkovChain({"X": StateModel(edges=())})
        assert chain.step("X", rng) is None

    def test_step_unknown_state_returns_none(self, rng):
        assert two_state_chain().step("missing", rng) is None

    def test_transition_frequencies_converge(self, rng):
        chain = two_state_chain()
        picks = [chain.step("A", rng)[1] for _ in range(5000)]
        frac_srv = sum(1 for e in picks if e == E.SRV_REQ) / len(picks)
        assert frac_srv == pytest.approx(0.7, abs=0.03)

    def test_dwell_never_zero(self, rng):
        # Even a degenerate sojourn cannot stall the clock.
        chain = SemiMarkovChain(
            {"A": StateModel(edges=(Edge(E.HO, "A", 1.0, EmpiricalCDF([0.0])),))}
        )
        dwell, _, _ = chain.step("A", rng)
        assert dwell > 0


class TestIntrospection:
    def test_transition_matrix(self):
        matrix = two_state_chain().transition_matrix()
        assert matrix["A"][(E.SRV_REQ, "B")] == pytest.approx(0.7)
        assert matrix["B"][(E.S1_CONN_REL, "A")] == 1.0

    def test_expected_dwell(self):
        chain = two_state_chain()
        expected = 0.7 * 1.0 + 0.3 * 10.0
        assert chain.expected_dwell("A") == pytest.approx(expected)
        assert chain.expected_dwell("B") == pytest.approx(3.0)

    def test_expected_dwell_absorbing(self):
        chain = SemiMarkovChain({"X": StateModel(edges=())})
        assert chain.expected_dwell("X") is None


class TestSerialization:
    def test_roundtrip(self, rng):
        chain = two_state_chain()
        back = SemiMarkovChain.from_dict(chain.to_dict())
        assert back.transition_matrix() == chain.transition_matrix()
        # Sampling agrees given the same RNG stream.
        r1, r2 = np.random.default_rng(1), np.random.default_rng(1)
        assert chain.step("A", r1) == back.step("A", r2)

    def test_dict_is_json_compatible(self):
        import json

        payload = json.dumps(two_state_chain().to_dict())
        assert "SRV_REQ" in payload
