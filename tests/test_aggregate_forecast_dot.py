"""Tests for aggregate validation, population forecasting, and DOT export."""

import numpy as np
import pytest

from repro.groundtruth import (
    SCENARIOS,
    GrowthScenario,
    project_population,
)
from repro.statemachines import (
    emm_ecm_machine,
    machine_to_dot,
    nr_sa_machine,
    two_level_machine,
)
from repro.trace import DeviceType, EventType, Trace
from repro.validation import compare_aggregate, rate_curve

from conftest import make_trace

E = EventType
P = DeviceType.PHONE


class TestRateCurve:
    def test_binning(self):
        tr = make_trace(
            [(1, 10.0, E.HO, P), (1, 30.0, E.HO, P), (1, 70.0, E.HO, P)]
        )
        curve = rate_curve(tr, bin_seconds=60.0, duration=120.0)
        assert list(curve) == [2, 1]

    def test_event_filter(self):
        tr = make_trace([(1, 10.0, E.HO, P), (1, 20.0, E.TAU, P)])
        curve = rate_curve(tr, bin_seconds=60.0, duration=60.0, event_type=E.HO)
        assert list(curve) == [1]

    def test_rejects_bad_bin(self, tiny_trace):
        with pytest.raises(ValueError):
            rate_curve(tiny_trace, bin_seconds=0.0)

    def test_empty_trace(self):
        curve = rate_curve(Trace.empty(), bin_seconds=60.0, duration=120.0)
        assert list(curve) == [0, 0]


class TestCompareAggregate:
    def test_identical_traces(self, ground_truth_trace):
        cmp = compare_aggregate(ground_truth_trace, ground_truth_trace)
        assert cmp.volume_ratio == 1.0
        assert cmp.rate_curve_correlation == pytest.approx(1.0)
        assert cmp.rate_distribution_ydistance == 0.0
        assert cmp.burstiness_gap_mean == pytest.approx(0.0)

    def test_synthesized_volume_close(self, ground_truth_trace, synthesized_trace):
        real_hour = ground_truth_trace.window(3600.0, 7200.0).shift(-3600.0)
        cmp = compare_aggregate(real_hour, synthesized_trace)
        assert 0.4 < cmp.volume_ratio < 2.5

    def test_rejects_empty(self, ground_truth_trace):
        with pytest.raises(ValueError):
            compare_aggregate(ground_truth_trace, Trace.empty())


class TestForecast:
    def test_flat_scenario_identity(self):
        base = {DeviceType.PHONE: 100, DeviceType.CONNECTED_CAR: 50}
        assert project_population(base, 5, scenario="flat") == base

    def test_zero_years_identity(self):
        base = {DeviceType.PHONE: 10}
        assert project_population(base, 0) == base

    def test_compound_growth(self):
        base = {DeviceType.CONNECTED_CAR: 100}
        out = project_population(base, 2, scenario="baseline")
        assert out[DeviceType.CONNECTED_CAR] == round(100 * 1.25**2)

    def test_iot_boom_grows_cars_fastest(self):
        base = {dt: 1000 for dt in DeviceType}
        out = project_population(base, 5, scenario="iot-boom")
        assert out[DeviceType.CONNECTED_CAR] > out[DeviceType.TABLET]
        assert out[DeviceType.TABLET] > out[DeviceType.PHONE]

    def test_unknown_scenario(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            project_population({DeviceType.PHONE: 1}, 1, scenario="moon")

    def test_negative_years_rejected(self):
        scenario = SCENARIOS["baseline"]
        with pytest.raises(ValueError):
            scenario.project({DeviceType.PHONE: 1}, -1)

    def test_custom_scenario(self):
        s = GrowthScenario("double", {DeviceType.PHONE: 2.0})
        assert s.project({DeviceType.PHONE: 3}, 2) == {DeviceType.PHONE: 12}


class TestDotExport:
    def test_two_level_renders_clusters(self):
        dot = machine_to_dot(two_level_machine())
        assert dot.startswith('digraph "LTE-two-level"')
        assert 'label="CONNECTED"' in dot
        assert 'label="IDLE"' in dot
        assert dot.rstrip().endswith("}")

    def test_all_transitions_present(self):
        machine = two_level_machine()
        dot = machine_to_dot(machine)
        assert dot.count("->") == len(machine.transitions()) + 1  # +start edge

    def test_flat_machine(self):
        dot = machine_to_dot(emm_ecm_machine())
        assert "subgraph" not in dot
        assert '"DEREGISTERED" -> "CONNECTED" [label="ATCH"]' in dot

    def test_event_renaming(self):
        from repro.trace import LTE_TO_NR_EVENT

        names = {int(lte): nr.name for lte, nr in LTE_TO_NR_EVENT.items()}
        dot = machine_to_dot(nr_sa_machine(), event_names=names)
        assert 'label="REGISTER"' in dot
        assert 'label="AN_REL"' in dot
        assert 'label="ATCH"' not in dot

    def test_initial_state_marked(self):
        dot = machine_to_dot(two_level_machine())
        assert '__start -> "DEREGISTERED"' in dot
