"""Tests for the generic FSM framework (repro.statemachines.fsm)."""

import pytest

from repro.statemachines import (
    HierarchicalStateMachine,
    InvalidTransitionError,
    StateMachine,
    Transition,
)
from repro.trace import EventType

E = EventType


@pytest.fixture()
def toy():
    return StateMachine(
        "toy",
        [
            Transition("A", E.ATCH, "B"),
            Transition("B", E.DTCH, "A"),
            Transition("B", E.HO, "B"),
        ],
        initial_state="A",
    )


class TestStateMachine:
    def test_states_collected(self, toy):
        assert toy.states == {"A", "B"}

    def test_next_state(self, toy):
        assert toy.next_state("A", E.ATCH) == "B"
        assert toy.next_state("B", E.HO) == "B"

    def test_invalid_transition_raises(self, toy):
        with pytest.raises(InvalidTransitionError) as exc:
            toy.next_state("A", E.HO)
        assert exc.value.state == "A"
        assert exc.value.event == E.HO

    def test_can_fire(self, toy):
        assert toy.can_fire("A", E.ATCH)
        assert not toy.can_fire("A", E.DTCH)

    def test_events_from_sorted(self, toy):
        assert toy.events_from("B") == [E.DTCH, E.HO]

    def test_successors(self, toy):
        assert toy.successors("B") == [(E.DTCH, "A"), (E.HO, "B")]

    def test_walk_includes_start(self, toy):
        path = toy.walk([E.ATCH, E.HO, E.DTCH])
        assert path == ["A", "B", "B", "A"]

    def test_walk_custom_start(self, toy):
        assert toy.walk([E.DTCH], start="B") == ["B", "A"]

    def test_accepts(self, toy):
        assert toy.accepts([E.ATCH, E.DTCH])
        assert not toy.accepts([E.DTCH])

    def test_reachable_states(self, toy):
        assert toy.reachable_states() == {"A", "B"}

    def test_conflicting_transition_rejected(self):
        with pytest.raises(ValueError, match="conflicting"):
            StateMachine(
                "bad",
                [
                    Transition("A", E.ATCH, "B"),
                    Transition("A", E.ATCH, "C"),
                ],
                initial_state="A",
            )

    def test_duplicate_identical_transition_allowed(self):
        machine = StateMachine(
            "dup",
            [Transition("A", E.ATCH, "B"), Transition("A", E.ATCH, "B")],
            initial_state="A",
        )
        assert len(machine.transitions()) == 1

    def test_unknown_initial_state_rejected(self):
        # An initial state that appears in no transition is still valid
        # (it is added to the state set), so the error case is a machine
        # built purely from its own initial state.
        machine = StateMachine("lonely", [], initial_state="X")
        assert machine.states == {"X"}

    def test_transitions_stable_order(self, toy):
        tr = toy.transitions()
        assert tr == sorted(tr, key=lambda t: (t.source, int(t.event)))

    def test_repr(self, toy):
        assert "toy" in repr(toy)


class TestHierarchicalStateMachine:
    @pytest.fixture()
    def hierarchy(self):
        return HierarchicalStateMachine(
            "h",
            [
                Transition("off", E.ATCH, "on_a"),
                Transition("on_a", E.HO, "on_b"),
                Transition("on_b", E.DTCH, "off"),
            ],
            initial_state="off",
            parent_of={"off": "OFF", "on_a": "ON", "on_b": "ON"},
        )

    def test_parent(self, hierarchy):
        assert hierarchy.parent("on_a") == "ON"
        assert hierarchy.parent("off") == "OFF"

    def test_leaves_of(self, hierarchy):
        assert hierarchy.leaves_of("ON") == {"on_a", "on_b"}

    def test_top_states(self, hierarchy):
        assert hierarchy.top_states == {"OFF", "ON"}

    def test_is_top_level_change(self, hierarchy):
        assert hierarchy.is_top_level_change("off", "on_a")
        assert not hierarchy.is_top_level_change("on_a", "on_b")

    def test_missing_parent_rejected(self):
        with pytest.raises(ValueError, match="without a parent"):
            HierarchicalStateMachine(
                "bad",
                [Transition("a", E.ATCH, "b")],
                initial_state="a",
                parent_of={"a": "A"},
            )
