"""Tests for the event/device vocabulary (repro.trace.events)."""

import pytest

from repro.trace import (
    ALL_DEVICE_TYPES,
    ALL_EVENT_TYPES,
    DOMINANT_EVENTS,
    LTE_TO_NR_EVENT,
    NR_TO_LTE_EVENT,
    DeviceType,
    EventType,
    NrEventType,
    quantize_timestamp,
)


class TestEventType:
    def test_six_primary_event_types(self):
        assert len(ALL_EVENT_TYPES) == 6

    def test_category1_members(self):
        cat1 = {e for e in EventType if e.is_category1}
        assert cat1 == {
            EventType.ATCH,
            EventType.DTCH,
            EventType.SRV_REQ,
            EventType.S1_CONN_REL,
        }

    def test_category2_members(self):
        cat2 = {e for e in EventType if e.is_category2}
        assert cat2 == {EventType.HO, EventType.TAU}

    def test_categories_partition_event_space(self):
        for event in EventType:
            assert event.is_category1 != event.is_category2

    def test_dominant_events_are_srv_req_and_release(self):
        assert set(DOMINANT_EVENTS) == {EventType.SRV_REQ, EventType.S1_CONN_REL}

    def test_values_are_stable_encoding(self):
        # On-disk compatibility: these values must never change.
        assert EventType.ATCH == 0
        assert EventType.DTCH == 1
        assert EventType.SRV_REQ == 2
        assert EventType.S1_CONN_REL == 3
        assert EventType.HO == 4
        assert EventType.TAU == 5


class TestNrMapping:
    def test_mapping_covers_all_but_tau(self):
        assert set(LTE_TO_NR_EVENT) == set(EventType) - {EventType.TAU}

    def test_mapping_is_one_to_one(self):
        assert len(set(LTE_TO_NR_EVENT.values())) == len(LTE_TO_NR_EVENT)

    def test_inverse_mapping_roundtrips(self):
        for lte, nr in LTE_TO_NR_EVENT.items():
            assert NR_TO_LTE_EVENT[nr] == lte

    def test_table2_names(self):
        assert LTE_TO_NR_EVENT[EventType.ATCH] == NrEventType.REGISTER
        assert LTE_TO_NR_EVENT[EventType.DTCH] == NrEventType.DEREGISTER
        assert LTE_TO_NR_EVENT[EventType.SRV_REQ] == NrEventType.SRV_REQ
        assert LTE_TO_NR_EVENT[EventType.S1_CONN_REL] == NrEventType.AN_REL
        assert LTE_TO_NR_EVENT[EventType.HO] == NrEventType.HO

    def test_integer_codes_align_across_generations(self):
        for lte, nr in LTE_TO_NR_EVENT.items():
            assert int(lte) == int(nr)


class TestDeviceType:
    def test_three_device_types(self):
        assert len(ALL_DEVICE_TYPES) == 3

    def test_short_names_match_paper(self):
        assert DeviceType.PHONE.short_name == "P"
        assert DeviceType.CONNECTED_CAR.short_name == "CC"
        assert DeviceType.TABLET.short_name == "T"


class TestQuantizeTimestamp:
    def test_rounds_to_millisecond(self):
        assert quantize_timestamp(1.23456) == pytest.approx(1.235)

    def test_exact_millisecond_unchanged(self):
        assert quantize_timestamp(5.001) == pytest.approx(5.001)

    def test_zero(self):
        assert quantize_timestamp(0.0) == 0.0

    def test_idempotent(self):
        once = quantize_timestamp(7.7777)
        assert quantize_timestamp(once) == pytest.approx(once)
