"""Tests for 5G mapping and trace views (repro.fiveg)."""

import numpy as np
import pytest

from repro.fiveg import (
    event_label,
    nr_event_name,
    nsa_breakdown,
    sa_breakdown,
    to_sa_trace,
)
from repro.trace import DeviceType, EventType

from conftest import make_trace

E = EventType
P = DeviceType.PHONE


class TestEventNames:
    def test_table2_mapping(self):
        assert nr_event_name(E.ATCH) == "REGISTER"
        assert nr_event_name(E.DTCH) == "DEREGISTER"
        assert nr_event_name(E.SRV_REQ) == "SRV_REQ"
        assert nr_event_name(E.S1_CONN_REL) == "AN_REL"
        assert nr_event_name(E.HO) == "HO"

    def test_tau_has_no_nr_name(self):
        with pytest.raises(KeyError):
            nr_event_name(E.TAU)

    def test_event_label_lte_and_nsa(self):
        assert event_label(E.S1_CONN_REL, generation="lte") == "S1_CONN_REL"
        assert event_label(E.S1_CONN_REL, generation="nsa") == "S1_CONN_REL"

    def test_event_label_sa(self):
        assert event_label(E.S1_CONN_REL, generation="sa") == "AN_REL"

    def test_event_label_unknown_generation(self):
        with pytest.raises(ValueError):
            event_label(E.HO, generation="6g")


class TestSaTrace:
    def test_tau_removed(self):
        tr = make_trace(
            [(1, 1.0, E.SRV_REQ, P), (1, 2.0, E.TAU, P), (1, 3.0, E.HO, P)]
        )
        sa = to_sa_trace(tr)
        assert len(sa) == 2
        assert not np.any(sa.event_types == int(E.TAU))

    def test_other_events_preserved(self, ground_truth_trace):
        sa = to_sa_trace(ground_truth_trace)
        n_tau = int(np.count_nonzero(ground_truth_trace.event_types == int(E.TAU)))
        assert len(sa) == len(ground_truth_trace) - n_tau


class TestBreakdowns:
    def test_sa_breakdown_uses_nr_names(self, ground_truth_trace):
        bd = sa_breakdown(ground_truth_trace, P)
        assert set(bd) == {"REGISTER", "DEREGISTER", "SRV_REQ", "AN_REL", "HO"}
        assert sum(bd.values()) == pytest.approx(1.0)

    def test_nsa_breakdown_keeps_tau(self, ground_truth_trace):
        bd = nsa_breakdown(ground_truth_trace, P)
        assert "TAU" in bd
        assert sum(bd.values()) == pytest.approx(1.0)

    def test_empty_device(self):
        tr = make_trace([(1, 1.0, E.HO, P)])
        bd = sa_breakdown(tr, DeviceType.TABLET)
        assert all(v == 0.0 for v in bd.values())
