"""Tests for the statistical machinery (repro.stats)."""

import math

import numpy as np
import pytest

from repro.distributions import Exponential, Lognormal, Pareto, Tcplib, Weibull
from repro.stats import (
    anderson_exponential,
    burstiness_gap,
    ecdf,
    evaluate_ecdf,
    fit_and_ks_test,
    kolmogorov_sf,
    ks_distance_to,
    ks_test,
    max_y_distance,
    poisson_reference_curve,
    variance_time_curve,
)


@pytest.fixture()
def rng():
    return np.random.default_rng(7)


class TestEcdf:
    def test_ecdf_shape(self):
        xs, ps = ecdf([3.0, 1.0, 2.0])
        assert list(xs) == [1.0, 2.0, 3.0]
        assert list(ps) == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_ecdf_empty_rejected(self):
        with pytest.raises(ValueError):
            ecdf([])

    def test_evaluate_ecdf(self):
        values = evaluate_ecdf([1.0, 2.0, 3.0], [0.5, 2.0, 10.0])
        assert list(values) == pytest.approx([0.0, 2 / 3, 1.0])

    def test_evaluate_ecdf_empty_rejected(self):
        # Regression: this used to divide by zero and return NaNs.
        with pytest.raises(ValueError, match="zero samples"):
            evaluate_ecdf([], [1.0, 2.0])

    def test_max_y_distance_identical(self):
        assert max_y_distance([1, 2, 3], [1, 2, 3]) == 0.0

    def test_max_y_distance_disjoint(self):
        assert max_y_distance([1, 2], [10, 20]) == 1.0

    def test_max_y_distance_symmetry(self, rng):
        a = rng.exponential(1.0, 100)
        b = rng.exponential(2.0, 150)
        assert max_y_distance(a, b) == pytest.approx(max_y_distance(b, a))

    def test_max_y_distance_known_value(self):
        # F_a jumps to 1 at 1; F_b is 0 until 2 -> distance 1 at x=1...
        # with partial overlap: a={1,3}, b={2,4}: at x=1, Fa=0.5, Fb=0.
        d = max_y_distance([1.0, 3.0], [2.0, 4.0])
        assert d == pytest.approx(0.5)

    def test_ks_distance_to_uniformity(self, rng):
        data = rng.exponential(2.0, 2_000)
        d = ks_distance_to(Exponential(rate=0.5), data)
        assert d < 0.05

    def test_ks_distance_to_wrong_model(self, rng):
        data = rng.exponential(2.0, 2_000)
        d = ks_distance_to(Exponential(rate=5.0), data)
        assert d > 0.3


class TestKolmogorovSf:
    def test_at_zero(self):
        assert kolmogorov_sf(0.0) == 1.0

    def test_monotone_decreasing(self):
        xs = [0.2, 0.5, 1.0, 1.5, 2.0]
        values = [kolmogorov_sf(x) for x in xs]
        assert values == sorted(values, reverse=True)

    def test_known_critical_value(self):
        # Q(1.36) ~= 0.05 (the classic 5% critical value).
        assert kolmogorov_sf(1.36) == pytest.approx(0.05, abs=0.003)


class TestKsTest:
    def test_retains_true_null(self, rng):
        data = rng.exponential(1.0, 500)
        result = ks_test(Exponential.fit(data), data)
        assert result.passes()
        assert result.n == 500

    def test_rejects_wrong_family(self, rng):
        data = rng.lognormal(0.0, 2.0, 500)
        assert not ks_test(Exponential.fit(data), data).passes()

    def test_fit_and_ks_test(self, rng):
        data = rng.lognormal(0.0, 2.0, 500)
        for cls in (Exponential, Pareto, Weibull, Tcplib):
            assert not fit_and_ks_test(cls, data).passes(), cls.family

    def test_lognormal_fits_itself(self, rng):
        data = rng.lognormal(0.0, 2.0, 500)
        assert fit_and_ks_test(Lognormal, data).passes()

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            ks_test(Exponential(rate=1.0), [])

    def test_p_value_range(self, rng):
        result = ks_test(Exponential(rate=1.0), rng.exponential(1.0, 100))
        assert 0.0 <= result.p_value <= 1.0


class TestAndersonDarling:
    def test_retains_exponential(self, rng):
        data = rng.exponential(3.0, 500)
        assert anderson_exponential(data).passes()

    def test_rejects_lognormal(self, rng):
        data = rng.lognormal(0.0, 1.5, 500)
        assert not anderson_exponential(data).passes()

    def test_rejects_heavier_tail_than_ks_would(self, rng):
        """A² gives more weight to tails (§4.1.2)."""
        # Mild contamination in the upper tail.
        data = np.concatenate(
            [rng.exponential(1.0, 950), rng.exponential(12.0, 50)]
        )
        assert not anderson_exponential(data).passes()

    def test_critical_values_monotone(self, rng):
        result = anderson_exponential(rng.exponential(1.0, 100))
        assert list(result.critical_values) == sorted(result.critical_values)

    def test_unknown_significance_rejected(self, rng):
        result = anderson_exponential(rng.exponential(1.0, 100))
        with pytest.raises(ValueError, match="not tabulated"):
            result.passes(0.07)

    def test_needs_two_samples(self):
        with pytest.raises(ValueError):
            anderson_exponential([1.0])

    def test_matches_scipy(self, rng):
        scipy_stats = pytest.importorskip("scipy.stats")
        data = rng.exponential(2.0, 300)
        ours = anderson_exponential(data)
        try:
            # SciPy >= 1.17: method= must be given to silence the
            # critical-value migration FutureWarning.
            theirs = scipy_stats.anderson(data, dist="expon", method="interpolate")
        except TypeError:  # SciPy < 1.17 has no method= parameter
            theirs = scipy_stats.anderson(data, dist="expon")
        # scipy reports the uncorrected statistic; compare loosely.
        assert ours.statistic == pytest.approx(
            theirs.statistic * (1 + 0.6 / len(data)), rel=1e-6
        )


class TestVarianceTime:
    def test_poisson_decays_like_one_over_m(self, rng):
        times = np.sort(rng.uniform(0, 20_000, 60_000))
        curve = variance_time_curve(times, duration=20_000.0)
        # Slope of log-var vs log-M should be ~ -1 for Poisson.
        logs = np.log10(curve.normalized_variance)
        log_m = np.log10(curve.scales)
        slope = np.polyfit(log_m, logs, 1)[0]
        assert slope == pytest.approx(-1.0, abs=0.2)

    def test_bursty_traffic_sits_above_poisson(self, rng):
        # On/off bursts: strongly correlated arrivals.
        bursts = []
        t = 0.0
        while t < 20_000:
            n = rng.integers(50, 150)
            bursts.append(t + np.sort(rng.uniform(0, 10.0, n)))
            t += rng.exponential(400.0)
        times = np.concatenate(bursts)
        observed = variance_time_curve(times, duration=20_000.0)
        rate = len(times) / 20_000.0
        reference = poisson_reference_curve(rate, 20_000.0, rng)
        gap = burstiness_gap(observed, reference)
        # At large scales the burst process is far burstier.
        assert gap[-3:].mean() > 0.5

    def test_requires_events(self):
        with pytest.raises(ValueError):
            variance_time_curve([])

    def test_scales_with_too_few_windows_dropped(self, rng):
        times = rng.uniform(0, 100.0, 1000)
        curve = variance_time_curve(times, duration=100.0, scales=[1.0, 1000.0])
        assert 1000.0 not in curve.scales

    def test_reference_requires_positive_rate(self, rng):
        with pytest.raises(ValueError):
            poisson_reference_curve(0.0, 100.0, rng)

    def test_burstiness_gap_requires_common_scales(self, rng):
        a = variance_time_curve(rng.uniform(0, 1000, 500), scales=[1.0, 10.0])
        b = variance_time_curve(rng.uniform(0, 1000, 500), scales=[5.0])
        with pytest.raises(ValueError, match="common"):
            burstiness_gap(a, b)

    def test_log10_output(self, rng):
        curve = variance_time_curve(rng.uniform(0, 1000, 2000))
        assert np.all(np.isfinite(curve.log10()))
