"""Tests for 4G -> 5G parameter scaling (repro.model.scaling)."""

import numpy as np
import pytest

from repro.distributions import EmpiricalCDF, Exponential
from repro.generator import TrafficGenerator
from repro.model import (
    NSA_HO_SCALE,
    SA_HO_SCALE,
    Edge,
    SemiMarkovChain,
    StateModel,
    drop_event,
    scale_event_frequency,
    scale_to_nsa,
    scale_to_sa,
)
from repro.statemachines import nr
from repro.trace import DeviceType, EventType

E = EventType


def chain_with_ho() -> SemiMarkovChain:
    return SemiMarkovChain(
        {
            "SRV_REQ_S": StateModel(
                edges=(
                    Edge(E.HO, "HO_S", 0.2, Exponential(rate=0.1)),
                    Edge(E.TAU, "TAU_S_CONN", 0.3, Exponential(rate=0.2)),
                    Edge(E.S1_CONN_REL, "S1_REL_S_1", 0.5, EmpiricalCDF([10.0, 20.0])),
                )
            ),
        }
    )


class TestScaleEventFrequency:
    def test_odds_scaling(self):
        scaled = scale_event_frequency(chain_with_ho(), E.HO, 4.0)
        probs = {
            e.event: e.probability
            for e in scaled.states["SRV_REQ_S"].edges
        }
        # odds: HO 0.2*4=0.8 vs TAU 0.3 vs REL 0.5 -> normalize by 1.6.
        assert probs[E.HO] == pytest.approx(0.8 / 1.6)
        assert probs[E.TAU] == pytest.approx(0.3 / 1.6)
        assert sum(probs.values()) == pytest.approx(1.0)

    def test_sojourn_time_shrinks(self):
        scaled = scale_event_frequency(chain_with_ho(), E.HO, 4.0)
        ho_edge = next(
            e for e in scaled.states["SRV_REQ_S"].edges if e.event == E.HO
        )
        assert ho_edge.sojourn.mean() == pytest.approx(10.0 / 4.0)

    def test_other_sojourns_untouched(self):
        scaled = scale_event_frequency(chain_with_ho(), E.HO, 4.0)
        rel_edge = next(
            e
            for e in scaled.states["SRV_REQ_S"].edges
            if e.event == E.S1_CONN_REL
        )
        assert rel_edge.sojourn.mean() == pytest.approx(15.0)

    def test_identity_scale(self):
        scaled = scale_event_frequency(chain_with_ho(), E.HO, 1.0)
        assert scaled.transition_matrix() == chain_with_ho().transition_matrix()

    def test_rejects_nonpositive_factor(self):
        with pytest.raises(ValueError):
            scale_event_frequency(chain_with_ho(), E.HO, 0.0)


class TestDropEvent:
    def test_edges_removed_and_renormalized(self):
        dropped = drop_event(chain_with_ho(), E.TAU)
        probs = {
            e.event: e.probability for e in dropped.states["SRV_REQ_S"].edges
        }
        assert E.TAU not in probs
        assert sum(probs.values()) == pytest.approx(1.0)
        assert probs[E.HO] == pytest.approx(0.2 / 0.7)

    def test_state_with_only_dropped_edges_becomes_absorbing(self):
        chain = SemiMarkovChain(
            {"X": StateModel(edges=(Edge(E.TAU, "X", 1.0, Exponential(1.0)),))}
        )
        dropped = drop_event(chain, E.TAU)
        assert dropped.states["X"].is_absorbing


class TestNsaScaling:
    def test_constants_match_paper(self):
        assert NSA_HO_SCALE == 4.6
        assert SA_HO_SCALE == 3.0

    def test_nsa_keeps_machine_and_tau(self, ours_model_set):
        nsa = scale_to_nsa(ours_model_set)
        assert nsa.machine_kind == "two_level"
        # TAU still generated.
        trace = TrafficGenerator(nsa).generate(60, start_hour=18, seed=2)
        assert np.any(trace.event_types == int(E.TAU))

    def test_nsa_increases_ho_share(self, ours_model_set):
        lte = TrafficGenerator(ours_model_set).generate(100, start_hour=18, seed=2)
        nsa = TrafficGenerator(scale_to_nsa(ours_model_set)).generate(
            100, start_hour=18, seed=2
        )
        lte_ho = lte.breakdown()[E.HO]
        nsa_ho = nsa.breakdown()[E.HO]
        assert nsa_ho > 1.5 * lte_ho

    def test_requires_two_level(self, base_model_set):
        with pytest.raises(ValueError, match="two-level"):
            scale_to_nsa(base_model_set)


class TestSaScaling:
    def test_sa_machine_kind(self, ours_model_set):
        sa = scale_to_sa(ours_model_set)
        assert sa.machine_kind == "nr_sa"

    def test_sa_has_no_tau(self, ours_model_set):
        sa = scale_to_sa(ours_model_set)
        trace = TrafficGenerator(sa).generate(100, start_hour=18, seed=2)
        assert not np.any(trace.event_types == int(E.TAU))

    def test_sa_states_renamed(self, ours_model_set):
        sa = scale_to_sa(ours_model_set)
        dt = DeviceType.PHONE
        h = sa.hours(dt)[0]
        for cm in sa.models[dt][h].clusters:
            for state in cm.chain.states:
                assert state in set(nr.NR_STATES)

    def test_sa_ho_between_lte_and_nsa(self, ours_model_set):
        """Table 7: NSA has more HO than SA, both more than LTE."""
        gen = lambda ms: TrafficGenerator(ms).generate(150, start_hour=18, seed=2)
        lte_ho = gen(ours_model_set).breakdown()[E.HO]
        nsa_ho = gen(scale_to_nsa(ours_model_set)).breakdown()[E.HO]
        sa_ho = gen(scale_to_sa(ours_model_set)).breakdown()[E.HO]
        assert lte_ho < sa_ho < nsa_ho

    def test_sa_traces_valid_for_nr_machine(self, ours_model_set):
        from repro.statemachines import replay_trace

        sa = scale_to_sa(ours_model_set)
        trace = TrafficGenerator(sa).generate(80, start_hour=18, seed=9)
        results = replay_trace(trace, sa.machine())
        assert sum(r.violations for r in results.values()) == 0

    def test_first_event_tau_removed(self, ours_model_set):
        sa = scale_to_sa(ours_model_set)
        for dt in sa.models:
            for h in sa.hours(dt):
                for cm in sa.models[dt][h].clusters:
                    assert E.TAU not in cm.first_event.event_probs
