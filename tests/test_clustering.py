"""Tests for adaptive clustering (repro.clustering)."""

import numpy as np
import pytest

from repro.clustering import (
    DEFAULT_THETA_F,
    DEFAULT_THETA_N,
    FEATURE_NAMES,
    NUM_FEATURES,
    adaptive_cluster,
    extract_features,
    single_cluster,
    ue_features,
)
from repro.trace import DeviceType, EventType

from conftest import make_trace

E = EventType
P = DeviceType.PHONE


class TestFeatures:
    def test_four_features(self):
        assert NUM_FEATURES == 4
        assert FEATURE_NAMES == (
            "srv_req_count",
            "s1_conn_rel_count",
            "connected_sojourn_std",
            "idle_sojourn_std",
        )

    def test_counts(self):
        events = np.array([int(E.SRV_REQ), int(E.S1_CONN_REL), int(E.SRV_REQ)])
        times = np.array([1.0, 5.0, 10.0])
        f = ue_features(events, times)
        assert f[0] == 2.0  # SRV_REQ count
        assert f[1] == 1.0  # S1_CONN_REL count

    def test_sojourn_std_zero_with_single_visit(self):
        events = np.array([int(E.SRV_REQ), int(E.S1_CONN_REL)])
        times = np.array([1.0, 5.0])
        f = ue_features(events, times)
        assert f[2] == 0.0
        assert f[3] == 0.0

    def test_sojourn_std_from_multiple_visits(self):
        # Two CONNECTED visits of durations 4 and 10 -> std 3.
        events = np.array(
            [
                int(E.SRV_REQ), int(E.S1_CONN_REL),
                int(E.SRV_REQ), int(E.S1_CONN_REL),
                int(E.SRV_REQ), int(E.S1_CONN_REL),
            ]
        )
        times = np.array([0.0, 4.0, 10.0, 20.0, 30.0, 31.0])
        f = ue_features(events, times)
        connected = np.array([4.0, 10.0, 1.0])
        assert f[2] == pytest.approx(connected.std())

    def test_extract_features_all_ues(self, tiny_trace):
        feats = extract_features(tiny_trace)
        assert set(feats) == {1, 2}
        assert all(v.shape == (4,) for v in feats.values())


class TestAdaptiveCluster:
    def test_defaults_match_paper(self):
        assert DEFAULT_THETA_F == 5.0
        assert DEFAULT_THETA_N == 1000

    def test_empty_input(self):
        result = adaptive_cluster({})
        assert result.num_clusters == 0

    def test_partition_is_exact(self, rng):
        features = {i: rng.uniform(0, 50, 4) for i in range(300)}
        result = adaptive_cluster(features, theta_n=20)
        covered = sorted(
            ue for c in result.clusters for ue in c.ue_ids
        )
        assert covered == sorted(features)
        # Every UE is assigned to exactly one cluster.
        assert set(result.assignment) == set(features)

    def test_similar_ues_stay_together(self, rng):
        features = {i: np.full(4, 10.0) + rng.uniform(0, 1, 4) for i in range(100)}
        result = adaptive_cluster(features, theta_f=5.0, theta_n=10)
        assert result.num_clusters == 1

    def test_dissimilar_ues_split(self, rng):
        features = {}
        for i in range(50):
            features[i] = rng.uniform(0, 1, 4)
        for i in range(50, 100):
            features[i] = rng.uniform(100, 101, 4)
        result = adaptive_cluster(features, theta_f=5.0, theta_n=5)
        assert result.num_clusters >= 2
        # The two groups never share a cluster.
        low = {result.assignment[i] for i in range(50)}
        high = {result.assignment[i] for i in range(50, 100)}
        assert low.isdisjoint(high)

    def test_small_cluster_not_split(self, rng):
        features = {i: rng.uniform(0, 1000, 4) for i in range(30)}
        result = adaptive_cluster(features, theta_n=1000)
        assert result.num_clusters == 1

    def test_theta_f_controls_granularity(self, rng):
        features = {i: rng.uniform(0, 100, 4) for i in range(400)}
        coarse = adaptive_cluster(features, theta_f=200.0, theta_n=10)
        fine = adaptive_cluster(features, theta_f=2.0, theta_n=10)
        assert fine.num_clusters > coarse.num_clusters

    def test_weights_sum_to_one(self, rng):
        features = {i: rng.uniform(0, 100, 4) for i in range(200)}
        result = adaptive_cluster(features, theta_n=20)
        assert result.weights().sum() == pytest.approx(1.0)

    def test_cluster_of(self, rng):
        features = {i: rng.uniform(0, 100, 4) for i in range(100)}
        result = adaptive_cluster(features, theta_n=10)
        for ue in features:
            cluster = result.cluster_of(ue)
            assert ue in cluster.ue_ids

    def test_identical_points_terminate(self):
        features = {i: np.full(4, 7.0) for i in range(100)}
        result = adaptive_cluster(features, theta_f=0.0, theta_n=1)
        assert result.num_clusters == 1

    def test_two_dimensional_quadtree(self, rng):
        """With 2 features the scheme is literally a quadtree."""
        features = {i: rng.uniform(0, 100, 2) for i in range(500)}
        result = adaptive_cluster(features, theta_f=10.0, theta_n=5)
        assert result.num_clusters > 4

    def test_cluster_bounds_contain_members(self, rng):
        features = {i: rng.uniform(0, 100, 4) for i in range(300)}
        result = adaptive_cluster(features, theta_n=20)
        for cluster in result.clusters:
            for ue in cluster.ue_ids:
                f = features[ue]
                assert np.all(f >= cluster.lower - 1e-9)
                assert np.all(f <= cluster.upper + 1e-9)


class TestSingleCluster:
    def test_one_cluster_everything(self):
        result = single_cluster([3, 1, 2], 4)
        assert result.num_clusters == 1
        assert result.clusters[0].ue_ids == (1, 2, 3)
        assert result.assignment == {1: 0, 2: 0, 3: 0}


def _recursive_reference(features, theta_f, theta_n):
    """The pre-iterative recursive formulation, kept as a regression pin.

    Returns (cluster member tuples in DFS order, ue -> cluster id).
    """
    ue_ids = np.asarray(sorted(features), dtype=np.int64)
    matrix = np.vstack([features[int(ue)] for ue in ue_ids])
    dims = matrix.shape[1]
    dim_weights = 1 << np.arange(dims)
    clusters = []
    assignment = {}

    def finalize(rows):
        cluster_id = len(clusters)
        members = tuple(ue_ids[rows].tolist())
        clusters.append(members)
        for ue in members:
            assignment[ue] = cluster_id

    def visit(rows, lower, upper):
        cell = matrix[rows]
        spread = cell.max(axis=0) - cell.min(axis=0)
        if len(rows) < theta_n or bool(np.all(spread < theta_f)):
            return finalize(rows)
        mid = (lower + upper) / 2.0
        bits = (cell >= mid).astype(np.int64)
        child_index = bits @ dim_weights
        children = np.unique(child_index)
        if len(children) == 1:
            return finalize(rows)
        for child in children:
            child_rows = rows[child_index == child]
            child_bits = (int(child) >> np.arange(dims)) & 1
            visit(
                child_rows,
                np.where(child_bits == 1, mid, lower),
                np.where(child_bits == 1, upper, mid),
            )

    visit(np.arange(len(ue_ids)), matrix.min(axis=0), matrix.max(axis=0))
    return clusters, assignment


class TestIterativeQuadtree:
    def test_matches_recursive_formulation(self):
        rng = np.random.default_rng(3)
        for _ in range(5):
            features = {ue: rng.uniform(0.0, 50.0, size=4) for ue in range(200)}
            ref_clusters, ref_assignment = _recursive_reference(features, 5.0, 10)
            result = adaptive_cluster(features, theta_f=5.0, theta_n=10)
            assert [c.ue_ids for c in result.clusters] == ref_clusters
            assert result.assignment == ref_assignment

    def test_deep_split_has_no_recursion_limit(self):
        # A geometric ladder of points peels off exactly one UE per
        # midpoint split, driving the tree ~1070 levels deep - far
        # beyond Python's default recursion limit.
        features = {k: np.array([2.0 ** -k]) for k in range(1070)}
        features[1070] = np.array([0.0])
        result = adaptive_cluster(features, theta_f=0.0, theta_n=1)
        assert result.num_clusters == len(features)
        assert all(cluster.size == 1 for cluster in result.clusters)

    @pytest.mark.slow
    def test_million_row_regression(self):
        rng = np.random.default_rng(7)
        n = 1_000_000
        matrix = rng.uniform(0.0, 100.0, size=(n, 2))
        features = {ue: matrix[ue] for ue in range(n)}
        result = adaptive_cluster(features, theta_f=10.0, theta_n=5000)
        assert sum(c.size for c in result.clusters) == n
        assert set(result.assignment) == set(range(n))
        for cluster in result.clusters:
            rows = np.asarray(cluster.ue_ids)
            assert result.cluster_of(int(rows[0])) is cluster
            cell = matrix[rows]
            spread = cell.max(axis=0) - cell.min(axis=0)
            assert cluster.size < 5000 or bool(np.all(spread < 10.0))
