"""Content-addressed disk cache for fitted :class:`ModelSet` objects.

Refitting the same training trace with the same parameters is pure —
the result is a deterministic function of (trace content, fit
parameters, code schema).  The paper's evaluation refits identical
traces for 15+ tables and figures, so ``fit_model_set`` can skip the
whole pipeline when a prior run already produced the answer.

The cache key is a SHA-256 over the trace's content hash plus every
fit parameter plus :data:`FIT_CACHE_SCHEMA`; the fit *engine* is
deliberately excluded because the compiled and reference fitters
produce exactly equal model sets.  Entries are pickled ModelSet
objects — bit-exact by construction and an order of magnitude faster
to load than the JSON persistence format at large model sizes, which
is what makes a warm hit a small fraction of the cold fit.  They are
written atomically (temp file + ``os.replace``) so concurrent fits
never observe a partial entry; a corrupt or unreadable entry reads as
a miss.  Only ever load entries from a cache directory you trust
(pickle executes code on load) — the default is the user's own
``~/.cache/repro``.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Optional, Union

from ..trace.trace import Trace
from .model_set import ModelSet

PathLike = Union[str, "os.PathLike[str]"]

#: Bump when the ModelSet schema or fitting semantics change, so stale
#: cache entries from older code can never be returned.
FIT_CACHE_SCHEMA = 1

#: Environment override for the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


def fit_cache_key(
    trace: Trace,
    *,
    machine_kind: str,
    family: str,
    clustered: bool,
    theta_f: float,
    theta_n: int,
    trace_start_hour: int,
    max_cdf_points: int,
) -> str:
    """Content-addressed key for one (trace, fit parameters) pair."""
    payload = json.dumps(
        {
            "schema": FIT_CACHE_SCHEMA,
            "trace": trace.content_hash(),
            "machine_kind": machine_kind,
            "family": family,
            "clustered": bool(clustered),
            "theta_f": float(theta_f),
            "theta_n": int(theta_n),
            "trace_start_hour": int(trace_start_hour),
            "max_cdf_points": int(max_cdf_points),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _entry_path(cache_dir: PathLike, key: str) -> Path:
    return Path(cache_dir) / f"modelset-{key}.pkl"


def load_cached(cache_dir: PathLike, key: str) -> Optional[ModelSet]:
    """Load a cached model set; any failure (missing, corrupt) is a miss."""
    path = _entry_path(cache_dir, key)
    try:
        with open(path, "rb") as handle:
            model_set = pickle.load(handle)
    except Exception:
        return None
    return model_set if isinstance(model_set, ModelSet) else None


def store_cached(cache_dir: PathLike, key: str, model_set: ModelSet) -> Path:
    """Atomically store ``model_set`` under ``key``; returns the entry path."""
    path = _entry_path(cache_dir, key)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        prefix=".modelset-", suffix=".pkl", dir=str(path.parent)
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            pickle.dump(model_set, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    return path
