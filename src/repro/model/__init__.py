"""The paper's traffic model: semi-Markov chains, first-event model,
fitting pipeline, persistence, and 5G scaling."""

from .checks import validate_model_set
from .first_event import FirstEventModel
from .inspect import (
    ClusterSummary,
    ModelSetSummary,
    describe_model_set,
    expected_event_rates,
    state_occupancy,
    stationary_distribution,
    summarize_cluster,
    summarize_model_set,
)
from .compiled_fit import vectorized_replay
from .fit_cache import default_cache_dir, fit_cache_key
from .fitting import FIT_ENGINES, fit_model_set
from .model_set import ClusterModel, HourModel, ModelSet, build_machine
from .scaling import (
    NSA_HO_SCALE,
    SA_HO_SCALE,
    drop_event,
    scale_event_frequency,
    scale_to_nsa,
    scale_to_sa,
)
from .semi_markov import Edge, SemiMarkovChain, StateModel

__all__ = [
    "ClusterModel",
    "validate_model_set",
    "ClusterSummary",
    "ModelSetSummary",
    "describe_model_set",
    "expected_event_rates",
    "state_occupancy",
    "stationary_distribution",
    "summarize_cluster",
    "summarize_model_set",
    "Edge",
    "FIT_ENGINES",
    "FirstEventModel",
    "HourModel",
    "ModelSet",
    "default_cache_dir",
    "fit_cache_key",
    "vectorized_replay",
    "NSA_HO_SCALE",
    "SA_HO_SCALE",
    "SemiMarkovChain",
    "StateModel",
    "build_machine",
    "drop_event",
    "fit_model_set",
    "scale_event_frequency",
    "scale_to_nsa",
    "scale_to_sa",
]
