"""Containers for fitted models and their persistence.

A :class:`ModelSet` holds one :class:`ClusterModel` per (device type,
hour-of-day, UE cluster) — the paper instantiates 20,216 of these for
its carrier trace — plus the cluster assignment of every training UE,
which the generator uses to give each synthetic UE a coherent
"persona" across hours (§7: per-UE generators are distributed over
clusters "according to the distribution of the UEs in the modeled
trace").
"""

from __future__ import annotations

import dataclasses
import gzip
import hashlib
import json
import os
from typing import Dict, List, Optional, Union

import numpy as np

from ..statemachines.fsm import StateMachine
from ..statemachines.lte import emm_ecm_machine, two_level_machine
from ..statemachines.nr import nr_sa_machine
from ..trace.events import DeviceType, EventType
from .first_event import FirstEventModel
from .semi_markov import SemiMarkovChain

PathLike = Union[str, "os.PathLike[str]"]


def build_machine(machine_kind: str) -> StateMachine:
    """Instantiate the state machine for a model-set kind."""
    if machine_kind == "two_level":
        return two_level_machine()
    if machine_kind == "emm_ecm":
        return emm_ecm_machine()
    if machine_kind == "nr_sa":
        return nr_sa_machine()
    raise ValueError(f"unknown machine_kind {machine_kind!r}")


@dataclasses.dataclass
class ClusterModel:
    """The fitted model of one (device, hour, cluster) combination."""

    chain: SemiMarkovChain
    first_event: FirstEventModel
    overlay_rates: Dict[EventType, float]  #: per-UE rates for HO/TAU overlays
    num_ues: int
    num_segments: int

    def to_dict(self) -> dict:
        return {
            "chain": self.chain.to_dict(),
            "first_event": self.first_event.to_dict(),
            "overlay_rates": {e.name: r for e, r in self.overlay_rates.items()},
            "num_ues": self.num_ues,
            "num_segments": self.num_segments,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ClusterModel":
        return cls(
            chain=SemiMarkovChain.from_dict(data["chain"]),
            first_event=FirstEventModel.from_dict(data["first_event"]),
            overlay_rates={
                EventType[name]: float(r)
                for name, r in data["overlay_rates"].items()
            },
            num_ues=int(data["num_ues"]),
            num_segments=int(data["num_segments"]),
        )


@dataclasses.dataclass
class HourModel:
    """All cluster models of one (device, hour) combination."""

    clusters: List[ClusterModel]
    assignment: Dict[int, int]  #: training ue_id -> cluster index

    def weights(self) -> np.ndarray:
        """UE-count share of each cluster."""
        counts = np.asarray([max(c.num_ues, 0) for c in self.clusters], dtype=float)
        total = counts.sum()
        if total <= 0:
            return np.full(len(self.clusters), 1.0 / max(len(self.clusters), 1))
        return counts / total

    def cluster_for_ue(
        self, ue_id: int, rng: np.random.Generator
    ) -> int:
        """Cluster of a training UE, or a weighted draw if unknown."""
        cid = self.assignment.get(ue_id)
        if cid is not None:
            return cid
        return int(rng.choice(len(self.clusters), p=self.weights()))

    def to_dict(self) -> dict:
        return {
            "clusters": [c.to_dict() for c in self.clusters],
            "assignment": {str(ue): cid for ue, cid in self.assignment.items()},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HourModel":
        return cls(
            clusters=[ClusterModel.from_dict(c) for c in data["clusters"]],
            assignment={int(ue): int(cid) for ue, cid in data["assignment"].items()},
        )


@dataclasses.dataclass
class ModelSet:
    """The complete fitted traffic model (every device, hour, cluster)."""

    machine_kind: str                    #: "two_level" | "emm_ecm" | "nr_sa"
    family: str                          #: "empirical" | "poisson"
    clustered: bool
    models: Dict[DeviceType, Dict[int, HourModel]]
    device_ues: Dict[DeviceType, List[int]]  #: training UEs per device
    theta_f: float
    theta_n: int

    # ------------------------------------------------------------------
    @property
    def num_models(self) -> int:
        """Total number of (device, hour, cluster) models."""
        return sum(
            len(hm.clusters)
            for hours in self.models.values()
            for hm in hours.values()
        )

    @property
    def device_types(self) -> List[DeviceType]:
        return sorted(self.models, key=int)

    def hours(self, device_type: DeviceType) -> List[int]:
        """Hours-of-day with a fitted model for ``device_type``."""
        return sorted(self.models[device_type])

    def hour_model(self, device_type: DeviceType, hour: int) -> Optional[HourModel]:
        """The models of one hour-of-day, or ``None`` if not fitted."""
        return self.models.get(device_type, {}).get(hour % 24)

    def machine(self) -> StateMachine:
        return build_machine(self.machine_kind)

    def content_hash(self) -> str:
        """SHA-256 over the canonical JSON serialization of this model set.

        Generation checkpoints (:mod:`repro.generator.checkpoint`) embed
        this hash so a resumed run can prove it is using byte-identical
        model content — resuming against a different (or re-fitted)
        model set would silently break the bit-identity guarantee.
        Memoized per instance; mutating a model set after hashing it is
        not supported.
        """
        cached = getattr(self, "_content_hash_cache", None)
        if cached is None:
            payload = json.dumps(
                self.to_dict(), sort_keys=True, separators=(",", ":")
            )
            cached = hashlib.sha256(payload.encode("utf-8")).hexdigest()
            self._content_hash_cache = cached
        return cached

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "format": "repro-model-set-v1",
            "machine_kind": self.machine_kind,
            "family": self.family,
            "clustered": self.clustered,
            "theta_f": self.theta_f,
            "theta_n": self.theta_n,
            "models": {
                dt.name: {str(h): hm.to_dict() for h, hm in hours.items()}
                for dt, hours in self.models.items()
            },
            "device_ues": {
                dt.name: list(ues) for dt, ues in self.device_ues.items()
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ModelSet":
        if data.get("format") != "repro-model-set-v1":
            raise ValueError(f"unknown model-set format {data.get('format')!r}")
        return cls(
            machine_kind=data["machine_kind"],
            family=data["family"],
            clustered=bool(data["clustered"]),
            theta_f=float(data["theta_f"]),
            theta_n=int(data["theta_n"]),
            models={
                DeviceType[name]: {
                    int(h): HourModel.from_dict(hm) for h, hm in hours.items()
                }
                for name, hours in data["models"].items()
            },
            device_ues={
                DeviceType[name]: [int(u) for u in ues]
                for name, ues in data["device_ues"].items()
            },
        )

    def save(self, path: PathLike) -> None:
        """Write the model set as (gzipped, if ``.gz``) JSON."""
        payload = json.dumps(self.to_dict())
        if str(path).endswith(".gz"):
            with gzip.open(path, "wt") as fh:
                fh.write(payload)
        else:
            with open(path, "w") as fh:
                fh.write(payload)

    @classmethod
    def load(cls, path: PathLike) -> "ModelSet":
        """Read a model set written by :meth:`save`."""
        if str(path).endswith(".gz"):
            with gzip.open(path, "rt") as fh:
                data = json.load(fh)
        else:
            with open(path) as fh:
                data = json.load(fh)
        return cls.from_dict(data)
