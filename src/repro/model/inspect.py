"""Model-set introspection and analytic rate prediction.

Beyond generating traces, a fitted semi-Markov model supports *direct*
analysis: the stationary distribution of the embedded chain combined
with the mean dwell times yields the long-run fraction of time a UE
spends in each state and the expected rate of every event type — no
simulation needed.  This is useful for sanity-checking fits, for quick
capacity estimates, and for the monitoring use case of §3.1.

The analytic rates describe the chain in steady state; the per-hour
counts of a generated trace additionally reflect the first-event model
(UEs starting mid-hour, silent UEs), so empirical counts sit somewhat
below the steady-state prediction.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..trace.events import SECONDS_PER_HOUR, DeviceType, EventType
from .model_set import ClusterModel, ModelSet
from .semi_markov import SemiMarkovChain

_POWER_ITERATIONS = 500
_TOL = 1e-12


def embedded_transition_matrix(
    chain: SemiMarkovChain,
) -> Tuple[List[str], np.ndarray]:
    """States (sorted) and the embedded DTMC matrix of a chain.

    Absorbing states are given a self-loop so the matrix is stochastic.
    """
    states = sorted(chain.states)
    index = {s: i for i, s in enumerate(states)}
    n = len(states)
    matrix = np.zeros((n, n))
    for state, model in chain.states.items():
        i = index[state]
        if model.is_absorbing:
            matrix[i, i] = 1.0
            continue
        for edge in model.edges:
            j = index.get(edge.target)
            if j is None:
                # Target never seen as a source: treat as absorbing sink.
                continue
            matrix[i, j] += edge.probability
        row_sum = matrix[i].sum()
        if row_sum <= 0:
            matrix[i, i] = 1.0
        elif abs(row_sum - 1.0) > 1e-9:
            matrix[i] /= row_sum  # renormalize mass lost to unseen targets
    return states, matrix


def stationary_distribution(chain: SemiMarkovChain) -> Dict[str, float]:
    """Stationary distribution of the embedded jump chain.

    Computed by power iteration from the uniform vector; for chains
    with several closed classes this converges to one mixture of their
    stationary laws, which is the right weighting for a population of
    UEs started uniformly.
    """
    states, matrix = embedded_transition_matrix(chain)
    pi = np.full(len(states), 1.0 / len(states))
    for _ in range(_POWER_ITERATIONS):
        nxt = pi @ matrix
        if np.abs(nxt - pi).max() < _TOL:
            pi = nxt
            break
        pi = nxt
    pi = np.maximum(pi, 0.0)
    pi = pi / pi.sum()
    return {state: float(p) for state, p in zip(states, pi)}


def state_occupancy(chain: SemiMarkovChain) -> Dict[str, float]:
    """Long-run fraction of *time* spent in each state.

    Semi-Markov occupancy: ``pi_x * m_x / sum_y pi_y * m_y`` where
    ``m_x`` is the mean dwell in ``x`` (absorbing states get the jump
    probability itself — they hold forever once entered, so if they
    carry stationary mass they dominate; in fitted traffic chains they
    normally carry none).
    """
    pi = stationary_distribution(chain)
    weights: Dict[str, float] = {}
    for state, p in pi.items():
        dwell = chain.expected_dwell(state)
        if dwell is None:
            weights[state] = p if p > 1e-9 else 0.0
        else:
            weights[state] = p * dwell
    total = sum(weights.values())
    if total <= 0:
        return {state: 0.0 for state in pi}
    return {state: w / total for state, w in weights.items()}


def expected_event_rates(chain: SemiMarkovChain) -> Dict[EventType, float]:
    """Steady-state rate of each event type, in events per second per UE.

    The transition rate out of state ``x`` is ``occupancy_x / m_x``;
    event ``e``'s share of it is the total probability of ``x``'s
    ``e``-labelled edges.
    """
    occupancy = state_occupancy(chain)
    rates: Dict[EventType, float] = {e: 0.0 for e in EventType}
    for state, model in chain.states.items():
        if model.is_absorbing:
            continue
        dwell = chain.expected_dwell(state)
        if not dwell or dwell <= 0:
            continue
        exit_rate = occupancy.get(state, 0.0) / dwell
        for edge in model.edges:
            rates[edge.event] += exit_rate * edge.probability
    return rates


@dataclasses.dataclass(frozen=True)
class ClusterSummary:
    """One cluster's analytic profile."""

    num_ues: int
    p_active: float
    occupancy: Dict[str, float]
    event_rates_per_hour: Dict[EventType, float]
    expected_events_per_active_ue_hour: float


def summarize_cluster(cluster: ClusterModel) -> ClusterSummary:
    """Analytic summary of one fitted cluster model."""
    rates = expected_event_rates(cluster.chain)
    for event, overlay_rate in cluster.overlay_rates.items():
        rates[event] = rates.get(event, 0.0) + overlay_rate
    per_hour = {e: r * SECONDS_PER_HOUR for e, r in rates.items()}
    return ClusterSummary(
        num_ues=cluster.num_ues,
        p_active=cluster.first_event.p_active,
        occupancy=state_occupancy(cluster.chain),
        event_rates_per_hour=per_hour,
        expected_events_per_active_ue_hour=sum(per_hour.values()),
    )


@dataclasses.dataclass(frozen=True)
class ModelSetSummary:
    """Whole-model-set statistics for reports and sanity checks."""

    machine_kind: str
    family: str
    num_models: int
    clusters_per_hour: Dict[DeviceType, float]
    hours: Dict[DeviceType, List[int]]
    mean_p_active: Dict[DeviceType, float]
    predicted_events_per_ue_hour: Dict[DeviceType, float]


def summarize_model_set(model_set: ModelSet) -> ModelSetSummary:
    """Aggregate analytic statistics of a fitted model set.

    ``predicted_events_per_ue_hour`` weights each cluster's steady-state
    rate by its UE share and activity probability, averaged over hours —
    a zero-simulation estimate of the traffic volume the generator will
    produce per UE.
    """
    clusters_per_hour: Dict[DeviceType, float] = {}
    mean_p_active: Dict[DeviceType, float] = {}
    predicted: Dict[DeviceType, float] = {}
    hours: Dict[DeviceType, List[int]] = {}

    for device_type in model_set.device_types:
        device_hours = model_set.hours(device_type)
        hours[device_type] = device_hours
        counts = []
        actives = []
        rates = []
        for hour in device_hours:
            hm = model_set.models[device_type][hour]
            counts.append(len(hm.clusters))
            weights = hm.weights()
            p_active = 0.0
            rate = 0.0
            for w, cluster in zip(weights, hm.clusters):
                summary = summarize_cluster(cluster)
                p_active += w * summary.p_active
                rate += (
                    w
                    * summary.p_active
                    * summary.expected_events_per_active_ue_hour
                )
            actives.append(p_active)
            rates.append(rate)
        clusters_per_hour[device_type] = float(np.mean(counts))
        mean_p_active[device_type] = float(np.mean(actives))
        predicted[device_type] = float(np.mean(rates))

    return ModelSetSummary(
        machine_kind=model_set.machine_kind,
        family=model_set.family,
        num_models=model_set.num_models,
        clusters_per_hour=clusters_per_hour,
        hours=hours,
        mean_p_active=mean_p_active,
        predicted_events_per_ue_hour=predicted,
    )


def describe_model_set(model_set: ModelSet) -> str:
    """Human-readable multi-line description of a fitted model set."""
    summary = summarize_model_set(model_set)
    lines = [
        f"ModelSet: machine={summary.machine_kind} family={summary.family} "
        f"clustered={model_set.clustered}",
        f"  total models: {summary.num_models}",
    ]
    for device_type in model_set.device_types:
        lines.append(
            f"  {device_type.name}: hours={len(summary.hours[device_type])}, "
            f"avg clusters/hour={summary.clusters_per_hour[device_type]:.1f}, "
            f"mean P(active)={summary.mean_p_active[device_type]:.2f}, "
            f"predicted events/UE-hour="
            f"{summary.predicted_events_per_ue_hour[device_type]:.1f}"
        )
    return "\n".join(lines)
