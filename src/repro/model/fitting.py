"""Model fitting pipeline (§5): trace -> per-(cluster, hour, device) models.

The pipeline mirrors the paper end to end:

1. slice the input trace into non-overlapping one-hour segments per UE,
   pooling the same hour-of-day across days;
2. extract per-UE features and run the adaptive clustering scheme for
   every (device type, hour) combination (§5.3) — or skip clustering
   for the ``Base`` baseline;
3. replay every segment through the configured state machine and fit,
   per cluster, the semi-Markov transition probabilities and sojourn
   distributions (§5.2) plus the first-event model (§5.4);
4. for the EMM–ECM baselines, additionally fit per-UE Poisson overlay
   rates for the ``HO``/``TAU`` events the machine cannot express.

Two engines implement the pipeline: ``"compiled"`` (default; the
array-at-a-time fast path in :mod:`repro.model.compiled_fit`, optionally
fanned across processes) and ``"reference"`` (the original per-segment
Python code below, kept as the exact-equality oracle).  Both produce
*exactly* equal model sets.  ``cache_dir`` additionally enables the
content-addressed disk cache (:mod:`repro.model.fit_cache`).
"""

from __future__ import annotations

import dataclasses
import math
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..clustering.quadtree import (
    DEFAULT_THETA_F,
    DEFAULT_THETA_N,
    ClusteringResult,
    adaptive_cluster,
    single_cluster,
)
from ..distributions.base import FitError
from ..distributions.empirical import EmpiricalCDF
from ..distributions.exponential import Exponential
from ..statemachines import lte
from ..statemachines.fsm import StateMachine
from ..statemachines.replay import TransitionRecord, replay_ue, top_level_intervals
from ..telemetry import RunTelemetry, get_telemetry, use_telemetry
from ..trace.events import (
    SECONDS_PER_HOUR,
    DeviceType,
    EventType,
)
from ..trace.trace import Trace
from . import compiled_fit
from .first_event import FirstEventModel
from .fit_cache import fit_cache_key, load_cached, store_cached
from .model_set import (
    ClusterModel,
    HourModel,
    ModelSet,
    build_machine,
)
from .semi_markov import Edge, SemiMarkovChain, StateModel

#: Available fitting engines: the compiled fast path (default) and the
#: original per-segment reference oracle.
FIT_ENGINES = ("compiled", "reference")

#: Fallback sojourn when a transition was observed but never with a
#: known entry time (e.g. always the first event of a segment).
_FALLBACK_MEAN_SOJOURN = 60.0

#: Events the EMM–ECM machine can express; the rest are overlaid.
_CATEGORY1_SET = frozenset(
    {EventType.ATCH, EventType.DTCH, EventType.SRV_REQ, EventType.S1_CONN_REL}
)
_OVERLAY_EVENTS = (EventType.HO, EventType.TAU)


@dataclasses.dataclass
class _Segment:
    """One (UE, hour-slot) piece of the trace, in slot-relative time."""

    ue_id: int
    slot: int
    event_types: np.ndarray
    times: np.ndarray  #: relative to the slot start, in [0, 3600)
    records: List[TransitionRecord] = dataclasses.field(default_factory=list)


def fit_model_set(
    trace: Trace,
    *,
    machine_kind: str = "two_level",
    family: str = "empirical",
    clustered: bool = True,
    theta_f: float = DEFAULT_THETA_F,
    theta_n: int = DEFAULT_THETA_N,
    trace_start_hour: int = 0,
    max_cdf_points: int = 512,
    engine: str = "compiled",
    processes: Optional[int] = None,
    cache_dir: "Optional[str | Path]" = None,
    telemetry: Optional[RunTelemetry] = None,
) -> ModelSet:
    """Fit the full model set from a control-plane trace.

    Parameters
    ----------
    trace:
        The training trace ("real" data).
    machine_kind:
        ``"two_level"`` (the paper's model, Fig. 5) or ``"emm_ecm"``
        (the Base/V1 baselines; ``HO``/``TAU`` become Poisson overlays).
    family:
        Sojourn-time model: ``"empirical"`` (the paper) or ``"poisson"``
        (the Base/V1/V2 baselines).
    clustered:
        Apply the adaptive clustering scheme (off for ``Base``).
    theta_f, theta_n:
        Clustering thresholds (§5.3).
    trace_start_hour:
        Hour-of-day at trace time 0, so hour slots map onto the diurnal
        clock correctly.
    max_cdf_points:
        Compression limit for stored empirical CDFs.
    engine:
        ``"compiled"`` (array-at-a-time fast path, default) or
        ``"reference"`` (original per-segment oracle).  Both produce
        exactly equal model sets.
    processes:
        ``None`` or ``1`` fits serially in-process; ``0`` fans
        per-(device, hour) jobs across all CPUs; ``>= 2`` uses that
        many worker processes.
    cache_dir:
        Directory of the content-addressed model cache.  ``None``
        (default) disables caching; a hit returns the stored model set
        without refitting (telemetry counter ``cache_hits``).
    telemetry:
        Explicit collector; defaults to the ambient one.  Fit phases
        record spans plus the ``segments_replayed``,
        ``transitions_counted`` and ``cache_hits``/``cache_misses``
        counters.
    """
    if machine_kind not in ("two_level", "emm_ecm"):
        raise ValueError(f"unknown machine_kind {machine_kind!r}")
    if family not in ("empirical", "poisson"):
        raise ValueError(f"unknown sojourn family {family!r}")
    if engine not in FIT_ENGINES:
        raise ValueError(
            f"unknown fit engine {engine!r}; expected one of {FIT_ENGINES}"
        )
    if processes is not None and processes < 0:
        raise ValueError(f"processes must be non-negative, got {processes}")
    if len(trace) == 0:
        raise ValueError("cannot fit a model set to an empty trace")

    tele = telemetry if telemetry is not None else get_telemetry()
    with use_telemetry(tele), tele.span("fit"):
        key = None
        if cache_dir is not None:
            with tele.span("fit-cache-lookup"):
                key = fit_cache_key(
                    trace,
                    machine_kind=machine_kind,
                    family=family,
                    clustered=clustered,
                    theta_f=theta_f,
                    theta_n=theta_n,
                    trace_start_hour=trace_start_hour,
                    max_cdf_points=max_cdf_points,
                )
                cached = load_cached(cache_dir, key)
            if cached is not None:
                tele.count("cache_hits")
                return cached
            tele.count("cache_misses")

        model_set = _fit_all(
            trace,
            machine_kind=machine_kind,
            family=family,
            clustered=clustered,
            theta_f=theta_f,
            theta_n=theta_n,
            trace_start_hour=trace_start_hour,
            max_cdf_points=max_cdf_points,
            engine=engine,
            processes=processes,
        )

        if cache_dir is not None and key is not None:
            with tele.span("fit-cache-store"):
                store_cached(cache_dir, key, model_set)
        return model_set


def _fit_all(
    trace: Trace,
    *,
    machine_kind: str,
    family: str,
    clustered: bool,
    theta_f: float,
    theta_n: int,
    trace_start_hour: int,
    max_cdf_points: int,
    engine: str,
    processes: Optional[int],
) -> ModelSet:
    """Plan and run the per-(device, hour) fit jobs for one model set."""
    tele = get_telemetry()
    total_slots = int(math.ceil((float(trace.times.max()) + 1e-9) / SECONDS_PER_HOUR))
    total_slots = max(total_slots, 1)
    slots_by_hour: Dict[int, List[int]] = {}
    for slot in range(total_slots):
        slots_by_hour.setdefault((trace_start_hour + slot) % 24, []).append(slot)
    hour_plan = sorted(slots_by_hour.items())

    device_ues: Dict[DeviceType, List[int]] = {}
    for device_type in DeviceType:
        sub = trace.filter_device(device_type)
        if len(sub) == 0:
            continue
        device_ues[device_type] = [int(u) for u in sub.unique_ues()]

    if processes is not None and processes != 1:
        jobs = [
            (int(device_type), hour, tuple(slots))
            for device_type in device_ues
            for hour, slots in hour_plan
        ]
        params = {
            "engine": engine,
            "machine_kind": machine_kind,
            "family": family,
            "clustered": clustered,
            "theta_f": theta_f,
            "theta_n": theta_n,
            "max_cdf_points": max_cdf_points,
            "total_slots": total_slots,
        }
        models = compiled_fit.run_fit_jobs(
            trace, jobs, params, processes=processes if processes else None
        )
    else:
        models = {}
        machine = build_machine(machine_kind)
        done, total_jobs = 0, len(device_ues) * len(hour_plan)
        for device_type, ues in device_ues.items():
            if engine == "compiled":
                dev = compiled_fit.device_arrays(trace, device_type, total_slots)
                table = compiled_fit.machine_table(machine_kind)
            else:
                ues, per_ue = _reference_device_context(trace, device_type)
            device_models: Dict[int, HourModel] = {}
            for hour, slots in hour_plan:
                if engine == "compiled":
                    device_models[hour] = compiled_fit.fit_device_hour(
                        dev,
                        slots,
                        table=table,
                        machine_kind=machine_kind,
                        family=family,
                        clustered=clustered,
                        theta_f=theta_f,
                        theta_n=theta_n,
                        max_cdf_points=max_cdf_points,
                    )
                else:
                    device_models[hour] = _reference_fit_device_hour(
                        per_ue,
                        ues,
                        slots,
                        machine=machine,
                        machine_kind=machine_kind,
                        family=family,
                        clustered=clustered,
                        theta_f=theta_f,
                        theta_n=theta_n,
                        max_cdf_points=max_cdf_points,
                    )
                done += 1
                tele.progress("fit", done, total_jobs)
            models[device_type] = device_models

    return ModelSet(
        machine_kind=machine_kind,
        family=family,
        clustered=clustered,
        models=models,
        device_ues=device_ues,
        theta_f=theta_f,
        theta_n=theta_n,
    )


def _reference_device_context(
    trace: Trace, device_type: DeviceType
) -> Tuple[List[int], Dict[int, Trace]]:
    """Per-device inputs of the reference pipeline (UE list, per-UE traces)."""
    sub = trace.filter_device(device_type)
    ues = [int(u) for u in sub.unique_ues()]
    per_ue = {ue: seg for ue, seg in sub.per_ue()}
    return ues, per_ue


def _reference_fit_device_hour(
    per_ue: Mapping[int, Trace],
    ues: Sequence[int],
    slots: Sequence[int],
    *,
    machine: Optional[StateMachine],
    machine_kind: str,
    family: str,
    clustered: bool,
    theta_f: float,
    theta_n: int,
    max_cdf_points: int,
) -> HourModel:
    """One (device, hour) of the original per-segment pipeline."""
    tele = get_telemetry()
    if machine is None:
        machine = build_machine(machine_kind)
    segments = _build_segments(per_ue, ues, slots)
    _replay_segments(segments, machine, machine_kind)
    tele.count("segments_replayed", len(segments))
    tele.count("transitions_counted", sum(len(seg.records) for seg in segments))
    return _fit_hour(
        segments,
        ues,
        num_slots=len(slots),
        machine=machine,
        machine_kind=machine_kind,
        family=family,
        clustered=clustered,
        theta_f=theta_f,
        theta_n=theta_n,
        max_cdf_points=max_cdf_points,
    )


# ---------------------------------------------------------------------------
# Segment construction and replay
# ---------------------------------------------------------------------------

def _build_segments(
    per_ue: Mapping[int, Trace],
    ues: Sequence[int],
    slots: Sequence[int],
) -> List[_Segment]:
    """Slice each UE's events into the requested hour slots."""
    segments: List[_Segment] = []
    for ue in ues:
        sub = per_ue[ue]
        times = sub.times
        for slot in slots:
            start = slot * SECONDS_PER_HOUR
            lo = int(np.searchsorted(times, start, side="left"))
            hi = int(np.searchsorted(times, start + SECONDS_PER_HOUR, side="left"))
            if lo == hi:
                continue
            segments.append(
                _Segment(
                    ue_id=ue,
                    slot=slot,
                    event_types=sub.event_types[lo:hi],
                    times=times[lo:hi] - start,
                )
            )
    return segments


def _replay_segments(
    segments: Sequence[_Segment], machine: StateMachine, machine_kind: str
) -> None:
    """Replay every segment in place (filtering to Category-1 for EMM–ECM)."""
    for seg in segments:
        if machine_kind == "emm_ecm":
            mask = np.isin(seg.event_types, [int(e) for e in _CATEGORY1_SET])
            events = seg.event_types[mask]
            times = seg.times[mask]
        else:
            events = seg.event_types
            times = seg.times
        seg.records = replay_ue(events, times, machine).records


# ---------------------------------------------------------------------------
# Per-hour fitting
# ---------------------------------------------------------------------------

def _fit_hour(
    segments: List[_Segment],
    ues: Sequence[int],
    *,
    num_slots: int,
    machine: StateMachine,
    machine_kind: str,
    family: str,
    clustered: bool,
    theta_f: float,
    theta_n: int,
    max_cdf_points: int,
) -> HourModel:
    clustering = _cluster_ues(segments, ues, clustered, theta_f, theta_n, machine)
    by_cluster: Dict[int, List[_Segment]] = {c.cluster_id: [] for c in clustering.clusters}
    for seg in segments:
        by_cluster[clustering.assignment[seg.ue_id]].append(seg)

    cluster_models = []
    for cluster in clustering.clusters:
        cluster_models.append(
            _fit_cluster(
                by_cluster[cluster.cluster_id],
                num_ues=cluster.size,
                num_segments=cluster.size * num_slots,
                machine=machine,
                machine_kind=machine_kind,
                family=family,
                max_cdf_points=max_cdf_points,
            )
        )
    return HourModel(
        clusters=cluster_models,
        assignment=dict(clustering.assignment),
    )


def _cluster_ues(
    segments: Sequence[_Segment],
    ues: Sequence[int],
    clustered: bool,
    theta_f: float,
    theta_n: int,
    machine: StateMachine,
) -> ClusteringResult:
    from ..clustering.features import NUM_FEATURES

    if not clustered:
        return single_cluster(ues, NUM_FEATURES)
    features = _hour_features(segments, ues, machine)
    return adaptive_cluster(features, theta_f=theta_f, theta_n=theta_n)


def _hour_features(
    segments: Sequence[_Segment], ues: Sequence[int], machine: StateMachine
) -> Dict[int, np.ndarray]:
    """Per-UE clustering features pooled over the hour's slots.

    Counts are per-slot averages (so multi-day traces stay on the same
    scale as single hours); sojourn stds pool complete CONNECTED/IDLE
    intervals across slots.
    """
    srv_counts: Dict[int, int] = {ue: 0 for ue in ues}
    rel_counts: Dict[int, int] = {ue: 0 for ue in ues}
    slots_seen: Dict[int, set] = {ue: set() for ue in ues}
    connected: Dict[int, List[float]] = {ue: [] for ue in ues}
    idle: Dict[int, List[float]] = {ue: [] for ue in ues}

    for seg in segments:
        ue = seg.ue_id
        slots_seen[ue].add(seg.slot)
        srv_counts[ue] += int(np.count_nonzero(seg.event_types == int(EventType.SRV_REQ)))
        rel_counts[ue] += int(
            np.count_nonzero(seg.event_types == int(EventType.S1_CONN_REL))
        )
        for interval in top_level_intervals(seg.records, machine):
            if not interval.complete:
                continue
            if interval.state == lte.CONNECTED:
                connected[ue].append(interval.duration)
            elif interval.state == lte.IDLE:
                idle[ue].append(interval.duration)

    def _std(values: List[float]) -> float:
        if len(values) < 2:
            return 0.0
        return float(np.std(np.asarray(values)))

    features = {}
    for ue in ues:
        slots = max(1, len(slots_seen[ue]))
        features[ue] = np.asarray(
            [
                srv_counts[ue] / slots,
                rel_counts[ue] / slots,
                _std(connected[ue]),
                _std(idle[ue]),
            ],
            dtype=np.float64,
        )
    return features


def _fit_cluster(
    segments: Sequence[_Segment],
    *,
    num_ues: int,
    num_segments: int,
    machine: StateMachine,
    machine_kind: str,
    family: str,
    max_cdf_points: int,
) -> ClusterModel:
    chain = _fit_chain(segments, machine, family, max_cdf_points)
    first_event = _fit_first_event(
        segments, num_segments, max_cdf_points, machine_kind=machine_kind
    )
    overlay = (
        _fit_overlay(segments, num_segments)
        if machine_kind == "emm_ecm"
        else {}
    )
    return ClusterModel(
        chain=chain,
        first_event=first_event,
        overlay_rates=overlay,
        num_ues=num_ues,
        num_segments=num_segments,
    )


def _fit_chain(
    segments: Sequence[_Segment],
    machine: StateMachine,
    family: str,
    max_cdf_points: int,
) -> SemiMarkovChain:
    counts: Dict[Tuple[str, EventType, str], int] = {}
    sojourns: Dict[Tuple[str, EventType], List[float]] = {}
    by_event: Dict[EventType, List[float]] = {}

    for seg in segments:
        for rec in seg.records:
            if rec.forced and rec.enter_time is not None:
                continue  # mid-stream violation: untrustworthy transition
            key = (rec.source, rec.event, rec.target)
            counts[key] = counts.get(key, 0) + 1
            if rec.sojourn is not None and not rec.forced:
                sojourns.setdefault((rec.source, rec.event), []).append(rec.sojourn)
                by_event.setdefault(rec.event, []).append(rec.sojourn)

    states: Dict[str, StateModel] = {}
    sources = sorted({src for (src, _, _) in counts})
    for source in sources:
        outgoing = [
            (event, target, n)
            for (src, event, target), n in counts.items()
            if src == source
        ]
        total = sum(n for _, _, n in outgoing)
        edges = []
        for event, target, n in sorted(outgoing, key=lambda x: int(x[0])):
            samples = sojourns.get((source, event), [])
            dist = _fit_sojourn(
                samples, by_event.get(event, []), family, max_cdf_points
            )
            edges.append(
                Edge(
                    event=event,
                    target=target,
                    probability=n / total,
                    sojourn=dist,
                )
            )
        states[source] = StateModel(edges=tuple(edges))
    return SemiMarkovChain(states)


def _fit_sojourn(
    samples: Sequence[float],
    event_pool: Sequence[float],
    family: str,
    max_cdf_points: int,
):
    """Fit one F_xy, falling back through pooled samples to a default."""
    source = samples if samples else event_pool
    if not source:
        return Exponential(rate=1.0 / _FALLBACK_MEAN_SOJOURN)
    if family == "empirical":
        return EmpiricalCDF.fit(source, max_points=max_cdf_points)
    try:
        return Exponential.fit(source)
    except FitError:
        return Exponential(rate=1.0 / _FALLBACK_MEAN_SOJOURN)


def _fit_first_event(
    segments: Sequence[_Segment],
    num_segments: int,
    max_cdf_points: int,
    *,
    machine_kind: str = "two_level",
) -> FirstEventModel:
    first_events = []
    for seg in segments:
        events = seg.event_types
        times = seg.times
        if machine_kind == "emm_ecm":
            # The EMM-ECM machine cannot start on HO/TAU (those come
            # from the overlay); its first event is the first Category-1.
            mask = np.isin(events, [int(e) for e in _CATEGORY1_SET])
            events = events[mask]
            times = times[mask]
        if len(times) > 0:
            first_events.append((EventType(int(events[0])), float(times[0])))
    # Guard: clustering counts UEs once, but a UE contributes one segment
    # per slot; num_segments can undercount if data is inconsistent.
    num_segments = max(num_segments, len(first_events))
    return FirstEventModel.fit(
        first_events, num_segments, max_cdf_points=max_cdf_points
    )


def _fit_overlay(
    segments: Sequence[_Segment], num_segments: int
) -> Dict[EventType, float]:
    """Poisson rates for the events the EMM–ECM machine cannot express.

    Following the paper's baseline: merge the per-UE inter-arrival
    times of each event type across UEs and fit an exponential by MLE;
    the resulting rate drives an independent per-UE Poisson process.
    UEs with fewer than two events contribute no inter-arrival sample,
    so bursty traffic inflates the rate — the source of the baseline's
    large breakdown error in Tables 4/11.
    """
    rates: Dict[EventType, float] = {}
    for event in _OVERLAY_EVENTS:
        interarrivals: List[float] = []
        count = 0
        for seg in segments:
            mask = seg.event_types == int(event)
            times = seg.times[mask]
            count += int(times.size)
            if times.size >= 2:
                interarrivals.extend(np.diff(times).tolist())
        if interarrivals:
            mean = float(np.mean(interarrivals))
            rates[event] = 1.0 / max(mean, 1e-3)
        elif count > 0 and num_segments > 0:
            rates[event] = count / (num_segments * SECONDS_PER_HOUR)
        else:
            rates[event] = 0.0
    return rates
