"""Self-consistency validation of fitted model sets.

A fitted :class:`ModelSet` can silently carry problems — edges that the
state machine forbids (corrupted persistence), probabilities that no
longer normalize, empty hours, first-event models referencing events
the machine cannot start.  ``validate_model_set`` audits all of it and
returns human-readable findings; an empty list means the model is
internally consistent and safe to generate from.
"""

from __future__ import annotations

from typing import List

from ..statemachines.replay import _canonical_source_for
from ..trace.events import EventType
from .model_set import ModelSet

_PROB_TOL = 1e-6


def validate_model_set(model_set: ModelSet) -> List[str]:
    """Audit a model set; returns a list of problems (empty = OK)."""
    problems: List[str] = []
    try:
        machine = model_set.machine()
    except ValueError as exc:
        return [f"unknown machine kind: {exc}"]

    if not model_set.models:
        problems.append("model set contains no device types")

    for device_type, hours in model_set.models.items():
        where = device_type.name
        if not hours:
            problems.append(f"{where}: no fitted hours")
            continue
        training_ues = set(model_set.device_ues.get(device_type, ()))
        if not training_ues:
            problems.append(f"{where}: no training UEs recorded")
        for hour, hour_model in hours.items():
            loc = f"{where}/h{hour}"
            if not 0 <= hour <= 23:
                problems.append(f"{loc}: hour out of range")
            if not hour_model.clusters:
                problems.append(f"{loc}: no clusters")
                continue
            assigned = set(hour_model.assignment)
            if training_ues and assigned != training_ues:
                problems.append(
                    f"{loc}: cluster assignment covers {len(assigned)} UEs, "
                    f"training set has {len(training_ues)}"
                )
            for cid in set(hour_model.assignment.values()):
                if not 0 <= cid < len(hour_model.clusters):
                    problems.append(f"{loc}: assignment points at cluster {cid}")
            for cid, cluster in enumerate(hour_model.clusters):
                cloc = f"{loc}/c{cid}"
                problems.extend(_check_cluster(cluster, machine, cloc))
    return problems


def _check_cluster(cluster, machine, where: str) -> List[str]:
    problems: List[str] = []
    for state, state_model in cluster.chain.states.items():
        if state not in machine.states:
            problems.append(f"{where}: chain state {state!r} unknown to machine")
            continue
        total = 0.0
        for edge in state_model.edges:
            total += edge.probability
            if not machine.can_fire(state, edge.event):
                problems.append(
                    f"{where}: forbidden edge {state} --{edge.event.name}-->"
                )
            elif machine.next_state(state, edge.event) != edge.target:
                problems.append(
                    f"{where}: edge {state} --{edge.event.name}--> "
                    f"{edge.target} disagrees with the machine"
                )
            if edge.probability < 0:
                problems.append(f"{where}: negative probability on {state}")
            if edge.sojourn.mean() < 0:
                problems.append(f"{where}: negative sojourn mean on {state}")
        if state_model.edges and abs(total - 1.0) > _PROB_TOL:
            problems.append(
                f"{where}: probabilities from {state} sum to {total:.6f}"
            )

    fe = cluster.first_event
    if fe.event_probs:
        total = sum(fe.event_probs.values())
        if abs(total - 1.0) > _PROB_TOL:
            problems.append(f"{where}: first-event probabilities sum to {total:.6f}")
        for event in fe.event_probs:
            try:
                _canonical_source_for(machine, event)
            except ValueError:
                problems.append(
                    f"{where}: first event {event.name} impossible in machine"
                )
    if not 0.0 <= fe.p_active <= 1.0:
        problems.append(f"{where}: p_active out of range ({fe.p_active})")

    for event, rate in cluster.overlay_rates.items():
        if rate < 0:
            problems.append(f"{where}: negative overlay rate for {event.name}")
    return problems
