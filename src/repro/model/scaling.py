"""Deriving 5G model parameters from a fitted 4G model set (§6).

Large-scale 5G control-plane traces do not exist yet, so the paper
scales the 4G model: measurement studies report ~4.6x more handovers
under 5G mmWave NSA, and the authors' own controlled experiment gives
~3.0x for 5G SA.

* **5G NSA** runs on LTE's core, so it keeps the LTE two-level machine
  (and TAU); only the HO frequency is scaled.
* **5G SA** uses the adjusted machine of Fig. 6: TAU states and edges
  are removed, the IDLE sub-states collapse into ``CM_IDLE``, and
  states/events are renamed per Table 2.

Scaling an event's frequency by ``k`` multiplies the odds of its edges
by ``k`` (renormalizing the rest) and divides its sojourn times by
``k`` — more frequent events arrive sooner.
"""

from __future__ import annotations

import copy
from typing import Dict, Optional

from ..distributions.base import Distribution
from ..distributions.empirical import EmpiricalCDF
from ..distributions.exponential import Exponential
from ..statemachines import lte, nr
from ..trace.events import EventType
from .first_event import FirstEventModel
from .model_set import ClusterModel, HourModel, ModelSet
from .semi_markov import Edge, SemiMarkovChain, StateModel

#: HO scaling factor for 5G mmWave NSA (Hassan et al., SIGCOMM '22).
NSA_HO_SCALE = 4.6
#: HO scaling factor for 5G mmWave SA (the paper's controlled experiment).
SA_HO_SCALE = 3.0

#: LTE leaf states that survive into the 5G SA machine, with new names.
_SA_STATE_MAP = {
    lte.DEREGISTERED: nr.RM_DEREGISTERED,
    lte.SRV_REQ_S: nr.SRV_REQ_S,
    lte.HO_S: nr.HO_S,
    lte.S1_REL_S_1: nr.CM_IDLE,
}


def _scale_sojourn(dist: Distribution, factor: float) -> Distribution:
    """Divide a sojourn distribution's time scale by ``factor``."""
    if factor == 1.0:
        return dist
    if isinstance(dist, EmpiricalCDF):
        return EmpiricalCDF(dist.quantiles / factor)
    if isinstance(dist, Exponential):
        return Exponential(rate=dist.rate * factor)
    raise TypeError(f"cannot scale sojourn family {type(dist).__name__}")


def scale_event_frequency(
    chain: SemiMarkovChain, event: EventType, factor: float
) -> SemiMarkovChain:
    """Scale how often ``event`` fires in a chain by ``factor``.

    The odds of every edge labelled ``event`` are multiplied by
    ``factor`` and the state's edge probabilities renormalized; the
    event's sojourn times shrink by the same factor.
    """
    if factor <= 0:
        raise ValueError(f"scale factor must be positive, got {factor}")
    states = {}
    for state, model in chain.states.items():
        weights = []
        for edge in model.edges:
            w = edge.probability * (factor if edge.event == event else 1.0)
            weights.append(w)
        total = sum(weights)
        edges = tuple(
            Edge(
                event=e.event,
                target=e.target,
                probability=w / total,
                sojourn=(
                    _scale_sojourn(e.sojourn, factor)
                    if e.event == event
                    else e.sojourn
                ),
            )
            for e, w in zip(model.edges, weights)
        )
        states[state] = StateModel(edges=edges)
    return SemiMarkovChain(states)


def drop_event(chain: SemiMarkovChain, event: EventType) -> SemiMarkovChain:
    """Remove every edge labelled ``event``, renormalizing the rest."""
    states = {}
    for state, model in chain.states.items():
        kept = [e for e in model.edges if e.event != event]
        total = sum(e.probability for e in kept)
        if total <= 0:
            states[state] = StateModel(edges=())
            continue
        states[state] = StateModel(
            edges=tuple(
                Edge(e.event, e.target, e.probability / total, e.sojourn)
                for e in kept
            )
        )
    return SemiMarkovChain(states)


def _rename_states(
    chain: SemiMarkovChain, mapping: Dict[str, str]
) -> SemiMarkovChain:
    """Project a chain onto renamed states, dropping unmapped ones."""
    states = {}
    for state, model in chain.states.items():
        if state not in mapping:
            continue
        kept = [e for e in model.edges if e.target in mapping]
        total = sum(e.probability for e in kept)
        if total <= 0:
            states[mapping[state]] = StateModel(edges=())
            continue
        states[mapping[state]] = StateModel(
            edges=tuple(
                Edge(e.event, mapping[e.target], e.probability / total, e.sojourn)
                for e in kept
            )
        )
    return SemiMarkovChain(states)


def _drop_first_event_tau(model: FirstEventModel) -> FirstEventModel:
    """Remove TAU from a first-event model (no TAU exists in 5G SA)."""
    probs = {e: p for e, p in model.event_probs.items() if e != EventType.TAU}
    total = sum(probs.values())
    if total <= 0:
        return FirstEventModel(p_active=0.0, event_probs={}, offset=model.offset)
    tau_share = 1.0 - total
    return FirstEventModel(
        p_active=model.p_active * (1.0 - tau_share),
        event_probs={e: p / total for e, p in probs.items()},
        offset=model.offset,
    )


def _map_cluster(
    cm: ClusterModel,
    *,
    ho_scale: float,
    drop_tau: bool,
) -> ClusterModel:
    chain = scale_event_frequency(cm.chain, EventType.HO, ho_scale)
    first_event = cm.first_event
    overlay = dict(cm.overlay_rates)
    if EventType.HO in overlay:
        overlay[EventType.HO] = overlay[EventType.HO] * ho_scale
    if drop_tau:
        chain = drop_event(chain, EventType.TAU)
        chain = _rename_states(chain, _SA_STATE_MAP)
        first_event = _drop_first_event_tau(first_event)
        overlay.pop(EventType.TAU, None)
    return ClusterModel(
        chain=chain,
        first_event=first_event,
        overlay_rates=overlay,
        num_ues=cm.num_ues,
        num_segments=cm.num_segments,
    )


def _map_model_set(
    model_set: ModelSet,
    *,
    ho_scale: float,
    drop_tau: bool,
    machine_kind: str,
) -> ModelSet:
    models = {}
    for device_type, hours in model_set.models.items():
        models[device_type] = {
            hour: HourModel(
                clusters=[
                    _map_cluster(cm, ho_scale=ho_scale, drop_tau=drop_tau)
                    for cm in hm.clusters
                ],
                assignment=dict(hm.assignment),
            )
            for hour, hm in hours.items()
        }
    return ModelSet(
        machine_kind=machine_kind,
        family=model_set.family,
        clustered=model_set.clustered,
        models=models,
        device_ues=copy.deepcopy(model_set.device_ues),
        theta_f=model_set.theta_f,
        theta_n=model_set.theta_n,
    )


def scale_to_nsa(
    model_set: ModelSet, ho_scale: float = NSA_HO_SCALE
) -> ModelSet:
    """Derive a 5G NSA model set from a fitted LTE model set.

    NSA runs on LTE's MCN: the machine and event set are unchanged;
    only the HO frequency scales.
    """
    if model_set.machine_kind != "two_level":
        raise ValueError("5G scaling requires a two-level LTE model set")
    return _map_model_set(
        model_set, ho_scale=ho_scale, drop_tau=False, machine_kind="two_level"
    )


def scale_to_sa(model_set: ModelSet, ho_scale: float = SA_HO_SCALE) -> ModelSet:
    """Derive a 5G SA model set: HO scaled, TAU removed, states renamed."""
    if model_set.machine_kind != "two_level":
        raise ValueError("5G scaling requires a two-level LTE model set")
    return _map_model_set(
        model_set, ho_scale=ho_scale, drop_tau=True, machine_kind="nr_sa"
    )
