"""Compiled fitting fast path: array-at-a-time replay and model fitting.

The reference pipeline in :mod:`repro.model.fitting` walks every
(UE, hour-slot) segment event by event through
:func:`repro.statemachines.replay.replay_ue`, building Python
``TransitionRecord`` objects.  At the ROADMAP's "millions of UEs" scale
that per-object work dominates the paper's whole loop.  This module
lowers each state machine to small integer lookup tables once
(:func:`machine_table`) and replays entire device cohorts as flat
arrays:

* events are sorted by ``(ue, time)`` and bucketed into hour slots with
  one ``searchsorted``;
* state reconstruction runs as a segmented Hillis–Steele scan over
  per-event *state-transformation* rows, so the whole cohort's state
  trajectory falls out in ``O(log n)`` vectorized passes;
* ``p_xy`` counts come from one ``bincount`` over
  ``(cluster, source, event)`` keys, sojourn samples from grouped
  diffs, and the first-event / overlay models from boundary masks.

The compiled fitter is **exactly** equivalent to the reference one —
same transition probabilities, same CDF knots, same cluster assignment
— because every reduction preserves the reference's sample *order*
(``np.mean``/``np.std`` are order-dependent in floating point) and
performs divisions on Python ints exactly as the reference does.

Per-(device, hour) fit jobs can additionally fan out across a
``ProcessPoolExecutor`` via :func:`run_fit_jobs`, reusing the
retry/fault-attribution machinery of
:func:`repro.generator.parallel.run_tasks_pool`; the training trace is
shared with workers through an uncompressed NPZ that every worker
memory-maps (page-cache-shared) instead of pickling per job.
"""

from __future__ import annotations

import dataclasses
import os
import shutil
import tempfile
from functools import lru_cache
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..clustering.features import NUM_FEATURES
from ..clustering.quadtree import ClusteringResult, adaptive_cluster, single_cluster
from ..distributions.base import FitError
from ..distributions.empirical import EmpiricalCDF
from ..distributions.exponential import Exponential
from ..statemachines.compiled_replay import (  # noqa: F401  (re-exported)
    MachineTable,
    VectorizedReplay,
    _replay_codes,
    lower_machine,
    vectorized_replay,
)
from ..telemetry import RunTelemetry, get_telemetry, use_telemetry
from ..trace.events import SECONDS_PER_HOUR, DeviceType, EventType
from ..trace.trace import Trace
from .first_event import FirstEventModel
from .model_set import ClusterModel, HourModel, build_machine
from .semi_markov import Edge, SemiMarkovChain, StateModel

#: Mirror of ``fitting._FALLBACK_MEAN_SOJOURN`` (no import: fitting
#: imports this module).
_FALLBACK_MEAN_SOJOURN = 60.0

_CATEGORY1_CODES = np.asarray(
    sorted(
        int(e)
        for e in (
            EventType.ATCH,
            EventType.DTCH,
            EventType.SRV_REQ,
            EventType.S1_CONN_REL,
        )
    ),
    dtype=np.int64,
)
_OVERLAY_EVENTS = (EventType.HO, EventType.TAU)

_NUM_EVENTS = int(max(EventType)) + 1


# ---------------------------------------------------------------------------
# Machine lowering
# ---------------------------------------------------------------------------
# The lowering itself (MachineTable, lower_machine) and the segmented
# replay scan (_replay_codes, vectorized_replay) live in
# :mod:`repro.statemachines.compiled_replay` — they are state-machine
# primitives shared with the compiled evaluation engine — and are
# re-exported here for backwards compatibility.

@lru_cache(maxsize=None)
def machine_table(machine_kind: str) -> MachineTable:
    """Cached :func:`lower_machine` for a named machine kind."""
    return lower_machine(build_machine(machine_kind))


# ---------------------------------------------------------------------------
# Device cohorts as flat arrays
# ---------------------------------------------------------------------------

@dataclasses.dataclass
class DeviceArrays:
    """One device type's events, sorted by ``(ue, time)`` and slot-bucketed."""

    ues: np.ndarray       #: sorted distinct UE ids
    ue_code: np.ndarray   #: per-row index into ``ues``
    events: np.ndarray    #: per-row event codes (int64)
    slots: np.ndarray     #: per-row hour-slot index
    t_rel: np.ndarray     #: per-row slot-relative time, in [0, 3600)
    total_slots: int


def device_arrays(
    trace: Trace, device_type: DeviceType, total_slots: int
) -> Optional[DeviceArrays]:
    """Extract one device's cohort as flat arrays (None if absent)."""
    mask = trace.device_types == int(device_type)
    if not mask.any():
        return None
    ue = trace.ue_ids[mask]
    t = trace.times[mask]
    ev = trace.event_types[mask].astype(np.int64)
    # Trace rows are already time-sorted, so one stable ue sort yields
    # the (ue, time) order the reference sees — same permutation as
    # np.lexsort((t, ue)) at roughly half the cost.
    order = np.argsort(ue, kind="stable")
    ue, t, ev = ue[order], t[order], ev[order]
    # Slot membership matches the reference's half-open searchsorted
    # windows exactly (an event at exactly k*3600.0 belongs to slot k);
    # floor division would be a float-rounding hazard here.
    boundaries = np.arange(1, total_slots) * SECONDS_PER_HOUR
    slots = np.searchsorted(boundaries, t, side="right")
    t_rel = t - slots * SECONDS_PER_HOUR
    ues = np.unique(ue)
    ue_code = np.searchsorted(ues, ue)
    return DeviceArrays(
        ues=ues,
        ue_code=ue_code,
        events=ev,
        slots=slots,
        t_rel=t_rel,
        total_slots=total_slots,
    )


# ---------------------------------------------------------------------------
# Per-(device, hour) fitting
# ---------------------------------------------------------------------------

def _segment_firsts(seg_key: np.ndarray) -> np.ndarray:
    first = np.empty(len(seg_key), dtype=bool)
    if len(seg_key):
        first[0] = True
        first[1:] = seg_key[1:] != seg_key[:-1]
    return first


def _group_slices(
    sorted_keys: np.ndarray, key: int
) -> slice:
    lo = int(np.searchsorted(sorted_keys, key, side="left"))
    hi = int(np.searchsorted(sorted_keys, key, side="right"))
    return slice(lo, hi)


def _group_std(codes: np.ndarray, values: np.ndarray, num_ues: int) -> np.ndarray:
    """Per-UE ``np.std`` over grouped values (0.0 below two samples).

    ``codes`` must be non-decreasing with ``values`` in the reference's
    append order, so each group's ``np.std`` sees bit-identical input.
    Groups are batched by size into one ``np.std(..., axis=1)`` call
    each: reducing the contiguous last axis applies the same pairwise
    summation per row as a 1-D reduction, so the batch is bit-identical
    to per-group calls while skipping numpy's per-call dispatch.
    """
    out = np.zeros(num_ues, dtype=np.float64)
    if codes.size == 0:
        return out
    present, starts = np.unique(codes, return_index=True)
    lengths = np.diff(np.append(starts, codes.size))
    for size in np.unique(lengths).tolist():
        if size < 2:
            continue
        sel = np.flatnonzero(lengths == size)
        rows = values[starts[sel][:, None] + np.arange(size)]
        out[present[sel]] = np.std(rows, axis=1)
    return out


def _fit_sojourn_arrays(
    samples: np.ndarray,
    event_pool: np.ndarray,
    family: str,
    max_cdf_points: int,
):
    """Array twin of ``fitting._fit_sojourn`` (same fallback ladder)."""
    source = samples if samples.size else event_pool
    if source.size == 0:
        return Exponential(rate=1.0 / _FALLBACK_MEAN_SOJOURN)
    if family == "empirical":
        return EmpiricalCDF.fit(source, max_points=max_cdf_points)
    try:
        return Exponential.fit(source)
    except FitError:
        return Exponential(rate=1.0 / _FALLBACK_MEAN_SOJOURN)


def fit_device_hour(
    dev: DeviceArrays,
    hour_slots: Sequence[int],
    *,
    table: MachineTable,
    machine_kind: str,
    family: str,
    clustered: bool,
    theta_f: float,
    theta_n: int,
    max_cdf_points: int,
) -> HourModel:
    """Fit one (device, hour-of-day) :class:`HourModel` from flat arrays.

    Exactly equivalent to the reference ``_fit_hour`` over the segments
    ``_build_segments`` would produce for ``hour_slots``.
    """
    tele = get_telemetry()
    slots_arr = np.asarray(sorted(int(s) for s in hour_slots), dtype=np.int64)
    num_slots = len(slots_arr)
    mask = np.isin(dev.slots, slots_arr)
    ue_code = dev.ue_code[mask]
    events = dev.events[mask]
    t_rel = dev.t_rel[mask]
    seg_key = ue_code * dev.total_slots + dev.slots[mask]
    first_raw = _segment_firsts(seg_key)
    num_ues = len(dev.ues)
    tele.count("segments_replayed", int(np.count_nonzero(first_raw)))

    # Filtered stream: the EMM-ECM machine only replays Category-1.
    if machine_kind == "emm_ecm":
        fmask = np.isin(events, _CATEGORY1_CODES)
        f_ue = ue_code[fmask]
        f_ev = events[fmask]
        f_t = t_rel[fmask]
        f_seg = seg_key[fmask]
    else:
        f_ue, f_ev, f_t, f_seg = ue_code, events, t_rel, seg_key
    f_first = _segment_firsts(f_seg)
    tele.count("transitions_counted", len(f_ev))

    with tele.span("fit-replay"):
        src, tgt, forced = _replay_codes(f_ev, f_first, table)

    with tele.span("fit-cluster"):
        clustering = _cluster_device_hour(
            dev,
            table,
            clustered=clustered,
            theta_f=theta_f,
            theta_n=theta_n,
            ue_code=ue_code,
            events=events,
            first_raw=first_raw,
            f_ue=f_ue,
            f_t=f_t,
            f_seg=f_seg,
            src=src,
            tgt=tgt,
        )

    with tele.span("fit-models"):
        num_clusters = len(clustering.clusters)
        cl_of_ue = np.zeros(num_ues, dtype=np.int64)
        for i, ue in enumerate(dev.ues.tolist()):
            cl_of_ue[i] = clustering.assignment[int(ue)]
        cid_f = cl_of_ue[f_ue]

        num_states = table.num_states
        num_events = table.num_events
        src64 = src.astype(np.int64)
        combined = (cid_f * num_states + src64) * num_events + f_ev
        counts = np.bincount(
            combined, minlength=num_clusters * num_states * num_events
        ).reshape(num_clusters, num_states, num_events)

        # Sojourn samples: non-forced records only; value is the
        # slot-relative diff to the previous record of the segment, in
        # the reference's global (ue, slot, time) append order — the
        # stable argsorts below preserve it within every group.
        nf = np.flatnonzero(~forced)
        sojourns = f_t[nf] - f_t[nf - 1]
        edge_keys = (cid_f[nf] * num_states + src64[nf]) * num_events + f_ev[nf]
        edge_order = np.argsort(edge_keys, kind="stable")
        edge_sorted_keys = edge_keys[edge_order]
        edge_sorted_vals = sojourns[edge_order]
        pool_keys = cid_f[nf] * num_events + f_ev[nf]
        pool_order = np.argsort(pool_keys, kind="stable")
        pool_sorted_keys = pool_keys[pool_order]
        pool_sorted_vals = sojourns[pool_order]

        first_pos = np.flatnonzero(f_first)
        cid_first = cid_f[first_pos] if first_pos.size else first_pos

        cluster_models = []
        for cluster in clustering.clusters:
            cid = cluster.cluster_id
            chain = _cluster_chain(
                counts[cid],
                table,
                family=family,
                max_cdf_points=max_cdf_points,
                cid=cid,
                edge_sorted_keys=edge_sorted_keys,
                edge_sorted_vals=edge_sorted_vals,
                pool_sorted_keys=pool_sorted_keys,
                pool_sorted_vals=pool_sorted_vals,
            )
            sel = first_pos[cid_first == cid]
            first_events = [
                (EventType(int(f_ev[p])), float(f_t[p])) for p in sel.tolist()
            ]
            num_segments = cluster.size * num_slots
            first_event = FirstEventModel.fit(
                first_events,
                max(num_segments, len(first_events)),
                max_cdf_points=max_cdf_points,
            )
            if machine_kind == "emm_ecm":
                overlay = _cluster_overlay(
                    cl_of_ue[ue_code] == cid,
                    events,
                    t_rel,
                    seg_key,
                    num_segments,
                )
            else:
                overlay = {}
            cluster_models.append(
                ClusterModel(
                    chain=chain,
                    first_event=first_event,
                    overlay_rates=overlay,
                    num_ues=cluster.size,
                    num_segments=num_segments,
                )
            )
    return HourModel(
        clusters=cluster_models, assignment=dict(clustering.assignment)
    )


def _cluster_device_hour(
    dev: DeviceArrays,
    table: MachineTable,
    *,
    clustered: bool,
    theta_f: float,
    theta_n: int,
    ue_code: np.ndarray,
    events: np.ndarray,
    first_raw: np.ndarray,
    f_ue: np.ndarray,
    f_t: np.ndarray,
    f_seg: np.ndarray,
    src: np.ndarray,
    tgt: np.ndarray,
) -> ClusteringResult:
    """Vectorized twin of ``fitting._cluster_ues`` for one device-hour."""
    ues_list = [int(u) for u in dev.ues.tolist()]
    if not clustered:
        return single_cluster(ues_list, NUM_FEATURES)
    num_ues = len(ues_list)
    srv = np.bincount(
        ue_code[events == int(EventType.SRV_REQ)], minlength=num_ues
    )
    rel = np.bincount(
        ue_code[events == int(EventType.S1_CONN_REL)], minlength=num_ues
    )
    slots_seen = np.bincount(ue_code[first_raw], minlength=num_ues)

    # Complete top-level intervals: consecutive parent-boundary records
    # within one segment open/close an interval whose state is the
    # opening boundary's target parent (matching top_level_intervals'
    # `current` tracking; the segment's first interval starts at an
    # unknown time and is never complete).
    src_par = table.parent_code[src]
    tgt_par = table.parent_code[tgt]
    bpos = np.flatnonzero(src_par != tgt_par)
    if bpos.size >= 2:
        same = f_seg[bpos[1:]] == f_seg[bpos[:-1]]
        open_b = bpos[:-1][same]
        close_b = bpos[1:][same]
        durations = f_t[close_b] - f_t[open_b]
        interval_state = tgt_par[open_b]
        interval_ue = f_ue[open_b]
    else:
        durations = np.empty(0, dtype=np.float64)
        interval_state = np.empty(0, dtype=np.int16)
        interval_ue = np.empty(0, dtype=np.int64)
    conn = interval_state == table.connected_code
    idle = interval_state == table.idle_code
    std_conn = _group_std(interval_ue[conn], durations[conn], num_ues)
    std_idle = _group_std(interval_ue[idle], durations[idle], num_ues)

    features: Dict[int, np.ndarray] = {}
    for i, ue in enumerate(ues_list):
        slots = max(1, int(slots_seen[i]))
        features[ue] = np.asarray(
            [
                int(srv[i]) / slots,
                int(rel[i]) / slots,
                std_conn[i],
                std_idle[i],
            ],
            dtype=np.float64,
        )
    return adaptive_cluster(features, theta_f=theta_f, theta_n=theta_n)


def _cluster_chain(
    counts: np.ndarray,
    table: MachineTable,
    *,
    family: str,
    max_cdf_points: int,
    cid: int,
    edge_sorted_keys: np.ndarray,
    edge_sorted_vals: np.ndarray,
    pool_sorted_keys: np.ndarray,
    pool_sorted_vals: np.ndarray,
) -> SemiMarkovChain:
    """Build one cluster's chain from its (S, E) count matrix."""
    num_states = table.num_states
    num_events = table.num_events
    row_totals = counts.sum(axis=1)
    states: Dict[str, StateModel] = {}
    for s in range(num_states):
        total = int(row_totals[s])
        if total == 0:
            continue
        edges = []
        for e in range(num_events):
            n = int(counts[s, e])
            if n == 0:
                continue
            samples = edge_sorted_vals[
                _group_slices(
                    edge_sorted_keys, (cid * num_states + s) * num_events + e
                )
            ]
            pool = pool_sorted_vals[
                _group_slices(pool_sorted_keys, cid * num_events + e)
            ]
            edges.append(
                Edge(
                    event=EventType(e),
                    target=table.names[int(table.next_state[s, e])],
                    probability=n / total,
                    sojourn=_fit_sojourn_arrays(
                        samples, pool, family, max_cdf_points
                    ),
                )
            )
        states[table.names[s]] = StateModel(edges=tuple(edges))
    return SemiMarkovChain(states)


def _cluster_overlay(
    in_cluster: np.ndarray,
    events: np.ndarray,
    t_rel: np.ndarray,
    seg_key: np.ndarray,
    num_segments: int,
) -> Dict[EventType, float]:
    """Vectorized twin of ``fitting._fit_overlay`` for one cluster."""
    rates: Dict[EventType, float] = {}
    for event in _OVERLAY_EVENTS:
        rows = np.flatnonzero(in_cluster & (events == int(event)))
        count = int(rows.size)
        if rows.size >= 2:
            same = seg_key[rows[1:]] == seg_key[rows[:-1]]
            interarrivals = (t_rel[rows[1:]] - t_rel[rows[:-1]])[same]
        else:
            interarrivals = np.empty(0, dtype=np.float64)
        if interarrivals.size:
            mean = float(np.mean(interarrivals))
            rates[event] = 1.0 / max(mean, 1e-3)
        elif count > 0 and num_segments > 0:
            rates[event] = count / (num_segments * SECONDS_PER_HOUR)
        else:
            rates[event] = 0.0
    return rates


# ---------------------------------------------------------------------------
# Parallel fit jobs
# ---------------------------------------------------------------------------

class FitJobFailedError(RuntimeError):
    """A (device, hour) fit job failed deterministically after retries."""

    def __init__(
        self, device_type: DeviceType, hour: int, attempts: int, reason: str
    ) -> None:
        self.device_type = device_type
        self.hour = hour
        self.attempts = attempts
        super().__init__(
            f"fit job for device {device_type.name}, hour {hour} "
            f"failed after {attempts} attempt(s): {reason}"
        )


_FIT_WORKER: dict = {
    "trace": None,
    "params": None,
    "scratch": None,
    "devices": {},
}


def _init_fit_worker(payload: dict, scratch_dir: Optional[str] = None) -> None:
    from ..trace.io import read_npz

    _FIT_WORKER["trace"] = read_npz(payload["trace_path"], mmap=True)
    _FIT_WORKER["params"] = payload["params"]
    _FIT_WORKER["scratch"] = scratch_dir
    _FIT_WORKER["devices"] = {}


def _fit_job(args: Tuple[int, int, int, Tuple[int, ...]]) -> Tuple[tuple, dict]:
    """Fit one (device, hour) job inside a worker process.

    Returns ``((device_code, hour, HourModel), telemetry_record)``; the
    model objects round-trip bit-exactly through pickling (plain
    ``__dict__`` state, no ``__init__`` re-run).
    """
    job_idx, device_code, hour, slots = args
    tele = RunTelemetry()
    with use_telemetry(tele):
        hour_model = _fit_job_model(job_idx, device_code, slots)
    return (device_code, hour, hour_model), tele.child_record()


def _fit_job_model(job_idx: int, device_code: int, slots: Tuple[int, ...]):
    trace = _FIT_WORKER["trace"]
    params = _FIT_WORKER["params"]
    assert trace is not None and params is not None, "fit worker not initialized"
    if _FIT_WORKER["scratch"] is not None:
        # Started-marker: lets the parent attribute a pool crash to the
        # jobs that were actually in flight (see run_tasks_pool).
        try:
            with open(
                os.path.join(_FIT_WORKER["scratch"], f"started-{job_idx}"), "w"
            ):
                pass
        except OSError:
            pass
    device_type = DeviceType(device_code)
    engine = params["engine"]
    if engine == "reference":
        from .fitting import _reference_device_context, _reference_fit_device_hour

        context = _FIT_WORKER["devices"].get(device_code)
        if context is None:
            context = _reference_device_context(trace, device_type)
            _FIT_WORKER["devices"][device_code] = context
        ues, per_ue = context
        return _reference_fit_device_hour(
            per_ue,
            ues,
            list(slots),
            machine=None,
            machine_kind=params["machine_kind"],
            family=params["family"],
            clustered=params["clustered"],
            theta_f=params["theta_f"],
            theta_n=params["theta_n"],
            max_cdf_points=params["max_cdf_points"],
        )
    dev = _FIT_WORKER["devices"].get(device_code)
    if dev is None:
        dev = device_arrays(trace, device_type, params["total_slots"])
        _FIT_WORKER["devices"][device_code] = dev
    return fit_device_hour(
        dev,
        slots,
        table=machine_table(params["machine_kind"]),
        machine_kind=params["machine_kind"],
        family=params["family"],
        clustered=params["clustered"],
        theta_f=params["theta_f"],
        theta_n=params["theta_n"],
        max_cdf_points=params["max_cdf_points"],
    )


def run_fit_jobs(
    trace: Trace,
    jobs: Sequence[Tuple[int, int, Tuple[int, ...]]],
    params: dict,
    *,
    processes: Optional[int],
    max_retries: int = 2,
    retry_backoff: float = 0.5,
    max_backoff: float = 30.0,
) -> Dict[DeviceType, Dict[int, HourModel]]:
    """Fan per-(device, hour) fit jobs across a process pool.

    ``jobs`` is a sequence of ``(device_code, hour, slots)``; ``params``
    carries the fit parameters plus ``engine`` and ``total_slots``.
    The trace is written once as an *uncompressed* NPZ that every
    worker memory-maps, so the cohort arrays are shared through the
    page cache instead of being pickled per job.  Worker crashes and
    exceptions reuse the generation pool's retry/fault-attribution loop
    (bumping the ``fit_retries`` counter); a job that keeps failing
    raises :class:`FitJobFailedError`.
    """
    from ..generator.parallel import _Backoff, run_tasks_pool
    from ..trace.io import write_npz

    tmp = tempfile.mkdtemp(prefix="repro-fit-")
    results: Dict[int, tuple] = {}
    try:
        trace_path = os.path.join(tmp, "trace.npz")
        write_npz(trace, trace_path, compress=False)
        payload = {"trace_path": trace_path, "params": dict(params)}
        tasks = {
            i: (i, int(device_code), int(hour), tuple(slots))
            for i, (device_code, hour, slots) in enumerate(jobs)
        }

        def _failed(idx: int, attempts: int, reason: str) -> FitJobFailedError:
            device_code, hour, _ = jobs[idx]
            return FitJobFailedError(
                DeviceType(device_code), hour, attempts, reason
            )

        run_tasks_pool(
            _fit_job,
            payload,
            _init_fit_worker,
            tasks,
            list(range(len(jobs))),
            results,
            processes=processes,
            max_retries=max_retries,
            backoff=_Backoff(retry_backoff, max_backoff),
            task_failed=_failed,
            phase="fit-parallel",
            retry_counter="fit_retries",
        )
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    models: Dict[DeviceType, Dict[int, HourModel]] = {}
    for i in range(len(jobs)):
        device_code, hour, hour_model = results[i]
        models.setdefault(DeviceType(device_code), {})[hour] = hour_model
    return models
