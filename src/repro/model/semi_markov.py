"""Semi-Markov process over a control-plane state machine (§5.2).

Following the paper's fitting specification, the model is *flat* over
the leaf states of the (possibly hierarchical) machine: for every edge
``x --e--> y`` it stores the transition probability
``p_xy = P(S_{i+1} = y | S_i = x)`` and a sojourn-time distribution
``F_xy(t) = P(T_{i+1} - T_i <= t | S_i = x, S_{i+1} = y)``.  Unlike a
Markov chain, ``F_xy`` is arbitrary — the proposed model uses empirical
CDFs, the baselines use fitted exponentials.

Generation walks the chain: on entering ``x`` draw the next edge from
``p_x.``, draw the dwell from ``F_xy``, fire the edge's event when the
timer expires.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..distributions.base import Distribution
from ..distributions.empirical import EmpiricalCDF
from ..distributions.exponential import Exponential
from ..trace.events import EventType

#: Durations are clamped below by the trace granularity so that a chain
#: with self-loops can never make zero time progress.
MIN_SOJOURN = 1e-3


@dataclasses.dataclass(frozen=True)
class Edge:
    """One outgoing transition of a state, with its fitted model."""

    event: EventType
    target: str
    probability: float
    sojourn: Distribution


@dataclasses.dataclass(frozen=True)
class StateModel:
    """All outgoing edges of one state (probabilities sum to 1)."""

    edges: Tuple[Edge, ...]
    #: Cumulative edge probabilities (last entry forced to exactly 1.0)
    #: so edge selection is a single ``searchsorted`` per step instead of
    #: rebuilding a probability list for ``rng.choice``.
    cum_probs: np.ndarray = dataclasses.field(
        init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.edges:
            total = sum(e.probability for e in self.edges)
            if abs(total - 1.0) > 1e-6:
                raise ValueError(f"edge probabilities sum to {total}, not 1")
        cum = np.cumsum([e.probability for e in self.edges])
        if cum.size:
            cum[-1] = 1.0
        object.__setattr__(self, "cum_probs", cum)

    @property
    def is_absorbing(self) -> bool:
        return not self.edges


class SemiMarkovChain:
    """A fitted semi-Markov process over named states."""

    def __init__(self, states: Mapping[str, StateModel]) -> None:
        self.states: Dict[str, StateModel] = dict(states)

    def step(
        self, state: str, rng: np.random.Generator
    ) -> Optional[Tuple[float, EventType, str]]:
        """Draw ``(dwell, event, next_state)`` from state ``state``.

        Returns ``None`` when the state is absorbing (no transitions
        were observed in the training data) — the generator then parks
        the UE there until the next hour's model takes over.
        """
        model = self.states.get(state)
        if model is None or model.is_absorbing:
            return None
        edges = model.edges
        if len(edges) == 1:
            edge = edges[0]
        else:
            idx = int(
                np.searchsorted(model.cum_probs, rng.random(), side="right")
            )
            edge = edges[min(idx, len(edges) - 1)]
        dwell = max(float(edge.sojourn.sample(rng)), MIN_SOJOURN)
        return dwell, edge.event, edge.target

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def edge_table(self, state_code: Mapping[str, int]) -> dict:
        """Lower the chain to flat CSR-style arrays for batched stepping.

        ``state_code`` maps every state name of the enclosing model
        universe to a dense integer code.  The returned dict contains,
        with states ordered by code and zero-probability edges dropped:

        - ``state_deg``: per-state out-degree (0 == absorbing/unknown),
          indexed by state code over the full universe;
        - ``sel_key``: ``src_code + cumulative_probability`` per edge —
          a sorted array such that ``searchsorted(sel_key, code + u,
          side="right")`` selects the edge drawn by ``u`` in ``[0, 1)``;
        - ``edge_event`` / ``edge_target``: event codes and target state
          codes per edge;
        - ``edge_sojourn``: the per-edge fitted sojourn distributions,
          in the same order (lowered further by the caller).
        """
        num_states = max(state_code.values()) + 1 if state_code else 0
        state_deg = np.zeros(num_states, dtype=np.int64)
        sel_key: List[float] = []
        edge_event: List[int] = []
        edge_target: List[int] = []
        edge_sojourn: List[Distribution] = []
        for name in sorted(self.states, key=lambda s: state_code[s]):
            model = self.states[name]
            edges = [e for e in model.edges if e.probability > 0.0]
            if not edges:
                continue
            code = state_code[name]
            cum = np.cumsum([e.probability for e in edges])
            cum[-1] = 1.0
            state_deg[code] = len(edges)
            sel_key.extend(code + cum)
            edge_event.extend(int(e.event) for e in edges)
            edge_target.extend(state_code[e.target] for e in edges)
            edge_sojourn.extend(e.sojourn for e in edges)
        return {
            "state_deg": state_deg,
            "sel_key": np.asarray(sel_key, dtype=np.float64),
            "edge_event": np.asarray(edge_event, dtype=np.int16),
            "edge_target": np.asarray(edge_target, dtype=np.int32),
            "edge_sojourn": edge_sojourn,
        }

    def transition_matrix(self) -> Dict[str, Dict[Tuple[EventType, str], float]]:
        """``state -> {(event, target): probability}`` for inspection."""
        return {
            state: {(e.event, e.target): e.probability for e in model.edges}
            for state, model in self.states.items()
        }

    def expected_dwell(self, state: str) -> Optional[float]:
        """Mean dwell in ``state`` under the fitted model."""
        model = self.states.get(state)
        if model is None or model.is_absorbing:
            return None
        return sum(e.probability * e.sojourn.mean() for e in model.edges)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-compatible representation."""
        return {
            state: [
                {
                    "event": e.event.name,
                    "target": e.target,
                    "probability": e.probability,
                    "sojourn": _sojourn_to_dict(e.sojourn),
                }
                for e in model.edges
            ]
            for state, model in self.states.items()
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SemiMarkovChain":
        states = {}
        for state, edges in data.items():
            states[state] = StateModel(
                edges=tuple(
                    Edge(
                        event=EventType[e["event"]],
                        target=e["target"],
                        probability=float(e["probability"]),
                        sojourn=_sojourn_from_dict(e["sojourn"]),
                    )
                    for e in edges
                )
            )
        return cls(states)


def _sojourn_to_dict(dist: Distribution) -> dict:
    if isinstance(dist, EmpiricalCDF):
        return {"family": "empirical", "quantiles": dist.to_list()}
    if isinstance(dist, Exponential):
        return {"family": "poisson", "rate": dist.rate}
    raise TypeError(f"cannot serialize sojourn family {type(dist).__name__}")


def _sojourn_from_dict(data: dict) -> Distribution:
    family = data["family"]
    if family == "empirical":
        return EmpiricalCDF.from_list(data["quantiles"])
    if family == "poisson":
        return Exponential(rate=float(data["rate"]))
    raise ValueError(f"unknown sojourn family {family!r}")
