"""Semi-Markov process over a control-plane state machine (§5.2).

Following the paper's fitting specification, the model is *flat* over
the leaf states of the (possibly hierarchical) machine: for every edge
``x --e--> y`` it stores the transition probability
``p_xy = P(S_{i+1} = y | S_i = x)`` and a sojourn-time distribution
``F_xy(t) = P(T_{i+1} - T_i <= t | S_i = x, S_{i+1} = y)``.  Unlike a
Markov chain, ``F_xy`` is arbitrary — the proposed model uses empirical
CDFs, the baselines use fitted exponentials.

Generation walks the chain: on entering ``x`` draw the next edge from
``p_x.``, draw the dwell from ``F_xy``, fire the edge's event when the
timer expires.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..distributions.base import Distribution
from ..distributions.empirical import EmpiricalCDF
from ..distributions.exponential import Exponential
from ..trace.events import EventType

#: Durations are clamped below by the trace granularity so that a chain
#: with self-loops can never make zero time progress.
MIN_SOJOURN = 1e-3


@dataclasses.dataclass(frozen=True)
class Edge:
    """One outgoing transition of a state, with its fitted model."""

    event: EventType
    target: str
    probability: float
    sojourn: Distribution


@dataclasses.dataclass(frozen=True)
class StateModel:
    """All outgoing edges of one state (probabilities sum to 1)."""

    edges: Tuple[Edge, ...]

    def __post_init__(self) -> None:
        if self.edges:
            total = sum(e.probability for e in self.edges)
            if abs(total - 1.0) > 1e-6:
                raise ValueError(f"edge probabilities sum to {total}, not 1")

    @property
    def is_absorbing(self) -> bool:
        return not self.edges


class SemiMarkovChain:
    """A fitted semi-Markov process over named states."""

    def __init__(self, states: Mapping[str, StateModel]) -> None:
        self.states: Dict[str, StateModel] = dict(states)

    def step(
        self, state: str, rng: np.random.Generator
    ) -> Optional[Tuple[float, EventType, str]]:
        """Draw ``(dwell, event, next_state)`` from state ``state``.

        Returns ``None`` when the state is absorbing (no transitions
        were observed in the training data) — the generator then parks
        the UE there until the next hour's model takes over.
        """
        model = self.states.get(state)
        if model is None or model.is_absorbing:
            return None
        edges = model.edges
        if len(edges) == 1:
            edge = edges[0]
        else:
            probs = [e.probability for e in edges]
            edge = edges[rng.choice(len(edges), p=probs)]
        dwell = max(float(edge.sojourn.sample(rng)), MIN_SOJOURN)
        return dwell, edge.event, edge.target

    def transition_matrix(self) -> Dict[str, Dict[Tuple[EventType, str], float]]:
        """``state -> {(event, target): probability}`` for inspection."""
        return {
            state: {(e.event, e.target): e.probability for e in model.edges}
            for state, model in self.states.items()
        }

    def expected_dwell(self, state: str) -> Optional[float]:
        """Mean dwell in ``state`` under the fitted model."""
        model = self.states.get(state)
        if model is None or model.is_absorbing:
            return None
        return sum(e.probability * e.sojourn.mean() for e in model.edges)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-compatible representation."""
        return {
            state: [
                {
                    "event": e.event.name,
                    "target": e.target,
                    "probability": e.probability,
                    "sojourn": _sojourn_to_dict(e.sojourn),
                }
                for e in model.edges
            ]
            for state, model in self.states.items()
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SemiMarkovChain":
        states = {}
        for state, edges in data.items():
            states[state] = StateModel(
                edges=tuple(
                    Edge(
                        event=EventType[e["event"]],
                        target=e["target"],
                        probability=float(e["probability"]),
                        sojourn=_sojourn_from_dict(e["sojourn"]),
                    )
                    for e in edges
                )
            )
        return cls(states)


def _sojourn_to_dict(dist: Distribution) -> dict:
    if isinstance(dist, EmpiricalCDF):
        return {"family": "empirical", "quantiles": dist.to_list()}
    if isinstance(dist, Exponential):
        return {"family": "poisson", "rate": dist.rate}
    raise TypeError(f"cannot serialize sojourn family {type(dist).__name__}")


def _sojourn_from_dict(data: dict) -> Distribution:
    family = data["family"]
    if family == "empirical":
        return EmpiricalCDF.from_list(data["quantiles"])
    if family == "poisson":
        return Exponential(rate=float(data["rate"]))
    raise ValueError(f"unknown sojourn family {family!r}")
