"""The start-event model (§5.4).

For each (UE-cluster, hour, device-type) the paper records, over all
(UE, day) one-hour segments, which event type opens the hour and when.
The generator samples from this model to place each UE's first event;
UEs whose segment was silent are captured by ``p_active`` so the
synthesized population reproduces the real fraction of idle UEs.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..distributions.empirical import EmpiricalCDF
from ..trace.events import SECONDS_PER_HOUR, EventType


@dataclasses.dataclass(frozen=True)
class FirstEventModel:
    """Distribution of (whether / which / when) the hour's first event."""

    p_active: float                         #: P(UE emits >= 1 event this hour)
    event_probs: Dict[EventType, float]     #: first-event type distribution
    offset: EmpiricalCDF                    #: first-event time within the hour

    #: Cached (event, cumulative-probability) table so sampling is a
    #: single ``searchsorted`` and the compiled engine can lower the
    #: model without re-sorting dicts.
    _events: Tuple[EventType, ...] = dataclasses.field(
        init=False, repr=False, compare=False
    )
    _cum_probs: np.ndarray = dataclasses.field(
        init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not 0.0 <= self.p_active <= 1.0:
            raise ValueError(f"p_active must be in [0, 1], got {self.p_active}")
        if self.event_probs:
            total = sum(self.event_probs.values())
            if abs(total - 1.0) > 1e-6:
                raise ValueError(f"event probabilities sum to {total}")
        events = tuple(sorted(self.event_probs, key=int))
        cum = np.cumsum([self.event_probs[e] for e in events])
        if cum.size:
            cum[-1] = 1.0
        object.__setattr__(self, "_events", events)
        object.__setattr__(self, "_cum_probs", cum)

    def event_table(self) -> Tuple[Tuple[EventType, ...], np.ndarray]:
        """``(events, cumulative probabilities)`` in event-code order."""
        return self._events, self._cum_probs

    def sample(
        self, rng: np.random.Generator
    ) -> Optional[Tuple[EventType, float]]:
        """Draw ``(first event, offset seconds)``; ``None`` = silent hour."""
        if not self.event_probs or rng.random() >= self.p_active:
            return None
        idx = int(np.searchsorted(self._cum_probs, rng.random(), side="right"))
        event = self._events[min(idx, len(self._events) - 1)]
        offset = float(self.offset.sample(rng))
        return event, min(max(offset, 0.0), SECONDS_PER_HOUR - 1e-3)

    # ------------------------------------------------------------------
    @classmethod
    def fit(
        cls,
        first_events: Sequence[Tuple[EventType, float]],
        num_segments: int,
        *,
        max_cdf_points: int = 256,
    ) -> "FirstEventModel":
        """Fit from observed ``(event, offset)`` pairs of active segments.

        ``num_segments`` counts all (UE, day) segments, silent ones
        included, so ``p_active`` reflects the real silence rate.
        """
        if num_segments <= 0:
            raise ValueError("num_segments must be positive")
        if len(first_events) > num_segments:
            raise ValueError("more first events than segments")
        if not first_events:
            return cls(
                p_active=0.0,
                event_probs={},
                offset=EmpiricalCDF([0.0]),
            )
        counts: Dict[EventType, int] = {}
        offsets = []
        for event, offset in first_events:
            counts[event] = counts.get(event, 0) + 1
            offsets.append(offset)
        total = len(first_events)
        return cls(
            p_active=total / num_segments,
            event_probs={e: c / total for e, c in counts.items()},
            offset=EmpiricalCDF.fit(offsets, max_points=max_cdf_points),
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "p_active": self.p_active,
            "event_probs": {e.name: p for e, p in self.event_probs.items()},
            "offset": self.offset.to_list(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FirstEventModel":
        return cls(
            p_active=float(data["p_active"]),
            event_probs={
                EventType[name]: float(p)
                for name, p in data["event_probs"].items()
            },
            offset=EmpiricalCDF.from_list(data["offset"]),
        )
