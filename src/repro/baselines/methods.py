"""Builders for the Base / V1 / V2 / Ours model sets (Table 3)."""

from __future__ import annotations

from typing import Callable, Dict

from ..clustering.quadtree import DEFAULT_THETA_F, DEFAULT_THETA_N
from ..model.fitting import fit_model_set
from ..model.model_set import ModelSet
from ..trace.trace import Trace

#: Canonical method names, in the paper's column order.
METHOD_NAMES = ("base", "v1", "v2", "ours")


def fit_base(trace: Trace, **kwargs) -> ModelSet:
    """``Base``: EMM–ECM machine, Poisson sojourns, no clustering.

    ``HO``/``TAU`` are fitted as Poisson overlays from merged per-UE
    inter-arrival times.
    """
    kwargs.setdefault("machine_kind", "emm_ecm")
    kwargs.setdefault("family", "poisson")
    kwargs.setdefault("clustered", False)
    return fit_model_set(trace, **kwargs)


def fit_v1(trace: Trace, **kwargs) -> ModelSet:
    """``V1``: Base plus the adaptive UE clustering scheme."""
    kwargs.setdefault("machine_kind", "emm_ecm")
    kwargs.setdefault("family", "poisson")
    kwargs.setdefault("clustered", True)
    return fit_model_set(trace, **kwargs)


def fit_v2(trace: Trace, **kwargs) -> ModelSet:
    """``V2``: the two-level machine + clustering, but Poisson sojourns."""
    kwargs.setdefault("machine_kind", "two_level")
    kwargs.setdefault("family", "poisson")
    kwargs.setdefault("clustered", True)
    return fit_model_set(trace, **kwargs)


def fit_ours(trace: Trace, **kwargs) -> ModelSet:
    """``Ours``: two-level machine + clustering + empirical sojourn CDFs."""
    kwargs.setdefault("machine_kind", "two_level")
    kwargs.setdefault("family", "empirical")
    kwargs.setdefault("clustered", True)
    return fit_model_set(trace, **kwargs)


_METHODS: Dict[str, Callable[..., ModelSet]] = {
    "base": fit_base,
    "v1": fit_v1,
    "v2": fit_v2,
    "ours": fit_ours,
}


def fit_method(
    method: str,
    trace: Trace,
    *,
    theta_f: float = DEFAULT_THETA_F,
    theta_n: int = DEFAULT_THETA_N,
    **kwargs,
) -> ModelSet:
    """Fit one of the four methods by name (case-insensitive)."""
    try:
        builder = _METHODS[method.lower()]
    except KeyError:
        raise ValueError(
            f"unknown method {method!r}; choose from {METHOD_NAMES}"
        ) from None
    return builder(trace, theta_f=theta_f, theta_n=theta_n, **kwargs)
