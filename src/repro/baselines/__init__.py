"""The four modeling methods compared in Table 3.

| Method | State machine | Sojourn model | UE clustering |
|--------|---------------|---------------|---------------|
| Base   | EMM–ECM       | Poisson       | no            |
| V1     | EMM–ECM       | Poisson       | yes           |
| V2     | two-level     | Poisson       | yes           |
| Ours   | two-level     | empirical CDF | yes           |

``Base`` and ``V1`` cannot express ``HO``/``TAU`` in their machine and
overlay them as state-oblivious Poisson processes, which is what
produces the "HO in IDLE" artifact of Tables 4/11.
"""

from .methods import (
    METHOD_NAMES,
    fit_base,
    fit_method,
    fit_ours,
    fit_v1,
    fit_v2,
)

__all__ = [
    "METHOD_NAMES",
    "fit_base",
    "fit_method",
    "fit_ours",
    "fit_v1",
    "fit_v2",
]
