"""4G ↔ 5G event mapping and trace relabelling (Table 2, §6).

Internally the library encodes 5G events with the same integer codes as
their LTE counterparts (the mapping is one-to-one except ``TAU``, which
has no 5G SA equivalent), so fitted LTE machinery applies unchanged.
This module provides the protocol-name view and trace conversion
helpers.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..trace.events import (
    LTE_TO_NR_EVENT,
    NR_TO_LTE_EVENT,
    DeviceType,
    EventType,
    NrEventType,
)
from ..trace.trace import Trace


def nr_event_name(event: EventType) -> str:
    """The 5G protocol name of an LTE-coded event (Table 2).

    Raises ``KeyError`` for ``TAU``, which does not exist in 5G SA.
    """
    return LTE_TO_NR_EVENT[event].name


def event_label(event: EventType, *, generation: str = "lte") -> str:
    """Human-readable event name for the given generation.

    ``generation``: ``"lte"``, ``"nsa"`` (5G NSA keeps LTE's event set),
    or ``"sa"``.
    """
    if generation in ("lte", "nsa"):
        return event.name
    if generation == "sa":
        return nr_event_name(event)
    raise ValueError(f"unknown generation {generation!r}")


def to_sa_trace(trace: Trace) -> Trace:
    """Project an LTE-coded trace onto 5G SA's event set.

    Removes ``TAU`` events (no SA counterpart).  The remaining events
    keep their integer codes; render names with
    ``event_label(..., generation="sa")``.
    """
    mask = trace.event_types != int(EventType.TAU)
    return Trace(
        trace.ue_ids[mask],
        trace.times[mask],
        trace.event_types[mask],
        trace.device_types[mask],
        sort=False,
        validate=False,
    )


def sa_breakdown(trace: Trace, device_type: DeviceType) -> Dict[str, float]:
    """Event breakdown of a 5G SA trace with 5G protocol names."""
    sub = to_sa_trace(trace).filter_device(device_type)
    total = len(sub)
    out: Dict[str, float] = {}
    for nr_event in NrEventType:
        lte_event = NR_TO_LTE_EVENT[nr_event]
        n = int(np.count_nonzero(sub.event_types == int(lte_event)))
        out[nr_event.name] = n / total if total else 0.0
    return out


def nsa_breakdown(trace: Trace, device_type: DeviceType) -> Dict[str, float]:
    """Event breakdown of a 5G NSA trace (LTE event names, TAU included)."""
    sub = trace.filter_device(device_type)
    return {e.name: f for e, f in sub.breakdown().items()}
