"""5G support: event mapping, NSA/SA trace views (Table 2, §6, Table 7)."""

from .mapping import (
    event_label,
    nr_event_name,
    nsa_breakdown,
    sa_breakdown,
    to_sa_trace,
)

__all__ = [
    "event_label",
    "nr_event_name",
    "nsa_breakdown",
    "sa_breakdown",
    "to_sa_trace",
]
