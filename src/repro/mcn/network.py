"""Discrete-event simulation of a mobile core's control plane.

Drives a full core network — MME/HSS/SGW/PGW for LTE, AMF/UDM/SMF/UPF
for 5G SA — with a control-plane trace.  Every UE event launches its
3GPP procedure (:mod:`repro.mcn.procedures`); each step queues at its
network function (a FIFO worker pool), is serviced, and hands off to
the next step after an inter-NF link delay.

Outputs answer the questions the paper's generator exists to answer:
which function saturates first, what the end-to-end procedure latencies
look like under realistic bursty load, and how the 4G and 5G cores
compare under the same UE behaviour.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..telemetry import RunTelemetry, get_telemetry
from ..trace.events import EventType
from ..trace.trace import Trace
from .procedures import Procedure, functions_for, procedures_for


@dataclasses.dataclass(frozen=True)
class FunctionReport:
    """Load statistics of one network function."""

    name: str
    messages: int
    utilization: float
    mean_wait: float
    p95_wait: float
    max_wait: float


@dataclasses.dataclass(frozen=True)
class ProcedureReport:
    """End-to-end latency statistics of one procedure type."""

    name: str
    count: int
    mean_latency: float
    p95_latency: float
    p99_latency: float
    max_latency: float


@dataclasses.dataclass(frozen=True)
class CoreReport:
    """Outcome of driving the core with one trace."""

    core: str
    num_events: int
    num_messages: int
    span: float
    functions: Dict[str, FunctionReport]
    procedures: Dict[str, ProcedureReport]

    def bottleneck(self) -> Optional[str]:
        """The most utilized network function, or ``None`` if no messages flowed."""
        if not self.functions:
            return None
        return max(self.functions.values(), key=lambda f: f.utilization).name


class _FunctionQueue:
    """A FIFO pool of ``workers`` servers for one network function."""

    __slots__ = ("name", "free_at", "busy", "waits")

    def __init__(self, name: str, workers: int, start: float) -> None:
        self.name = name
        self.free_at = [start] * workers
        heapq.heapify(self.free_at)
        self.busy = 0.0
        self.waits: List[float] = []

    def serve(self, arrival: float, service: float) -> float:
        """Admit a message; return its completion time."""
        free = heapq.heappop(self.free_at)
        start = max(arrival, free)
        finish = start + service
        heapq.heappush(self.free_at, finish)
        self.waits.append(start - arrival)
        self.busy += service
        return finish


class CoreNetworkSimulator:
    """Simulates one core generation under a control-plane trace.

    Parameters
    ----------
    core:
        ``"epc"`` (LTE) or ``"5gc"`` (5G SA).
    workers:
        Worker pool size per network function; either one integer for
        all functions or a per-function mapping.
    link_delay:
        One-way inter-NF message delay, seconds (same-datacenter scale).
    service_jitter:
        Uniform +/- fraction applied to each step's mean service time.
    """

    def __init__(
        self,
        core: str = "epc",
        *,
        workers: "int | Mapping[str, int]" = 4,
        link_delay: float = 0.0005,
        service_jitter: float = 0.3,
        seed: int = 0,
    ) -> None:
        self.core = core
        self.procedures = procedures_for(core)
        self.function_names = functions_for(core)
        if isinstance(workers, int):
            if workers <= 0:
                raise ValueError("workers must be positive")
            self.workers = {nf: workers for nf in self.function_names}
        else:
            self.workers = {nf: int(workers.get(nf, 4)) for nf in self.function_names}
            if any(w <= 0 for w in self.workers.values()):
                raise ValueError("workers must be positive")
        if link_delay < 0:
            raise ValueError("link_delay must be non-negative")
        if not 0.0 <= service_jitter < 1.0:
            raise ValueError("service_jitter must be in [0, 1)")
        self.link_delay = link_delay
        self.service_jitter = service_jitter
        self.seed = seed

    # ------------------------------------------------------------------
    def process(
        self, trace: Trace, *, telemetry: Optional[RunTelemetry] = None
    ) -> CoreReport:
        """Run the trace through the core and report per-NF/per-procedure stats.

        A zero-event trace yields an empty report (``num_events == 0``,
        no function or procedure entries, ``bottleneck() is None``)
        rather than raising.  The run is timed under the ``mcn-drive``
        span and counts ``mcn_events`` / ``mcn_messages`` on
        ``telemetry`` (default: the ambient collector).
        """
        tele = telemetry if telemetry is not None else get_telemetry()
        with tele.span("mcn-drive"):
            report = self._process(trace, rng=np.random.default_rng(self.seed))
        tele.count("mcn_events", report.num_events)
        tele.count("mcn_messages", report.num_messages)
        return report

    def _process(self, trace: Trace, *, rng: np.random.Generator) -> CoreReport:
        if len(trace) == 0:
            return CoreReport(
                core=self.core,
                num_events=0,
                num_messages=0,
                span=0.0,
                functions={},
                procedures={},
            )
        t0 = float(trace.times[0])
        queues = {
            nf: _FunctionQueue(nf, self.workers[nf], t0)
            for nf in self.function_names
        }
        latencies: Dict[str, List[float]] = {
            p.name: [] for p in self.procedures.values()
        }
        skipped = 0

        # Event heap entries: (time, tiebreak, procedure, step_idx, event_t0)
        counter = itertools.count()
        heap: List[Tuple[float, int, Procedure, int, float]] = []
        for i in range(len(trace)):
            event = EventType(int(trace.event_types[i]))
            procedure = self.procedures.get(event)
            if procedure is None:
                skipped += 1  # e.g. TAU driven into a 5GC
                continue
            t = float(trace.times[i])
            heapq.heappush(heap, (t, next(counter), procedure, 0, t))

        num_messages = 0
        while heap:
            t, _, procedure, step_idx, started = heapq.heappop(heap)
            step = procedure.steps[step_idx]
            service = self._service_time(step.service_mean, rng)
            finish = queues[step.nf].serve(t, service)
            num_messages += 1
            if step_idx + 1 < len(procedure.steps):
                heapq.heappush(
                    heap,
                    (
                        finish + self.link_delay,
                        next(counter),
                        procedure,
                        step_idx + 1,
                        started,
                    ),
                )
            else:
                latencies[procedure.name].append(finish - started)

        span = float(trace.times[-1] - trace.times[0])
        capacity = {nf: self.workers[nf] * max(span, 1e-9) for nf in queues}
        functions = {}
        for nf, queue in queues.items():
            waits = np.asarray(queue.waits) if queue.waits else np.zeros(1)
            functions[nf] = FunctionReport(
                name=nf,
                messages=len(queue.waits),
                utilization=min(1.0, queue.busy / capacity[nf]),
                mean_wait=float(waits.mean()),
                p95_wait=float(np.percentile(waits, 95.0)),
                max_wait=float(waits.max()),
            )
        procedures = {}
        for name, values in latencies.items():
            if not values:
                continue
            arr = np.asarray(values)
            procedures[name] = ProcedureReport(
                name=name,
                count=arr.size,
                mean_latency=float(arr.mean()),
                p95_latency=float(np.percentile(arr, 95.0)),
                p99_latency=float(np.percentile(arr, 99.0)),
                max_latency=float(arr.max()),
            )
        return CoreReport(
            core=self.core,
            num_events=len(trace) - skipped,
            num_messages=num_messages,
            span=span,
            functions=functions,
            procedures=procedures,
        )

    def _service_time(self, mean: float, rng: np.random.Generator) -> float:
        if self.service_jitter == 0:
            return mean
        return mean * rng.uniform(1.0 - self.service_jitter, 1.0 + self.service_jitter)
