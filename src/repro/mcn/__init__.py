"""Mobile-core consumers for generated traffic.

* :class:`MmeSimulator` — a single-function MME worker pool with
  per-UE protocol validation (quick load checks).
* :class:`CoreNetworkSimulator` — a procedure-level discrete-event
  simulation of the full EPC / 5GC control plane (per-function load,
  end-to-end procedure latency, bottleneck analysis).
"""

from .mme import DEFAULT_SERVICE_MEANS, MmeReport, MmeSimulator
from .network import (
    CoreNetworkSimulator,
    CoreReport,
    FunctionReport,
    ProcedureReport,
)
from .procedures import (
    EPC_FUNCTIONS,
    EPC_PROCEDURES,
    EPC_TO_5GC,
    FIVEGC_FUNCTIONS,
    FIVEGC_PROCEDURES,
    Procedure,
    Step,
    functions_for,
    procedures_for,
)

__all__ = [
    "CoreNetworkSimulator",
    "CoreReport",
    "DEFAULT_SERVICE_MEANS",
    "EPC_FUNCTIONS",
    "EPC_PROCEDURES",
    "EPC_TO_5GC",
    "FIVEGC_FUNCTIONS",
    "FIVEGC_PROCEDURES",
    "FunctionReport",
    "MmeReport",
    "MmeSimulator",
    "Procedure",
    "ProcedureReport",
    "Step",
    "functions_for",
    "procedures_for",
]
