"""A minimal MME (mobile core control-plane) queueing model.

The paper's motivation is driving MCN designs with realistic control
traffic.  This module provides a downstream consumer: a discrete-event
MME with a worker pool that processes control events in arrival order,
tracks each UE's state against the two-level machine (events a real MME
would reject are counted as protocol violations), and reports queueing
statistics.

It is intentionally simple — an M/G/c-style worker pool — but it is
enough to expose the difference between workloads: bursty, realistic
traffic produces markedly worse tail latency than a Poisson stream of
the same volume, and baseline-synthesized traffic triggers protocol
violations (``HO`` in IDLE) that the proposed model's traffic does not.
"""

from __future__ import annotations

import dataclasses
import heapq
from typing import Dict, List, Optional

import numpy as np

from ..statemachines.lte import two_level_machine
from ..statemachines.replay import _canonical_source_for
from ..trace.events import EventType
from ..trace.trace import Trace

#: Default mean service time per event type, seconds.  Attach/detach do
#: the most signaling work (HSS, session setup); handovers are mid;
#: connection management is cheap.  Values are representative, not
#: vendor-measured.
DEFAULT_SERVICE_MEANS: Dict[EventType, float] = {
    EventType.ATCH: 0.020,
    EventType.DTCH: 0.010,
    EventType.SRV_REQ: 0.004,
    EventType.S1_CONN_REL: 0.003,
    EventType.HO: 0.008,
    EventType.TAU: 0.005,
}


@dataclasses.dataclass(frozen=True)
class MmeReport:
    """Outcome of processing one trace through the MME model."""

    num_events: int
    span: float                      #: first-to-last arrival, seconds
    mean_wait: float                 #: queueing delay, seconds
    p50_wait: float
    p95_wait: float
    p99_wait: float
    max_wait: float
    mean_latency: float              #: wait + service
    utilization: float               #: busy worker-seconds / capacity
    throughput: float                #: events per second over the span
    protocol_violations: int         #: events invalid for the UE's state
    events_by_type: Dict[EventType, int]


class MmeSimulator:
    """A ``num_workers``-wide control-plane processor."""

    def __init__(
        self,
        num_workers: int = 4,
        *,
        service_means: Optional[Dict[EventType, float]] = None,
        service_jitter: float = 0.3,
        seed: int = 0,
    ) -> None:
        if num_workers <= 0:
            raise ValueError(f"num_workers must be positive, got {num_workers}")
        if not 0.0 <= service_jitter < 1.0:
            raise ValueError("service_jitter must be in [0, 1)")
        self.num_workers = num_workers
        self.service_means = dict(service_means or DEFAULT_SERVICE_MEANS)
        self.service_jitter = service_jitter
        self.seed = seed

    def _service_time(self, event: EventType, rng: np.random.Generator) -> float:
        mean = self.service_means.get(event, 0.005)
        if self.service_jitter == 0:
            return mean
        lo = 1.0 - self.service_jitter
        hi = 1.0 + self.service_jitter
        return mean * rng.uniform(lo, hi)

    def process(self, trace: Trace) -> MmeReport:
        """Run the trace through the worker pool and report statistics."""
        n = len(trace)
        if n == 0:
            raise ValueError("cannot process an empty trace")
        rng = np.random.default_rng(self.seed)
        machine = two_level_machine()

        workers: List[float] = [float(trace.times[0])] * self.num_workers
        heapq.heapify(workers)

        waits = np.empty(n, dtype=np.float64)
        latencies = np.empty(n, dtype=np.float64)
        busy = 0.0
        violations = 0
        ue_state: Dict[int, Optional[str]] = {}
        events_by_type: Dict[EventType, int] = {e: 0 for e in EventType}

        for i in range(n):
            arrival = float(trace.times[i])
            event = EventType(int(trace.event_types[i]))
            ue = int(trace.ue_ids[i])
            events_by_type[event] += 1

            # Per-UE protocol check (lenient: unknown start state).
            state = ue_state.get(ue)
            if state is None:
                # Initialize from the first event's canonical source.
                state = _canonical_source_for(machine, event)
            if machine.can_fire(state, event):
                state = machine.next_state(state, event)
            else:
                violations += 1
                state = machine.next_state(
                    _canonical_source_for(machine, event), event
                )
            ue_state[ue] = state

            free = heapq.heappop(workers)
            start = max(arrival, free)
            service = self._service_time(event, rng)
            heapq.heappush(workers, start + service)
            waits[i] = start - arrival
            latencies[i] = waits[i] + service
            busy += service

        span = float(trace.times[-1] - trace.times[0])
        capacity = self.num_workers * max(span, 1e-9)
        p50, p95, p99 = np.percentile(waits, [50.0, 95.0, 99.0])
        return MmeReport(
            num_events=n,
            span=span,
            mean_wait=float(waits.mean()),
            p50_wait=float(p50),
            p95_wait=float(p95),
            p99_wait=float(p99),
            max_wait=float(waits.max()),
            mean_latency=float(latencies.mean()),
            utilization=min(1.0, busy / capacity),
            throughput=n / max(span, 1e-9),
            protocol_violations=violations,
            events_by_type=events_by_type,
        )
