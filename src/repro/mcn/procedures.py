"""Control-plane procedure definitions (simplified 3GPP call flows).

Each UE-originated control event triggers a *procedure*: a chain of
messages across the core's network functions.  The flows below are the
standard LTE (EPC) and 5G SA (5GC) call flows reduced to their
control-plane message chains — enough to study how load distributes
over the core's functions, which is what the paper's traffic generator
exists to drive.

LTE (EPC) network functions: MME (signaling anchor), HSS (subscriber
DB), SGW and PGW (gateway control planes).  5G SA (5GC) counterparts:
AMF, AUSF/UDM (merged here), SMF, UPF (N4 control).

Service times are per-message means in seconds; they are representative
published magnitudes (sub-millisecond DB lookups, ~ms session
operations), not vendor measurements, and are configurable.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from ..trace.events import EventType

# ---------------------------------------------------------------------------
# Network function names
# ---------------------------------------------------------------------------

#: LTE / EPC control-plane functions.
MME = "MME"
HSS = "HSS"
SGW = "SGW"
PGW = "PGW"
EPC_FUNCTIONS: Tuple[str, ...] = (MME, HSS, SGW, PGW)

#: 5G SA / 5GC control-plane functions.
AMF = "AMF"
UDM = "UDM"   #: AUSF/UDM merged
SMF = "SMF"
UPF = "UPF"   #: N4 (PFCP) control interface
FIVEGC_FUNCTIONS: Tuple[str, ...] = (AMF, UDM, SMF, UPF)

#: EPC -> 5GC role mapping (who inherits which job).
EPC_TO_5GC: Dict[str, str] = {MME: AMF, HSS: UDM, SGW: SMF, PGW: UPF}


@dataclasses.dataclass(frozen=True)
class Step:
    """One message of a procedure: processed by ``nf``, then handed on."""

    nf: str
    message: str
    service_mean: float  #: seconds of NF processing


@dataclasses.dataclass(frozen=True)
class Procedure:
    """A named chain of steps triggered by one control event."""

    name: str
    steps: Tuple[Step, ...]

    @property
    def total_service(self) -> float:
        return sum(s.service_mean for s in self.steps)

    def functions(self) -> Tuple[str, ...]:
        return tuple(dict.fromkeys(s.nf for s in self.steps))


def _p(name: str, *steps: Tuple[str, str, float]) -> Procedure:
    return Procedure(
        name=name,
        steps=tuple(Step(nf, message, mean) for nf, message, mean in steps),
    )


#: LTE procedures per control event (simplified TS 23.401 flows).
EPC_PROCEDURES: Dict[EventType, Procedure] = {
    EventType.ATCH: _p(
        "attach",
        (MME, "Attach Request", 0.004),
        (HSS, "Authentication Information", 0.003),
        (MME, "NAS Security Setup", 0.003),
        (HSS, "Update Location", 0.003),
        (SGW, "Create Session Request", 0.003),
        (PGW, "Create Session Request", 0.003),
        (SGW, "Create Session Response", 0.002),
        (MME, "Attach Accept", 0.002),
    ),
    EventType.DTCH: _p(
        "detach",
        (MME, "Detach Request", 0.002),
        (SGW, "Delete Session Request", 0.002),
        (PGW, "Delete Session Request", 0.002),
        (MME, "Detach Accept", 0.001),
    ),
    EventType.SRV_REQ: _p(
        "service_request",
        (MME, "Service Request", 0.002),
        (SGW, "Modify Bearer Request", 0.002),
        (MME, "Initial Context Setup", 0.002),
    ),
    EventType.S1_CONN_REL: _p(
        "s1_release",
        (MME, "UE Context Release", 0.001),
        (SGW, "Release Access Bearers", 0.002),
    ),
    EventType.HO: _p(
        "handover",
        (MME, "Path Switch Request", 0.003),
        (SGW, "Modify Bearer Request", 0.002),
        (MME, "Path Switch Ack", 0.001),
    ),
    EventType.TAU: _p(
        "tracking_area_update",
        (MME, "TAU Request", 0.002),
        (HSS, "Update Location", 0.002),
        (MME, "TAU Accept", 0.001),
    ),
}

#: 5G SA procedures (TS 23.502 flows; no TAU, renamed functions/events).
FIVEGC_PROCEDURES: Dict[EventType, Procedure] = {
    EventType.ATCH: _p(
        "registration",
        (AMF, "Registration Request", 0.004),
        (UDM, "Authentication / UECM Registration", 0.004),
        (AMF, "NAS Security Setup", 0.003),
        (SMF, "PDU Session Create", 0.003),
        (UPF, "N4 Session Establishment", 0.003),
        (AMF, "Registration Accept", 0.002),
    ),
    EventType.DTCH: _p(
        "deregistration",
        (AMF, "Deregistration Request", 0.002),
        (SMF, "PDU Session Release", 0.002),
        (UPF, "N4 Session Release", 0.002),
        (AMF, "Deregistration Accept", 0.001),
    ),
    EventType.SRV_REQ: _p(
        "service_request",
        (AMF, "Service Request", 0.002),
        (SMF, "PDU Session Activate", 0.002),
        (UPF, "N4 Session Modification", 0.002),
        (AMF, "Service Accept", 0.001),
    ),
    EventType.S1_CONN_REL: _p(
        "an_release",
        (AMF, "AN Release", 0.001),
        (SMF, "PDU Session Deactivate", 0.002),
    ),
    EventType.HO: _p(
        "handover",
        (AMF, "Path Switch Request", 0.003),
        (SMF, "PDU Session Path Update", 0.002),
        (UPF, "N4 Session Modification", 0.002),
        (AMF, "Path Switch Ack", 0.001),
    ),
}


def procedures_for(core: str) -> Dict[EventType, Procedure]:
    """The procedure map of one core generation (``"epc"`` / ``"5gc"``)."""
    if core == "epc":
        return EPC_PROCEDURES
    if core == "5gc":
        return FIVEGC_PROCEDURES
    raise ValueError(f"unknown core {core!r}; choose 'epc' or '5gc'")


def functions_for(core: str) -> Tuple[str, ...]:
    """The network functions of one core generation."""
    if core == "epc":
        return EPC_FUNCTIONS
    if core == "5gc":
        return FIVEGC_FUNCTIONS
    raise ValueError(f"unknown core {core!r}; choose 'epc' or '5gc'")
