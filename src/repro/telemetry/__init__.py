"""Run telemetry & observability for generation and core-drive runs.

See :mod:`repro.telemetry.collector` for the collection model (spans /
counters / gauges / progress callbacks) and
:mod:`repro.telemetry.report` for the versioned JSON report format.
"""

from .collector import ProgressEvent, RunTelemetry, get_telemetry, use_telemetry
from .report import (
    REPORT_FORMAT,
    REPORT_VERSION,
    TelemetryReportError,
    load_report,
    load_schema,
    summarize_report,
    validate_report,
)

__all__ = [
    "REPORT_FORMAT",
    "REPORT_VERSION",
    "ProgressEvent",
    "RunTelemetry",
    "TelemetryReportError",
    "get_telemetry",
    "load_report",
    "load_schema",
    "summarize_report",
    "use_telemetry",
    "validate_report",
]
