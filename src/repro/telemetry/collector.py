"""The run telemetry collector: spans, counters, gauges, progress.

A generation run today spans multiple layers — model compilation, hour
stepping, checkpoint snapshots, worker pools — and production questions
("where did the time go?", "why is the resumed run slower?", "how many
events per UE-hour did this seed produce?") need structured answers, not
log archaeology.  :class:`RunTelemetry` is the single collection point:

- **spans** — named wall/CPU time intervals (``with tele.span("generate")``),
  re-entrant by name: entering the same span name again accumulates into
  the same record (count, total wall seconds, total CPU seconds).
- **counters** — monotonic integer accumulators (events emitted, UE-hours
  advanced, RNG draws, chunk retries, checkpoint snapshots/bytes).
- **gauges** — last-value-wins measurements with a ``max_gauge`` variant
  for high-water marks (peak RSS, active workers).
- **progress callbacks** — user-registered observers invoked (rate
  limited) as the run advances, so a million-UE run is watchable.

Everything is plain stdlib + integers; the cost of a counter bump is one
dict ``get`` and an add, which is what lets the generation hot paths keep
their counters *always on* (<3% overhead on ``bench_generator_speed``,
verified there).  There is always an ambient collector
(:func:`get_telemetry`); :func:`use_telemetry` installs a specific one
for a ``with`` scope, and every generation entry point also accepts an
explicit ``telemetry=`` argument that wins over the ambient one.
"""

from __future__ import annotations

import contextlib
import sys
import time
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "ProgressEvent",
    "RunTelemetry",
    "get_telemetry",
    "use_telemetry",
]

#: ``(phase, done, total)`` — ``total`` may be 0 when unknown.
ProgressEvent = Tuple[str, int, int]


def _peak_rss_bytes() -> int:
    """Max resident set size of this process in bytes (0 if unknown)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux, bytes on macOS.
    return int(rss) if sys.platform == "darwin" else int(rss) * 1024


class _SpanHandle:
    """Context manager for one entry of a named span."""

    __slots__ = ("_tele", "_name", "_wall0", "_cpu0")

    def __init__(self, tele: "RunTelemetry", name: str) -> None:
        self._tele = tele
        self._name = name

    def __enter__(self) -> "_SpanHandle":
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._tele._record_span(
            self._name,
            time.perf_counter() - self._wall0,
            time.process_time() - self._cpu0,
        )


class RunTelemetry:
    """Collects one run's spans, counters, and gauges (see module doc)."""

    def __init__(self, run_info: Optional[Dict[str, Any]] = None) -> None:
        self.run_info: Dict[str, Any] = dict(run_info or {})
        #: name -> [count, wall_s, cpu_s]
        self._spans: Dict[str, List[float]] = {}
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._callbacks: List[Tuple[Callable[..., None], float, List[float]]] = []

    # -- spans ----------------------------------------------------------
    def span(self, name: str) -> _SpanHandle:
        """Time a named phase: ``with tele.span("generate"): ...``."""
        return _SpanHandle(self, name)

    def _record_span(self, name: str, wall_s: float, cpu_s: float) -> None:
        rec = self._spans.get(name)
        if rec is None:
            self._spans[name] = [1, wall_s, cpu_s]
        else:
            rec[0] += 1
            rec[1] += wall_s
            rec[2] += cpu_s

    # -- counters -------------------------------------------------------
    def count(self, name: str, delta: int = 1) -> None:
        """Bump a monotonic counter (``delta`` must be non-negative)."""
        if delta < 0:
            raise ValueError(f"counter {name!r}: delta must be >= 0, got {delta}")
        self._counters[name] = self._counters.get(name, 0) + int(delta)

    # -- gauges ---------------------------------------------------------
    def gauge(self, name: str, value: float) -> None:
        """Set a gauge to its latest observed value."""
        self._gauges[name] = float(value)

    def max_gauge(self, name: str, value: float) -> None:
        """Raise a high-water-mark gauge (keeps the maximum seen)."""
        current = self._gauges.get(name)
        if current is None or value > current:
            self._gauges[name] = float(value)

    def record_peak_rss(self) -> None:
        """Sample the process's peak RSS into the ``peak_rss_bytes`` gauge."""
        rss = _peak_rss_bytes()
        if rss:
            self.max_gauge("peak_rss_bytes", rss)

    # -- progress -------------------------------------------------------
    def on_progress(
        self,
        callback: Callable[[str, int, int], None],
        *,
        min_interval: float = 0.5,
    ) -> None:
        """Register ``callback(phase, done, total)`` for progress ticks.

        Calls are rate-limited to one per ``min_interval`` seconds per
        callback, except that completion ticks (``done == total`` with a
        known total) are always delivered — a watcher never misses the
        end of a phase.
        """
        if min_interval < 0:
            raise ValueError("min_interval must be non-negative")
        self._callbacks.append((callback, float(min_interval), [0.0]))

    def progress(self, phase: str, done: int, total: int = 0) -> None:
        """Report progress; fan out to registered callbacks (rate-limited)."""
        if not self._callbacks:
            return
        now = time.monotonic()
        final = total > 0 and done >= total
        for callback, min_interval, last in self._callbacks:
            if not final and now - last[0] < min_interval:
                continue
            last[0] = now
            callback(phase, done, total)

    # -- merging --------------------------------------------------------
    def merge_child(self, record: Dict[str, Any]) -> None:
        """Fold a child record (e.g. one worker chunk's) into this run.

        ``record`` is the dict shape produced by :meth:`child_record`:
        counters add, span entries accumulate, gauges take the maximum
        (child gauges are high-water marks by convention).
        """
        for name, delta in record.get("counters", {}).items():
            self.count(name, int(delta))
        for name, (count, wall_s, cpu_s) in record.get("spans", {}).items():
            rec = self._spans.get(name)
            if rec is None:
                self._spans[name] = [int(count), float(wall_s), float(cpu_s)]
            else:
                rec[0] += int(count)
                rec[1] += float(wall_s)
                rec[2] += float(cpu_s)
        for name, value in record.get("gauges", {}).items():
            self.max_gauge(name, float(value))

    def child_record(self) -> Dict[str, Any]:
        """This collector's state as a mergeable child record."""
        return {
            "counters": dict(self._counters),
            "spans": {k: list(v) for k, v in self._spans.items()},
            "gauges": dict(self._gauges),
        }

    # -- reporting ------------------------------------------------------
    @property
    def counters(self) -> Dict[str, int]:
        return dict(self._counters)

    @property
    def gauges(self) -> Dict[str, float]:
        return dict(self._gauges)

    @property
    def spans(self) -> Dict[str, Dict[str, float]]:
        return {
            name: {"count": int(c), "wall_s": w, "cpu_s": p}
            for name, (c, w, p) in self._spans.items()
        }

    def to_report(self) -> Dict[str, Any]:
        """The versioned, schema-conforming JSON report (a plain dict)."""
        from .report import REPORT_FORMAT, REPORT_VERSION

        self.record_peak_rss()
        return {
            "format": REPORT_FORMAT,
            "version": REPORT_VERSION,
            "created_unix": time.time(),
            "run": {str(k): v for k, v in self.run_info.items()},
            "spans": self.spans,
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
        }

    def write_report(self, path: Any) -> Dict[str, Any]:
        """Validate and write the report to ``path``; returns the dict."""
        import json
        import os

        from .report import validate_report

        report = self.to_report()
        validate_report(report)
        with open(os.fspath(path), "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return report


#: The ambient collector: always present, so hot paths can bump counters
#: unconditionally.  Replaced for a scope by :func:`use_telemetry`.
_ACTIVE = RunTelemetry()


def get_telemetry() -> RunTelemetry:
    """The currently active (ambient) collector."""
    return _ACTIVE


@contextlib.contextmanager
def use_telemetry(telemetry: RunTelemetry) -> Iterator[RunTelemetry]:
    """Install ``telemetry`` as the ambient collector for a ``with`` scope."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = telemetry
    try:
        yield telemetry
    finally:
        _ACTIVE = previous
