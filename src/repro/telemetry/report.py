"""Telemetry report schema validation and rendering.

The report format is *versioned* and *schema-checked*: the shape lives
in ``telemetry.schema.json`` (a standard JSON-Schema document, so
external consumers can validate with off-the-shelf tooling), and
:func:`validate_report` enforces it here with a small built-in
interpreter of the subset the schema uses — the library stays
zero-dependency.

:func:`summarize_report` renders the operator view: a per-phase
breakdown table (span wall/CPU time with share-of-run percentages),
followed by the counters and gauges.  The CLI exposes it as
``repro telemetry summarize <report.json>``.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List

__all__ = [
    "REPORT_FORMAT",
    "REPORT_VERSION",
    "TelemetryReportError",
    "load_report",
    "load_schema",
    "summarize_report",
    "validate_report",
]

REPORT_FORMAT = "repro-telemetry-report"
REPORT_VERSION = 1

_SCHEMA_PATH = os.path.join(os.path.dirname(__file__), "telemetry.schema.json")
_SCHEMA_CACHE: Dict[str, Any] = {}


class TelemetryReportError(ValueError):
    """A telemetry report does not conform to the published schema."""


def load_schema() -> Dict[str, Any]:
    """The packaged JSON-Schema document (cached)."""
    if not _SCHEMA_CACHE:
        with open(_SCHEMA_PATH) as fh:
            _SCHEMA_CACHE.update(json.load(fh))
    return dict(_SCHEMA_CACHE)


# ---------------------------------------------------------------------------
# Minimal JSON-Schema interpreter (the subset telemetry.schema.json uses)
# ---------------------------------------------------------------------------

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "number": (int, float),
    "integer": int,
    "boolean": bool,
}


def _check(value: Any, schema: Dict[str, Any], path: str, errors: List[str]) -> None:
    if "const" in schema:
        if value != schema["const"]:
            errors.append(
                f"{path}: expected {schema['const']!r}, got {value!r}"
            )
        return
    expected = schema.get("type")
    if expected is not None:
        py_type = _TYPES[expected]
        ok = isinstance(value, py_type) and not (
            expected in ("number", "integer") and isinstance(value, bool)
        )
        if not ok:
            errors.append(f"{path}: expected {expected}, got {type(value).__name__}")
            return
    if "minimum" in schema and isinstance(value, (int, float)):
        if value < schema["minimum"]:
            errors.append(f"{path}: {value!r} is below minimum {schema['minimum']}")
    if not isinstance(value, dict):
        return
    properties = schema.get("properties", {})
    for name in schema.get("required", []):
        if name not in value:
            errors.append(f"{path}: missing required key {name!r}")
    additional = schema.get("additionalProperties", True)
    for name, item in value.items():
        child_path = f"{path}.{name}" if path else name
        if name in properties:
            _check(item, properties[name], child_path, errors)
        elif isinstance(additional, dict):
            _check(item, additional, child_path, errors)
        elif additional is False:
            errors.append(f"{path}: unexpected key {name!r}")


def validate_report(report: Any) -> Dict[str, Any]:
    """Check ``report`` against the published schema.

    Returns the report on success; raises :class:`TelemetryReportError`
    naming every violation otherwise.
    """
    if not isinstance(report, dict):
        raise TelemetryReportError(
            f"telemetry report must be an object, got {type(report).__name__}"
        )
    errors: List[str] = []
    _check(report, load_schema(), "", errors)
    if errors:
        raise TelemetryReportError(
            "telemetry report does not match schema — " + "; ".join(errors)
        )
    return report


def load_report(path: "str | os.PathLike[str]") -> Dict[str, Any]:
    """Read and validate a telemetry report file."""
    try:
        with open(os.fspath(path)) as fh:
            report = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise TelemetryReportError(f"cannot read telemetry report {path}: {exc}") from exc
    return validate_report(report)


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def summarize_report(report: Dict[str, Any]) -> str:
    """Render the per-phase breakdown plus counters and gauges as text."""
    from ..validation import format_table

    validate_report(report)
    sections: List[str] = []

    run = report["run"]
    if run:
        pairs = ", ".join(f"{k}={run[k]}" for k in sorted(run))
        sections.append(f"run: {pairs}")

    spans = report["spans"]
    if spans:
        total_wall = sum(s["wall_s"] for s in spans.values())
        rows = [
            [
                name,
                span["count"],
                f"{span['wall_s'] * 1e3:,.1f} ms",
                f"{span['cpu_s'] * 1e3:,.1f} ms",
                f"{100.0 * span['wall_s'] / total_wall:.1f}%" if total_wall else "-",
            ]
            for name, span in sorted(
                spans.items(), key=lambda kv: -kv[1]["wall_s"]
            )
        ]
        sections.append(
            format_table(
                ["phase", "count", "wall", "cpu", "share"],
                rows,
                title="Per-phase breakdown",
            )
        )

    counters = report["counters"]
    if counters:
        rows = [[name, f"{counters[name]:,}"] for name in sorted(counters)]
        sections.append(format_table(["counter", "total"], rows, title="Counters"))

    gauges = report["gauges"]
    if gauges:
        rows = [[name, f"{gauges[name]:,.0f}"] for name in sorted(gauges)]
        sections.append(format_table(["gauge", "value"], rows, title="Gauges"))

    if not (spans or counters or gauges):
        sections.append("(empty telemetry report)")
    return "\n\n".join(sections)
