"""Recursive adaptive clustering over the UE feature space (§5.3).

The scheme recursively cuts the feature space at the midpoints of the
current cell until either (a) every feature's spread within the cell is
below ``theta_f`` ("the UEs are similar"), or (b) the cell holds fewer
than ``theta_n`` UEs ("too few UEs to keep splitting").  With two
feature dimensions this is literally a quadtree; the implementation
generalizes to ``d`` dimensions by splitting into up to ``2^d``
children (the paper's 4-feature space yields a 16-way split).

The paper's thresholds — ``theta_f = 5`` for every feature and
``theta_n = 1000`` — are the defaults.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

DEFAULT_THETA_F = 5.0
DEFAULT_THETA_N = 1000


@dataclasses.dataclass(frozen=True)
class Cluster:
    """One final (unsplit) cell of the adaptive partition."""

    cluster_id: int
    ue_ids: Tuple[int, ...]
    lower: np.ndarray  #: inclusive lower corner of the cell
    upper: np.ndarray  #: inclusive upper corner of the cell

    @property
    def size(self) -> int:
        return len(self.ue_ids)


@dataclasses.dataclass(frozen=True)
class ClusteringResult:
    """The full partition plus the UE -> cluster index."""

    clusters: Tuple[Cluster, ...]
    assignment: Dict[int, int]  #: ue_id -> cluster_id

    @property
    def num_clusters(self) -> int:
        return len(self.clusters)

    def cluster_of(self, ue_id: int) -> Cluster:
        return self.clusters[self.assignment[ue_id]]

    def weights(self) -> np.ndarray:
        """Fraction of UEs in each cluster (sums to 1)."""
        total = sum(c.size for c in self.clusters)
        return np.asarray([c.size / total for c in self.clusters])


def adaptive_cluster(
    features: Mapping[int, np.ndarray],
    *,
    theta_f: float = DEFAULT_THETA_F,
    theta_n: int = DEFAULT_THETA_N,
) -> ClusteringResult:
    """Partition UEs by the paper's recursive midpoint-split scheme.

    Parameters
    ----------
    features:
        ``ue_id -> feature vector`` (equal lengths; any dimensionality).
    theta_f:
        A cell stops splitting once ``max - min < theta_f`` holds for
        *every* feature within it.
    theta_n:
        A cell with fewer than ``theta_n`` UEs stops splitting.
    """
    if not features:
        return ClusteringResult(clusters=(), assignment={})
    ue_ids = np.asarray(sorted(features), dtype=np.int64)
    matrix = np.vstack([features[int(ue)] for ue in ue_ids])
    if matrix.ndim != 2:
        raise ValueError("feature vectors must share one dimensionality")
    dims = matrix.shape[1]
    dim_weights = 1 << np.arange(dims)

    clusters: List[Cluster] = []
    cluster_of_row = np.empty(len(ue_ids), dtype=np.int64)

    def _finalize(rows: np.ndarray, lower: np.ndarray, upper: np.ndarray) -> None:
        cluster_id = len(clusters)
        clusters.append(
            Cluster(
                cluster_id=cluster_id,
                ue_ids=tuple(ue_ids[rows].tolist()),
                lower=lower.copy(),
                upper=upper.copy(),
            )
        )
        cluster_of_row[rows] = cluster_id

    # Depth-first traversal with an explicit stack: no recursion limit,
    # so arbitrarily fine partitions (tiny theta_f on huge populations)
    # cannot hit RecursionError.  Children are pushed in reverse child
    # order so pops visit them ascending — cluster ids come out in the
    # same order the recursive formulation produced.
    stack: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = [
        (np.arange(len(ue_ids)), matrix.min(axis=0), matrix.max(axis=0))
    ]
    while stack:
        rows, lower, upper = stack.pop()
        cell = matrix[rows]
        spread = cell.max(axis=0) - cell.min(axis=0)
        if len(rows) < theta_n or bool(np.all(spread < theta_f)):
            _finalize(rows, lower, upper)
            continue
        mid = (lower + upper) / 2.0
        # Child index: one bit per dimension (above / below the midpoint).
        bits = (cell >= mid).astype(np.int64)
        child_index = bits @ dim_weights
        children = np.unique(child_index)
        if len(children) == 1:
            # Every UE falls in one child: midpoint splitting cannot
            # separate them further (degenerate cell); stop here.
            _finalize(rows, lower, upper)
            continue
        for child in reversed(children):
            child_rows = rows[child_index == child]
            child_bits = (int(child) >> np.arange(dims)) & 1
            child_lower = np.where(child_bits == 1, mid, lower)
            child_upper = np.where(child_bits == 1, upper, mid)
            stack.append((child_rows, child_lower, child_upper))

    assignment: Dict[int, int] = dict(
        zip(ue_ids.tolist(), cluster_of_row.tolist())
    )
    return ClusteringResult(clusters=tuple(clusters), assignment=assignment)


def single_cluster(ue_ids: Sequence[int], num_features: int) -> ClusteringResult:
    """A degenerate partition placing every UE in one cluster.

    Used by the ``Base`` baseline, which skips clustering (Table 3).
    """
    members = tuple(int(ue) for ue in sorted(ue_ids))
    cluster = Cluster(
        cluster_id=0,
        ue_ids=members,
        lower=np.zeros(num_features),
        upper=np.zeros(num_features),
    )
    return ClusteringResult(
        clusters=(cluster,), assignment={ue: 0 for ue in members}
    )
