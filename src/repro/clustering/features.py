"""Per-UE traffic features for adaptive clustering (§5.3).

The paper characterizes each UE with two features per dominant event
type (``SRV_REQ`` and ``S1_CONN_REL``, 84.1%-93.0% of all events):

1. the number of events of that type, and
2. the standard deviation of the sojourn time in the state the event
   enters (``CONNECTED`` for ``SRV_REQ``, ``IDLE`` for ``S1_CONN_REL``),

giving a 4-dimensional feature vector per UE.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..statemachines import lte
from ..statemachines.replay import replay_ue, top_level_intervals
from ..trace.events import EventType
from ..trace.trace import Trace

#: Names of the feature dimensions, in vector order.
FEATURE_NAMES = (
    "srv_req_count",
    "s1_conn_rel_count",
    "connected_sojourn_std",
    "idle_sojourn_std",
)

NUM_FEATURES = len(FEATURE_NAMES)


def ue_features(event_types: np.ndarray, times: np.ndarray) -> np.ndarray:
    """Feature vector of one UE's chronological event sequence."""
    result = replay_ue(event_types, times)
    srv_req = 0
    s1_rel = 0
    for raw in event_types:
        event = EventType(int(raw))
        if event == EventType.SRV_REQ:
            srv_req += 1
        elif event == EventType.S1_CONN_REL:
            s1_rel += 1

    connected: list = []
    idle: list = []
    for interval in top_level_intervals(result.records):
        if not interval.complete:
            continue
        if interval.state == lte.CONNECTED:
            connected.append(interval.duration)
        elif interval.state == lte.IDLE:
            idle.append(interval.duration)

    def _std(values: list) -> float:
        if len(values) < 2:
            return 0.0
        return float(np.std(np.asarray(values, dtype=np.float64)))

    return np.asarray(
        [float(srv_req), float(s1_rel), _std(connected), _std(idle)],
        dtype=np.float64,
    )


def extract_features(trace: Trace) -> Dict[int, np.ndarray]:
    """Feature vectors for every UE in ``trace``.

    The caller is expected to pre-slice the trace to one (device type,
    hour-of-day) combination — clustering is performed independently per
    combination (§5.3).
    """
    return {
        ue: ue_features(sub.event_types, sub.times) for ue, sub in trace.per_ue()
    }
