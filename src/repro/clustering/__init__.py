"""Adaptive quadtree clustering of UEs by traffic similarity (§5.3)."""

from .features import FEATURE_NAMES, NUM_FEATURES, extract_features, ue_features
from .quadtree import (
    DEFAULT_THETA_F,
    DEFAULT_THETA_N,
    Cluster,
    ClusteringResult,
    adaptive_cluster,
    single_cluster,
)

__all__ = [
    "Cluster",
    "ClusteringResult",
    "DEFAULT_THETA_F",
    "DEFAULT_THETA_N",
    "FEATURE_NAMES",
    "NUM_FEATURES",
    "adaptive_cluster",
    "extract_features",
    "single_cluster",
    "ue_features",
]
