"""The Weibull distribution.

``f(x) = (k/lam) * (x/lam)^(k-1) * exp(-(x/lam)^k)`` for ``x >= 0``.
The MLE has no closed form in the shape parameter; the profile
likelihood equation is solved by bisection, which is monotone in ``k``
and therefore robust for the skewed duration data we fit.
"""

from __future__ import annotations

import math

import numpy as np

from .base import ArrayLike, Distribution, FitError

_K_LO = 1e-2
_K_HI = 1e2
_TOL = 1e-10
_MAX_ITER = 200


def _profile_equation(k: float, x: np.ndarray, mean_log: float) -> float:
    """g(k) whose root is the MLE shape; g is increasing in k."""
    xk = np.power(x, k)
    num = float(np.sum(xk * np.log(x)))
    den = float(np.sum(xk))
    return num / den - 1.0 / k - mean_log


class Weibull(Distribution):
    """Weibull distribution with shape ``k`` and scale ``lam``."""

    family = "weibull"

    def __init__(self, k: float, lam: float) -> None:
        if not (k > 0 and np.isfinite(k)):
            raise ValueError(f"shape k must be positive and finite, got {k}")
        if not (lam > 0 and np.isfinite(lam)):
            raise ValueError(f"scale lam must be positive and finite, got {lam}")
        self.k = float(k)
        self.lam = float(lam)

    @classmethod
    def fit(cls, samples: ArrayLike) -> "Weibull":
        """MLE via bisection on the profile likelihood."""
        arr = cls._clean_samples(samples, min_count=2, positive=True)
        if float(arr.max()) == float(arr.min()):
            raise FitError("cannot fit a Weibull to constant samples")
        # The shape parameter is scale-invariant; normalizing by the
        # geometric mean keeps x^k finite for any sample magnitude.
        scale = float(np.exp(np.mean(np.log(arr))))
        arr = arr / scale
        mean_log = float(np.mean(np.log(arr)))

        lo, hi = _K_LO, _K_HI
        g_lo = _profile_equation(lo, arr, mean_log)
        g_hi = _profile_equation(hi, arr, mean_log)
        if g_lo > 0:
            k = lo  # extremely heavy-tailed; clamp at the bracket edge
        elif g_hi < 0:
            k = hi  # nearly deterministic; clamp at the bracket edge
        else:
            for _ in range(_MAX_ITER):
                mid = 0.5 * (lo + hi)
                if _profile_equation(mid, arr, mean_log) < 0:
                    lo = mid
                else:
                    hi = mid
                if hi - lo < _TOL * max(1.0, lo):
                    break
            k = 0.5 * (lo + hi)

        lam = scale * float(np.power(np.mean(np.power(arr, k)), 1.0 / k))
        return cls(k=k, lam=lam)

    def cdf(self, x: ArrayLike) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        pos = np.maximum(x, 0.0)
        return np.where(x < 0, 0.0, 1.0 - np.exp(-np.power(pos / self.lam, self.k)))

    def ppf(self, q: ArrayLike) -> np.ndarray:
        q = np.asarray(q, dtype=np.float64)
        if np.any((q < 0) | (q > 1)):
            raise ValueError("quantiles must lie in [0, 1]")
        with np.errstate(divide="ignore"):
            return self.lam * np.power(-np.log1p(-q), 1.0 / self.k)

    def mean(self) -> float:
        return self.lam * math.gamma(1.0 + 1.0 / self.k)
