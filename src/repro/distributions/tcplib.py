"""A Tcplib-style fixed-shape empirical distribution.

Tcplib (Danzig & Jamin, 1991) models wide-area TCP traffic with
*empirical* distributions measured from TELNET/FTP traces; applying it
to new data means keeping the measured shape and rescaling it.  The
original measurement tables are not redistributable, so this module
embeds a quantile table with the documented qualitative shape of the
TELNET packet inter-arrival distribution — sub-second mass from
keystroke echo, a long tail out to minutes from think time — normalized
to unit median.  ``fit`` estimates only a scale factor (median
matching), exactly the "fixed shape, data-driven scale" way the paper
uses Tcplib as a candidate family.
"""

from __future__ import annotations

import numpy as np

from .base import ArrayLike, Distribution, FitError

#: Quantile table of the unit-median reference shape.  Probabilities and
#: the corresponding quantiles (median = 1.0).  The shape is strongly
#: right-skewed: P90/P50 = 30, P99/P50 = 600.
_REFERENCE_PROBS = np.array(
    [0.00, 0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 0.999, 1.00]
)
_REFERENCE_QUANTILES = np.array(
    [0.02, 0.08, 0.15, 0.40, 1.00, 6.00, 30.0, 90.0, 600.0, 2400.0, 7200.0]
)


class Tcplib(Distribution):
    """The fixed Tcplib reference shape, scaled by ``scale``."""

    family = "tcplib"

    def __init__(self, scale: float) -> None:
        if not (scale > 0 and np.isfinite(scale)):
            raise ValueError(f"scale must be positive and finite, got {scale}")
        self.scale = float(scale)

    @classmethod
    def fit(cls, samples: ArrayLike) -> "Tcplib":
        """Scale the reference shape so medians match."""
        arr = cls._clean_samples(samples, min_count=1, positive=True)
        median = float(np.median(arr))
        if median <= 0:
            raise FitError("cannot scale Tcplib to a zero-median sample")
        return cls(scale=median)

    def cdf(self, x: ArrayLike) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64) / self.scale
        return np.interp(
            x,
            _REFERENCE_QUANTILES,
            _REFERENCE_PROBS,
            left=0.0,
            right=1.0,
        )

    def ppf(self, q: ArrayLike) -> np.ndarray:
        q = np.asarray(q, dtype=np.float64)
        if np.any((q < 0) | (q > 1)):
            raise ValueError("quantiles must lie in [0, 1]")
        return self.scale * np.interp(q, _REFERENCE_PROBS, _REFERENCE_QUANTILES)

    def mean(self) -> float:
        """Mean of the piecewise-linear reference shape, scaled."""
        probs = _REFERENCE_PROBS
        quants = _REFERENCE_QUANTILES
        segment_means = (quants[1:] + quants[:-1]) / 2.0
        weights = probs[1:] - probs[:-1]
        return float(self.scale * np.sum(segment_means * weights))
