"""The paper's non-parametric sojourn model: an empirical CDF.

Because no classic family survives the goodness-of-fit tests (§4, the
appendix tables), the proposed model stores "one CDF model for the
sojourn time of each transition" (§5.2).  This class is that model:
order statistics of the observed sojourn samples, with inverse-
transform sampling that linearly interpolates between them, so the
generator can draw durations spanning the full observed range —
including the long tails the parametric fits truncate.

For very large sample sets the CDF can be compressed to a fixed number
of quantile knots (``max_points``) without materially changing the
shape; compression is exact at the stored knots.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .base import ArrayLike, Distribution, FitError


class EmpiricalCDF(Distribution):
    """Empirical distribution with interpolated inverse-transform sampling."""

    family = "empirical"

    def __init__(self, quantiles: ArrayLike) -> None:
        arr = np.sort(np.asarray(quantiles, dtype=np.float64).ravel())
        if arr.size == 0:
            raise ValueError("an empirical CDF needs at least one sample")
        if not np.all(np.isfinite(arr)):
            raise ValueError("samples contain non-finite values")
        if arr[0] < 0:
            raise ValueError("samples contain negative durations")
        self.quantiles = arr
        # Plotting positions for interpolation: the i-th order statistic
        # (0-based) sits at probability (i + 0.5) / n, so sampling covers
        # slightly beyond the observed extremes is avoided by clamping.
        n = arr.size
        self._probs = (np.arange(n) + 0.5) / n

    @classmethod
    def fit(
        cls, samples: ArrayLike, *, max_points: Optional[int] = None
    ) -> "EmpiricalCDF":
        """Store the sample order statistics (optionally compressed)."""
        arr = cls._clean_samples(samples, min_count=1)
        if max_points is not None and arr.size > max_points:
            probs = np.linspace(0.0, 1.0, max_points)
            arr = np.quantile(arr, probs)
        return cls(arr)

    # ------------------------------------------------------------------
    def cdf(self, x: ArrayLike) -> np.ndarray:
        """Right-continuous step ECDF of the stored points."""
        x = np.asarray(x, dtype=np.float64)
        idx = np.searchsorted(self.quantiles, x, side="right")
        return idx / self.quantiles.size

    def ppf(self, q: ArrayLike) -> np.ndarray:
        """Interpolated inverse CDF (clamped to the observed range)."""
        q = np.asarray(q, dtype=np.float64)
        if np.any((q < 0) | (q > 1)):
            raise ValueError("quantiles must lie in [0, 1]")
        return np.interp(q, self._probs, self.quantiles)

    def mean(self) -> float:
        return float(self.quantiles.mean())

    def compile_sojourn(self) -> tuple:
        """Inverse-CDF knots: ``ppf(u) == np.interp(u, probs, values)``."""
        return ("empirical", self._probs, self.quantiles)

    # ------------------------------------------------------------------
    @property
    def support(self) -> tuple:
        """(min, max) of the stored samples."""
        return float(self.quantiles[0]), float(self.quantiles[-1])

    def to_list(self) -> List[float]:
        """The stored quantile knots (for JSON persistence)."""
        return [float(v) for v in self.quantiles]

    @classmethod
    def from_list(cls, values: List[float]) -> "EmpiricalCDF":
        """Rebuild from :meth:`to_list` output."""
        return cls(np.asarray(values, dtype=np.float64))

    def __len__(self) -> int:
        return int(self.quantiles.size)
