"""The Pareto distribution.

Power-law model used for self-similar wide-area packet traffic:
``f(x) = alpha * x_m^alpha * x^-(alpha+1)`` for ``x >= x_m``.
"""

from __future__ import annotations

import math

import numpy as np

from .base import ArrayLike, Distribution, FitError


class Pareto(Distribution):
    """Pareto distribution with shape ``alpha`` and scale ``x_m``."""

    family = "pareto"

    def __init__(self, alpha: float, x_m: float) -> None:
        if not (alpha > 0 and np.isfinite(alpha)):
            raise ValueError(f"alpha must be positive and finite, got {alpha}")
        if not (x_m > 0 and np.isfinite(x_m)):
            raise ValueError(f"x_m must be positive and finite, got {x_m}")
        self.alpha = float(alpha)
        self.x_m = float(x_m)

    @classmethod
    def fit(cls, samples: ArrayLike) -> "Pareto":
        """MLE: ``x_m = min(x)``, ``alpha = n / sum(log(x / x_m))``."""
        arr = cls._clean_samples(samples, min_count=2, positive=True)
        x_m = float(arr.min())
        log_ratio_sum = float(np.sum(np.log(arr / x_m)))
        if log_ratio_sum <= 0:
            raise FitError("cannot fit a Pareto to constant samples")
        return cls(alpha=arr.size / log_ratio_sum, x_m=x_m)

    def cdf(self, x: ArrayLike) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        out = np.zeros_like(x, dtype=np.float64)
        above = x >= self.x_m
        out[above] = 1.0 - np.power(self.x_m / x[above], self.alpha)
        return out

    def ppf(self, q: ArrayLike) -> np.ndarray:
        q = np.asarray(q, dtype=np.float64)
        if np.any((q < 0) | (q > 1)):
            raise ValueError("quantiles must lie in [0, 1]")
        with np.errstate(divide="ignore"):
            return self.x_m * np.power(1.0 - q, -1.0 / self.alpha)

    def mean(self) -> float:
        if self.alpha <= 1.0:
            return math.inf
        return self.alpha * self.x_m / (self.alpha - 1.0)
