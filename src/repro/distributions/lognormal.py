"""The lognormal distribution.

Not one of the paper's candidate families — it is used by the
ground-truth simulator (:mod:`repro.groundtruth`) as a building block
for heavy-tailed sojourn mixtures, precisely because it is *not* in the
candidate set: fitting the simulator's output is then a genuine
modeling exercise rather than parameter recovery.
"""

from __future__ import annotations

import math

import numpy as np

from .base import ArrayLike, Distribution, FitError

_SQRT2 = math.sqrt(2.0)


def _erfinv(y: np.ndarray) -> np.ndarray:
    """Inverse error function (Winitzki's approximation + 2 Newton steps).

    Accurate to ~1e-12 over (-1, 1) after refinement, which is far below
    the millisecond granularity that matters for trace timestamps.
    """
    y = np.asarray(y, dtype=np.float64)
    a = 0.147
    sign = np.sign(y)
    ln_term = np.log1p(-y * y)
    first = 2.0 / (math.pi * a) + ln_term / 2.0
    x = sign * np.sqrt(np.sqrt(first * first - ln_term / a) - first)
    # Newton refinement: f(x) = erf(x) - y, f'(x) = 2/sqrt(pi) exp(-x^2).
    for _ in range(2):
        err = _erf(x) - y
        x = x - err * (math.sqrt(math.pi) / 2.0) * np.exp(x * x)
    return x


def _erf(x: np.ndarray) -> np.ndarray:
    """Error function via Abramowitz & Stegun 7.1.26 with refinement."""
    x = np.asarray(x, dtype=np.float64)
    sign = np.sign(x)
    ax = np.abs(x)
    t = 1.0 / (1.0 + 0.3275911 * ax)
    poly = t * (
        0.254829592
        + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429)))
    )
    return sign * (1.0 - poly * np.exp(-ax * ax))


def _std_normal_cdf(x: np.ndarray) -> np.ndarray:
    return 0.5 * (1.0 + _erf(x / _SQRT2))


def _std_normal_ppf(q: np.ndarray) -> np.ndarray:
    return _SQRT2 * _erfinv(2.0 * q - 1.0)


class Lognormal(Distribution):
    """Lognormal distribution: ``log X ~ Normal(mu, sigma^2)``."""

    family = "lognormal"

    def __init__(self, mu: float, sigma: float) -> None:
        if not (sigma > 0 and np.isfinite(sigma)):
            raise ValueError(f"sigma must be positive and finite, got {sigma}")
        if not np.isfinite(mu):
            raise ValueError(f"mu must be finite, got {mu}")
        self.mu = float(mu)
        self.sigma = float(sigma)

    @classmethod
    def fit(cls, samples: ArrayLike) -> "Lognormal":
        """MLE: sample mean/std of the log data."""
        arr = cls._clean_samples(samples, min_count=2, positive=True)
        logs = np.log(arr)
        sigma = float(logs.std())
        if sigma <= 0:
            raise FitError("cannot fit a lognormal to constant samples")
        return cls(mu=float(logs.mean()), sigma=sigma)

    def cdf(self, x: ArrayLike) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        out = np.zeros_like(x, dtype=np.float64)
        pos = x > 0
        out[pos] = _std_normal_cdf((np.log(x[pos]) - self.mu) / self.sigma)
        return out

    def ppf(self, q: ArrayLike) -> np.ndarray:
        q = np.asarray(q, dtype=np.float64)
        if np.any((q < 0) | (q > 1)):
            raise ValueError("quantiles must lie in [0, 1]")
        out = np.empty_like(q, dtype=np.float64)
        interior = (q > 0) & (q < 1)
        out[q == 0] = 0.0
        out[q == 1] = np.inf
        out[interior] = np.exp(self.mu + self.sigma * _std_normal_ppf(q[interior]))
        return out

    def mean(self) -> float:
        return math.exp(self.mu + self.sigma * self.sigma / 2.0)
