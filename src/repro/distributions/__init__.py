"""Probability models: classic candidate families and the empirical CDF."""

from typing import Dict, Type

from .base import MIN_DURATION, ArrayLike, Distribution, FitError
from .empirical import EmpiricalCDF
from .exponential import Exponential
from .lognormal import Lognormal
from .pareto import Pareto
from .tcplib import Tcplib
from .weibull import Weibull

#: The classic families the paper tests (§4, Appendix A), by family name.
CLASSIC_FAMILIES: Dict[str, Type[Distribution]] = {
    Exponential.family: Exponential,
    Pareto.family: Pareto,
    Weibull.family: Weibull,
    Tcplib.family: Tcplib,
}


def fit_family(family: str, samples: ArrayLike) -> Distribution:
    """Fit one family by name (``"poisson"``/``"pareto"``/... or ``"empirical"``)."""
    if family == EmpiricalCDF.family:
        return EmpiricalCDF.fit(samples)
    try:
        cls = CLASSIC_FAMILIES[family]
    except KeyError:
        raise ValueError(
            f"unknown family {family!r}; known: "
            f"{sorted(CLASSIC_FAMILIES) + [EmpiricalCDF.family]}"
        ) from None
    return cls.fit(samples)


__all__ = [
    "ArrayLike",
    "CLASSIC_FAMILIES",
    "Distribution",
    "EmpiricalCDF",
    "Exponential",
    "FitError",
    "Lognormal",
    "MIN_DURATION",
    "Pareto",
    "Tcplib",
    "Weibull",
    "fit_family",
]
