"""Common interface for the probability models used by the paper.

Every distribution implements the same small protocol —
``fit`` / ``sample`` / ``cdf`` / ``ppf`` / ``mean`` — so the statistical
tests (K–S, A²) and the traffic generator can treat parametric families
(Poisson/exponential, Pareto, Weibull), the fixed-shape Tcplib table,
and the paper's non-parametric empirical CDF uniformly.

All distributions model non-negative durations (inter-arrival or
sojourn times, in seconds).
"""

from __future__ import annotations

import abc
from typing import Optional, Union

import numpy as np

#: Smallest duration the fitters accept; matches the millisecond
#: timestamp granularity of the traces.  Zero durations (two events on
#: the same millisecond) are clipped up to this before fitting
#: positive-support families.
MIN_DURATION = 1e-3

ArrayLike = Union[np.ndarray, list, tuple, float]


class FitError(ValueError):
    """Raised when a sample set cannot be fitted (e.g. too few samples)."""


class Distribution(abc.ABC):
    """A one-dimensional distribution over non-negative durations."""

    #: Short family name used in reports ("poisson", "pareto", ...).
    family: str = "abstract"

    # -- fitting -------------------------------------------------------
    @classmethod
    @abc.abstractmethod
    def fit(cls, samples: ArrayLike) -> "Distribution":
        """Fit the family to ``samples`` (MLE unless documented otherwise)."""

    # -- evaluation ----------------------------------------------------
    @abc.abstractmethod
    def cdf(self, x: ArrayLike) -> np.ndarray:
        """P(X <= x), vectorized."""

    @abc.abstractmethod
    def ppf(self, q: ArrayLike) -> np.ndarray:
        """Quantile function (inverse CDF), vectorized over q in [0, 1]."""

    @abc.abstractmethod
    def mean(self) -> float:
        """Expected value (may be ``inf`` for heavy-tailed members)."""

    # -- compilation ---------------------------------------------------
    def compile_sojourn(self) -> tuple:
        """Lower the distribution to a flat table for the compiled engine.

        Returns either ``("empirical", probs, values)`` — piecewise-
        linear inverse-CDF knots such that ``ppf(u) == interp(u, probs,
        values)`` — or ``("exponential", rate)``.  Families that cannot
        be lowered (they never appear as fitted sojourns) raise.
        """
        raise NotImplementedError(
            f"{type(self).__name__} cannot be lowered to a compiled sojourn table"
        )

    # -- sampling ------------------------------------------------------
    def sample(
        self, rng: np.random.Generator, size: Optional[int] = None
    ) -> Union[float, np.ndarray]:
        """Draw samples by inverse-transform sampling."""
        u = rng.random(size)
        out = self.ppf(u)
        if size is None:
            return float(out)
        return out

    # -- helpers -------------------------------------------------------
    @staticmethod
    def _clean_samples(
        samples: ArrayLike, *, min_count: int = 1, positive: bool = False
    ) -> np.ndarray:
        """Validate and normalize a sample array for fitting."""
        arr = np.asarray(samples, dtype=np.float64).ravel()
        if arr.size < min_count:
            raise FitError(
                f"need at least {min_count} samples to fit, got {arr.size}"
            )
        if not np.all(np.isfinite(arr)):
            raise FitError("samples contain non-finite values")
        if arr.min() < 0:
            raise FitError("samples contain negative durations")
        if positive:
            arr = np.maximum(arr, MIN_DURATION)
        return arr

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        params = ", ".join(
            f"{k}={v:.6g}"
            for k, v in sorted(vars(self).items())
            if isinstance(v, (int, float))
        )
        return f"{type(self).__name__}({params})"
