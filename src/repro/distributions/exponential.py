"""The exponential distribution (Poisson-process inter-arrival model).

A Poisson arrival process has i.i.d. exponential inter-arrival times,
``P(X > t) = exp(-lambda * t)``.  This is the reference model the paper
tests first (and the sojourn model of the Base/V1/V2 baselines).
"""

from __future__ import annotations

import numpy as np

from .base import ArrayLike, Distribution, FitError


class Exponential(Distribution):
    """Exponential distribution with rate ``rate`` (mean ``1/rate``)."""

    family = "poisson"

    def __init__(self, rate: float) -> None:
        if not (rate > 0 and np.isfinite(rate)):
            raise ValueError(f"rate must be positive and finite, got {rate}")
        self.rate = float(rate)

    @classmethod
    def fit(cls, samples: ArrayLike) -> "Exponential":
        """MLE: ``rate = 1 / mean(samples)``."""
        arr = cls._clean_samples(samples, min_count=1)
        mean = float(arr.mean())
        if mean <= 0:
            raise FitError("cannot fit an exponential to all-zero samples")
        return cls(rate=1.0 / mean)

    def cdf(self, x: ArrayLike) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        return np.where(x < 0, 0.0, 1.0 - np.exp(-self.rate * np.maximum(x, 0.0)))

    def ppf(self, q: ArrayLike) -> np.ndarray:
        q = np.asarray(q, dtype=np.float64)
        if np.any((q < 0) | (q > 1)):
            raise ValueError("quantiles must lie in [0, 1]")
        with np.errstate(divide="ignore"):
            return -np.log1p(-q) / self.rate

    def mean(self) -> float:
        return 1.0 / self.rate

    def compile_sojourn(self) -> tuple:
        """Closed-form inverse transform: ``-log1p(-u) / rate``."""
        return ("exponential", self.rate)
