"""The burstiness and tail analyses of §4.2 (Figures 3 and 4).

Both analyses pick one UE cluster, pool a per-cluster quantity over a
window — sojourn entries into CONNECTED/IDLE, or HO/TAU arrivals — and
compare the pooled point process / distribution against a Poisson model
fitted by MLE on the same data.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..distributions.exponential import Exponential
from ..statemachines import lte
from ..statemachines.lte import two_level_machine
from ..statemachines.replay import replay_trace, top_level_intervals
from ..stats.variance_time import (
    DEFAULT_SCALES,
    VarianceTimeCurve,
    burstiness_gap,
    poisson_reference_curve,
    variance_time_curve,
)
from ..trace.events import DeviceType, EventType
from ..trace.trace import Trace

#: The four quantities Figures 3 and 4 analyse for phones.
FIG34_QUANTITIES = ("CONNECTED", "IDLE", "HO", "TAU")


def quantity_samples(
    trace: Trace,
    device_type: DeviceType,
    quantity: str,
) -> Tuple[np.ndarray, np.ndarray]:
    """``(durations, occurrence_times)`` of one Fig. 3/4 quantity.

    For states the durations are sojourn times and the occurrence times
    are state-entry instants; for events the durations are per-UE
    inter-arrival times and the occurrences the event arrivals.
    """
    sub = trace.filter_device(device_type)
    if quantity in (lte.CONNECTED, lte.IDLE):
        machine = two_level_machine()
        durations: List[float] = []
        entries: List[float] = []
        for result in replay_trace(sub).values():
            for interval in top_level_intervals(result.records, machine):
                if interval.state == quantity and interval.complete:
                    durations.append(interval.duration)
                    entries.append(interval.start)
        return np.asarray(durations), np.asarray(entries)
    event = EventType[quantity]
    durations = []
    arrivals: List[float] = []
    for _, ue_sub in sub.per_ue():
        times = ue_sub.times[ue_sub.event_types == int(event)]
        arrivals.extend(times.tolist())
        if times.size >= 2:
            durations.extend(np.diff(times).tolist())
    return np.asarray(durations), np.asarray(arrivals)


@dataclasses.dataclass
class BurstinessReport:
    """Fig. 3 for one quantity: observed vs fitted-Poisson curves."""

    quantity: str
    observed: VarianceTimeCurve
    reference: VarianceTimeCurve
    log_gap: np.ndarray  #: per-scale log10 gap (positive = burstier)


def burstiness_analysis(
    trace: Trace,
    device_type: DeviceType,
    quantity: str,
    *,
    duration: Optional[float] = None,
    scales: Sequence[float] = DEFAULT_SCALES,
    seed: int = 0,
) -> BurstinessReport:
    """Variance–time comparison of one quantity vs its Poisson fit."""
    _, occurrences = quantity_samples(trace, device_type, quantity)
    if occurrences.size < 10:
        raise ValueError(
            f"too few {quantity} occurrences ({occurrences.size}) for a curve"
        )
    if duration is None:
        duration = float(trace.times.max()) + 1.0
    observed = variance_time_curve(occurrences, duration=duration, scales=scales)
    rate = occurrences.size / duration
    rng = np.random.default_rng(seed)
    reference = poisson_reference_curve(rate, duration, rng, scales=scales)
    return BurstinessReport(
        quantity=quantity,
        observed=observed,
        reference=reference,
        log_gap=burstiness_gap(observed, reference),
    )


@dataclasses.dataclass
class TailReport:
    """Fig. 4 for one quantity: observed range vs fitted-Poisson range.

    The fitted range is taken over a synthetic sample of the same size,
    mirroring how the paper contrasts observed extremes against what the
    exponential fit can produce.
    """

    quantity: str
    observed_min: float
    observed_max: float
    fitted_min: float
    fitted_max: float
    fitted_rate: float

    @property
    def upper_tail_ratio(self) -> float:
        """How far the real maximum exceeds the fitted maximum."""
        return self.observed_max / self.fitted_max if self.fitted_max > 0 else np.inf

    @property
    def fit_covers_range(self) -> bool:
        """Whether the fitted sample spans the observed range.

        The paper's Fig. 4 finding is that it does not: either the
        observed maximum exceeds the fitted one (heavy upper tail) or
        the observed minimum undercuts it (sub-second burst gaps).
        """
        return (
            self.fitted_min <= self.observed_min
            and self.fitted_max >= self.observed_max
        )


def windowed_durations(
    trace: Trace,
    device_type: DeviceType,
    quantity: str,
    hour: int,
    *,
    trace_start_hour: int = 0,
) -> np.ndarray:
    """Durations of one quantity within each day's ``hour``-of-day window.

    This matches how Fig. 4 pools "the same 1-hour interval": every
    sample is bounded by the hour length, and the same hour of multiple
    days is pooled.
    """
    from ..trace.events import SECONDS_PER_HOUR

    duration = float(trace.times.max()) if len(trace) else 0.0
    total_slots = int(np.ceil((duration + 1e-9) / SECONDS_PER_HOUR))
    pooled: List[float] = []
    for slot in range(max(total_slots, 1)):
        if (trace_start_hour + slot) % 24 != hour % 24:
            continue
        window = trace.window(
            slot * SECONDS_PER_HOUR, (slot + 1) * SECONDS_PER_HOUR
        )
        if len(window) == 0:
            continue
        durations, _ = quantity_samples(window, device_type, quantity)
        pooled.extend(durations.tolist())
    return np.asarray(pooled, dtype=np.float64)


def tail_analysis(
    trace: Trace,
    device_type: DeviceType,
    quantity: str,
    *,
    seed: int = 0,
    hour: Optional[int] = None,
    trace_start_hour: int = 0,
) -> TailReport:
    """Compare the observed duration range against an exponential fit.

    With ``hour`` set, durations are pooled from that hour-of-day's
    windows only (the paper's Fig. 4 methodology); otherwise the whole
    trace is used.
    """
    if hour is not None:
        durations = windowed_durations(
            trace, device_type, quantity, hour, trace_start_hour=trace_start_hour
        )
    else:
        durations, _ = quantity_samples(trace, device_type, quantity)
    if durations.size < MIN_TAIL_SAMPLES:
        raise ValueError(
            f"too few {quantity} durations ({durations.size}) for tail analysis"
        )
    fitted = Exponential.fit(durations)
    rng = np.random.default_rng(seed)
    synthetic = fitted.sample(rng, durations.size)
    return TailReport(
        quantity=quantity,
        observed_min=float(durations.min()),
        observed_max=float(durations.max()),
        fitted_min=float(synthetic.min()),
        fitted_max=float(synthetic.max()),
        fitted_rate=fitted.rate,
    )


MIN_TAIL_SAMPLES = 20
