"""The goodness-of-fit study of §4 / Appendix A (Tables 8, 9, 10).

For every (device type, hour, UE cluster) combination the study pools

* per-UE **inter-arrival times** of each of the six event types,
* **sojourn times** in the four EMM/ECM states
  (REGISTERED / DEREGISTERED / CONNECTED / IDLE), and
* sojourn times of the nine **second-level transitions** of the
  two-level machine (Table 10),

fits each candidate family by MLE, and runs the K–S test (plus the
Anderson–Darling test for the Poisson/exponential case).  The reported
number is the percentage of (hour, cluster) combinations whose samples
pass at the 5% significance level — the paper finds close to 0% nearly
everywhere, which is the motivation for the empirical-CDF model.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..clustering.quadtree import (
    DEFAULT_THETA_F,
    DEFAULT_THETA_N,
    adaptive_cluster,
    single_cluster,
)
from ..distributions import CLASSIC_FAMILIES
from ..distributions.base import FitError
from ..model.fitting import _build_segments, _hour_features, _replay_segments
from ..statemachines import lte
from ..statemachines.lte import SECOND_LEVEL_TRANSITIONS, two_level_machine
from ..statemachines.replay import top_level_intervals
from ..stats.anderson import anderson_exponential
from ..stats.ks import fit_and_ks_test
from ..trace.events import SECONDS_PER_HOUR, DeviceType, EventType
from ..trace.trace import Trace

#: The four EMM/ECM states whose sojourn the paper fits (§4.1.1).
EMM_ECM_STATES = ("REGISTERED", "DEREGISTERED", "CONNECTED", "IDLE")

#: Test names reported in the tables.
TESTS = ("poisson_ks", "poisson_ad", "pareto_ks", "weibull_ks", "tcplib_ks")

#: Minimum pooled samples for a (hour, cluster, quantity) to be testable.
#: Below this the K-S/A² tests have almost no power and "pass" rates are
#: meaningless (the paper's trace gives every combination thousands of
#: samples).
MIN_SAMPLES = 50


@dataclasses.dataclass
class GofResult:
    """Pass rates of one study: ``rates[test][quantity] = fraction``.

    ``combos[quantity]`` counts how many (hour, cluster) combinations
    were testable for that quantity.
    """

    device_type: DeviceType
    rates: Dict[str, Dict[str, float]]
    combos: Dict[str, int]


def _interarrivals_by_event(
    segments,
) -> Dict[EventType, List[float]]:
    """Merge within-UE inter-arrival times per event type (§4.1.1)."""
    pooled: Dict[EventType, List[float]] = {e: [] for e in EventType}
    for seg in segments:
        for event in EventType:
            times = seg.times[seg.event_types == int(event)]
            if times.size >= 2:
                pooled[event].extend(np.diff(times).tolist())
    return pooled


def _state_sojourns(segments, machine) -> Dict[str, List[float]]:
    """Pool sojourn durations of the four EMM/ECM states."""
    pooled: Dict[str, List[float]] = {s: [] for s in EMM_ECM_STATES}
    for seg in segments:
        intervals = top_level_intervals(seg.records, machine)
        # CONNECTED / IDLE / DEREGISTERED come straight from the replay;
        # REGISTERED spans maximal runs of CONNECTED+IDLE.
        run_start: Optional[float] = None
        run_ok = True
        for interval in intervals:
            if interval.complete:
                if interval.state in (lte.CONNECTED, lte.IDLE):
                    pooled[interval.state].append(interval.duration)
                elif interval.state == lte.DEREGISTERED:
                    pooled["DEREGISTERED"].append(interval.duration)
            if interval.state in (lte.CONNECTED, lte.IDLE):
                if run_start is None:
                    run_start = interval.start
                    run_ok = interval.start is not None
            else:
                if run_start is not None and run_ok and interval.start is not None:
                    pooled["REGISTERED"].append(interval.start - run_start)
                run_start = None
                run_ok = True
    return pooled


def _transition_sojourns(segments) -> Dict[Tuple[str, EventType], List[float]]:
    """Pool sojourns of the nine second-level transitions (Table 10)."""
    wanted = set(SECOND_LEVEL_TRANSITIONS)
    pooled: Dict[Tuple[str, EventType], List[float]] = {k: [] for k in wanted}
    for seg in segments:
        for rec in seg.records:
            key = (rec.source, rec.event)
            if key in wanted and rec.sojourn is not None and not rec.forced:
                pooled[key].append(rec.sojourn)
    return pooled


def _run_tests(samples: Sequence[float]) -> Dict[str, bool]:
    """All five test outcomes (pass = null retained at 5%)."""
    arr = np.asarray(samples, dtype=np.float64)
    out: Dict[str, bool] = {}
    for test in TESTS:
        family = test.split("_")[0]
        try:
            if test == "poisson_ad":
                out[test] = anderson_exponential(arr).passes()
            else:
                out[test] = fit_and_ks_test(CLASSIC_FAMILIES[family], arr).passes()
        except (FitError, ValueError):
            out[test] = False
    return out


def gof_study(
    trace: Trace,
    device_type: DeviceType,
    *,
    clustered: bool,
    theta_f: float = DEFAULT_THETA_F,
    theta_n: int = DEFAULT_THETA_N,
    trace_start_hour: int = 0,
    quantities: str = "events_and_states",
    min_samples: int = MIN_SAMPLES,
) -> GofResult:
    """Run the §4 study for one device type.

    Parameters
    ----------
    clustered:
        ``False`` reproduces Table 8 (per-device pooling), ``True``
        Tables 9/10 (per adaptive cluster).
    quantities:
        ``"events_and_states"`` (Tables 8/9: six event inter-arrivals +
        four state sojourns) or ``"transitions"`` (Table 10: the nine
        second-level transition sojourns).
    """
    if quantities not in ("events_and_states", "transitions"):
        raise ValueError(f"unknown quantities {quantities!r}")
    machine = two_level_machine()
    sub = trace.filter_device(device_type)
    if len(sub) == 0:
        raise ValueError(f"trace has no {device_type.name} events")
    ues = [int(u) for u in sub.unique_ues()]
    per_ue = {ue: seg for ue, seg in sub.per_ue()}

    import math

    total_slots = max(
        1, int(math.ceil((float(trace.times.max()) + 1e-9) / SECONDS_PER_HOUR))
    )
    slots_by_hour: Dict[int, List[int]] = {}
    for slot in range(total_slots):
        slots_by_hour.setdefault((trace_start_hour + slot) % 24, []).append(slot)

    passes: Dict[str, Dict[str, int]] = {t: {} for t in TESTS}
    combos: Dict[str, int] = {}

    for hour, slots in sorted(slots_by_hour.items()):
        segments = _build_segments(per_ue, ues, slots)
        if not segments:
            continue
        _replay_segments(segments, machine, "two_level")
        if clustered:
            features = _hour_features(segments, ues, machine)
            clustering = adaptive_cluster(features, theta_f=theta_f, theta_n=theta_n)
        else:
            clustering = single_cluster(ues, 4)
        by_cluster: Dict[int, List] = {c.cluster_id: [] for c in clustering.clusters}
        for seg in segments:
            by_cluster[clustering.assignment[seg.ue_id]].append(seg)

        for cluster_segments in by_cluster.values():
            if not cluster_segments:
                continue
            if quantities == "events_and_states":
                pooled: Dict[str, List[float]] = {}
                for event, values in _interarrivals_by_event(cluster_segments).items():
                    pooled[event.name] = values
                for state, values in _state_sojourns(cluster_segments, machine).items():
                    pooled[state] = values
            else:
                pooled = {
                    f"{src}-{ev.name}": values
                    for (src, ev), values in _transition_sojourns(
                        cluster_segments
                    ).items()
                }
            for quantity, values in pooled.items():
                if len(values) < min_samples:
                    continue
                combos[quantity] = combos.get(quantity, 0) + 1
                outcomes = _run_tests(values)
                for test, ok in outcomes.items():
                    if ok:
                        passes[test][quantity] = passes[test].get(quantity, 0) + 1

    rates = {
        test: {
            quantity: passes[test].get(quantity, 0) / n
            for quantity, n in combos.items()
        }
        for test in TESTS
    }
    return GofResult(device_type=device_type, rates=rates, combos=combos)
