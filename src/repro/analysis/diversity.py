"""Quantifying traffic diversity (§4.1.1).

The paper motivates clustering with two diversity observations drawn
from Fig. 2:

1. per-UE volumes swing strongly with the hour of day (peak-to-trough
   mean ratios of 2.27x–1309.33x depending on device and event), and
2. within one (device, hour), UEs differ widely — max-min per-UE count
   spreads of 2–142 (phones), 1–105 (cars), 0–175 (tablets).

This module computes both quantities for any trace, so the diversity
argument can be checked on real or synthesized traffic.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Sequence, Tuple

import numpy as np

from ..trace.events import DeviceType, EventType
from ..trace.stats import events_per_device_hour, peak_to_trough_ratio
from ..trace.trace import Trace

#: The four dominant event types Fig. 2 plots.
DOMINANT_FIG2_EVENTS: Tuple[EventType, ...] = (
    EventType.SRV_REQ,
    EventType.S1_CONN_REL,
    EventType.HO,
    EventType.TAU,
)


@dataclasses.dataclass(frozen=True)
class DiversityReport:
    """Diversity of one (device, event) pair across hours and UEs."""

    device_type: DeviceType
    event_type: EventType
    peak_to_trough: float        #: busiest / slowest hour mean volume
    min_spread: int              #: smallest per-hour (max - min) UE count
    max_spread: int              #: largest per-hour (max - min) UE count
    gini: float                  #: inequality of per-UE totals, in [0, 1]


def _gini(values: np.ndarray) -> float:
    """Gini coefficient of non-negative values (0 = equal, 1 = extreme)."""
    arr = np.sort(np.asarray(values, dtype=np.float64))
    if arr.size == 0 or arr.sum() <= 0:
        return 0.0
    n = arr.size
    ranks = np.arange(1, n + 1)
    return float((2.0 * np.sum(ranks * arr)) / (n * arr.sum()) - (n + 1) / n)


def diversity_report(
    trace: Trace,
    device_type: DeviceType,
    event_type: EventType,
) -> DiversityReport:
    """Compute §4.1.1's diversity quantities for one (device, event)."""
    per_hour = events_per_device_hour(trace, device_type, event_type)
    spreads = []
    for samples in per_hour.values():
        if samples:
            spreads.append(int(max(samples) - min(samples)))
    if not spreads:
        spreads = [0]
    sub = trace.filter_device(device_type)
    totals = np.asarray(
        list(sub.events_per_ue(event_type).values()), dtype=np.float64
    )
    return DiversityReport(
        device_type=device_type,
        event_type=event_type,
        peak_to_trough=peak_to_trough_ratio(trace, device_type, event_type),
        min_spread=min(spreads),
        max_spread=max(spreads),
        gini=_gini(totals) if totals.size else 0.0,
    )


def diversity_table(
    trace: Trace,
    *,
    events: Sequence[EventType] = DOMINANT_FIG2_EVENTS,
) -> Dict[Tuple[DeviceType, EventType], DiversityReport]:
    """Diversity reports for every (device, dominant event) pair."""
    out = {}
    for device_type in DeviceType:
        if len(trace.filter_device(device_type)) == 0:
            continue
        for event_type in events:
            out[(device_type, event_type)] = diversity_report(
                trace, device_type, event_type
            )
    return out


def justifies_clustering(
    trace: Trace,
    device_type: DeviceType,
    *,
    spread_threshold: float = 5.0,
) -> bool:
    """Whether §5.3's premise holds: UE spreads exceed ``theta_f``.

    If the per-UE count spread within hours already sits below the
    clustering threshold, a single model per (device, hour) suffices
    and the adaptive scheme would return one cluster anyway.
    """
    for event_type in DOMINANT_FIG2_EVENTS[:2]:  # the clustering features
        report = diversity_report(trace, device_type, event_type)
        if report.max_spread > spread_threshold:
            return True
    return False
