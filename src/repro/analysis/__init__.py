"""The paper's §4 measurement-study pipelines (Tables 8-10, Figs. 3-4)."""

from .diversity import (
    DOMINANT_FIG2_EVENTS,
    DiversityReport,
    diversity_report,
    diversity_table,
    justifies_clustering,
)
from .burstiness import (
    FIG34_QUANTITIES,
    BurstinessReport,
    TailReport,
    burstiness_analysis,
    quantity_samples,
    tail_analysis,
    windowed_durations,
)
from .gof import EMM_ECM_STATES, MIN_SAMPLES, TESTS, GofResult, gof_study
from .model_selection import FamilyScore, rank_families, score_family

__all__ = [
    "BurstinessReport",
    "EMM_ECM_STATES",
    "FIG34_QUANTITIES",
    "DOMINANT_FIG2_EVENTS",
    "DiversityReport",
    "FamilyScore",
    "diversity_report",
    "diversity_table",
    "justifies_clustering",
    "GofResult",
    "rank_families",
    "score_family",
    "MIN_SAMPLES",
    "TESTS",
    "TailReport",
    "burstiness_analysis",
    "gof_study",
    "quantity_samples",
    "tail_analysis",
    "windowed_durations",
]
