"""Likelihood-based ranking of the candidate families (extension).

§4 shows every classic family *fails* goodness-of-fit tests; a natural
follow-up question is which family fails *least*.  This module scores
fitted families by log-likelihood / AIC / BIC on a sample set, giving a
quantitative ranking (and quantifying how much better the empirical CDF
cannot be beaten by any of them).

Log-densities are implemented per family here because the sampling
interface of :mod:`repro.distributions` deliberately does not require
densities (the empirical CDF has none).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Sequence

import numpy as np

from ..distributions import Exponential, Lognormal, Pareto, Weibull
from ..distributions.base import Distribution, FitError, MIN_DURATION


def _log_density(dist: Distribution, x: np.ndarray) -> np.ndarray:
    """Pointwise log-pdf of a fitted parametric family."""
    x = np.maximum(x, MIN_DURATION)
    if isinstance(dist, Exponential):
        return math.log(dist.rate) - dist.rate * x
    if isinstance(dist, Pareto):
        out = np.full_like(x, -np.inf)
        ok = x >= dist.x_m
        out[ok] = (
            math.log(dist.alpha)
            + dist.alpha * math.log(dist.x_m)
            - (dist.alpha + 1.0) * np.log(x[ok])
        )
        return out
    if isinstance(dist, Weibull):
        z = x / dist.lam
        return (
            math.log(dist.k / dist.lam)
            + (dist.k - 1.0) * np.log(z)
            - np.power(z, dist.k)
        )
    if isinstance(dist, Lognormal):
        log_x = np.log(x)
        return (
            -np.log(x)
            - math.log(dist.sigma * math.sqrt(2.0 * math.pi))
            - (log_x - dist.mu) ** 2 / (2.0 * dist.sigma**2)
        )
    raise TypeError(f"no density for family {type(dist).__name__}")


#: Free-parameter counts for the information criteria.
_NUM_PARAMS = {
    "poisson": 1,
    "pareto": 2,
    "weibull": 2,
    "lognormal": 2,
}

_FAMILIES = {
    "poisson": Exponential,
    "pareto": Pareto,
    "weibull": Weibull,
    "lognormal": Lognormal,
}


@dataclasses.dataclass(frozen=True)
class FamilyScore:
    """Fit quality of one family on one sample set."""

    family: str
    log_likelihood: float
    aic: float
    bic: float
    n: int


def score_family(family: str, samples: Sequence[float]) -> FamilyScore:
    """Fit one family by MLE and compute its information criteria."""
    try:
        cls = _FAMILIES[family]
    except KeyError:
        raise ValueError(
            f"unknown family {family!r}; choose from {sorted(_FAMILIES)}"
        ) from None
    arr = np.asarray(samples, dtype=np.float64)
    if arr.size < 2:
        raise ValueError("need at least 2 samples to score a family")
    dist = cls.fit(arr)
    ll = float(np.sum(_log_density(dist, arr)))
    k = _NUM_PARAMS[family]
    n = arr.size
    return FamilyScore(
        family=family,
        log_likelihood=ll,
        aic=2.0 * k - 2.0 * ll,
        bic=k * math.log(n) - 2.0 * ll,
        n=n,
    )


def rank_families(
    samples: Sequence[float],
    *,
    families: Sequence[str] = ("poisson", "pareto", "weibull", "lognormal"),
    criterion: str = "aic",
) -> List[FamilyScore]:
    """Rank candidate families on a sample set, best first.

    Families whose MLE fails on the data (e.g. constant samples) are
    silently skipped.
    """
    if criterion not in ("aic", "bic", "log_likelihood"):
        raise ValueError(f"unknown criterion {criterion!r}")
    scores = []
    for family in families:
        try:
            scores.append(score_family(family, samples))
        except (FitError, ValueError):
            continue
    if not scores:
        raise ValueError("no family could be fitted to the samples")
    reverse = criterion == "log_likelihood"
    return sorted(
        scores, key=lambda s: getattr(s, criterion), reverse=reverse
    )
