"""repro — reproduction of "Modeling and Generating Control-Plane Traffic
for Cellular Networks" (Meng et al., IMC '23).

The library provides everything the paper describes, end to end:

* :mod:`repro.groundtruth` — a behaviour-driven UE population simulator
  standing in for the proprietary carrier trace;
* :mod:`repro.statemachines` — the 3GPP EMM/ECM machines, the paper's
  two-level machine (Fig. 5) and its 5G SA variant (Fig. 6), plus trace
  replay;
* :mod:`repro.distributions` / :mod:`repro.stats` — the classic
  candidate families, MLE fitting, K–S / Anderson–Darling tests, ECDF
  distances, and variance–time burstiness analysis (§4);
* :mod:`repro.clustering` — the adaptive quadtree UE clustering (§5.3);
* :mod:`repro.model` — the two-level semi-Markov traffic model, the
  first-event model, the fitting pipeline, persistence, and 4G→5G
  parameter scaling (§5–§6);
* :mod:`repro.generator` — the per-UE traffic generator for arbitrary
  populations (§7);
* :mod:`repro.baselines` — the Base/V1/V2 comparison methods (Table 3);
* :mod:`repro.validation` — the macroscopic/microscopic fidelity
  metrics of §8;
* :mod:`repro.mcn` — a small MME queueing model that consumes the
  generated traffic;
* :mod:`repro.telemetry` — run observability: spans, counters, gauges,
  progress callbacks, and a versioned schema-validated JSON report.

Quickstart::

    import repro

    real = repro.simulate_ground_truth(1000, duration=24 * 3600.0, seed=1)
    model = repro.fit_model_set(real, theta_n=50)
    synth = repro.TrafficGenerator(model).generate(5000, start_hour=19)
"""

from .baselines import fit_method
from .generator import TrafficGenerator
from .groundtruth import simulate_ground_truth
from .mcn import MmeSimulator
from .model import (
    ModelSet,
    fit_model_set,
    scale_to_nsa,
    scale_to_sa,
)
from .statemachines import (
    emm_ecm_machine,
    nr_sa_machine,
    two_level_machine,
)
from .telemetry import RunTelemetry, get_telemetry, use_telemetry
from .trace import (
    DeviceType,
    Event,
    EventType,
    NrEventType,
    Trace,
    read_csv,
    read_npz,
    write_csv,
    write_npz,
)

__version__ = "1.0.0"

__all__ = [
    "DeviceType",
    "Event",
    "EventType",
    "MmeSimulator",
    "ModelSet",
    "NrEventType",
    "RunTelemetry",
    "Trace",
    "TrafficGenerator",
    "__version__",
    "emm_ecm_machine",
    "fit_method",
    "fit_model_set",
    "get_telemetry",
    "nr_sa_machine",
    "read_csv",
    "read_npz",
    "scale_to_nsa",
    "scale_to_sa",
    "simulate_ground_truth",
    "two_level_machine",
    "use_telemetry",
    "write_csv",
    "write_npz",
]
