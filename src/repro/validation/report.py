"""Plain-text table rendering for benchmark reports.

The benchmark harness prints the regenerated paper tables with these
helpers so every bench emits a uniform, diffable artifact.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: Optional[str] = None,
) -> str:
    """Render an aligned monospace table.

    Floats are rendered with sensible precision; everything else via
    ``str``.
    """
    def _cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:+.1%}" if -1.0 <= value <= 1.0 and value != int(value) else f"{value:.3g}"
        return str(value)

    rendered = [[_cell(v) for v in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in rendered)) if rendered else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_percent(value: float, *, signed: bool = False) -> str:
    """Render a fraction as the paper's percentage style (one decimal)."""
    if signed:
        return f"{value * 100:+.1f}%"
    return f"{value * 100:.1f}%"


def format_ratio(value: float) -> str:
    """Render an improvement factor ("4.77x")."""
    return f"{value:.2f}x"
