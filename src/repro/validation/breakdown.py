"""Macroscopic validation: event-breakdown comparisons (Tables 4 & 11).

The paper's macroscopic metric splits ``HO``/``TAU`` by the top-level
state they occur in, giving eight rows:

``ATCH, DTCH, SRV_REQ, S1_CONN_REL, HO (CONN.), HO (IDLE), TAU (CONN.),
TAU (IDLE)``

each as a percentage of all events of that device type.  A method's
error is the signed difference between its synthesized percentages and
the real trace's.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence, Tuple

import numpy as np

from ..statemachines import lte
from ..statemachines.replay import classify_category2_events
from ..trace.events import DeviceType, EventType
from ..trace.trace import Trace

#: Row labels in the paper's table order.
BREAKDOWN_ROWS: Tuple[str, ...] = (
    "ATCH",
    "DTCH",
    "SRV_REQ",
    "S1_CONN_REL",
    "HO (CONN.)",
    "HO (IDLE)",
    "TAU (CONN.)",
    "TAU (IDLE)",
)


def breakdown_with_states(
    trace: Trace,
    device_type: DeviceType,
    *,
    engine: str = "compiled",
) -> Dict[str, float]:
    """Eight-row event breakdown (fractions of all events) for one device."""
    sub = trace.filter_device(device_type)
    total = len(sub)
    if total == 0:
        return {row: 0.0 for row in BREAKDOWN_ROWS}
    cat2 = classify_category2_events(sub, engine=engine)
    counts = {
        "ATCH": int(np.count_nonzero(sub.event_types == int(EventType.ATCH))),
        "DTCH": int(np.count_nonzero(sub.event_types == int(EventType.DTCH))),
        "SRV_REQ": int(np.count_nonzero(sub.event_types == int(EventType.SRV_REQ))),
        "S1_CONN_REL": int(
            np.count_nonzero(sub.event_types == int(EventType.S1_CONN_REL))
        ),
        "HO (CONN.)": cat2[(EventType.HO, lte.CONNECTED)],
        "HO (IDLE)": cat2[(EventType.HO, lte.IDLE)],
        "TAU (CONN.)": cat2[(EventType.TAU, lte.CONNECTED)],
        "TAU (IDLE)": cat2[(EventType.TAU, lte.IDLE)],
    }
    return {row: counts[row] / total for row in BREAKDOWN_ROWS}


def breakdown_difference(
    real: Trace,
    synthesized: Trace,
    device_type: DeviceType,
    *,
    engine: str = "compiled",
) -> Dict[str, float]:
    """Signed per-row difference (synthesized - real), in fractions."""
    rb = breakdown_with_states(real, device_type, engine=engine)
    sb = breakdown_with_states(synthesized, device_type, engine=engine)
    return {row: sb[row] - rb[row] for row in BREAKDOWN_ROWS}


def max_abs_breakdown_difference(
    real: Trace,
    synthesized: Trace,
    device_type: DeviceType,
    *,
    engine: str = "compiled",
) -> float:
    """The largest |row difference| — the headline number of §8.1.1."""
    diffs = breakdown_difference(real, synthesized, device_type, engine=engine)
    return max(abs(v) for v in diffs.values())


def macro_comparison(
    real: Trace,
    synthesized_by_method: Mapping[str, Trace],
    device_types: Sequence[DeviceType] = tuple(DeviceType),
) -> Dict[DeviceType, Dict[str, Dict[str, float]]]:
    """Full Table 4/11 structure.

    Returns ``{device: {"real": breakdown, method: differences...}}``
    with every value a fraction (multiply by 100 for the paper's
    percentage view).
    """
    out: Dict[DeviceType, Dict[str, Dict[str, float]]] = {}
    for device_type in device_types:
        per_device: Dict[str, Dict[str, float]] = {
            "real": breakdown_with_states(real, device_type)
        }
        for method, trace in synthesized_by_method.items():
            per_device[method] = breakdown_difference(real, trace, device_type)
        out[device_type] = per_device
    return out
