"""Aggregate-traffic validation: rate curves and burstiness preservation.

Macroscopic breakdowns (Tables 4/11) compare event *mixes*; these
helpers compare the *time structure* of the aggregate stream — the
per-minute rate curve and the variance–time burstiness — between a
synthesized and a real trace.  They quantify the property that makes
the generator useful for driving an MCN: the synthesized aggregate is
bursty like the real one, not a smoothed Poisson stream.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

import numpy as np

from ..stats.ecdf import max_y_distance
from ..stats.variance_time import (
    DEFAULT_SCALES,
    burstiness_gap,
    variance_time_curve,
)
from ..trace.events import EventType
from ..trace.trace import Trace


def rate_curve(
    trace: Trace,
    *,
    bin_seconds: float = 60.0,
    duration: Optional[float] = None,
    event_type: Optional[EventType] = None,
) -> np.ndarray:
    """Events per bin over the trace's span (the aggregate load curve)."""
    if bin_seconds <= 0:
        raise ValueError("bin_seconds must be positive")
    times = trace.times
    if event_type is not None:
        times = times[trace.event_types == int(event_type)]
    if duration is None:
        duration = float(trace.times.max()) + bin_seconds if len(trace) else bin_seconds
    num_bins = max(1, int(np.ceil(duration / bin_seconds)))
    if times.size == 0:
        return np.zeros(num_bins, dtype=np.int64)
    idx = np.minimum((times / bin_seconds).astype(np.int64), num_bins - 1)
    return np.bincount(idx, minlength=num_bins)


@dataclasses.dataclass(frozen=True)
class AggregateComparison:
    """How closely a synthesized aggregate matches the real one."""

    volume_ratio: float            #: synthesized / real total events
    rate_curve_correlation: float  #: Pearson r of per-minute rates
    rate_distribution_ydistance: float  #: K-S distance of per-minute rates
    burstiness_gap_mean: float     #: mean log10 VT gap (syn - real)


def compare_aggregate(
    real: Trace,
    synthesized: Trace,
    *,
    bin_seconds: float = 60.0,
    scales: Sequence[float] = DEFAULT_SCALES,
) -> AggregateComparison:
    """Compare aggregate time structure of two traces over a common span."""
    if len(real) == 0 or len(synthesized) == 0:
        raise ValueError("both traces must be non-empty")
    duration = max(float(real.times.max()), float(synthesized.times.max())) + 1.0
    real_curve = rate_curve(real, bin_seconds=bin_seconds, duration=duration)
    syn_curve = rate_curve(synthesized, bin_seconds=bin_seconds, duration=duration)

    if real_curve.std() > 0 and syn_curve.std() > 0:
        correlation = float(np.corrcoef(real_curve, syn_curve)[0, 1])
    else:
        correlation = float("nan")

    real_vt = variance_time_curve(real.times, duration=duration, scales=scales)
    syn_vt = variance_time_curve(synthesized.times, duration=duration, scales=scales)
    try:
        gap = float(np.mean(burstiness_gap(syn_vt, real_vt)))
    except ValueError:
        gap = float("nan")

    return AggregateComparison(
        volume_ratio=len(synthesized) / len(real),
        rate_curve_correlation=correlation,
        rate_distribution_ydistance=max_y_distance(
            real_curve.astype(float), syn_curve.astype(float)
        ),
        burstiness_gap_mean=gap,
    )
