"""Validation metrics: macroscopic breakdowns and microscopic CDF distances."""

from .aggregate import AggregateComparison, compare_aggregate, rate_curve
from .breakdown import (
    BREAKDOWN_ROWS,
    breakdown_difference,
    breakdown_with_states,
    macro_comparison,
    max_abs_breakdown_difference,
)
from .microscopic import (
    ACTIVITY_THRESHOLD,
    MICRO_QUANTITIES,
    activity_split_ydistance,
    count_ydistance,
    device_sojourns,
    micro_comparison,
    micro_comparison_partial,
    per_ue_counts,
    sojourn_ydistance,
    state_sojourns,
)
from .report import format_percent, format_ratio, format_table

__all__ = [
    "ACTIVITY_THRESHOLD",
    "AggregateComparison",
    "compare_aggregate",
    "rate_curve",
    "BREAKDOWN_ROWS",
    "MICRO_QUANTITIES",
    "activity_split_ydistance",
    "breakdown_difference",
    "breakdown_with_states",
    "count_ydistance",
    "device_sojourns",
    "format_percent",
    "format_ratio",
    "format_table",
    "macro_comparison",
    "max_abs_breakdown_difference",
    "micro_comparison",
    "micro_comparison_partial",
    "per_ue_counts",
    "sojourn_ydistance",
    "state_sojourns",
]
