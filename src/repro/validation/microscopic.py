"""Microscopic validation: per-UE CDF comparisons (Tables 5 & 6, Fig. 7).

Two per-UE quantities are compared between a synthesized and a real
trace via the **maximum y-distance** of their CDFs:

* the number of ``SRV_REQ`` / ``S1_CONN_REL`` events per UE, and
* the sojourn time per CONNECTED / IDLE visit.

Traces only contain UEs that emitted at least one event, so the count
CDFs take the nominal population size and pad zero-count UEs — both
sides are treated identically.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..stats.ecdf import max_y_distance
from ..statemachines.replay import replay_trace, top_state_sojourns
from ..trace.events import DeviceType, EventType
from ..trace.trace import Trace


def per_ue_counts(
    trace: Trace,
    device_type: DeviceType,
    event_type: EventType,
    *,
    num_ues: Optional[int] = None,
) -> np.ndarray:
    """Per-UE counts of one event type, zero-padded to ``num_ues``.

    ``num_ues`` is the nominal population of that device type (UEs with
    no events at all are invisible in the trace but still part of the
    population the CDF describes).
    """
    sub = trace.filter_device(device_type)
    counts = list(sub.events_per_ue(event_type).values())
    if num_ues is not None:
        if num_ues < len(counts):
            raise ValueError(
                f"num_ues={num_ues} smaller than UEs present ({len(counts)})"
            )
        counts.extend([0] * (num_ues - len(counts)))
    return np.asarray(sorted(counts), dtype=np.float64)


def count_ydistance(
    real: Trace,
    synthesized: Trace,
    device_type: DeviceType,
    event_type: EventType,
    *,
    real_num_ues: Optional[int] = None,
    syn_num_ues: Optional[int] = None,
) -> float:
    """Max y-distance between per-UE count CDFs (Table 5, top half)."""
    real_counts = per_ue_counts(real, device_type, event_type, num_ues=real_num_ues)
    syn_counts = per_ue_counts(
        synthesized, device_type, event_type, num_ues=syn_num_ues
    )
    if real_counts.size == 0 or syn_counts.size == 0:
        raise ValueError("one of the traces has no UEs of this device type")
    return max_y_distance(real_counts, syn_counts)


def state_sojourns(
    trace: Trace, device_type: DeviceType, state: str
) -> np.ndarray:
    """All complete sojourn durations in a top-level state, across UEs."""
    sub = trace.filter_device(device_type)
    results = replay_trace(sub)
    sojourns = top_state_sojourns(results)
    return sojourns.get(state, np.empty(0))


def sojourn_ydistance(
    real: Trace,
    synthesized: Trace,
    device_type: DeviceType,
    state: str,
) -> float:
    """Max y-distance between sojourn CDFs (Table 5, bottom half)."""
    real_s = state_sojourns(real, device_type, state)
    syn_s = state_sojourns(synthesized, device_type, state)
    if real_s.size == 0 or syn_s.size == 0:
        raise ValueError(
            f"no complete {state} sojourns for {device_type.name} "
            "in one of the traces"
        )
    return max_y_distance(real_s, syn_s)


#: Table 6's activity threshold: inactive UEs emit <= 2 events per hour.
ACTIVITY_THRESHOLD = 2


def activity_split_ydistance(
    real: Trace,
    synthesized: Trace,
    device_type: DeviceType,
    event_type: EventType,
    *,
    threshold: int = ACTIVITY_THRESHOLD,
    real_num_ues: Optional[int] = None,
    syn_num_ues: Optional[int] = None,
) -> Tuple[float, float]:
    """Y-distances for (inactive, active) UE groups (Table 6).

    Each trace's UEs are split by their own counts; the CDFs of the two
    groups are compared separately.
    """
    real_counts = per_ue_counts(real, device_type, event_type, num_ues=real_num_ues)
    syn_counts = per_ue_counts(
        synthesized, device_type, event_type, num_ues=syn_num_ues
    )
    out = []
    for selector in (
        lambda c: c[c <= threshold],
        lambda c: c[c > threshold],
    ):
        r = selector(real_counts)
        s = selector(syn_counts)
        if r.size == 0 or s.size == 0:
            out.append(float("nan"))
        else:
            out.append(max_y_distance(r, s))
    return out[0], out[1]


def micro_comparison(
    real: Trace,
    synthesized: Trace,
    device_type: DeviceType,
    *,
    real_num_ues: Optional[int] = None,
    syn_num_ues: Optional[int] = None,
) -> Dict[str, float]:
    """One Table-5 column: count and sojourn y-distances for a method."""
    from ..statemachines import lte

    return {
        "SRV_REQ": count_ydistance(
            real,
            synthesized,
            device_type,
            EventType.SRV_REQ,
            real_num_ues=real_num_ues,
            syn_num_ues=syn_num_ues,
        ),
        "S1_CONN_REL": count_ydistance(
            real,
            synthesized,
            device_type,
            EventType.S1_CONN_REL,
            real_num_ues=real_num_ues,
            syn_num_ues=syn_num_ues,
        ),
        "CONNECTED": sojourn_ydistance(real, synthesized, device_type, lte.CONNECTED),
        "IDLE": sojourn_ydistance(real, synthesized, device_type, lte.IDLE),
    }
