"""Microscopic validation: per-UE CDF comparisons (Tables 5 & 6, Fig. 7).

Two per-UE quantities are compared between a synthesized and a real
trace via the **maximum y-distance** of their CDFs:

* the number of ``SRV_REQ`` / ``S1_CONN_REL`` events per UE, and
* the sojourn time per CONNECTED / IDLE visit.

Traces only contain UEs that emitted at least one event, so the count
CDFs take the nominal population size and pad zero-count UEs — both
sides are treated identically.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..stats.ecdf import max_y_distance
from ..statemachines.replay import replay_trace, top_state_sojourns
from ..trace.events import DeviceType, EventType
from ..trace.trace import Trace


def per_ue_counts(
    trace: Trace,
    device_type: DeviceType,
    event_type: EventType,
    *,
    num_ues: Optional[int] = None,
) -> np.ndarray:
    """Per-UE counts of one event type, zero-padded to ``num_ues``.

    ``num_ues`` is the nominal population of that device type (UEs with
    no events at all are invisible in the trace but still part of the
    population the CDF describes).  Computed with one ``bincount`` over
    UE codes instead of materializing a per-UE dict — at million-UE
    scale the dict path dominated the whole Table-5 computation.
    """
    sub = trace.filter_device(device_type)
    ues = sub.unique_ues()
    present = len(ues)
    if num_ues is not None and num_ues < present:
        raise ValueError(
            f"num_ues={num_ues} smaller than UEs present ({present})"
        )
    mask = sub.event_types == int(event_type)
    counts = np.bincount(
        np.searchsorted(ues, sub.ue_ids[mask]),
        minlength=num_ues if num_ues is not None else present,
    )
    return np.sort(counts.astype(np.float64))


def count_ydistance(
    real: Trace,
    synthesized: Trace,
    device_type: DeviceType,
    event_type: EventType,
    *,
    real_num_ues: Optional[int] = None,
    syn_num_ues: Optional[int] = None,
) -> float:
    """Max y-distance between per-UE count CDFs (Table 5, top half)."""
    real_counts = per_ue_counts(real, device_type, event_type, num_ues=real_num_ues)
    syn_counts = per_ue_counts(
        synthesized, device_type, event_type, num_ues=syn_num_ues
    )
    if real_counts.size == 0 or syn_counts.size == 0:
        raise ValueError("one of the traces has no UEs of this device type")
    return max_y_distance(real_counts, syn_counts)


def device_sojourns(
    trace: Trace,
    device_type: DeviceType,
    *,
    engine: str = "reference",
) -> Dict[str, np.ndarray]:
    """Complete top-level sojourns of one device cohort, by state.

    One replay serves every state — callers comparing both CONNECTED
    and IDLE should use this instead of calling :func:`state_sojourns`
    per state, which replays the cohort each time.
    """
    sub = trace.filter_device(device_type)
    results = replay_trace(sub, engine=engine)
    return top_state_sojourns(results)


def state_sojourns(
    trace: Trace,
    device_type: DeviceType,
    state: str,
    *,
    engine: str = "reference",
) -> np.ndarray:
    """All complete sojourn durations in a top-level state, across UEs."""
    return device_sojourns(trace, device_type, engine=engine).get(
        state, np.empty(0)
    )


def sojourn_ydistance(
    real: Trace,
    synthesized: Trace,
    device_type: DeviceType,
    state: str,
    *,
    engine: str = "reference",
) -> float:
    """Max y-distance between sojourn CDFs (Table 5, bottom half)."""
    real_s = state_sojourns(real, device_type, state, engine=engine)
    syn_s = state_sojourns(synthesized, device_type, state, engine=engine)
    if real_s.size == 0 or syn_s.size == 0:
        raise ValueError(
            f"no complete {state} sojourns for {device_type.name} "
            "in one of the traces"
        )
    return max_y_distance(real_s, syn_s)


#: Table 6's activity threshold: inactive UEs emit <= 2 events per hour.
ACTIVITY_THRESHOLD = 2


def activity_split_ydistance(
    real: Trace,
    synthesized: Trace,
    device_type: DeviceType,
    event_type: EventType,
    *,
    threshold: int = ACTIVITY_THRESHOLD,
    real_num_ues: Optional[int] = None,
    syn_num_ues: Optional[int] = None,
) -> Tuple[float, float]:
    """Y-distances for (inactive, active) UE groups (Table 6).

    Each trace's UEs are split by their own counts; the CDFs of the two
    groups are compared separately.
    """
    real_counts = per_ue_counts(real, device_type, event_type, num_ues=real_num_ues)
    syn_counts = per_ue_counts(
        synthesized, device_type, event_type, num_ues=syn_num_ues
    )
    out = []
    for selector in (
        lambda c: c[c <= threshold],
        lambda c: c[c > threshold],
    ):
        r = selector(real_counts)
        s = selector(syn_counts)
        if r.size == 0 or s.size == 0:
            out.append(float("nan"))
        else:
            out.append(max_y_distance(r, s))
    return out[0], out[1]


#: Table-5 rows, in presentation order: per-UE event-count CDFs first,
#: then top-level sojourn CDFs.
MICRO_QUANTITIES = ("SRV_REQ", "S1_CONN_REL", "CONNECTED", "IDLE")

_COUNT_QUANTITIES = {
    "SRV_REQ": EventType.SRV_REQ,
    "S1_CONN_REL": EventType.S1_CONN_REL,
}


def micro_comparison_partial(
    real: Trace,
    synthesized: Trace,
    device_type: DeviceType,
    *,
    real_num_ues: Optional[int] = None,
    syn_num_ues: Optional[int] = None,
    engine: str = "reference",
) -> Tuple[Dict[str, float], Dict[str, str]]:
    """One Table-5 column, reporting every computable quantity.

    Returns ``(values, skipped)``: each of :data:`MICRO_QUANTITIES`
    lands in exactly one of the two dicts — ``values`` with its
    y-distance, or ``skipped`` with the reason it could not be measured
    (e.g. no complete IDLE sojourn in a short trace).  Quantities are
    independent: one failing never discards the others.

    Both traces' cohorts are replayed once each, serving the CONNECTED
    and IDLE rows together.
    """
    from ..statemachines import lte

    values: Dict[str, float] = {}
    skipped: Dict[str, str] = {}
    for name, event_type in _COUNT_QUANTITIES.items():
        try:
            values[name] = count_ydistance(
                real,
                synthesized,
                device_type,
                event_type,
                real_num_ues=real_num_ues,
                syn_num_ues=syn_num_ues,
            )
        except ValueError as exc:
            skipped[name] = str(exc)
    real_soj = device_sojourns(real, device_type, engine=engine)
    syn_soj = device_sojourns(synthesized, device_type, engine=engine)
    for state in (lte.CONNECTED, lte.IDLE):
        real_s = real_soj.get(state, np.empty(0))
        syn_s = syn_soj.get(state, np.empty(0))
        if real_s.size == 0 or syn_s.size == 0:
            skipped[state] = (
                f"no complete {state} sojourns for {device_type.name} "
                "in one of the traces"
            )
        else:
            values[state] = max_y_distance(real_s, syn_s)
    return values, skipped


def micro_comparison(
    real: Trace,
    synthesized: Trace,
    device_type: DeviceType,
    *,
    real_num_ues: Optional[int] = None,
    syn_num_ues: Optional[int] = None,
    engine: str = "reference",
) -> Dict[str, float]:
    """One Table-5 column: count and sojourn y-distances for a method.

    Raises :class:`ValueError` if any quantity cannot be measured; use
    :func:`micro_comparison_partial` to keep the computable ones.
    """
    values, skipped = micro_comparison_partial(
        real,
        synthesized,
        device_type,
        real_num_ues=real_num_ues,
        syn_num_ues=syn_num_ues,
        engine=engine,
    )
    for name in MICRO_QUANTITIES:
        if name in skipped:
            raise ValueError(skipped[name])
    return values
