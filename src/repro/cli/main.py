"""Command-line interface: ``python -m repro <command>``.

The open-source artifact of the paper is a *usable generator*; this CLI
exposes the full pipeline without writing Python:

========== =========================================================
simulate   produce a behaviour-driven "real" trace
fit        fit a model set (ours / base / v1 / v2) from a trace
generate   synthesize traffic from a fitted model set
inspect    print analytic statistics of a fitted model set
validate   compare a synthesized trace against a real one
evaluate   run the full §8 method comparison (fit + generate + compare)
check      audit a fitted model set for internal consistency
anonymize  remap UE ids and shift the epoch of a trace
scale5g    derive a 5G NSA / SA model set from a fitted LTE one
gof        run the §4 goodness-of-fit study on a trace
mme        drive the MME queueing model with a trace
core       drive the procedure-level EPC / 5GC core simulator
sessions   session-level statistics of a trace
hurst      self-similarity (Hurst) estimate of a trace
dot        emit Graphviz DOT for any of the paper's state machines
telemetry  summarize a telemetry report written by --telemetry
========== =========================================================

Traces are read/written by extension: ``.npz`` (compact) or ``.csv``.
Model sets are JSON, gzipped when the path ends in ``.gz``.  The
``fit``, ``generate``, ``evaluate`` and ``core`` commands take
``--telemetry PATH`` to write a versioned, schema-validated
observability report of the run (see :mod:`repro.telemetry`);
``repro telemetry summarize PATH`` renders its per-phase breakdown.
``fit`` and ``evaluate`` default to the compiled engine and the
content-addressed model cache under ``~/.cache/repro`` (``--engine
reference``, ``--no-cache``, ``--cache-dir`` override); ``evaluate``
additionally fans per-(method × device) metric jobs across
``--processes`` workers and can emit the full report as ``--json``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..analysis import TESTS, gof_study
from ..baselines import METHOD_NAMES, fit_method
from ..generator import TrafficGenerator
from ..generator.parallel import generate_parallel
from ..groundtruth import simulate_ground_truth
from ..mcn import CoreNetworkSimulator, MmeSimulator
from ..harness import EVAL_ENGINES, evaluate_methods
from ..model import (
    FIT_ENGINES,
    ModelSet,
    default_cache_dir,
    scale_to_nsa,
    scale_to_sa,
    validate_model_set,
)
from ..model.inspect import describe_model_set
from ..statemachines import (
    ecm_machine,
    emm_ecm_machine,
    emm_machine,
    nr_sa_machine,
    two_level_machine,
)
from ..statemachines.dot import machine_to_dot
from ..stats import hurst_rescaled_range, hurst_variance_time
from ..telemetry import RunTelemetry, load_report, summarize_report
from ..trace import (
    DeviceType,
    Trace,
    anonymize,
    session_stats,
    read_csv,
    read_npz,
    write_csv,
    write_npz,
)
from ..validation import (
    BREAKDOWN_ROWS,
    breakdown_difference,
    breakdown_with_states,
    format_table,
    micro_comparison,
)

_MACHINES = {
    "two_level": two_level_machine,
    "emm_ecm": emm_ecm_machine,
    "emm": emm_machine,
    "ecm": ecm_machine,
    "nr_sa": nr_sa_machine,
}


def _load_trace(path: str, *, mmap: bool = False) -> Trace:
    if path.endswith(".npz"):
        return read_npz(path, mmap=mmap)
    if path.endswith(".csv"):
        return read_csv(path)
    raise SystemExit(f"unsupported trace extension: {path} (use .npz or .csv)")


def _save_trace(trace: Trace, path: str) -> None:
    if path.endswith(".npz"):
        write_npz(trace, path)
    elif path.endswith(".csv"):
        write_csv(trace, path)
    else:
        raise SystemExit(f"unsupported trace extension: {path} (use .npz or .csv)")


def _device_counts(args: argparse.Namespace):
    explicit = {
        DeviceType.PHONE: args.phones,
        DeviceType.CONNECTED_CAR: args.cars,
        DeviceType.TABLET: args.tablets,
    }
    explicit = {dt: n for dt, n in explicit.items() if n}
    if explicit and args.ues:
        raise SystemExit("give either --ues or per-device counts, not both")
    if explicit:
        return explicit
    if args.ues:
        return args.ues
    raise SystemExit("population size required (--ues or --phones/--cars/--tablets)")


# ---------------------------------------------------------------------------
# Command handlers
# ---------------------------------------------------------------------------

def _cmd_simulate(args: argparse.Namespace) -> int:
    trace = simulate_ground_truth(
        _device_counts(args),
        duration=args.hours * 3600.0,
        seed=args.seed,
        start_hour=args.start_hour,
    )
    _save_trace(trace, args.out)
    print(f"wrote {len(trace):,} events / {trace.num_ues} UEs to {args.out}")
    return 0


def _cmd_fit(args: argparse.Namespace) -> int:
    tele = RunTelemetry(
        {
            "command": "fit",
            "trace": args.trace,
            "method": args.method,
            "engine": args.engine,
            "processes": args.processes if args.processes is not None else 1,
        }
    )
    if args.progress:
        tele.on_progress(_print_progress)
    # Memory-map uncompressed NPZ traces so multi-GB training data is
    # not materialized twice (loader copy + Trace columns).
    with tele.span("trace-load"):
        trace = _load_trace(args.trace, mmap=True)
    cache_dir = None if args.no_cache else (args.cache_dir or default_cache_dir())
    model = fit_method(
        args.method,
        trace,
        theta_f=args.theta_f,
        theta_n=args.theta_n,
        trace_start_hour=args.start_hour,
        max_cdf_points=args.max_cdf_points,
        engine=args.engine,
        processes=args.processes,
        cache_dir=cache_dir,
        telemetry=tele,
    )
    with tele.span("model-save"):
        model.save(args.out)
    cached = " (cache hit)" if tele.counters.get("cache_hits") else ""
    print(
        f"fitted {model.num_models} models ({args.method}, {args.engine})"
        f"{cached} -> {args.out}"
    )
    if args.telemetry:
        tele.write_report(args.telemetry)
    return 0


def _print_progress(phase: str, done: int, total: int) -> None:
    if total:
        print(f"[{phase}] {done}/{total}", file=sys.stderr)
    else:
        print(f"[{phase}] {done}", file=sys.stderr)


def _cmd_generate(args: argparse.Namespace) -> int:
    tele = RunTelemetry(
        {
            "command": "generate",
            "model": args.model,
            "start_hour": args.start_hour,
            "num_hours": args.hours,
            "seed": args.seed,
            "processes": args.processes,
        }
    )
    if args.progress:
        tele.on_progress(_print_progress)
    with tele.span("model-load"):
        model = ModelSet.load(args.model)
    counts = _device_counts(args)
    if args.resume and not args.checkpoint:
        raise SystemExit("--resume requires --checkpoint")
    if args.processes != 1:
        trace = generate_parallel(
            model,
            counts,
            start_hour=args.start_hour,
            num_hours=args.hours,
            seed=args.seed,
            processes=args.processes or None,  # 0 = all CPUs
            checkpoint_path=args.checkpoint,
            resume=args.resume,
            telemetry=tele,
        )
    else:
        trace = TrafficGenerator(model).generate(
            counts,
            start_hour=args.start_hour,
            num_hours=args.hours,
            seed=args.seed,
            checkpoint_path=args.checkpoint,
            resume=args.resume,
            telemetry=tele,
        )
    with tele.span("trace-write"):
        _save_trace(trace, args.out)
    print(f"synthesized {len(trace):,} events / {trace.num_ues} UEs -> {args.out}")
    if args.telemetry:
        tele.write_report(args.telemetry)
        print(f"telemetry report -> {args.telemetry}")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    model = ModelSet.load(args.model)
    print(describe_model_set(model))
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    real = _load_trace(args.real)
    synthesized = _load_trace(args.synthesized)
    for device_type in DeviceType:
        if len(real.filter_device(device_type)) == 0:
            continue
        real_bd = breakdown_with_states(real, device_type)
        diff = breakdown_difference(real, synthesized, device_type)
        rows = [
            [row, f"{100 * real_bd[row]:.1f}%", f"{100 * diff[row]:+.1f}%"]
            for row in BREAKDOWN_ROWS
        ]
        print(format_table(["Event", "Real", "Diff"], rows,
                           title=f"Breakdown - {device_type.name}"))
        try:
            micro = micro_comparison(real, synthesized, device_type)
            rows = [[k, f"{100 * v:.1f}%"] for k, v in micro.items()]
            print(format_table(["Quantity", "max y-distance"], rows))
        except ValueError as exc:
            print(f"(microscopic comparison skipped: {exc})")
        print()
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    tele = RunTelemetry(
        {
            "command": "evaluate",
            "train": args.train,
            "real": args.real,
            "methods": args.methods,
            "engine": args.engine,
            "generation_hour": args.hour,
            "seed": args.seed,
            "processes": args.processes,
        }
    )
    if args.progress:
        tele.on_progress(_print_progress)
    with tele.span("trace-load"):
        train = _load_trace(args.train, mmap=True)
        real = _load_trace(args.real, mmap=True)
    cache_dir = None if args.no_cache else (args.cache_dir or default_cache_dir())
    report = evaluate_methods(
        train,
        real,
        num_ues=args.ues,
        methods=tuple(args.methods.split(",")),
        theta_n=args.theta_n,
        trace_start_hour=args.train_start_hour,
        generation_hour=args.hour,
        seed=args.seed,
        engine=args.engine,
        processes=args.processes,
        cache_dir=cache_dir,
        telemetry=tele,
    )
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2)
            handle.write("\n")
        print(f"evaluation report -> {args.json}")
    print(report.to_text())
    for device_type in DeviceType:
        if len(real.filter_device(device_type)) > 0:
            print(f"winner ({device_type.name}): {report.winner(device_type)}")
    if args.telemetry:
        tele.write_report(args.telemetry)
        print(f"telemetry report -> {args.telemetry}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    model = ModelSet.load(args.model)
    problems = validate_model_set(model)
    if not problems:
        print(f"OK: {model.num_models} models, no problems found")
        return 0
    for problem in problems:
        print(f"PROBLEM: {problem}")
    return 1


def _cmd_anonymize(args: argparse.Namespace) -> int:
    trace = _load_trace(args.trace)
    _save_trace(anonymize(trace, seed=args.seed), args.out)
    print(f"anonymized {trace.num_ues} UEs -> {args.out}")
    return 0


def _cmd_scale5g(args: argparse.Namespace) -> int:
    model = ModelSet.load(args.model)
    if args.mode == "nsa":
        scaled = (
            scale_to_nsa(model, args.ho_scale)
            if args.ho_scale
            else scale_to_nsa(model)
        )
    else:
        scaled = (
            scale_to_sa(model, args.ho_scale)
            if args.ho_scale
            else scale_to_sa(model)
        )
    scaled.save(args.out)
    print(f"scaled to 5G {args.mode.upper()} -> {args.out}")
    return 0


def _cmd_gof(args: argparse.Namespace) -> int:
    trace = _load_trace(args.trace)
    device_type = DeviceType[args.device.upper()]
    result = gof_study(
        trace,
        device_type,
        clustered=args.clustered,
        theta_n=args.theta_n,
        trace_start_hour=args.start_hour,
        quantities=args.quantities,
    )
    quantities = sorted(result.combos)
    rows = [
        [test] + [f"{100 * result.rates[test][q]:.1f}%" for q in quantities]
        for test in TESTS
    ]
    print(format_table(["Test"] + quantities, rows,
                       title=f"GoF pass rates - {device_type.name}"))
    return 0


def _cmd_mme(args: argparse.Namespace) -> int:
    trace = _load_trace(args.trace)
    report = MmeSimulator(num_workers=args.workers, seed=args.seed).process(trace)
    print(f"events:      {report.num_events:,}")
    print(f"span:        {report.span:.1f} s")
    print(f"throughput:  {report.throughput:.1f} events/s")
    print(f"utilization: {report.utilization:.1%}")
    print(f"wait p50/p95/p99/max: "
          f"{report.p50_wait * 1e3:.2f} / {report.p95_wait * 1e3:.2f} / "
          f"{report.p99_wait * 1e3:.2f} / {report.max_wait * 1e3:.2f} ms")
    print(f"protocol violations: {report.protocol_violations:,}")
    return 0


def _cmd_core(args: argparse.Namespace) -> int:
    tele = RunTelemetry(
        {"command": "core", "core": args.core, "trace": args.trace}
    )
    with tele.span("trace-load"):
        trace = _load_trace(args.trace)
    sim = CoreNetworkSimulator(
        args.core, workers=args.workers, seed=args.seed
    )
    report = sim.process(trace, telemetry=tele)
    print(f"core: {report.core}  events: {report.num_events:,}  "
          f"messages: {report.num_messages:,}  span: {report.span:.1f}s")
    rows = [
        [f.name, f.messages, f"{f.utilization:.1%}",
         f"{f.mean_wait * 1e3:.2f} ms", f"{f.p95_wait * 1e3:.2f} ms"]
        for f in report.functions.values()
    ]
    print(format_table(
        ["NF", "messages", "util", "mean wait", "p95 wait"], rows
    ))
    rows = [
        [p.name, p.count, f"{p.mean_latency * 1e3:.2f} ms",
         f"{p.p99_latency * 1e3:.2f} ms"]
        for p in sorted(report.procedures.values(), key=lambda p: p.name)
    ]
    print(format_table(["procedure", "count", "mean", "p99"], rows))
    bottleneck = report.bottleneck()
    print(f"bottleneck: {bottleneck if bottleneck is not None else '(no traffic)'}")
    if args.telemetry:
        tele.write_report(args.telemetry)
        print(f"telemetry report -> {args.telemetry}")
    return 0


def _cmd_telemetry(args: argparse.Namespace) -> int:
    try:
        report = load_report(args.report)
    except Exception as exc:
        raise SystemExit(str(exc))
    print(summarize_report(report))
    return 0


def _cmd_sessions(args: argparse.Namespace) -> int:
    trace = _load_trace(args.trace)
    for device_type in DeviceType:
        if len(trace.filter_device(device_type)) == 0:
            continue
        stats = session_stats(trace, device_type)
        print(f"{device_type.name}: {stats.num_sessions:,} sessions, "
              f"{stats.sessions_per_ue:.1f}/UE, "
              f"median {stats.median_duration:.1f}s / "
              f"p95 {stats.p95_duration:.1f}s, "
              f"{stats.mean_handovers:.2f} HO/session")
    return 0


def _cmd_hurst(args: argparse.Namespace) -> int:
    trace = _load_trace(args.trace)
    vt = hurst_variance_time(trace.times)
    rs = hurst_rescaled_range(trace.times)
    print(f"variance-time: H = {vt.hurst:.3f} (r^2 = {vt.r_squared:.3f})")
    print(f"rescaled-range: H = {rs.hurst:.3f} (r^2 = {rs.r_squared:.3f})")
    verdict = "long-range dependent" if vt.is_long_range_dependent else "short-range"
    print(f"verdict: {verdict} aggregate traffic")
    return 0


def _cmd_dot(args: argparse.Namespace) -> int:
    machine = _MACHINES[args.machine]()
    print(machine_to_dot(machine))
    return 0


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

def _add_population_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--ues", type=int, help="total UEs (split by device mix)")
    parser.add_argument("--phones", type=int, default=0)
    parser.add_argument("--cars", type=int, default=0)
    parser.add_argument("--tablets", type=int, default=0)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser with all subcommands registered."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Control-plane traffic modeling and generation (IMC '23)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("simulate", help="simulate a ground-truth trace")
    _add_population_args(p)
    p.add_argument("--hours", type=float, default=24.0)
    p.add_argument("--start-hour", type=int, default=0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", required=True)
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser("fit", help="fit a model set from a trace")
    p.add_argument("--trace", required=True)
    p.add_argument("--method", choices=METHOD_NAMES, default="ours")
    p.add_argument("--theta-f", type=float, default=5.0)
    p.add_argument("--theta-n", type=int, default=1000)
    p.add_argument("--start-hour", type=int, default=0)
    p.add_argument("--max-cdf-points", type=int, default=512)
    p.add_argument("--engine", choices=FIT_ENGINES, default="compiled",
                   help="fitting engine (both produce identical models)")
    p.add_argument("--processes", type=int, default=None,
                   help="fit worker processes (0 = all CPUs; default serial)")
    p.add_argument("--cache-dir", default=None,
                   help="model cache directory (default ~/.cache/repro)")
    p.add_argument("--no-cache", action="store_true",
                   help="skip the content-addressed model cache")
    p.add_argument("--telemetry", default=None,
                   help="write a JSON telemetry report of the fit")
    p.add_argument("--progress", action="store_true",
                   help="print fit progress to stderr")
    p.add_argument("--out", required=True)
    p.set_defaults(func=_cmd_fit)

    p = sub.add_parser("generate", help="synthesize traffic from a model")
    p.add_argument("--model", required=True)
    _add_population_args(p)
    p.add_argument("--start-hour", type=int, default=0)
    p.add_argument("--hours", type=int, default=1)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--processes", type=int, default=1,
                   help="process pool size (0 = all CPUs)")
    p.add_argument("--checkpoint", default=None, metavar="PATH",
                   help="snapshot run progress to PATH (atomic) so an "
                        "interrupted run can be resumed")
    p.add_argument("--resume", action="store_true",
                   help="resume an interrupted run from --checkpoint; "
                        "output is bit-identical to an uninterrupted run")
    p.add_argument("--telemetry", default=None, metavar="PATH",
                   help="write a schema-validated JSON telemetry report "
                        "of the run to PATH")
    p.add_argument("--progress", action="store_true",
                   help="print rate-limited progress lines to stderr")
    p.add_argument("--out", required=True)
    p.set_defaults(func=_cmd_generate)

    p = sub.add_parser("inspect", help="describe a fitted model set")
    p.add_argument("--model", required=True)
    p.set_defaults(func=_cmd_inspect)

    p = sub.add_parser("validate", help="compare synthesized vs real traces")
    p.add_argument("--real", required=True)
    p.add_argument("--synthesized", required=True)
    p.set_defaults(func=_cmd_validate)

    p = sub.add_parser("evaluate", help="full method comparison (§8)")
    p.add_argument("--train", required=True)
    p.add_argument("--real", required=True)
    p.add_argument("--ues", type=int, default=None)
    p.add_argument("--methods", default="base,v1,v2,ours")
    p.add_argument("--theta-n", type=int, default=1000)
    p.add_argument("--train-start-hour", type=int, default=0)
    p.add_argument("--hour", type=int, default=0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--engine", choices=EVAL_ENGINES, default="compiled",
                   help="evaluation engine (both produce identical reports)")
    p.add_argument("--processes", type=int, default=None,
                   help="metric/fit worker processes (0 = all CPUs; "
                        "default serial)")
    p.add_argument("--cache-dir", default=None,
                   help="model cache directory (default ~/.cache/repro)")
    p.add_argument("--no-cache", action="store_true",
                   help="skip the content-addressed model cache")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="also write the report as JSON to PATH")
    p.add_argument("--telemetry", default=None, metavar="PATH",
                   help="write a schema-validated JSON telemetry report "
                        "of the run to PATH")
    p.add_argument("--progress", action="store_true",
                   help="print rate-limited progress lines to stderr")
    p.set_defaults(func=_cmd_evaluate)

    p = sub.add_parser("check", help="audit a fitted model set")
    p.add_argument("--model", required=True)
    p.set_defaults(func=_cmd_check)

    p = sub.add_parser("anonymize", help="anonymize a trace")
    p.add_argument("--trace", required=True)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", required=True)
    p.set_defaults(func=_cmd_anonymize)

    p = sub.add_parser("scale5g", help="derive a 5G model from an LTE one")
    p.add_argument("--model", required=True)
    p.add_argument("--mode", choices=("nsa", "sa"), required=True)
    p.add_argument("--ho-scale", type=float, default=None)
    p.add_argument("--out", required=True)
    p.set_defaults(func=_cmd_scale5g)

    p = sub.add_parser("gof", help="goodness-of-fit study (§4)")
    p.add_argument("--trace", required=True)
    p.add_argument("--device", choices=[d.name.lower() for d in DeviceType],
                   default="phone")
    p.add_argument("--clustered", action="store_true")
    p.add_argument("--theta-n", type=int, default=1000)
    p.add_argument("--start-hour", type=int, default=0)
    p.add_argument("--quantities", choices=("events_and_states", "transitions"),
                   default="events_and_states")
    p.set_defaults(func=_cmd_gof)

    p = sub.add_parser("mme", help="drive the MME queueing model")
    p.add_argument("--trace", required=True)
    p.add_argument("--workers", type=int, default=4)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_mme)

    p = sub.add_parser("core", help="drive the procedure-level core simulator")
    p.add_argument("--trace", required=True)
    p.add_argument("--core", choices=("epc", "5gc"), default="epc")
    p.add_argument("--workers", type=int, default=4)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--telemetry", default=None, metavar="PATH",
                   help="write a schema-validated JSON telemetry report "
                        "of the run to PATH")
    p.set_defaults(func=_cmd_core)

    p = sub.add_parser("sessions", help="session-level trace statistics")
    p.add_argument("--trace", required=True)
    p.set_defaults(func=_cmd_sessions)

    p = sub.add_parser("hurst", help="self-similarity estimate of a trace")
    p.add_argument("--trace", required=True)
    p.set_defaults(func=_cmd_hurst)

    p = sub.add_parser("dot", help="emit Graphviz DOT for a state machine")
    p.add_argument("--machine", choices=sorted(_MACHINES), default="two_level")
    p.set_defaults(func=_cmd_dot)

    p = sub.add_parser("telemetry", help="inspect telemetry reports")
    tsub = p.add_subparsers(dest="action", required=True)
    ps = tsub.add_parser("summarize",
                         help="render a report's per-phase breakdown")
    ps.add_argument("report", help="path to a telemetry report JSON")
    ps.set_defaults(func=_cmd_telemetry)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Parse ``argv`` (default: ``sys.argv[1:]``) and run the command."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
