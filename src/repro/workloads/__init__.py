"""Pre-canned workload scenarios for driving MCN evaluations."""

from .scenarios import (
    busy_hour_workload,
    full_day_workload,
    future_year_workload,
    inject_reattach_storm,
    storm_peak_rate,
)

__all__ = [
    "busy_hour_workload",
    "full_day_workload",
    "future_year_workload",
    "inject_reattach_storm",
    "storm_peak_rate",
]
