"""Pre-canned workload scenarios for MCN studies.

The generator's purpose is driving core-network evaluations (§3.1);
these helpers wrap the common experiment setups:

* **busy-hour / full-day workloads** — plain generation at the right
  hours;
* **signaling storms** — the paper notes control events also arise from
  "power outages of base stations": when coverage returns, every
  affected UE re-attaches nearly at once, producing the ATCH storm that
  stresses an MME/AMF far beyond steady state.  ``inject_reattach_storm``
  grafts such a storm onto any trace while keeping every UE's event
  sequence valid under the two-level machine;
* **future-year workloads** — population growth scenarios applied
  before generation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..generator.traffgen import DeviceCounts, TrafficGenerator
from ..groundtruth.forecast import project_population
from ..model.model_set import ModelSet
from ..statemachines import lte
from ..statemachines.replay import replay_ue
from ..trace.events import EventType, quantize_timestamp
from ..trace.trace import Trace


def busy_hour_workload(
    model_set: ModelSet,
    num_ues: DeviceCounts,
    *,
    hour: int = 19,
    seed: int = 0,
) -> Trace:
    """One synthesized busy hour (default: the 19:00 evening peak)."""
    return TrafficGenerator(model_set).generate(
        num_ues, start_hour=hour, num_hours=1, seed=seed
    )


def full_day_workload(
    model_set: ModelSet,
    num_ues: DeviceCounts,
    *,
    start_hour: int = 0,
    seed: int = 0,
) -> Trace:
    """A synthesized 24-hour day (diurnal structure included)."""
    return TrafficGenerator(model_set).generate(
        num_ues, start_hour=start_hour, num_hours=24, seed=seed
    )


def future_year_workload(
    model_set: ModelSet,
    base_counts: dict,
    years: int,
    *,
    scenario: str = "baseline",
    hour: int = 19,
    seed: int = 0,
) -> Trace:
    """A busy hour after ``years`` of population growth (§3.1 usage 2)."""
    projected = project_population(base_counts, years, scenario=scenario)
    return busy_hour_workload(model_set, projected, hour=hour, seed=seed)


def inject_reattach_storm(
    trace: Trace,
    *,
    at: float,
    fraction: float = 0.3,
    outage_duration: float = 120.0,
    reattach_spread: float = 30.0,
    seed: int = 0,
) -> Trace:
    """Graft a coverage-outage re-attach storm onto a trace.

    A random ``fraction`` of the trace's UEs loses coverage at time
    ``at``: each affected UE's events from ``at`` onward are dropped, a
    ``DTCH`` (network-observed detach) is recorded at ``at`` for UEs
    that were registered, and after ``outage_duration`` the UEs
    re-attach in a wave — one ``ATCH`` each, spread over
    ``reattach_spread`` seconds.  Every per-UE sequence remains valid
    under the two-level machine.

    Parameters
    ----------
    at:
        Outage time (seconds from trace start).
    fraction:
        Share of UEs affected, in (0, 1].
    outage_duration:
        Coverage gap length, seconds.
    reattach_spread:
        The re-attach wave's width, seconds — small values make the
        storm sharper.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    if at < 0 or outage_duration < 0 or reattach_spread < 0:
        raise ValueError("times must be non-negative")
    if len(trace) == 0:
        raise ValueError("cannot inject a storm into an empty trace")

    rng = np.random.default_rng(seed)
    ues = trace.unique_ues()
    num_affected = max(1, int(round(fraction * len(ues))))
    affected = set(
        int(u) for u in rng.choice(ues, size=num_affected, replace=False)
    )
    device_of = trace.device_of()

    ue_col, time_col, event_col, device_col = [], [], [], []

    def _append(ue: int, t: float, event: EventType) -> None:
        ue_col.append(ue)
        time_col.append(quantize_timestamp(t))
        event_col.append(int(event))
        device_col.append(int(device_of[ue]))

    for ue, sub in trace.per_ue():
        if ue not in affected:
            ue_col.extend(sub.ue_ids.tolist())
            time_col.extend(sub.times.tolist())
            event_col.extend(sub.event_types.tolist())
            device_col.extend(sub.device_types.tolist())
            continue
        cut = int(np.searchsorted(sub.times, at, side="left"))
        kept_events = sub.event_types[:cut]
        kept_times = sub.times[:cut]
        ue_col.extend([ue] * cut)
        time_col.extend(kept_times.tolist())
        event_col.extend(kept_events.tolist())
        device_col.extend(sub.device_types[:cut].tolist())

        # Was the UE registered when coverage dropped?
        result = replay_ue(kept_events, kept_times)
        state = result.final_state
        registered = state is not None and state != lte.DEREGISTERED
        if cut == 0:
            # No events before the outage: assume registered-idle (the
            # overwhelmingly common steady state).
            registered = True
        if registered:
            _append(ue, at, EventType.DTCH)
        reattach_at = at + outage_duration + float(
            rng.uniform(0.0, max(reattach_spread, 1e-3))
        )
        _append(ue, reattach_at, EventType.ATCH)

    return Trace(
        np.asarray(ue_col, dtype=np.int64),
        np.asarray(time_col, dtype=np.float64),
        np.asarray(event_col, dtype=np.int8),
        np.asarray(device_col, dtype=np.int8),
        validate=False,
    )


def storm_peak_rate(
    trace: Trace, *, bin_seconds: float = 1.0, event: Optional[EventType] = None
) -> float:
    """Peak events-per-second of a trace (for storm magnitude checks)."""
    from ..validation.aggregate import rate_curve

    curve = rate_curve(trace, bin_seconds=bin_seconds, event_type=event)
    if curve.size == 0:
        return 0.0
    return float(curve.max()) / bin_seconds
