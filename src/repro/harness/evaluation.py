"""The §8 evaluation pipeline as a reusable harness.

``evaluate_methods`` packages the paper's validation end to end: fit
the requested methods on a training trace, synthesize a validation hour
for a given population, and compute the macroscopic (Tables 4/11) and
microscopic (Table 5) fidelity metrics against a held-out real trace.
The benchmark suite and the CLI both build on it; downstream users can
run the identical evaluation on their own traces.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Mapping, Optional, Sequence

from ..baselines import fit_method
from ..generator import TrafficGenerator
from ..model.model_set import ModelSet
from ..statemachines import lte
from ..trace.events import DeviceType, EventType
from ..trace.trace import Trace
from ..validation.breakdown import (
    BREAKDOWN_ROWS,
    breakdown_difference,
    breakdown_with_states,
    max_abs_breakdown_difference,
)
from ..validation.microscopic import count_ydistance, sojourn_ydistance
from ..validation.report import format_table

DEFAULT_METHODS = ("base", "v1", "v2", "ours")

#: Microscopic quantities of Table 5.
MICRO_QUANTITIES = ("SRV_REQ", "S1_CONN_REL", "CONNECTED", "IDLE")


@dataclasses.dataclass
class MethodResult:
    """Everything measured for one method."""

    method: str
    model: ModelSet
    synthesized: Trace
    macro_diff: Dict[DeviceType, Dict[str, float]]
    macro_max_error: Dict[DeviceType, float]
    micro: Dict[DeviceType, Dict[str, float]]


@dataclasses.dataclass
class EvaluationReport:
    """The full §8 comparison across methods."""

    real: Trace
    num_ues: int
    generation_hour: int
    results: Dict[str, MethodResult]

    def winner(self, device_type: DeviceType) -> str:
        """Method with the smallest macroscopic error for a device."""
        return min(
            self.results,
            key=lambda m: self.results[m].macro_max_error.get(
                device_type, float("inf")
            ),
        )

    def to_text(self) -> str:
        """Render the macro and micro tables for every device type."""
        methods = list(self.results)
        blocks: List[str] = []
        for device_type in DeviceType:
            if len(self.real.filter_device(device_type)) == 0:
                continue
            real_bd = breakdown_with_states(self.real, device_type)
            rows = []
            for row_key in BREAKDOWN_ROWS:
                rows.append(
                    [row_key, f"{100 * real_bd[row_key]:.1f}%"]
                    + [
                        f"{100 * self.results[m].macro_diff[device_type][row_key]:+.1f}%"
                        for m in methods
                    ]
                )
            blocks.append(
                format_table(
                    ["Event", "Real"] + [m.capitalize() for m in methods],
                    rows,
                    title=f"Macroscopic breakdown - {device_type.name}",
                )
            )
            micro_rows = []
            for quantity in MICRO_QUANTITIES:
                micro_rows.append(
                    [quantity]
                    + [
                        _fmt_pct(self.results[m].micro[device_type].get(quantity))
                        for m in methods
                    ]
                )
            blocks.append(
                format_table(
                    ["Quantity"] + [m.capitalize() for m in methods],
                    micro_rows,
                    title=f"Microscopic max y-distance - {device_type.name}",
                )
            )
        return "\n\n".join(blocks)


def _fmt_pct(value: Optional[float]) -> str:
    return "-" if value is None else f"{100 * value:.1f}%"


def evaluate_methods(
    train: Trace,
    real: Trace,
    *,
    num_ues: Optional[int] = None,
    methods: Sequence[str] = DEFAULT_METHODS,
    theta_f: float = 5.0,
    theta_n: int = 1000,
    trace_start_hour: int = 0,
    generation_hour: int = 0,
    seed: int = 0,
    models: Optional[Mapping[str, ModelSet]] = None,
) -> EvaluationReport:
    """Run the paper's method comparison.

    Parameters
    ----------
    train:
        Training trace (what the carrier would collect).
    real:
        Held-out one-hour validation trace, starting at
        ``generation_hour``.
    num_ues:
        Synthesized population size; defaults to the real trace's UE
        count (the paper's Scenario 1 setup).
    models:
        Pre-fitted model sets by method name — skips fitting for the
        methods present (useful when sweeping scenarios).
    """
    if num_ues is None:
        num_ues = real.num_ues
    results: Dict[str, MethodResult] = {}
    for method in methods:
        if models is not None and method in models:
            model = models[method]
        else:
            model = fit_method(
                method,
                train,
                theta_f=theta_f,
                theta_n=theta_n,
                trace_start_hour=trace_start_hour,
            )
        synthesized = TrafficGenerator(model).generate(
            num_ues, start_hour=generation_hour, num_hours=1, seed=seed
        )
        macro_diff: Dict[DeviceType, Dict[str, float]] = {}
        macro_max: Dict[DeviceType, float] = {}
        micro: Dict[DeviceType, Dict[str, float]] = {}
        for device_type in DeviceType:
            if len(real.filter_device(device_type)) == 0:
                continue
            macro_diff[device_type] = breakdown_difference(
                real, synthesized, device_type
            )
            macro_max[device_type] = max_abs_breakdown_difference(
                real, synthesized, device_type
            )
            metrics: Dict[str, float] = {}
            try:
                metrics["SRV_REQ"] = count_ydistance(
                    real, synthesized, device_type, EventType.SRV_REQ
                )
                metrics["S1_CONN_REL"] = count_ydistance(
                    real, synthesized, device_type, EventType.S1_CONN_REL
                )
                metrics["CONNECTED"] = sojourn_ydistance(
                    real, synthesized, device_type, lte.CONNECTED
                )
                metrics["IDLE"] = sojourn_ydistance(
                    real, synthesized, device_type, lte.IDLE
                )
            except ValueError:
                pass  # too little data for some quantity; report partial
            micro[device_type] = metrics
        results[method] = MethodResult(
            method=method,
            model=model,
            synthesized=synthesized,
            macro_diff=macro_diff,
            macro_max_error=macro_max,
            micro=micro,
        )
    return EvaluationReport(
        real=real,
        num_ues=num_ues,
        generation_hour=generation_hour,
        results=results,
    )
