"""The §8 evaluation pipeline as a reusable harness.

``evaluate_methods`` packages the paper's validation end to end: fit
the requested methods on a training trace, synthesize a validation hour
for a given population, and compute the macroscopic (Tables 4/11) and
microscopic (Table 5) fidelity metrics against a held-out real trace.
The benchmark suite and the CLI both build on it; downstream users can
run the identical evaluation on their own traces.

Two engines compute the metrics: ``"compiled"`` (default) replays whole
cohorts as flat arrays via
:mod:`repro.statemachines.compiled_replay` and drives the compiled
fitter; ``"reference"`` keeps the original per-event Python paths as
the exact-equality oracle.  Both produce identical reports.  With
``processes`` the per-(method × device) metric jobs additionally fan
out over the fault-tolerant pool of :mod:`repro.generator.parallel`,
sharing the traces with workers as memory-mapped uncompressed NPZ.

Micro-metrics are measured **per quantity**: a quantity that cannot be
computed (say, no complete IDLE sojourn in a short trace) lands in
``MethodResult.micro_skipped`` with the reason, and never discards the
quantities that *can* be computed.  Count CDFs are padded to the
nominal population on both sides (zero-event UEs are invisible in a
trace but part of the population the CDF describes), so Table-5
numbers stay unbiased when the synthesized population differs from the
real one — the paper's Scenario 2.
"""

from __future__ import annotations

import dataclasses
import os
import shutil
import tempfile
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..baselines import fit_method
from ..generator import TrafficGenerator
from ..model.model_set import ModelSet
from ..telemetry import RunTelemetry, get_telemetry, use_telemetry
from ..trace.events import DeviceType
from ..trace.trace import Trace
from ..validation.breakdown import (
    BREAKDOWN_ROWS,
    breakdown_difference,
    breakdown_with_states,
)
from ..validation.microscopic import MICRO_QUANTITIES, micro_comparison_partial
from ..validation.report import format_table

DEFAULT_METHODS = ("base", "v1", "v2", "ours")

#: Available evaluation engines (mirrors ``model.FIT_ENGINES`` and
#: ``statemachines.REPLAY_ENGINES``).
EVAL_ENGINES = ("compiled", "reference")


@dataclasses.dataclass
class MethodResult:
    """Everything measured for one method."""

    method: str
    model: ModelSet
    synthesized: Trace
    macro_diff: Dict[DeviceType, Dict[str, float]]
    macro_max_error: Dict[DeviceType, float]
    micro: Dict[DeviceType, Dict[str, float]]
    #: Micro quantities that could not be measured, with the reason —
    #: always disjoint from ``micro[device]``'s keys.
    micro_skipped: Dict[DeviceType, Dict[str, str]] = dataclasses.field(
        default_factory=dict
    )


@dataclasses.dataclass
class EvaluationReport:
    """The full §8 comparison across methods."""

    real: Trace
    num_ues: int
    generation_hour: int
    results: Dict[str, MethodResult]
    engine: str = "reference"

    def winner(self, device_type: DeviceType) -> str:
        """Method with the smallest macroscopic error for a device.

        Raises :class:`ValueError` if no method measured that device
        type at all (previously an arbitrary first method won the
        all-``inf`` tie).
        """
        measured = {
            method: result.macro_max_error[device_type]
            for method, result in self.results.items()
            if device_type in result.macro_max_error
        }
        if not measured:
            raise ValueError(
                f"no method measured device type {device_type.name}; "
                "the real trace has no such UEs"
            )
        return min(measured, key=measured.__getitem__)

    def to_text(self) -> str:
        """Render the macro and micro tables for every device type."""
        methods = list(self.results)
        blocks: List[str] = []
        for device_type in DeviceType:
            if len(self.real.filter_device(device_type)) == 0:
                continue
            real_bd = breakdown_with_states(
                self.real, device_type, engine=self.engine
            )
            rows = []
            for row_key in BREAKDOWN_ROWS:
                rows.append(
                    [row_key, f"{100 * real_bd[row_key]:.1f}%"]
                    + [
                        f"{100 * self.results[m].macro_diff[device_type][row_key]:+.1f}%"
                        for m in methods
                    ]
                )
            blocks.append(
                format_table(
                    ["Event", "Real"] + [m.capitalize() for m in methods],
                    rows,
                    title=f"Macroscopic breakdown - {device_type.name}",
                )
            )
            micro_rows = []
            for quantity in MICRO_QUANTITIES:
                micro_rows.append(
                    [quantity]
                    + [
                        _fmt_pct(self.results[m].micro[device_type].get(quantity))
                        for m in methods
                    ]
                )
            blocks.append(
                format_table(
                    ["Quantity"] + [m.capitalize() for m in methods],
                    micro_rows,
                    title=f"Microscopic max y-distance - {device_type.name}",
                )
            )
            skip_lines = [
                f"  [{m}] {quantity}: {reason}"
                for m in methods
                for quantity, reason in self.results[m]
                .micro_skipped.get(device_type, {})
                .items()
            ]
            if skip_lines:
                blocks.append(
                    f"Skipped quantities - {device_type.name}:\n"
                    + "\n".join(skip_lines)
                )
        return "\n\n".join(blocks)

    def to_dict(self) -> dict:
        """JSON-ready view of the report (no traces or model objects)."""
        return {
            "num_ues": self.num_ues,
            "generation_hour": self.generation_hour,
            "engine": self.engine,
            "methods": {
                method: {
                    "macro_diff": {
                        dt.name: dict(rows)
                        for dt, rows in result.macro_diff.items()
                    },
                    "macro_max_error": {
                        dt.name: value
                        for dt, value in result.macro_max_error.items()
                    },
                    "micro": {
                        dt.name: dict(values)
                        for dt, values in result.micro.items()
                    },
                    "micro_skipped": {
                        dt.name: dict(reasons)
                        for dt, reasons in result.micro_skipped.items()
                    },
                }
                for method, result in self.results.items()
            },
        }


def _fmt_pct(value: Optional[float]) -> str:
    return "-" if value is None else f"{100 * value:.1f}%"


class EvalJobFailedError(RuntimeError):
    """A (method, device) metric job failed deterministically after retries."""

    def __init__(
        self, method: str, device_type: DeviceType, attempts: int, reason: str
    ) -> None:
        self.method = method
        self.device_type = device_type
        self.attempts = attempts
        super().__init__(
            f"evaluation job for method {method!r}, device {device_type.name} "
            f"failed after {attempts} attempt(s): {reason}"
        )


def _device_metrics(
    real: Trace,
    synthesized: Trace,
    device_type: DeviceType,
    *,
    engine: str,
    real_num_ues: Optional[int],
    syn_num_ues: Optional[int],
) -> Tuple[Dict[str, float], float, Dict[str, float], Dict[str, str]]:
    """All metrics of one (method, device) cell of Tables 4/5."""
    macro_diff = breakdown_difference(
        real, synthesized, device_type, engine=engine
    )
    macro_max = max(abs(v) for v in macro_diff.values())
    micro, skipped = micro_comparison_partial(
        real,
        synthesized,
        device_type,
        real_num_ues=real_num_ues,
        syn_num_ues=syn_num_ues,
        engine=engine,
    )
    return macro_diff, macro_max, micro, skipped


# Worker-global state for parallel metric jobs, installed once per
# process by _init_eval_worker (same pattern as the fit workers).
_EVAL_WORKER: dict = {
    "real": None,
    "syn_paths": None,
    "engine": None,
    "real_num_ues": None,
    "syn_num_ues": None,
    "scratch": None,
    "syn": {},
}


def _init_eval_worker(payload: dict, scratch_dir: Optional[str] = None) -> None:
    from ..trace.io import read_npz

    _EVAL_WORKER["real"] = read_npz(payload["real_path"], mmap=True)
    _EVAL_WORKER["syn_paths"] = payload["syn_paths"]
    _EVAL_WORKER["engine"] = payload["engine"]
    _EVAL_WORKER["real_num_ues"] = payload["real_num_ues"]
    _EVAL_WORKER["syn_num_ues"] = payload["syn_num_ues"]
    _EVAL_WORKER["scratch"] = scratch_dir
    _EVAL_WORKER["syn"] = {}


def _eval_job(args: Tuple[int, str, int]) -> Tuple[tuple, dict]:
    """Compute one (method, device) cell inside a worker process."""
    job_idx, method, device_code = args
    tele = RunTelemetry()
    with use_telemetry(tele):
        metrics = _eval_job_metrics(job_idx, method, device_code)
    return (method, device_code, metrics), tele.child_record()


def _eval_job_metrics(job_idx: int, method: str, device_code: int):
    from ..trace.io import read_npz

    real = _EVAL_WORKER["real"]
    assert real is not None, "evaluation worker not initialized"
    if _EVAL_WORKER["scratch"] is not None:
        # Started-marker: lets the parent attribute a pool crash to the
        # jobs that were actually in flight (see run_tasks_pool).
        try:
            with open(
                os.path.join(_EVAL_WORKER["scratch"], f"started-{job_idx}"), "w"
            ):
                pass
        except OSError:
            pass
    synthesized = _EVAL_WORKER["syn"].get(method)
    if synthesized is None:
        synthesized = read_npz(_EVAL_WORKER["syn_paths"][method], mmap=True)
        _EVAL_WORKER["syn"][method] = synthesized
    return _device_metrics(
        real,
        synthesized,
        DeviceType(device_code),
        engine=_EVAL_WORKER["engine"],
        real_num_ues=_EVAL_WORKER["real_num_ues"].get(device_code),
        syn_num_ues=_EVAL_WORKER["syn_num_ues"][method].get(device_code),
    )


def _run_eval_jobs(
    real: Trace,
    synthesized: Mapping[str, Trace],
    jobs: Sequence[Tuple[str, int]],
    *,
    engine: str,
    processes: Optional[int],
    real_num_ues: Dict[int, int],
    syn_num_ues: Dict[str, Dict[int, int]],
    max_retries: int = 2,
) -> Dict[Tuple[str, int], tuple]:
    """Fan the (method, device) metric jobs across a process pool.

    The real and synthesized traces are written once each as
    *uncompressed* NPZ that every worker memory-maps, so the columns
    are shared through the page cache instead of being pickled per job.
    Failures reuse the generation pool's retry/fault-attribution loop
    (bumping ``eval_retries``); a job that keeps failing raises
    :class:`EvalJobFailedError`.
    """
    from ..generator.parallel import _Backoff, run_tasks_pool
    from ..trace.io import write_npz

    tmp = tempfile.mkdtemp(prefix="repro-eval-")
    results: Dict[int, tuple] = {}
    try:
        real_path = os.path.join(tmp, "real.npz")
        write_npz(real, real_path, compress=False)
        syn_paths = {}
        for method, trace in synthesized.items():
            syn_paths[method] = os.path.join(tmp, f"syn-{method}.npz")
            write_npz(trace, syn_paths[method], compress=False)
        payload = {
            "real_path": real_path,
            "syn_paths": syn_paths,
            "engine": engine,
            "real_num_ues": dict(real_num_ues),
            "syn_num_ues": {m: dict(v) for m, v in syn_num_ues.items()},
        }
        tasks = {
            i: (i, method, int(device_code))
            for i, (method, device_code) in enumerate(jobs)
        }

        def _failed(idx: int, attempts: int, reason: str) -> EvalJobFailedError:
            method, device_code = jobs[idx]
            return EvalJobFailedError(
                method, DeviceType(device_code), attempts, reason
            )

        run_tasks_pool(
            _eval_job,
            payload,
            _init_eval_worker,
            tasks,
            list(range(len(jobs))),
            results,
            processes=processes,
            max_retries=max_retries,
            backoff=_Backoff(0.5, 30.0),
            task_failed=_failed,
            phase="eval-metrics",
            retry_counter="eval_retries",
        )
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    out: Dict[Tuple[str, int], tuple] = {}
    for i in range(len(jobs)):
        method, device_code, metrics = results[i]
        out[(method, int(device_code))] = metrics
    return out


def evaluate_methods(
    train: Trace,
    real: Trace,
    *,
    num_ues: Optional[int] = None,
    methods: Sequence[str] = DEFAULT_METHODS,
    theta_f: float = 5.0,
    theta_n: int = 1000,
    trace_start_hour: int = 0,
    generation_hour: int = 0,
    seed: int = 0,
    models: Optional[Mapping[str, ModelSet]] = None,
    engine: str = "compiled",
    processes: Optional[int] = None,
    cache_dir: "Optional[str | os.PathLike[str]]" = None,
    telemetry: Optional[RunTelemetry] = None,
) -> EvaluationReport:
    """Run the paper's method comparison.

    Parameters
    ----------
    train:
        Training trace (what the carrier would collect).
    real:
        Held-out one-hour validation trace, starting at
        ``generation_hour``.
    num_ues:
        Synthesized population size; defaults to the real trace's UE
        count (the paper's Scenario 1 setup).  Per-device nominal
        populations are resolved by the training device mix and used to
        pad the zero-event UEs into the count CDFs.
    models:
        Pre-fitted model sets by method name — skips fitting for the
        methods present (useful when sweeping scenarios).
    engine:
        ``"compiled"`` (default) or ``"reference"``; selects both the
        fitting engine and the metric/replay engine.  Both produce
        identical reports.
    processes:
        ``None`` or ``1`` computes metrics serially in-process; ``0``
        fans per-(method × device) jobs across all CPUs; ``>= 2`` uses
        that many worker processes (fitting fans out the same way).
    cache_dir:
        Content-addressed model-cache directory passed to the fitter
        (``None`` disables caching).
    telemetry:
        Explicit collector; defaults to the ambient one.  Phases appear
        as ``eval-fit`` / ``eval-generate`` / ``eval-metrics`` spans.
    """
    if engine not in EVAL_ENGINES:
        raise ValueError(
            f"unknown evaluation engine {engine!r}; expected one of {EVAL_ENGINES}"
        )
    if processes is not None and processes < 0:
        raise ValueError(f"processes must be non-negative, got {processes}")
    if num_ues is None:
        num_ues = real.num_ues

    tele = telemetry if telemetry is not None else get_telemetry()
    with use_telemetry(tele), tele.span("evaluate"):
        report = _evaluate_methods(
            train,
            real,
            num_ues=num_ues,
            methods=methods,
            theta_f=theta_f,
            theta_n=theta_n,
            trace_start_hour=trace_start_hour,
            generation_hour=generation_hour,
            seed=seed,
            models=models,
            engine=engine,
            processes=processes,
            cache_dir=cache_dir,
        )
    tele.record_peak_rss()
    return report


def _evaluate_methods(
    train: Trace,
    real: Trace,
    *,
    num_ues: int,
    methods: Sequence[str],
    theta_f: float,
    theta_n: int,
    trace_start_hour: int,
    generation_hour: int,
    seed: int,
    models: Optional[Mapping[str, ModelSet]],
    engine: str,
    processes: Optional[int],
    cache_dir: "Optional[str | os.PathLike[str]]",
) -> EvaluationReport:
    tele = get_telemetry()
    devices = [
        device_type
        for device_type in DeviceType
        if len(real.filter_device(device_type)) > 0
    ]
    real_num_ues = {
        int(device_type): real.filter_device(device_type).num_ues
        for device_type in devices
    }

    fitted: Dict[str, ModelSet] = {}
    synthesized: Dict[str, Trace] = {}
    syn_num_ues: Dict[str, Dict[int, int]] = {}
    with tele.span("eval-fit"):
        for method in methods:
            if models is not None and method in models:
                fitted[method] = models[method]
            else:
                fitted[method] = fit_method(
                    method,
                    train,
                    theta_f=theta_f,
                    theta_n=theta_n,
                    trace_start_hour=trace_start_hour,
                    engine=engine,
                    processes=processes,
                    cache_dir=cache_dir,
                )
    with tele.span("eval-generate"):
        for method in methods:
            generator = TrafficGenerator(fitted[method])
            # The nominal per-device populations the generator will
            # materialize — the count CDFs must be padded to these, not
            # to the UEs that happened to emit events (Scenario 2).
            syn_num_ues[method] = {
                int(dt): n
                for dt, n in generator.resolve_counts(num_ues).items()
            }
            synthesized[method] = generator.generate(
                num_ues, start_hour=generation_hour, num_hours=1, seed=seed
            )
    tele.count("eval_methods", len(methods))

    jobs = [(method, int(device_type)) for method in methods for device_type in devices]
    tele.count("eval_metric_jobs", len(jobs))
    with tele.span("eval-metrics"):
        if processes is not None and processes != 1:
            metrics = _run_eval_jobs(
                real,
                synthesized,
                jobs,
                engine=engine,
                processes=processes if processes else None,
                real_num_ues=real_num_ues,
                syn_num_ues=syn_num_ues,
            )
        else:
            metrics = {}
            for done, (method, device_code) in enumerate(jobs, start=1):
                metrics[(method, device_code)] = _device_metrics(
                    real,
                    synthesized[method],
                    DeviceType(device_code),
                    engine=engine,
                    real_num_ues=real_num_ues.get(device_code),
                    syn_num_ues=syn_num_ues[method].get(device_code),
                )
                tele.progress("eval-metrics", done, len(jobs))

    results: Dict[str, MethodResult] = {}
    for method in methods:
        macro_diff: Dict[DeviceType, Dict[str, float]] = {}
        macro_max: Dict[DeviceType, float] = {}
        micro: Dict[DeviceType, Dict[str, float]] = {}
        micro_skipped: Dict[DeviceType, Dict[str, str]] = {}
        for device_type in devices:
            diff, max_err, values, skipped = metrics[(method, int(device_type))]
            macro_diff[device_type] = diff
            macro_max[device_type] = max_err
            micro[device_type] = values
            if skipped:
                micro_skipped[device_type] = skipped
        results[method] = MethodResult(
            method=method,
            model=fitted[method],
            synthesized=synthesized[method],
            macro_diff=macro_diff,
            macro_max_error=macro_max,
            micro=micro,
            micro_skipped=micro_skipped,
        )
    return EvaluationReport(
        real=real,
        num_ues=num_ues,
        generation_hour=generation_hour,
        results=results,
        engine=engine,
    )
