"""The paper's evaluation pipeline as a reusable harness (§8)."""

from .evaluation import (
    DEFAULT_METHODS,
    MICRO_QUANTITIES,
    EvaluationReport,
    MethodResult,
    evaluate_methods,
)

__all__ = [
    "DEFAULT_METHODS",
    "EvaluationReport",
    "MICRO_QUANTITIES",
    "MethodResult",
    "evaluate_methods",
]
