"""The paper's evaluation pipeline as a reusable harness (§8)."""

from .evaluation import (
    DEFAULT_METHODS,
    EVAL_ENGINES,
    MICRO_QUANTITIES,
    EvalJobFailedError,
    EvaluationReport,
    MethodResult,
    evaluate_methods,
)

__all__ = [
    "DEFAULT_METHODS",
    "EVAL_ENGINES",
    "EvalJobFailedError",
    "EvaluationReport",
    "MICRO_QUANTITIES",
    "MethodResult",
    "evaluate_methods",
]
