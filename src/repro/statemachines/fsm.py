"""Generic labelled-transition state machines.

The paper's models are state machines whose edges are labelled with
control-plane event types.  A single (state, event) pair always leads
to a single next state (the machines in Figs. 1, 5 and 6 are all
event-deterministic), so a machine is a mapping
``(state, event) -> state`` plus an initial state.

States are plain strings; concrete machines define their vocabulary in
:mod:`repro.statemachines.lte` and :mod:`repro.statemachines.nr`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from ..trace.events import EventType


class InvalidTransitionError(ValueError):
    """Raised when an event is not allowed in the current state."""

    def __init__(self, state: str, event: EventType) -> None:
        super().__init__(f"event {event.name} is not valid in state {state!r}")
        self.state = state
        self.event = event


@dataclasses.dataclass(frozen=True)
class Transition:
    """One labelled edge of a state machine."""

    source: str
    event: EventType
    target: str


class StateMachine:
    """An event-deterministic finite state machine.

    Parameters
    ----------
    name:
        Human-readable identifier (used in error messages and reports).
    transitions:
        The edge set.  At most one edge may leave a state per event.
    initial_state:
        State a fresh UE starts in.
    """

    def __init__(
        self,
        name: str,
        transitions: Iterable[Transition],
        initial_state: str,
    ) -> None:
        self.name = name
        self.initial_state = initial_state
        self._table: Dict[Tuple[str, EventType], str] = {}
        states = {initial_state}
        for tr in transitions:
            key = (tr.source, tr.event)
            if key in self._table and self._table[key] != tr.target:
                raise ValueError(
                    f"{name}: conflicting transitions from {tr.source!r} "
                    f"on {tr.event.name}"
                )
            self._table[key] = tr.target
            states.add(tr.source)
            states.add(tr.target)
        self.states: FrozenSet[str] = frozenset(states)
        if initial_state not in self.states:
            raise ValueError(f"{name}: initial state {initial_state!r} unknown")

    # ------------------------------------------------------------------
    def transitions(self) -> List[Transition]:
        """All edges, in a stable order."""
        return [
            Transition(src, ev, dst)
            for (src, ev), dst in sorted(
                self._table.items(), key=lambda kv: (kv[0][0], int(kv[0][1]))
            )
        ]

    def events_from(self, state: str) -> List[EventType]:
        """Event labels on edges leaving ``state``, in a stable order."""
        return sorted(
            (ev for (src, ev) in self._table if src == state), key=int
        )

    def successors(self, state: str) -> List[Tuple[EventType, str]]:
        """``(event, next_state)`` pairs leaving ``state``."""
        return [
            (ev, self._table[(state, ev)]) for ev in self.events_from(state)
        ]

    def can_fire(self, state: str, event: EventType) -> bool:
        """Whether ``event`` is allowed in ``state``."""
        return (state, event) in self._table

    def next_state(self, state: str, event: EventType) -> str:
        """The state reached by firing ``event`` in ``state``.

        Raises :class:`InvalidTransitionError` for disallowed events.
        """
        try:
            return self._table[(state, event)]
        except KeyError:
            raise InvalidTransitionError(state, event) from None

    def walk(
        self, events: Iterable[EventType], start: Optional[str] = None
    ) -> List[str]:
        """States visited by an event sequence, including the start state."""
        state = self.initial_state if start is None else start
        path = [state]
        for event in events:
            state = self.next_state(state, event)
            path.append(state)
        return path

    def accepts(
        self, events: Iterable[EventType], start: Optional[str] = None
    ) -> bool:
        """Whether the event sequence is valid from ``start``."""
        try:
            self.walk(events, start)
        except InvalidTransitionError:
            return False
        return True

    def reachable_states(self, start: Optional[str] = None) -> FrozenSet[str]:
        """States reachable from ``start`` (default: the initial state)."""
        frontier = [self.initial_state if start is None else start]
        seen = set(frontier)
        while frontier:
            state = frontier.pop()
            for _, nxt in self.successors(state):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return frozenset(seen)

    def __repr__(self) -> str:
        return (
            f"StateMachine({self.name!r}, {len(self.states)} states, "
            f"{len(self._table)} transitions)"
        )


class HierarchicalStateMachine(StateMachine):
    """A flattened two-level state machine.

    The paper's Fig. 5 machine is hierarchical: top-level EMM-ECM
    states, two of which (``CONNECTED`` and ``IDLE``) contain sub-state
    machines.  Operationally the hierarchy flattens into an ordinary
    machine over the *leaf* states; this subclass additionally records
    the projection from each leaf to its top-level parent so replays and
    generators can reason about the top level (e.g. "HO may only happen
    while the top level is CONNECTED").
    """

    def __init__(
        self,
        name: str,
        transitions: Iterable[Transition],
        initial_state: str,
        parent_of: Mapping[str, str],
    ) -> None:
        super().__init__(name, transitions, initial_state)
        missing = self.states - set(parent_of)
        if missing:
            raise ValueError(f"{name}: states without a parent: {sorted(missing)}")
        self._parent_of = dict(parent_of)
        self.top_states: FrozenSet[str] = frozenset(self._parent_of.values())

    def parent(self, state: str) -> str:
        """Top-level state containing ``state`` (may be ``state`` itself)."""
        return self._parent_of[state]

    def leaves_of(self, top_state: str) -> FrozenSet[str]:
        """Leaf states projected onto ``top_state``."""
        return frozenset(
            s for s, parent in self._parent_of.items() if parent == top_state
        )

    def is_top_level_change(self, source: str, target: str) -> bool:
        """Whether an edge crosses top-level states."""
        return self.parent(source) != self.parent(target)
