"""Compiled trace replay: array-at-a-time state reconstruction.

The reference :func:`repro.statemachines.replay.replay_trace` walks
every UE's events one Python object at a time, which makes the §8
evaluation harness the slowest remaining stage at the ROADMAP's
"millions of users" scale.  This module lowers each state machine to
small integer lookup tables once (:class:`MachineTable`, shared with
:mod:`repro.model.compiled_fit`, which historically owned them) and
replays a whole trace as flat arrays:

* rows are sorted by ``(ue, time)`` with one stable argsort (traces are
  already time-sorted);
* the state trajectory of every UE falls out of a segmented
  Hillis–Steele function-composition scan (:func:`_replay_codes`) in
  ``O(log n)`` vectorized passes;
* the §8 evaluation quantities — sojourn samples per (state, event),
  transition counts, complete top-level state intervals, and the
  Category-2 (``HO``/``TAU``) state classification — are extracted with
  ``bincount`` / ``searchsorted`` group-bys instead of per-record dict
  appends.

Every extraction is **exactly** equal to the reference replay's —
same keys, same counts, same sample values in the same order — because
the ``(ue, time)`` sort reproduces the reference's iteration order and
every group-by uses a stable argsort.  The reference path is kept as
the oracle; equality is pinned per machine × device in the tests.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..trace.events import EventType
from ..trace.trace import Trace
from . import lte
from .replay import (
    ReplayResult,
    TransitionRecord,
    _canonical_source_for,
)

_NUM_EVENTS = int(max(EventType)) + 1


# ---------------------------------------------------------------------------
# Machine lowering
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class MachineTable:
    """A state machine lowered to integer lookup tables.

    State codes index ``names`` (sorted state names, so code order ==
    the reference fitter's name-sorted source order).  ``-1`` marks
    invalid entries throughout.
    """

    machine_name: str
    names: Tuple[str, ...]
    next_state: np.ndarray     #: (S, E) target code, -1 if cannot fire
    canon: np.ndarray          #: (E,) canonical forced source, -1 if none
    fallback_next: np.ndarray  #: (E,) target code after forcing
    total: np.ndarray          #: (E, S) forced-apply function table
    const_target: np.ndarray   #: (E,) target if source-independent, else -1
    parent_names: Tuple[str, ...]
    parent_code: np.ndarray    #: (S,) top-level state code per state
    connected_code: int        #: parent code of CONNECTED (-1 if absent)
    idle_code: int             #: parent code of IDLE (-1 if absent)

    @property
    def num_states(self) -> int:
        return len(self.names)

    @property
    def num_events(self) -> int:
        return _NUM_EVENTS


def lower_machine(machine) -> MachineTable:
    """Lower ``machine`` to the integer tables the compiled replay uses."""
    names = tuple(sorted(machine.states))
    code = {name: i for i, name in enumerate(names)}
    num_states = len(names)
    next_state = np.full((num_states, _NUM_EVENTS), -1, dtype=np.int16)
    for s_i, state in enumerate(names):
        for event in EventType:
            if machine.can_fire(state, event):
                next_state[s_i, int(event)] = code[machine.next_state(state, event)]
    canon = np.full(_NUM_EVENTS, -1, dtype=np.int16)
    for event in EventType:
        try:
            canon[int(event)] = code[_canonical_source_for(machine, event)]
        except ValueError:
            pass  # event has no source state in this machine
    fallback_next = np.where(
        canon >= 0,
        next_state[np.maximum(canon, 0), np.arange(_NUM_EVENTS)],
        np.int16(-1),
    ).astype(np.int16)
    # total[e, s]: the state reached by firing e from s, forcing to the
    # canonical source when the transition is invalid — the *total*
    # function the lenient replay applies per event.
    total = np.where(
        next_state.T >= 0, next_state.T, fallback_next[:, None]
    ).astype(np.int16)
    # Events whose total row is constant (same target from every source)
    # are reset points: the state after one is known without looking
    # left, so the replay scan never has to compose across them.  In
    # the paper's machines most events are like this — all of them for
    # emm_ecm and nr_sa, everything but S1_CONN_REL/TAU for two_level.
    const_target = np.where(
        (canon >= 0) & (total == total[:, :1]).all(axis=1),
        total[:, 0],
        np.int16(-1),
    ).astype(np.int16)

    parent_fn = getattr(machine, "parent", lambda state: state)
    parent_names = tuple(sorted({parent_fn(state) for state in names}))
    parent_of = {name: i for i, name in enumerate(parent_names)}
    parent_code = np.asarray(
        [parent_of[parent_fn(state)] for state in names], dtype=np.int16
    )
    return MachineTable(
        machine_name=machine.name,
        names=names,
        next_state=next_state,
        canon=canon,
        fallback_next=fallback_next,
        total=total,
        const_target=const_target,
        parent_names=parent_names,
        parent_code=parent_code,
        connected_code=parent_of.get(lte.CONNECTED, -1),
        idle_code=parent_of.get(lte.IDLE, -1),
    )


#: Lowered tables cached by machine name (machine builders are pure, so
#: two machines with the same name are structurally identical).
_TABLE_CACHE: Dict[str, MachineTable] = {}


def table_for(machine) -> MachineTable:
    """Cached :func:`lower_machine` keyed on ``machine.name``."""
    table = _TABLE_CACHE.get(machine.name)
    if table is None:
        table = lower_machine(machine)
        _TABLE_CACHE[machine.name] = table
    return table


# ---------------------------------------------------------------------------
# Vectorized replay core
# ---------------------------------------------------------------------------

def _replay_codes(
    events: np.ndarray, first: np.ndarray, table: MachineTable
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Replay a segmented event stream; returns (source, target, forced).

    ``events`` is an int array of event codes, ``first`` flags the first
    event of each segment (each segment replays like an independent
    ``replay_ue`` call with unknown initial state).

    The state trajectory is reconstructed with a segmented
    Hillis–Steele scan over *function* rows: row ``i`` is the total
    state map of event ``i`` (constant for segment-first events, whose
    source is forced to the canonical state), and composing rows within
    a segment yields, in ``O(log n)`` passes, the constant map "state
    after event ``i``".
    """
    n = len(events)
    empty = np.empty(0, dtype=np.int16)
    if n == 0:
        return empty, empty, np.empty(0, dtype=bool)
    bad = table.canon[events] < 0
    if bad.any():
        event = EventType(int(events[int(np.argmax(bad))]))
        raise ValueError(
            f"event {event.name} has no source state in {table.machine_name}"
        )

    rows_f = table.total[events].copy()  # (n, S)
    rows_f[first] = table.fallback_next[events[first]][:, None]
    # Scan barriers: segment firsts AND constant-row events.  A constant
    # row already *is* the map "state after this event", so composition
    # only has to run inside the (short) runs of source-dependent events
    # between barriers — for emm_ecm and nr_sa every event is constant
    # and the loop below exits after one empty pass.
    reset = first | (table.const_target[events] >= 0)
    idx = np.arange(n)
    start_of = np.maximum.accumulate(np.where(reset, idx, -1))
    stride = 1
    while True:
        rows = np.flatnonzero(idx >= stride)
        rows = rows[(rows - stride) >= start_of[rows]]
        if rows.size == 0:
            break
        # Compose: new[i](s) = F_i(F_{i-stride}(s)).  Both gathers read
        # pre-update values before the assignment writes back.
        rows_f[rows] = np.take_along_axis(
            rows_f[rows], rows_f[rows - stride].astype(np.intp), axis=1
        )
        stride *= 2
    state_after = rows_f[:, 0]

    prev = np.empty(n, dtype=np.int64)
    prev[0] = 0
    prev[1:] = state_after[:-1]
    prev_safe = np.where(first, 0, prev)
    forced = first | (table.next_state[prev_safe, events] < 0)
    source = np.where(forced, table.canon[events], prev_safe).astype(np.int16)
    return source, state_after.astype(np.int16), forced


@dataclasses.dataclass
class VectorizedReplay:
    """Array-valued result of :func:`vectorized_replay` for one UE."""

    sources: np.ndarray    #: (n,) source state codes
    targets: np.ndarray    #: (n,) target state codes
    events: np.ndarray     #: (n,) event codes
    times: np.ndarray      #: (n,) fire times
    forced: np.ndarray     #: (n,) bool, True where the decoder forced
    state_names: Tuple[str, ...]
    violations: int
    final_state: Optional[str]

    def records(self) -> List[TransitionRecord]:
        """Decode to the reference :class:`TransitionRecord` stream."""
        out: List[TransitionRecord] = []
        names = self.state_names
        for i in range(len(self.events)):
            forced = bool(self.forced[i])
            out.append(
                TransitionRecord(
                    source=names[int(self.sources[i])],
                    event=EventType(int(self.events[i])),
                    target=names[int(self.targets[i])],
                    enter_time=None if forced else float(self.times[i - 1]),
                    fire_time=float(self.times[i]),
                    forced=forced,
                )
            )
        return out


def vectorized_replay(
    event_types: Sequence[int],
    times: Sequence[float],
    machine=None,
) -> VectorizedReplay:
    """Array-at-a-time equivalent of :func:`repro.statemachines.replay.replay_ue`.

    Produces the identical transition stream (source, event, target,
    enter/fire times, forced flags) for one UE's chronological event
    sequence, with unknown initial state.
    """
    if machine is None:
        machine = lte.two_level_machine()
    events = np.asarray(event_types, dtype=np.int64).ravel()
    fire_times = np.asarray(times, dtype=np.float64).ravel()
    if len(events) != len(fire_times):
        raise ValueError("event_types and times must have equal length")
    table = lower_machine(machine)
    first = np.zeros(len(events), dtype=bool)
    if len(events):
        first[0] = True
    sources, targets, forced = _replay_codes(events, first, table)
    violations = int(np.count_nonzero(forced & ~first))
    final_state = table.names[int(targets[-1])] if len(events) else None
    return VectorizedReplay(
        sources=sources,
        targets=targets,
        events=events,
        times=fire_times,
        forced=forced,
        state_names=table.names,
        violations=violations,
        final_state=final_state,
    )


# ---------------------------------------------------------------------------
# Whole-trace replay
# ---------------------------------------------------------------------------

def _group_arrays(
    keys: np.ndarray, values: np.ndarray
) -> Tuple[np.ndarray, List[np.ndarray]]:
    """Group ``values`` by integer ``keys``, preserving in-group order."""
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    sorted_vals = values[order]
    present, starts = np.unique(sorted_keys, return_index=True)
    bounds = np.append(starts, len(sorted_keys))
    groups = [sorted_vals[bounds[i]: bounds[i + 1]] for i in range(len(present))]
    return present, groups


@dataclasses.dataclass
class TraceReplay:
    """Every UE of one trace replayed, kept as flat arrays.

    Rows are in ``(ue, time)`` order — the exact order the reference
    :func:`repro.statemachines.replay.replay_trace` visits records in —
    segmented by ``first`` flags at UE boundaries.  All derived
    quantities are exactly equal to the reference's (same keys, same
    values, same in-group sample order).
    """

    ues: np.ndarray        #: sorted distinct UE ids
    ue_code: np.ndarray    #: (n,) per-row index into ``ues``
    events: np.ndarray     #: (n,) event codes
    times: np.ndarray      #: (n,) fire times (absolute)
    sources: np.ndarray    #: (n,) source state codes
    targets: np.ndarray    #: (n,) target state codes
    forced: np.ndarray     #: (n,) bool
    first: np.ndarray      #: (n,) bool, True at each UE's first row
    table: MachineTable

    def __len__(self) -> int:
        return len(self.events)

    @property
    def num_ues(self) -> int:
        return len(self.ues)

    # -- reference decoding -------------------------------------------
    def to_results(self) -> Dict[int, ReplayResult]:
        """Decode to the reference ``{ue: ReplayResult}`` mapping.

        This is the oracle bridge: the output compares equal to
        ``replay_trace(trace, machine, engine="reference")``.
        """
        out: Dict[int, ReplayResult] = {}
        names = self.table.names
        starts = np.flatnonzero(self.first)
        bounds = np.append(starts, len(self.events))
        for seg in range(len(starts)):
            lo, hi = int(bounds[seg]), int(bounds[seg + 1])
            records: List[TransitionRecord] = []
            violations = 0
            for i in range(lo, hi):
                forced = bool(self.forced[i])
                if forced and i > lo:
                    violations += 1
                records.append(
                    TransitionRecord(
                        source=names[int(self.sources[i])],
                        event=EventType(int(self.events[i])),
                        target=names[int(self.targets[i])],
                        enter_time=None if forced else float(self.times[i - 1]),
                        fire_time=float(self.times[i]),
                        forced=forced,
                    )
                )
            out[int(self.ues[seg])] = ReplayResult(
                records=records,
                violations=violations,
                final_state=names[int(self.targets[hi - 1])],
            )
        return out

    # -- derived quantities (flat-array group-bys) --------------------
    def sojourn_samples(
        self, *, include_forced: bool = False
    ) -> Dict[Tuple[str, EventType], np.ndarray]:
        """Sojourns grouped by (source, event); == reference ``sojourn_samples``.

        Forced records never carry an enter time, so they are excluded
        regardless of ``include_forced`` — exactly like the reference,
        where a forced record's ``sojourn`` is ``None``.
        """
        del include_forced  # forced records have no enter time either way
        valid = np.flatnonzero(~self.forced)
        durations = self.times[valid] - self.times[valid - 1]
        keys = (
            self.sources[valid].astype(np.int64) * self.table.num_events
            + self.events[valid]
        )
        present, groups = _group_arrays(keys, durations)
        names = self.table.names
        return {
            (
                names[int(key) // self.table.num_events],
                EventType(int(key) % self.table.num_events),
            ): group
            for key, group in zip(present, groups)
        }

    def transition_counts(self) -> Dict[Tuple[str, EventType, str], int]:
        """(source, event, target) counts; == reference ``transition_counts``."""
        num_states = self.table.num_states
        num_events = self.table.num_events
        keys = (
            self.sources.astype(np.int64) * num_events + self.events
        ) * num_states + self.targets
        counts = np.bincount(keys, minlength=num_states * num_events * num_states)
        names = self.table.names
        out: Dict[Tuple[str, EventType, str], int] = {}
        for key in np.flatnonzero(counts):
            tgt = int(key) % num_states
            src_ev = int(key) // num_states
            out[
                (
                    names[src_ev // num_events],
                    EventType(src_ev % num_events),
                    names[tgt],
                )
            ] = int(counts[key])
        return out

    def _interval_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Complete top-level intervals as (ue_code, state_parent, duration).

        Consecutive parent-boundary records within one UE open and close
        an interval whose state is the opening boundary's target parent
        (the ``current`` the reference tracks).  A UE's leading interval
        starts at an unknown time and its trailing one never ends, so
        neither is complete — pairing consecutive boundaries drops both.
        """
        src_par = self.table.parent_code[self.sources]
        tgt_par = self.table.parent_code[self.targets]
        bpos = np.flatnonzero(src_par != tgt_par)
        if bpos.size < 2:
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int16),
                np.empty(0, dtype=np.float64),
            )
        same_ue = self.ue_code[bpos[1:]] == self.ue_code[bpos[:-1]]
        open_b = bpos[:-1][same_ue]
        close_b = bpos[1:][same_ue]
        return (
            self.ue_code[open_b],
            tgt_par[open_b],
            self.times[close_b] - self.times[open_b],
        )

    def top_state_sojourns(self) -> Dict[str, np.ndarray]:
        """Complete top-level sojourns by state; == reference ``top_state_sojourns``."""
        _, states, durations = self._interval_arrays()
        present, groups = _group_arrays(states.astype(np.int64), durations)
        names = self.table.parent_names
        return {names[int(code)]: group for code, group in zip(present, groups)}


def replay_trace_compiled(trace: Trace, machine=None) -> TraceReplay:
    """Replay every UE of ``trace`` as flat arrays (see :class:`TraceReplay`)."""
    if machine is None:
        machine = lte.two_level_machine()
    table = table_for(machine)
    # Trace rows are already time-sorted, so one stable UE sort yields
    # the (ue, time) order the reference replay visits records in.
    order = np.argsort(trace.ue_ids, kind="stable")
    ue = trace.ue_ids[order]
    times = trace.times[order]
    events = trace.event_types[order].astype(np.int64)
    first = np.empty(len(ue), dtype=bool)
    if len(ue):
        first[0] = True
        first[1:] = ue[1:] != ue[:-1]
    sources, targets, forced = _replay_codes(events, first, table)
    ues = ue[first] if len(ue) else np.empty(0, dtype=np.int64)
    ue_code = np.cumsum(first) - 1 if len(ue) else np.empty(0, dtype=np.int64)
    return TraceReplay(
        ues=ues,
        ue_code=ue_code,
        events=events,
        times=times,
        sources=sources,
        targets=targets,
        forced=forced,
        first=first,
        table=table,
    )


# ---------------------------------------------------------------------------
# Category-2 classification (Tables 4 & 11)
# ---------------------------------------------------------------------------

#: Top-level state codes used by the classification arrays.
_CONN, _IDLE, _DEREG = 0, 1, 2

#: State after a Category-1 event (the lenient tracker of the reference).
_FORCE_TO = np.full(_NUM_EVENTS, -1, dtype=np.int64)
_FORCE_TO[int(EventType.ATCH)] = _CONN
_FORCE_TO[int(EventType.DTCH)] = _DEREG
_FORCE_TO[int(EventType.SRV_REQ)] = _CONN
_FORCE_TO[int(EventType.S1_CONN_REL)] = _IDLE

#: Initial top-level state back-inferred from a UE's first Category-1
#: event (mirrors ``replay._infer_initial_top_state``).
_INIT_FROM = np.full(_NUM_EVENTS, -1, dtype=np.int64)
_INIT_FROM[int(EventType.ATCH)] = _DEREG
_INIT_FROM[int(EventType.SRV_REQ)] = _IDLE
_INIT_FROM[int(EventType.S1_CONN_REL)] = _CONN
_INIT_FROM[int(EventType.DTCH)] = _CONN


def classify_category2_arrays(trace: Trace) -> Dict[Tuple[EventType, str], int]:
    """Vectorized twin of the reference ``classify_category2_events``.

    Tracks each UE's top-level state from Category-1 events only (a
    forward fill over per-UE segments) and bin-counts the ``HO``/``TAU``
    rows by that state, with ``DEREGISTERED`` counted as ``IDLE``.
    """
    counts: Dict[Tuple[EventType, str], int] = {
        (EventType.HO, lte.CONNECTED): 0,
        (EventType.HO, lte.IDLE): 0,
        (EventType.TAU, lte.CONNECTED): 0,
        (EventType.TAU, lte.IDLE): 0,
    }
    n = len(trace)
    if n == 0:
        return counts
    order = np.argsort(trace.ue_ids, kind="stable")
    ue = trace.ue_ids[order]
    events = trace.event_types[order].astype(np.int64)
    first = np.empty(n, dtype=bool)
    first[0] = True
    first[1:] = ue[1:] != ue[:-1]
    ue_code = np.cumsum(first) - 1
    num_ues = int(ue_code[-1]) + 1
    idx = np.arange(n)

    # Per-UE initial state: decided by the first Category-1 event, else
    # CONNECTED when any HO is present, else IDLE.
    setter = _FORCE_TO[events]  # -1 for HO/TAU rows
    cat1_pos = np.flatnonzero(setter >= 0)
    first_cat1 = np.full(num_ues, -1, dtype=np.int64)
    first_cat1[ue_code[cat1_pos][::-1]] = cat1_pos[::-1]
    has_ho = np.zeros(num_ues, dtype=bool)
    has_ho[ue_code[events == int(EventType.HO)]] = True
    init = np.where(has_ho, _CONN, _IDLE)
    seen = first_cat1 >= 0
    init[seen] = _INIT_FROM[events[np.maximum(first_cat1, 0)]][seen]

    # State at each row = value of the last Category-1 setter strictly
    # before it within the same UE, else that UE's initial state.
    start_of = np.maximum.accumulate(np.where(first, idx, -1))
    last_setter = np.maximum.accumulate(np.where(setter >= 0, idx, -1))
    prev_setter = np.empty(n, dtype=np.int64)
    prev_setter[0] = -1
    prev_setter[1:] = last_setter[:-1]
    in_segment = prev_setter >= start_of
    state = np.where(
        in_segment, setter[np.maximum(prev_setter, 0)], init[ue_code]
    )
    state = np.where(state == _DEREG, _IDLE, state)

    for event in (EventType.HO, EventType.TAU):
        rows = events == int(event)
        counts[(event, lte.CONNECTED)] = int(
            np.count_nonzero(rows & (state == _CONN))
        )
        counts[(event, lte.IDLE)] = int(
            np.count_nonzero(rows & (state == _IDLE))
        )
    return counts
