"""Graphviz DOT export of state machines.

Regenerates the paper's machine diagrams — Fig. 1 (EMM/ECM), Fig. 5
(the two-level LTE machine), and Fig. 6 (the 5G SA machine) — as DOT
sources.  Hierarchical machines render their top-level states as
clusters, matching the paper's drawing.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .fsm import HierarchicalStateMachine, StateMachine


def _quote(name: str) -> str:
    return f'"{name}"'


def machine_to_dot(
    machine: StateMachine,
    *,
    rankdir: str = "TB",
    event_names: Optional[Dict[int, str]] = None,
) -> str:
    """Render a machine as Graphviz DOT.

    Parameters
    ----------
    event_names:
        Optional relabelling of edge events by integer code (e.g. the
        5G names of Table 2); defaults to the LTE enum names.
    """
    lines: List[str] = [
        f'digraph "{machine.name}" {{',
        f"  rankdir={rankdir};",
        "  node [shape=ellipse, fontsize=11];",
        "  edge [fontsize=10];",
    ]

    if isinstance(machine, HierarchicalStateMachine):
        # Draw each top-level state with >1 leaf as a cluster box.
        for cluster_index, top in enumerate(sorted(machine.top_states)):
            leaves = sorted(machine.leaves_of(top))
            if leaves == [top]:
                lines.append(f"  {_quote(top)} [shape=box];")
                continue
            lines.append(f"  subgraph cluster_{cluster_index} {{")
            lines.append(f'    label="{top}";')
            for leaf in leaves:
                lines.append(f"    {_quote(leaf)};")
            lines.append("  }")
    else:
        for state in sorted(machine.states):
            lines.append(f"  {_quote(state)};")

    start = machine.initial_state
    lines.append('  __start [shape=point, label=""];')
    lines.append(f"  __start -> {_quote(start)};")

    for tr in machine.transitions():
        if event_names is not None:
            label = event_names.get(int(tr.event), tr.event.name)
        else:
            label = tr.event.name
        lines.append(
            f"  {_quote(tr.source)} -> {_quote(tr.target)} "
            f'[label="{label}"];'
        )
    lines.append("}")
    return "\n".join(lines)
