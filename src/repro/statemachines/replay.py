"""Replaying traces through state machines.

The modeling pipeline never observes UE states directly — only events.
Replay reconstructs the state trajectory of each UE by walking its
event sequence through a state machine, which yields:

* **sojourn samples** per (source state, triggering event) — the raw
  material for the Semi-Markov sojourn CDFs;
* **transition counts** — the raw material for ``p_xy``;
* **top-level state intervals** — used to compute CONNECTED/IDLE
  sojourn distributions and to classify ``HO``/``TAU`` events by the
  top-level state they occurred in (the ``HO (CONN.)`` / ``HO (IDLE)``
  rows of Tables 4 and 11).

Replays are *lenient*: a trace that violates the machine (e.g. a
baseline-synthesized trace firing ``HO`` in IDLE) does not abort the
replay.  Instead the decoder forces the state to a canonical source for
the offending event, counts a violation, and marks the produced record
as ``forced`` so fitting can exclude it.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..trace.events import EventType
from ..trace.trace import Trace
from . import lte
from .fsm import HierarchicalStateMachine


@dataclasses.dataclass(frozen=True)
class TransitionRecord:
    """One observed transition of a replayed UE."""

    source: str
    event: EventType
    target: str
    enter_time: Optional[float]  #: when ``source`` was entered (None if unknown)
    fire_time: float             #: when ``event`` fired
    forced: bool                 #: True if the decoder had to correct the state

    @property
    def sojourn(self) -> Optional[float]:
        """Time spent in ``source``, if the enter time is known."""
        if self.enter_time is None:
            return None
        return self.fire_time - self.enter_time


@dataclasses.dataclass(frozen=True)
class StateInterval:
    """A maximal interval a UE spent in one top-level state."""

    state: str
    start: Optional[float]  #: None when the interval began before the trace
    end: Optional[float]    #: None when the interval outlives the trace

    @property
    def complete(self) -> bool:
        """Whether both endpoints were observed."""
        return self.start is not None and self.end is not None

    @property
    def duration(self) -> Optional[float]:
        return (self.end - self.start) if self.complete else None


@dataclasses.dataclass
class ReplayResult:
    """Everything extracted from replaying one UE's event sequence."""

    records: List[TransitionRecord]
    violations: int
    final_state: Optional[str]


# Canonical source state to force when an event is invalid in the
# current (or unknown) state of the two-level machine.
_CANONICAL_SOURCE = {
    EventType.ATCH: lte.DEREGISTERED,
    EventType.DTCH: lte.S1_REL_S_1,
    EventType.SRV_REQ: lte.S1_REL_S_1,
    EventType.S1_CONN_REL: lte.SRV_REQ_S,
    EventType.HO: lte.SRV_REQ_S,
    EventType.TAU: lte.S1_REL_S_1,
}


def replay_ue(
    event_types: Sequence[int],
    times: Sequence[float],
    machine: Optional[HierarchicalStateMachine] = None,
    *,
    initial_state: Optional[str] = None,
) -> ReplayResult:
    """Replay one UE's chronological event sequence through ``machine``.

    Parameters
    ----------
    event_types, times:
        Parallel sequences (chronological).  ``event_types`` may be raw
        integers or :class:`EventType` members.
    machine:
        Defaults to the LTE two-level machine.
    initial_state:
        State of the UE at the start of the sequence.  ``None`` means
        unknown: the first record carries ``enter_time=None`` and its
        source is inferred from the first event.
    """
    if machine is None:
        machine = lte.two_level_machine()
    if len(event_types) != len(times):
        raise ValueError("event_types and times must have equal length")

    records: List[TransitionRecord] = []
    violations = 0
    state = initial_state
    entered_at: Optional[float] = None
    if initial_state is not None:
        entered_at = None  # entering time of a supplied state is unknown

    for raw_event, t in zip(event_types, times):
        event = EventType(int(raw_event))
        forced = False
        if state is None or not machine.can_fire(state, event):
            if state is not None:
                violations += 1
            forced = True
            state = _canonical_source_for(machine, event)
            entered_at = None
        target = machine.next_state(state, event)
        records.append(
            TransitionRecord(
                source=state,
                event=event,
                target=target,
                enter_time=entered_at,
                fire_time=float(t),
                forced=forced,
            )
        )
        state = target
        entered_at = float(t)

    return ReplayResult(records=records, violations=violations, final_state=state)


def _canonical_source_for(
    machine: HierarchicalStateMachine, event: EventType
) -> str:
    """A state from which ``event`` is guaranteed valid in ``machine``."""
    candidate = _CANONICAL_SOURCE.get(event)
    if candidate is not None and candidate in machine.states:
        if machine.can_fire(candidate, event):
            return candidate
    # Fall back to any state with an outgoing edge for this event.
    for state in sorted(machine.states):
        if machine.can_fire(state, event):
            return state
    raise ValueError(f"event {event.name} has no source state in {machine.name}")


#: Available whole-trace replay engines.
REPLAY_ENGINES = ("reference", "compiled")


def replay_trace(
    trace: Trace,
    machine: Optional[HierarchicalStateMachine] = None,
    *,
    engine: str = "reference",
):
    """Replay every UE of ``trace`` independently.

    ``engine="reference"`` walks each UE event by event and returns the
    ``{ue: ReplayResult}`` mapping; ``engine="compiled"`` lowers the
    machine to integer tables and replays the whole trace as flat
    arrays, returning an equivalent
    :class:`repro.statemachines.compiled_replay.TraceReplay` (its
    ``to_results()`` decodes to exactly the reference mapping).  The
    derived functions in this module accept either shape.
    """
    if engine not in REPLAY_ENGINES:
        raise ValueError(
            f"unknown replay engine {engine!r}; expected one of {REPLAY_ENGINES}"
        )
    if engine == "compiled":
        from .compiled_replay import replay_trace_compiled

        return replay_trace_compiled(trace, machine)
    if machine is None:
        machine = lte.two_level_machine()
    return {
        ue: replay_ue(sub.event_types, sub.times, machine)
        for ue, sub in trace.per_ue()
    }


# ---------------------------------------------------------------------------
# Derived quantities
# ---------------------------------------------------------------------------

def sojourn_samples(
    results,
    *,
    include_forced: bool = False,
) -> Dict[Tuple[str, EventType], np.ndarray]:
    """Group sojourn durations by (source state, triggering event).

    Records whose enter time is unknown, or that the decoder had to
    force (unless ``include_forced``), are skipped.  Accepts either the
    reference ``{ue: ReplayResult}`` mapping or a compiled
    ``TraceReplay``.
    """
    if not isinstance(results, dict):
        return results.sojourn_samples(include_forced=include_forced)
    grouped: Dict[Tuple[str, EventType], List[float]] = {}
    for result in results.values():
        for rec in result.records:
            if rec.sojourn is None:
                continue
            if rec.forced and not include_forced:
                continue
            grouped.setdefault((rec.source, rec.event), []).append(rec.sojourn)
    return {
        key: np.asarray(values, dtype=np.float64)
        for key, values in grouped.items()
    }


def transition_counts(
    results,
) -> Dict[Tuple[str, EventType, str], int]:
    """Count observed (source, event, target) transitions across UEs.

    Accepts either the reference ``{ue: ReplayResult}`` mapping or a
    compiled ``TraceReplay``.
    """
    if not isinstance(results, dict):
        return results.transition_counts()
    counts: Dict[Tuple[str, EventType, str], int] = {}
    for result in results.values():
        for rec in result.records:
            key = (rec.source, rec.event, rec.target)
            counts[key] = counts.get(key, 0) + 1
    return counts


def top_level_intervals(
    records: Sequence[TransitionRecord],
    machine=None,
    *,
    end_time: Optional[float] = None,
) -> List[StateInterval]:
    """Project a replayed record stream onto top-level state intervals.

    For hierarchical machines states project onto their parents; for
    flat machines (e.g. EMM-ECM) every state is its own top level.  The
    first interval's start is unknown (``None``); the last interval's
    end is ``end_time`` (or ``None`` if not supplied).
    """
    if machine is None:
        machine = lte.two_level_machine()
    parent = getattr(machine, "parent", lambda state: state)
    intervals: List[StateInterval] = []
    current: Optional[str] = None
    current_start: Optional[float] = None
    for rec in records:
        src_top = parent(rec.source)
        dst_top = parent(rec.target)
        if current is None:
            current = src_top
            current_start = rec.enter_time
        if src_top != dst_top:
            intervals.append(
                StateInterval(state=current, start=current_start, end=rec.fire_time)
            )
            current = dst_top
            current_start = rec.fire_time
    if current is not None:
        intervals.append(StateInterval(state=current, start=current_start, end=end_time))
    return intervals


def top_state_sojourns(
    results,
    machine: Optional[HierarchicalStateMachine] = None,
) -> Dict[str, np.ndarray]:
    """Durations of complete top-level state visits, grouped by state.

    This yields the CONNECTED / IDLE / DEREGISTERED sojourn samples the
    paper fits and compares (Figs. 3-4, Table 5).  Accepts either the
    reference ``{ue: ReplayResult}`` mapping or a compiled
    ``TraceReplay`` (which already carries its machine's tables).
    """
    if not isinstance(results, dict):
        return results.top_state_sojourns()
    if machine is None:
        machine = lte.two_level_machine()
    grouped: Dict[str, List[float]] = {}
    for result in results.values():
        for interval in top_level_intervals(result.records, machine):
            if interval.complete:
                grouped.setdefault(interval.state, []).append(interval.duration)
    return {
        state: np.asarray(values, dtype=np.float64)
        for state, values in grouped.items()
    }


def classify_category2_events(
    trace: Trace,
    *,
    engine: str = "compiled",
) -> Dict[Tuple[EventType, str], int]:
    """Count ``HO``/``TAU`` events by the top-level state they occur in.

    This backs the ``HO (CONN.)`` / ``HO (IDLE)`` / ``TAU (CONN.)`` /
    ``TAU (IDLE)`` rows of Tables 4 and 11.  The top-level state is
    tracked leniently from Category-1 events only, so traces violating
    the two-level machine (e.g. Base-synthesized traces with ``HO`` in
    IDLE) are classified faithfully rather than corrected.

    Both engines return identical counts; ``"compiled"`` replaces the
    per-event Python loop with a vectorized per-UE forward fill and the
    ``"reference"`` loop is kept as the oracle.
    """
    if engine not in REPLAY_ENGINES:
        raise ValueError(
            f"unknown replay engine {engine!r}; expected one of {REPLAY_ENGINES}"
        )
    if engine == "compiled":
        from .compiled_replay import classify_category2_arrays

        return classify_category2_arrays(trace)
    counts: Dict[Tuple[EventType, str], int] = {
        (EventType.HO, lte.CONNECTED): 0,
        (EventType.HO, lte.IDLE): 0,
        (EventType.TAU, lte.CONNECTED): 0,
        (EventType.TAU, lte.IDLE): 0,
    }
    force_to = {
        EventType.ATCH: lte.CONNECTED,
        EventType.DTCH: lte.DEREGISTERED,
        EventType.SRV_REQ: lte.CONNECTED,
        EventType.S1_CONN_REL: lte.IDLE,
    }
    for _, sub in trace.per_ue():
        state = _infer_initial_top_state(sub.event_types)
        for raw in sub.event_types:
            event = EventType(int(raw))
            if event in force_to:
                state = force_to[event]
            else:
                key = (event, state if state != lte.DEREGISTERED else lte.IDLE)
                if key in counts:
                    counts[key] += 1
    return counts


def _infer_initial_top_state(event_types: Sequence[int]) -> str:
    """Back-infer a UE's top-level state before its first Category-1 event."""
    for raw in event_types:
        event = EventType(int(raw))
        if event == EventType.ATCH:
            return lte.DEREGISTERED
        if event == EventType.SRV_REQ:
            return lte.IDLE
        if event in (EventType.S1_CONN_REL, EventType.DTCH):
            return lte.CONNECTED
    # Only HO/TAU events: HO implies CONNECTED; an all-TAU UE could be in
    # either state, and CONNECTED is the conservative choice for HO counting.
    for raw in event_types:
        if EventType(int(raw)) == EventType.HO:
            return lte.CONNECTED
    return lte.IDLE
