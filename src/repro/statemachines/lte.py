"""Concrete LTE state machines from the paper.

Three machines are defined:

* :func:`emm_machine` / :func:`ecm_machine` — the two independent 3GPP
  machines of Fig. 1.
* :func:`emm_ecm_machine` — their merge (top level of Fig. 5; also the
  machine used by the ``Base`` and ``V1`` baselines).  The merge relies
  on the observation that a UE leaving ``DEREGISTERED`` always enters
  ``CONNECTED``.
* :func:`two_level_machine` — the paper's contribution (Fig. 5): the
  merged machine refined with six sub-states that capture where ``HO``
  and ``TAU`` may occur and what must follow them.
"""

from __future__ import annotations

from ..trace.events import EventType
from .fsm import HierarchicalStateMachine, StateMachine, Transition

# ---------------------------------------------------------------------------
# State names
# ---------------------------------------------------------------------------

# EMM states (Fig. 1a).
EMM_DEREGISTERED = "EMM_DEREGISTERED"
EMM_REGISTERED = "EMM_REGISTERED"

# ECM states (Fig. 1b).
ECM_CONNECTED = "ECM_CONNECTED"
ECM_IDLE = "ECM_IDLE"

# Top-level states of the merged machine.
DEREGISTERED = "DEREGISTERED"
CONNECTED = "CONNECTED"
IDLE = "IDLE"
TOP_LEVEL_STATES = (DEREGISTERED, CONNECTED, IDLE)

# Sub-states of the two-level machine (Fig. 5).  The name of a sub-state
# is the event that was fired to enter it.
SRV_REQ_S = "SRV_REQ_S"
HO_S = "HO_S"
TAU_S_CONN = "TAU_S_CONN"
S1_REL_S_1 = "S1_REL_S_1"
S1_REL_S_2 = "S1_REL_S_2"
TAU_S_IDLE = "TAU_S_IDLE"

CONNECTED_SUBSTATES = (SRV_REQ_S, HO_S, TAU_S_CONN)
IDLE_SUBSTATES = (S1_REL_S_1, S1_REL_S_2, TAU_S_IDLE)
TWO_LEVEL_STATES = (DEREGISTERED,) + CONNECTED_SUBSTATES + IDLE_SUBSTATES

#: Projection of every leaf of the two-level machine onto its top-level state.
PARENT_OF = {
    DEREGISTERED: DEREGISTERED,
    SRV_REQ_S: CONNECTED,
    HO_S: CONNECTED,
    TAU_S_CONN: CONNECTED,
    S1_REL_S_1: IDLE,
    S1_REL_S_2: IDLE,
    TAU_S_IDLE: IDLE,
}

#: The nine second-level transitions evaluated in Table 10, written as
#: (source sub-state, triggering event).
SECOND_LEVEL_TRANSITIONS = (
    (SRV_REQ_S, EventType.HO),
    (HO_S, EventType.HO),
    (TAU_S_CONN, EventType.HO),
    (SRV_REQ_S, EventType.TAU),
    (TAU_S_CONN, EventType.TAU),
    (HO_S, EventType.TAU),
    (S1_REL_S_1, EventType.TAU),
    (S1_REL_S_2, EventType.TAU),
    (TAU_S_IDLE, EventType.S1_CONN_REL),
)


def emm_machine() -> StateMachine:
    """The EPS Mobility Management machine (Fig. 1a)."""
    return StateMachine(
        "EMM",
        [
            Transition(EMM_DEREGISTERED, EventType.ATCH, EMM_REGISTERED),
            Transition(EMM_REGISTERED, EventType.DTCH, EMM_DEREGISTERED),
        ],
        initial_state=EMM_DEREGISTERED,
    )


def ecm_machine() -> StateMachine:
    """The EPS Connection Management machine (Fig. 1b)."""
    return StateMachine(
        "ECM",
        [
            Transition(ECM_IDLE, EventType.SRV_REQ, ECM_CONNECTED),
            Transition(ECM_CONNECTED, EventType.S1_CONN_REL, ECM_IDLE),
        ],
        initial_state=ECM_IDLE,
    )


def emm_ecm_machine() -> StateMachine:
    """The merged EMM-ECM machine (top level of Fig. 5).

    Used directly by the ``Base`` and ``V1`` baselines, which overlay
    ``HO``/``TAU`` as independent processes instead of modeling their
    state dependence.
    """
    return StateMachine(
        "EMM-ECM",
        [
            Transition(DEREGISTERED, EventType.ATCH, CONNECTED),
            Transition(CONNECTED, EventType.DTCH, DEREGISTERED),
            Transition(IDLE, EventType.DTCH, DEREGISTERED),
            Transition(IDLE, EventType.SRV_REQ, CONNECTED),
            Transition(CONNECTED, EventType.S1_CONN_REL, IDLE),
        ],
        initial_state=DEREGISTERED,
    )


def two_level_machine() -> HierarchicalStateMachine:
    """The paper's two-level hierarchical machine (Fig. 5), flattened.

    Encoded constraints:

    * ``ATCH`` enters ``CONNECTED`` directly (at ``SRV_REQ_S``).
    * ``SRV_REQ`` may only fire from ``S1_REL_S_1`` / ``S1_REL_S_2``
      (the starred edge): after a ``TAU`` in IDLE the next event must be
      the ``S1_CONN_REL`` that releases the TAU's signaling resources.
    * ``S1_CONN_REL`` may fire from any CONNECTED sub-state (entering
      ``S1_REL_S_1``) and from ``TAU_S_IDLE`` (entering ``S1_REL_S_2``).
    * ``HO`` only exists inside CONNECTED; ``TAU`` exists in both top
      states but lands in per-top-state sub-states.
    * ``DTCH`` (power-off) may fire from any registered sub-state.
    """
    transitions = [
        Transition(DEREGISTERED, EventType.ATCH, SRV_REQ_S),
        # Power-off from anywhere while registered.
        *[
            Transition(state, EventType.DTCH, DEREGISTERED)
            for state in CONNECTED_SUBSTATES + IDLE_SUBSTATES
        ],
        # Connection management.
        Transition(S1_REL_S_1, EventType.SRV_REQ, SRV_REQ_S),
        Transition(S1_REL_S_2, EventType.SRV_REQ, SRV_REQ_S),
        *[
            Transition(state, EventType.S1_CONN_REL, S1_REL_S_1)
            for state in CONNECTED_SUBSTATES
        ],
        Transition(TAU_S_IDLE, EventType.S1_CONN_REL, S1_REL_S_2),
        # Handover (CONNECTED only).
        Transition(SRV_REQ_S, EventType.HO, HO_S),
        Transition(HO_S, EventType.HO, HO_S),
        Transition(TAU_S_CONN, EventType.HO, HO_S),
        # Tracking-area updates.
        Transition(SRV_REQ_S, EventType.TAU, TAU_S_CONN),
        Transition(HO_S, EventType.TAU, TAU_S_CONN),
        Transition(TAU_S_CONN, EventType.TAU, TAU_S_CONN),
        Transition(S1_REL_S_1, EventType.TAU, TAU_S_IDLE),
        Transition(S1_REL_S_2, EventType.TAU, TAU_S_IDLE),
    ]
    return HierarchicalStateMachine(
        "LTE-two-level",
        transitions,
        initial_state=DEREGISTERED,
        parent_of=PARENT_OF,
    )
