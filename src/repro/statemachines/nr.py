"""The adjusted two-level state machine for 5G SA (Fig. 6).

5G NSA runs on LTE's MCN, so it reuses the LTE two-level machine of
Fig. 5.  5G SA has no ``TAU`` event; the paper derives its machine by
removing the TAU states and edges from Fig. 5, which collapses IDLE to
a single sub-state.

Event labels reuse :class:`repro.trace.events.EventType` members — the
integer encodings line up one-to-one with the 5G names of Table 2
(``ATCH`` ↔ ``REGISTER``, ``S1_CONN_REL`` ↔ ``AN_REL``, ...), which lets
the same generator machinery drive both generations; use
:mod:`repro.fiveg.mapping` to render 5G protocol names.
"""

from __future__ import annotations

from ..trace.events import EventType
from .fsm import HierarchicalStateMachine, Transition

RM_DEREGISTERED = "RM_DEREGISTERED"
CM_CONNECTED = "CM_CONNECTED"
CM_IDLE = "CM_IDLE"

# CONNECTED sub-states retained from the LTE machine.
SRV_REQ_S = "SRV_REQ_S"
HO_S = "HO_S"

NR_CONNECTED_SUBSTATES = (SRV_REQ_S, HO_S)
NR_STATES = (RM_DEREGISTERED, SRV_REQ_S, HO_S, CM_IDLE)

PARENT_OF_NR = {
    RM_DEREGISTERED: RM_DEREGISTERED,
    SRV_REQ_S: CM_CONNECTED,
    HO_S: CM_CONNECTED,
    CM_IDLE: CM_IDLE,
}


def nr_sa_machine() -> HierarchicalStateMachine:
    """The two-level machine for 5G SA (Fig. 6), flattened.

    Relative to :func:`repro.statemachines.lte.two_level_machine` the
    TAU states/edges are removed; IDLE therefore has a single sub-state.
    """
    transitions = [
        Transition(RM_DEREGISTERED, EventType.ATCH, SRV_REQ_S),  # REGISTER
        *[
            Transition(state, EventType.DTCH, RM_DEREGISTERED)   # DEREGISTER
            for state in NR_CONNECTED_SUBSTATES + (CM_IDLE,)
        ],
        Transition(CM_IDLE, EventType.SRV_REQ, SRV_REQ_S),
        *[
            Transition(state, EventType.S1_CONN_REL, CM_IDLE)    # AN_REL
            for state in NR_CONNECTED_SUBSTATES
        ],
        Transition(SRV_REQ_S, EventType.HO, HO_S),
        Transition(HO_S, EventType.HO, HO_S),
    ]
    return HierarchicalStateMachine(
        "NR-SA-two-level",
        transitions,
        initial_state=RM_DEREGISTERED,
        parent_of=PARENT_OF_NR,
    )
