"""Empirical CDFs and CDF distances.

The paper's headline microscopic metric is the **maximum y-distance**
between two CDFs — the largest vertical gap between them, i.e. the
two-sample Kolmogorov–Smirnov statistic when both CDFs are empirical.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..distributions.base import ArrayLike, Distribution


def ecdf(samples: ArrayLike) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of ``samples`` as ``(sorted values, P(X <= value))``."""
    arr = np.sort(np.asarray(samples, dtype=np.float64).ravel())
    if arr.size == 0:
        raise ValueError("cannot build an ECDF from zero samples")
    probs = np.arange(1, arr.size + 1, dtype=np.float64) / arr.size
    return arr, probs


def evaluate_ecdf(samples: ArrayLike, x: ArrayLike) -> np.ndarray:
    """Evaluate the right-continuous ECDF of ``samples`` at points ``x``."""
    arr = np.sort(np.asarray(samples, dtype=np.float64).ravel())
    if arr.size == 0:
        raise ValueError("cannot evaluate an ECDF from zero samples")
    x = np.asarray(x, dtype=np.float64)
    return np.searchsorted(arr, x, side="right") / arr.size


def max_y_distance(samples_a: ArrayLike, samples_b: ArrayLike) -> float:
    """Maximum vertical distance between two empirical CDFs.

    Equals the two-sample K–S statistic.  Both step functions are
    evaluated on the union of their jump points, checking the supremum
    on either side of each jump.
    """
    a = np.sort(np.asarray(samples_a, dtype=np.float64).ravel())
    b = np.sort(np.asarray(samples_b, dtype=np.float64).ravel())
    if a.size == 0 or b.size == 0:
        raise ValueError("max_y_distance needs non-empty sample sets")
    grid = np.union1d(a, b)
    fa = np.searchsorted(a, grid, side="right") / a.size
    fb = np.searchsorted(b, grid, side="right") / b.size
    return float(np.max(np.abs(fa - fb)))


def ks_distance_to(distribution: Distribution, samples: ArrayLike) -> float:
    """One-sample K–S statistic of ``samples`` against a model CDF.

    ``D = sup_x |F_n(x) - F(x)|`` computed exactly at the sample points
    (the supremum of the difference against a continuous CDF is attained
    at a jump of the ECDF, approaching from either side).
    """
    arr = np.sort(np.asarray(samples, dtype=np.float64).ravel())
    if arr.size == 0:
        raise ValueError("ks_distance_to needs non-empty samples")
    n = arr.size
    model = distribution.cdf(arr)
    upper = np.arange(1, n + 1) / n - model
    lower = model - np.arange(0, n) / n
    return float(max(upper.max(), lower.max()))
