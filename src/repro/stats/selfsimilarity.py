"""Self-similarity estimation for event arrival processes.

The variance-time analysis of §4.2 is the classic self-similarity
diagnostic (Leland et al.): for an exactly second-order self-similar
process with Hurst parameter ``H``, the normalized variance of
``M``-aggregated rates decays like ``M^(2H - 2)`` — slope ``-1`` on a
log-log plot for Poisson (``H = 0.5``), shallower for long-range-
dependent traffic (``H > 0.5``).  This module estimates ``H`` from the
variance-time curve and, independently, by rescaled-range (R/S)
analysis, giving the library a quantitative burstiness summary to
complement Fig. 3's visual one.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

import numpy as np

from .variance_time import BIN_WIDTH, DEFAULT_SCALES, variance_time_curve


@dataclasses.dataclass(frozen=True)
class HurstEstimate:
    """A Hurst-parameter estimate with its regression diagnostics."""

    hurst: float
    slope: float
    r_squared: float
    num_points: int

    @property
    def is_long_range_dependent(self) -> bool:
        """H > 0.5 indicates long-range dependence (bursty traffic)."""
        return self.hurst > 0.5


def _fit_line(x: np.ndarray, y: np.ndarray) -> tuple:
    slope, intercept = np.polyfit(x, y, 1)
    predicted = slope * x + intercept
    ss_res = float(np.sum((y - predicted) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return slope, r_squared


def hurst_variance_time(
    event_times: Sequence[float],
    *,
    duration: Optional[float] = None,
    scales: Sequence[float] = DEFAULT_SCALES,
    bin_width: float = BIN_WIDTH,
) -> HurstEstimate:
    """Estimate H from the variance-time slope: ``H = 1 + slope / 2``."""
    curve = variance_time_curve(
        event_times, duration=duration, scales=scales, bin_width=bin_width
    )
    if curve.scales.size < 3:
        raise ValueError(
            f"need >= 3 usable scales, got {curve.scales.size}; "
            "extend the observation span or lower the scales"
        )
    log_m = np.log10(curve.scales)
    log_v = curve.log10()
    slope, r_squared = _fit_line(log_m, log_v)
    hurst = 1.0 + slope / 2.0
    return HurstEstimate(
        hurst=float(np.clip(hurst, 0.0, 1.0)),
        slope=float(slope),
        r_squared=float(r_squared),
        num_points=int(curve.scales.size),
    )


def hurst_rescaled_range(
    event_times: Sequence[float],
    *,
    duration: Optional[float] = None,
    bin_seconds: float = 1.0,
    min_window: int = 8,
) -> HurstEstimate:
    """Estimate H by rescaled-range (R/S) analysis of the rate series.

    The event stream is binned into a rate series; for a ladder of
    window sizes ``n`` the mean R/S statistic scales like ``n^H``.
    """
    times = np.asarray(event_times, dtype=np.float64)
    if times.size == 0:
        raise ValueError("hurst_rescaled_range needs events")
    if duration is None:
        duration = float(times.max()) + bin_seconds
    num_bins = max(int(np.ceil(duration / bin_seconds)), min_window * 2)
    idx = np.minimum((times / bin_seconds).astype(np.int64), num_bins - 1)
    series = np.bincount(idx, minlength=num_bins).astype(np.float64)

    sizes = []
    n = min_window
    while n <= num_bins // 2:
        sizes.append(n)
        n *= 2
    if len(sizes) < 3:
        raise ValueError(
            "series too short for R/S analysis; extend the observation span"
        )

    log_n, log_rs = [], []
    for n in sizes:
        num_windows = num_bins // n
        rs_values = []
        for w in range(num_windows):
            window = series[w * n: (w + 1) * n]
            dev = window - window.mean()
            z = np.cumsum(dev)
            r = float(z.max() - z.min())
            s = float(window.std())
            if s > 0 and r > 0:
                rs_values.append(r / s)
        if rs_values:
            log_n.append(np.log10(n))
            log_rs.append(np.log10(np.mean(rs_values)))
    if len(log_n) < 3:
        raise ValueError("too few usable R/S window sizes")
    slope, r_squared = _fit_line(np.asarray(log_n), np.asarray(log_rs))
    return HurstEstimate(
        hurst=float(np.clip(slope, 0.0, 1.0)),
        slope=float(slope),
        r_squared=float(r_squared),
        num_points=len(log_n),
    )
