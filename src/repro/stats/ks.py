"""One-sample Kolmogorov–Smirnov goodness-of-fit test.

Implements the test the paper applies to every (UE-cluster, hour,
device-type, event/state) combination: compare the sample ECDF against
a fitted reference distribution and reject when the p-value falls below
the 5% significance level.

The p-value uses the classic asymptotic Kolmogorov distribution with
the Stephens small-sample correction
``d_eff = D * (sqrt(n) + 0.12 + 0.11 / sqrt(n))``, accurate for n >= 5
(and conservative below).
"""

from __future__ import annotations

import dataclasses
import math

from ..distributions.base import ArrayLike, Distribution
from .ecdf import ks_distance_to

#: Significance level the paper uses throughout.
DEFAULT_SIGNIFICANCE = 0.05

_KOLMOGOROV_TERMS = 101


def kolmogorov_sf(x: float) -> float:
    """Survival function of the Kolmogorov distribution.

    ``Q(x) = 2 * sum_{k>=1} (-1)^(k-1) exp(-2 k^2 x^2)``.
    """
    if x <= 0:
        return 1.0
    total = 0.0
    for k in range(1, _KOLMOGOROV_TERMS):
        term = math.exp(-2.0 * k * k * x * x)
        if term < 1e-18:
            break
        total += (-1.0) ** (k - 1) * term
    return min(1.0, max(0.0, 2.0 * total))


@dataclasses.dataclass(frozen=True)
class KSResult:
    """Outcome of a one-sample K–S test."""

    statistic: float
    p_value: float
    n: int

    def passes(self, significance: float = DEFAULT_SIGNIFICANCE) -> bool:
        """True when the null ("samples drawn from the model") is retained."""
        return self.p_value > significance


def ks_test(distribution: Distribution, samples: ArrayLike) -> KSResult:
    """Test whether ``samples`` are drawn from ``distribution``."""
    import numpy as np

    arr = np.asarray(samples, dtype=np.float64).ravel()
    n = arr.size
    if n == 0:
        raise ValueError("ks_test needs non-empty samples")
    d = ks_distance_to(distribution, arr)
    sqrt_n = math.sqrt(n)
    d_eff = d * (sqrt_n + 0.12 + 0.11 / sqrt_n)
    return KSResult(statistic=d, p_value=kolmogorov_sf(d_eff), n=n)


def fit_and_ks_test(family_cls, samples: ArrayLike) -> KSResult:
    """Fit ``family_cls`` to ``samples`` by MLE, then K–S test the fit.

    Mirrors the paper's procedure (fit with MLE, test the fitted
    distribution).  Note the p-value is computed as if the reference
    were fully specified, which is *lenient* toward the null — families
    that still fail under this leniency fail decisively.
    """
    fitted = family_cls.fit(samples)
    return ks_test(fitted, samples)
