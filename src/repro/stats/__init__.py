"""Statistical machinery: goodness-of-fit tests, ECDF distances, burstiness."""

from .anderson import (
    CRITICAL_VALUES,
    SIGNIFICANCE_LEVELS,
    AndersonResult,
    anderson_exponential,
)
from .ecdf import ecdf, evaluate_ecdf, ks_distance_to, max_y_distance
from .ks import DEFAULT_SIGNIFICANCE, KSResult, fit_and_ks_test, kolmogorov_sf, ks_test
from .selfsimilarity import HurstEstimate, hurst_rescaled_range, hurst_variance_time
from .variance_time import (
    BIN_WIDTH,
    DEFAULT_SCALES,
    VarianceTimeCurve,
    burstiness_gap,
    poisson_reference_curve,
    variance_time_curve,
)

__all__ = [
    "AndersonResult",
    "BIN_WIDTH",
    "CRITICAL_VALUES",
    "HurstEstimate",
    "hurst_rescaled_range",
    "hurst_variance_time",
    "DEFAULT_SCALES",
    "DEFAULT_SIGNIFICANCE",
    "KSResult",
    "SIGNIFICANCE_LEVELS",
    "VarianceTimeCurve",
    "anderson_exponential",
    "burstiness_gap",
    "ecdf",
    "evaluate_ecdf",
    "fit_and_ks_test",
    "kolmogorov_sf",
    "ks_distance_to",
    "ks_test",
    "max_y_distance",
    "poisson_reference_curve",
    "variance_time_curve",
]
