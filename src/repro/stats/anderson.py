"""Anderson–Darling goodness-of-fit test for exponentiality.

The A² statistic weights the tails of the ECDF-model discrepancy more
heavily than K–S, which is why the paper applies it alongside K–S to
the Poisson (exponential inter-arrival) hypothesis.  Critical values
are Stephens (1974) for the exponential family with the scale estimated
from the data, applied to the corrected statistic
``A²* = A² * (1 + 0.6/n)``.

This implementation is self-contained: both the statistic and the
critical-value table are computed here, so it is unaffected by SciPy's
``scipy.stats.anderson`` critical-value method migration (the
``method=`` parameter added in SciPy 1.17).  SciPy reports the
*uncorrected* A² for ``dist="expon"``; multiply by ``1 + 0.6/n`` to
compare against :attr:`AndersonResult.statistic`.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

import numpy as np

from ..distributions.base import ArrayLike
from ..distributions.exponential import Exponential

#: Significance levels and matching critical values (Stephens 1974,
#: exponential case, scale estimated by MLE).
SIGNIFICANCE_LEVELS: Tuple[float, ...] = (0.15, 0.10, 0.05, 0.025, 0.01)
CRITICAL_VALUES: Tuple[float, ...] = (0.922, 1.078, 1.341, 1.606, 1.957)


@dataclasses.dataclass(frozen=True)
class AndersonResult:
    """Outcome of an Anderson–Darling exponentiality test."""

    statistic: float               #: corrected A²* statistic
    critical_values: Tuple[float, ...]
    significance_levels: Tuple[float, ...]
    n: int

    def passes(self, significance: float = 0.05) -> bool:
        """Retain the null at ``significance`` (must be a tabulated level)."""
        try:
            idx = self.significance_levels.index(significance)
        except ValueError:
            raise ValueError(
                f"significance {significance} not tabulated; "
                f"available: {self.significance_levels}"
            ) from None
        return self.statistic < self.critical_values[idx]


def anderson_exponential(samples: ArrayLike) -> AndersonResult:
    """Test whether ``samples`` are exponential (scale fit by MLE)."""
    arr = np.sort(np.asarray(samples, dtype=np.float64).ravel())
    n = arr.size
    if n < 2:
        raise ValueError("anderson_exponential needs at least 2 samples")
    fitted = Exponential.fit(arr)
    z = fitted.cdf(arr)
    # Clip to avoid log(0) when a sample sits exactly at the support edge.
    eps = 1e-12
    z = np.clip(z, eps, 1.0 - eps)
    i = np.arange(1, n + 1, dtype=np.float64)
    a_sq = -n - np.sum((2.0 * i - 1.0) * (np.log(z) + np.log1p(-z[::-1]))) / n
    corrected = a_sq * (1.0 + 0.6 / n)
    return AndersonResult(
        statistic=float(corrected),
        critical_values=CRITICAL_VALUES,
        significance_levels=SIGNIFICANCE_LEVELS,
        n=n,
    )
