"""Variance–time analysis of event arrival burstiness.

Reproduces the methodology of §4.2 / Figure 3: bin the timeline at
100 ms; for each time scale ``M`` partition the timeline into
``M``-second windows; within each window compute the average per-100ms
event count; report the variance of that per-window average across
windows, normalized by the squared mean.  For a Poisson process the
normalized variance decays like ``1/M``; bursty, long-range-dependent
traffic decays more slowly, so its curve sits above the fitted-Poisson
curve at large ``M`` — exactly the gap the paper measures (0.18-2.00 in
log10 units at scales of 10-10³ s).
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

import numpy as np

#: Bin width of the underlying event-count series (paper: 100 ms).
BIN_WIDTH = 0.1

#: Default time scales: 1 s to 1000 s, log-spaced.
DEFAULT_SCALES: Sequence[float] = tuple(float(m) for m in np.logspace(0, 3, 13))


@dataclasses.dataclass(frozen=True)
class VarianceTimeCurve:
    """Normalized variance of windowed event rates across time scales."""

    scales: np.ndarray               #: window sizes M, seconds
    normalized_variance: np.ndarray  #: var(k_i) / mean(k_i)^2 per scale
    mean_rate: float                 #: events per 100 ms over the whole span

    def log10(self) -> np.ndarray:
        """log10 of the normalized variance (how Fig. 3 plots it)."""
        with np.errstate(divide="ignore"):
            return np.log10(self.normalized_variance)


def variance_time_curve(
    event_times: Sequence[float],
    *,
    duration: Optional[float] = None,
    scales: Sequence[float] = DEFAULT_SCALES,
    bin_width: float = BIN_WIDTH,
) -> VarianceTimeCurve:
    """Compute the variance–time curve of a point process.

    Parameters
    ----------
    event_times:
        Arrival timestamps (seconds), any order.
    duration:
        Observation span; defaults to the max timestamp.  Windows are
        anchored at 0.
    scales:
        Window sizes ``M`` (seconds); each must cover >= 2 windows.
    """
    times = np.asarray(event_times, dtype=np.float64)
    if times.size == 0:
        raise ValueError("variance_time_curve needs at least one event")
    if duration is None:
        duration = float(times.max()) + bin_width
    if duration <= 0:
        raise ValueError("duration must be positive")

    num_bins = int(np.ceil(duration / bin_width))
    bin_index = np.minimum((times / bin_width).astype(np.int64), num_bins - 1)
    counts = np.bincount(bin_index, minlength=num_bins).astype(np.float64)

    out_scales = []
    out_var = []
    for m in scales:
        bins_per_window = max(1, int(round(m / bin_width)))
        num_windows = num_bins // bins_per_window
        if num_windows < 2:
            continue  # too few windows at this scale to estimate a variance
        trimmed = counts[: num_windows * bins_per_window]
        window_means = trimmed.reshape(num_windows, bins_per_window).mean(axis=1)
        mean = float(window_means.mean())
        var = float(window_means.var())
        if mean <= 0:
            continue
        out_scales.append(float(m))
        out_var.append(var / (mean * mean))

    return VarianceTimeCurve(
        scales=np.asarray(out_scales),
        normalized_variance=np.asarray(out_var),
        mean_rate=float(counts.mean()),
    )


def poisson_reference_curve(
    rate: float,
    duration: float,
    rng: np.random.Generator,
    *,
    scales: Sequence[float] = DEFAULT_SCALES,
    bin_width: float = BIN_WIDTH,
) -> VarianceTimeCurve:
    """Variance–time curve of a simulated Poisson process.

    The paper compares observed curves against *fitted* Poisson models;
    simulating the fitted process and running the identical pipeline
    keeps the comparison apples-to-apples (finite-sample effects
    included).

    Parameters
    ----------
    rate:
        Events per second of the fitted Poisson process.
    duration:
        Simulated span, seconds.
    """
    if rate <= 0:
        raise ValueError("rate must be positive")
    expected = rate * duration
    n = rng.poisson(expected)
    if n == 0:
        n = 1
    times = rng.uniform(0.0, duration, size=n)
    return variance_time_curve(
        times, duration=duration, scales=scales, bin_width=bin_width
    )


def burstiness_gap(
    observed: VarianceTimeCurve, reference: VarianceTimeCurve
) -> np.ndarray:
    """Per-scale log10 gap between observed and reference curves.

    Positive values mean the observed traffic is burstier than the
    reference at that scale.  Only scales present in both curves are
    compared.
    """
    common = np.intersect1d(observed.scales, reference.scales)
    if common.size == 0:
        raise ValueError("curves share no common scales")
    obs = {s: v for s, v in zip(observed.scales, observed.log10())}
    ref = {s: v for s, v in zip(reference.scales, reference.log10())}
    return np.asarray([obs[s] - ref[s] for s in common])
