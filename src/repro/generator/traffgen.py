"""The main traffic generator: arbitrary populations, any start hour.

``TrafficGenerator`` runs one per-UE generator instance per synthetic
UE (§7).  Each synthetic UE draws a *persona* — a training-trace UE of
the same device type — and follows that persona's cluster in every
hour, so the synthetic population reproduces the cluster mix of the
modeled trace ("if 33% of the UEs belong to Cluster X, then 33% of the
per-UE traffic generators will be running the state machine for
Cluster X").

Population sizes are unconstrained: scaling past the training
population (the paper's 380K-UE Scenario 2) simply samples personas
with replacement.
"""

from __future__ import annotations

import os
from numbers import Integral
from typing import Dict, Mapping, Optional, Union

import numpy as np

from ..model.model_set import ModelSet
from ..telemetry import RunTelemetry, get_telemetry, use_telemetry
from ..trace.events import DeviceType
from ..trace.trace import Trace
from .compiled import generate_columns, population_for_counts
from .ue_generator import generate_ue_events

DeviceCounts = Union[int, Mapping[DeviceType, int]]

#: Generation engines: "compiled" batches whole cluster-hour cohorts
#: through flat array tables (see :mod:`repro.generator.compiled`);
#: "reference" walks one Python-level chain step per event and serves as
#: the statistical oracle.  Both draw from per-UE substreams, so output
#: is invariant to generation order; their RNG streams differ, so the
#: two engines produce *statistically* equivalent but not bit-identical
#: traces.
ENGINES = ("compiled", "reference")


def _check_engine(engine: str) -> str:
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}, expected one of {ENGINES}")
    return engine


#: Seeds parameterize ``SeedSequence`` entropy and the Philox root key;
#: both are specified for unsigned 64-bit words.
MAX_SEED = 2 ** 64


def validate_run_args(
    *,
    start_hour: int = 0,
    num_hours: int = 1,
    seed: int = 0,
    first_ue_id: int = 0,
) -> None:
    """Validate the parameter quartet shared by every generation entry.

    ``TrafficGenerator.generate``, :func:`~repro.generator.parallel.
    generate_parallel` and :func:`~repro.generator.streaming.
    stream_events` accept the same run parameters; this is the single
    place their domains are enforced, so every entry point rejects the
    same bad inputs with the same message.
    """
    for name, value in (
        ("start_hour", start_hour),
        ("num_hours", num_hours),
        ("seed", seed),
        ("first_ue_id", first_ue_id),
    ):
        if not isinstance(value, Integral):
            raise TypeError(
                f"{name} must be an integer, got {type(value).__name__}"
            )
    if num_hours <= 0:
        raise ValueError(f"num_hours must be positive, got {num_hours}")
    if start_hour < 0:
        raise ValueError(f"start_hour must be non-negative, got {start_hour}")
    if first_ue_id < 0:
        raise ValueError(
            f"first_ue_id must be non-negative, got {first_ue_id}"
        )
    if not 0 <= seed < MAX_SEED:
        raise ValueError(f"seed must be in [0, 2**64), got {seed}")


class TrafficGenerator:
    """Synthesizes control-plane traces from a fitted :class:`ModelSet`."""

    def __init__(self, model_set: ModelSet, *, engine: str = "compiled") -> None:
        if not model_set.models:
            raise ValueError("model set contains no fitted models")
        self.model_set = model_set
        self.engine = _check_engine(engine)

    # ------------------------------------------------------------------
    def resolve_counts(self, num_ues: DeviceCounts) -> Dict[DeviceType, int]:
        """Split a total UE count by the training trace's device mix."""
        if isinstance(num_ues, Mapping):
            counts = {DeviceType(k): int(v) for k, v in num_ues.items()}
            negative = {dt.name: n for dt, n in counts.items() if n < 0}
            if negative:
                raise ValueError(
                    f"device counts must be non-negative, got {negative}"
                )
            unknown = set(counts) - set(self.model_set.device_ues)
            if unknown:
                raise ValueError(
                    f"no fitted model for device types {sorted(d.name for d in unknown)}"
                )
            return counts
        total = int(num_ues)
        if total <= 0:
            raise ValueError(f"population size must be positive, got {num_ues}")
        training = {
            dt: len(ues) for dt, ues in self.model_set.device_ues.items()
        }
        training_total = sum(training.values())
        counts = {
            dt: int(round(total * n / training_total))
            for dt, n in training.items()
        }
        drift = total - sum(counts.values())
        largest = max(counts, key=lambda d: counts[d])
        counts[largest] += drift
        return counts

    # ------------------------------------------------------------------
    def generate(
        self,
        num_ues: DeviceCounts,
        *,
        start_hour: int = 0,
        num_hours: int = 1,
        seed: int = 0,
        first_ue_id: int = 0,
        engine: Optional[str] = None,
        checkpoint_path: "Optional[str | os.PathLike[str]]" = None,
        resume: bool = False,
        telemetry: Optional[RunTelemetry] = None,
    ) -> Trace:
        """Synthesize a trace for ``num_ues`` UEs over ``num_hours`` hours.

        Every UE gets an independent, reproducible random substream, so
        the output is invariant to generation order and amenable to
        parallel generation.  ``engine`` overrides the generator's
        default (see :data:`ENGINES`).

        With ``checkpoint_path`` the run snapshots its progress after
        every generated hour (atomically — see
        :mod:`repro.generator.checkpoint`); ``resume=True`` picks up an
        interrupted run from that file and returns the *complete* trace,
        bit-identical to an uninterrupted run with the same arguments.

        ``telemetry`` selects the collector the run reports to (spans,
        counters, progress — see :mod:`repro.telemetry`); by default the
        ambient collector is used, so counters are always on.
        """
        engine = self.engine if engine is None else _check_engine(engine)
        validate_run_args(
            start_hour=start_hour,
            num_hours=num_hours,
            seed=seed,
            first_ue_id=first_ue_id,
        )
        counts = self.resolve_counts(num_ues)

        for device_type in sorted(counts, key=int):
            if counts[device_type] > 0 and not self.model_set.device_ues.get(
                device_type
            ):
                raise ValueError(
                    f"no fitted model for device type {device_type.name}"
                )

        tele = telemetry if telemetry is not None else get_telemetry()
        with use_telemetry(tele), tele.span("generate"):
            trace = self._generate_trace(
                counts,
                engine=engine,
                start_hour=start_hour,
                num_hours=num_hours,
                seed=seed,
                first_ue_id=first_ue_id,
                checkpoint_path=checkpoint_path,
                resume=resume,
            )
        tele.count("events_emitted", len(trace))
        tele.record_peak_rss()
        return trace

    # ------------------------------------------------------------------
    def _generate_trace(
        self,
        counts: Dict[DeviceType, int],
        *,
        engine: str,
        start_hour: int,
        num_hours: int,
        seed: int,
        first_ue_id: int,
        checkpoint_path: "Optional[str | os.PathLike[str]]",
        resume: bool,
    ) -> Trace:
        if checkpoint_path is not None or resume:
            from .checkpoint import generate_checkpointed

            return generate_checkpointed(
                self.model_set,
                counts,
                engine=engine,
                start_hour=start_hour,
                num_hours=num_hours,
                seed=seed,
                first_ue_id=first_ue_id,
                checkpoint_path=checkpoint_path,
                resume=resume,
            )

        if engine == "compiled":
            population = population_for_counts(
                self.model_set, counts, seed=seed, start_hour=start_hour
            )
            columns = generate_columns(population, num_hours, first_ue_id)
            if len(columns[0]) == 0:
                return Trace.empty()
            return Trace(*columns, validate=False)

        machine = self.model_set.machine()
        tele = get_telemetry()
        total_ues = sum(counts.values())
        rng_draws = 0
        done = 0

        ue_col = []
        time_col = []
        event_col = []
        device_col = []
        ue_id = first_ue_id
        stream_idx = 0
        for device_type in sorted(counts, key=int):
            personas = np.asarray(
                self.model_set.device_ues.get(device_type, []), dtype=np.int64
            )
            for _ in range(counts[device_type]):
                # Substream i of SeedSequence(seed).spawn(total) is
                # SeedSequence(seed, spawn_key=(i,)) — deriving it
                # directly keeps setup O(1) per UE instead of
                # O(population) per call.
                rng = np.random.default_rng(
                    np.random.SeedSequence(seed, spawn_key=(stream_idx,))
                )
                stream_idx += 1
                persona = int(personas[rng.integers(personas.size)])
                times, events = generate_ue_events(
                    self.model_set,
                    device_type,
                    persona,
                    start_hour=start_hour,
                    num_hours=num_hours,
                    rng=rng,
                    machine=machine,
                )
                n = len(times)
                if n:
                    ue_col.append(np.full(n, ue_id, dtype=np.int64))
                    time_col.append(np.asarray(times, dtype=np.float64))
                    event_col.append(np.asarray(events, dtype=np.int8))
                    device_col.append(np.full(n, int(device_type), dtype=np.int8))
                ue_id += 1
                # ~2 draws per chain event (edge + dwell) plus the
                # persona draw: the reference stream is stateful, so the
                # counter is an estimate here (exact for "compiled").
                rng_draws += 2 * n + 1
                done += 1
                tele.progress("generate", done, total_ues)

        tele.count("ue_hours", total_ues * num_hours)
        tele.count("rng_draws", rng_draws)
        if not ue_col:
            return Trace.empty()
        return Trace(
            np.concatenate(ue_col),
            np.concatenate(time_col),
            np.concatenate(event_col),
            np.concatenate(device_col),
            validate=False,
        )

    # ------------------------------------------------------------------
    def generate_hour(
        self,
        num_ues: DeviceCounts,
        hour: int,
        *,
        seed: int = 0,
    ) -> Trace:
        """Convenience: synthesize a single one-hour trace at ``hour``."""
        return self.generate(num_ues, start_hour=hour, num_hours=1, seed=seed)
