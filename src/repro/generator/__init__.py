"""Trace synthesis from fitted model sets (§7)."""

from .compiled import CompiledModelSet, CompiledPopulation, compile_model_set
from .parallel import generate_parallel
from .streaming import stream_events, stream_to_trace
from .traffgen import ENGINES, TrafficGenerator
from .ue_generator import MAX_EVENTS_PER_HOUR, UeSession, generate_ue_events

__all__ = [
    "ENGINES",
    "MAX_EVENTS_PER_HOUR",
    "CompiledModelSet",
    "CompiledPopulation",
    "TrafficGenerator",
    "compile_model_set",
    "generate_parallel",
    "UeSession",
    "generate_ue_events",
    "stream_events",
    "stream_to_trace",
]
