"""Trace synthesis from fitted model sets (§7)."""

from .parallel import generate_parallel
from .streaming import stream_events, stream_to_trace
from .traffgen import TrafficGenerator
from .ue_generator import MAX_EVENTS_PER_HOUR, UeSession, generate_ue_events

__all__ = [
    "MAX_EVENTS_PER_HOUR",
    "TrafficGenerator",
    "generate_parallel",
    "UeSession",
    "generate_ue_events",
    "stream_events",
    "stream_to_trace",
]
