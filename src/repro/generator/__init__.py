"""Trace synthesis from fitted model sets (§7)."""

from .checkpoint import (
    CheckpointError,
    CheckpointMismatchError,
    GenerationCheckpoint,
    RunKey,
)
from .compiled import CompiledModelSet, CompiledPopulation, compile_model_set
from .parallel import ChunkFailedError, generate_parallel
from .streaming import stream_events, stream_to_trace
from .traffgen import ENGINES, MAX_SEED, TrafficGenerator, validate_run_args
from .ue_generator import MAX_EVENTS_PER_HOUR, UeSession, generate_ue_events

__all__ = [
    "ENGINES",
    "MAX_EVENTS_PER_HOUR",
    "MAX_SEED",
    "CheckpointError",
    "CheckpointMismatchError",
    "ChunkFailedError",
    "CompiledModelSet",
    "CompiledPopulation",
    "GenerationCheckpoint",
    "RunKey",
    "TrafficGenerator",
    "compile_model_set",
    "generate_parallel",
    "UeSession",
    "generate_ue_events",
    "stream_events",
    "stream_to_trace",
    "validate_run_args",
]
