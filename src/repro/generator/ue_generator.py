"""The per-UE traffic generator (§7).

Each synthetic UE runs its own instance: the first hour's event is
placed by the first-event model, after which the semi-Markov chain of
the UE's cluster is driven hour after hour.  At every hour boundary the
pending event is dropped and the dwell re-sampled from the new hour's
model (the paper's timer-reset-on-model-switch semantics); UEs whose
chain parks in a state with no fitted transitions stay silent until a
later hour's model moves them again.

For EMM–ECM baselines the cluster model additionally carries per-UE
Poisson rates for ``HO``/``TAU``; those are overlaid uniformly over the
hour, oblivious to the UE state — faithfully reproducing the baseline's
"HO in IDLE" artifact the paper quantifies in Tables 4/11.

:class:`UeSession` exposes the generation loop one hour at a time so
that batch (:func:`generate_ue_events`) and streaming
(:mod:`repro.generator.streaming`) production consume randomness
identically and therefore emit identical events.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..model.model_set import ModelSet
from ..statemachines.fsm import StateMachine
from ..statemachines.replay import _canonical_source_for
from ..trace.events import (
    SECONDS_PER_HOUR,
    DeviceType,
    EventType,
    quantize_times,
    quantize_timestamp,
)

#: Hard per-UE-per-hour event cap; a guard against degenerate fitted
#: chains (e.g. a self-loop with near-zero sojourn), far above any
#: realistic per-UE volume.
MAX_EVENTS_PER_HOUR = 100_000


class UeSession:
    """One UE's generation state, advanced one hour at a time."""

    def __init__(
        self,
        model_set: ModelSet,
        device_type: DeviceType,
        persona: int,
        *,
        start_hour: int,
        rng: np.random.Generator,
        machine: Optional[StateMachine] = None,
    ) -> None:
        self.model_set = model_set
        self.device_type = device_type
        self.persona = persona
        self.start_hour = start_hour
        self.rng = rng
        self.machine = machine if machine is not None else model_set.machine()
        self.state: Optional[str] = None
        self._next_hour_idx = 0

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-serializable carryover state for checkpoint/resume.

        Captures everything the next hour depends on: the chain state,
        the persona, and the *exact* bit-generator state, so a session
        restored via :meth:`from_snapshot` continues bit-identically.
        """
        return {
            "device": int(self.device_type),
            "persona": int(self.persona),
            "state": self.state,
            "next_hour_idx": int(self._next_hour_idx),
            "rng": self.rng.bit_generator.state,
        }

    @classmethod
    def from_snapshot(
        cls,
        model_set: ModelSet,
        snapshot: dict,
        *,
        start_hour: int,
        machine: Optional[StateMachine] = None,
    ) -> "UeSession":
        """Rebuild a session from :meth:`snapshot` output.

        The persona draw is *not* repeated — the restored bit-generator
        state already sits exactly where the original session left it.
        """
        rng = np.random.default_rng(0)
        rng.bit_generator.state = snapshot["rng"]
        session = cls(
            model_set,
            DeviceType(int(snapshot["device"])),
            int(snapshot["persona"]),
            start_hour=start_hour,
            rng=rng,
            machine=machine,
        )
        session.state = snapshot["state"]
        session._next_hour_idx = int(snapshot["next_hour_idx"])
        return session

    def advance_hour(self) -> Tuple[List[float], List[int]]:
        """Generate the next hour's events (times relative to t=0)."""
        hour_idx = self._next_hour_idx
        self._next_hour_idx += 1
        hour = (self.start_hour + hour_idx) % 24
        hour_model = self.model_set.hour_model(self.device_type, hour)
        if hour_model is None:
            return [], []  # no model for this hour-of-day; keep the state

        rng = self.rng
        machine = self.machine
        cid = hour_model.cluster_for_ue(self.persona, rng)
        cluster = hour_model.clusters[cid]
        hour_start = hour_idx * SECONDS_PER_HOUR
        hour_end = hour_start + SECONDS_PER_HOUR

        times: List[float] = []
        events: List[int] = []
        t = hour_start
        if self.state is None:
            first = cluster.first_event.sample(rng)
            if first is None:
                _overlay_events(cluster, hour_start, hour_end, rng, times, events)
                return times, events
            event, offset = first
            t = hour_start + offset
            times.append(quantize_timestamp(t))
            events.append(int(event))
            self.state = machine.next_state(
                _canonical_source_for(machine, event), event
            )

        emitted = 0
        while emitted < MAX_EVENTS_PER_HOUR:
            step = cluster.chain.step(self.state, rng)
            if step is None:
                break  # absorbing under this hour's model; park
            dwell, event, target = step
            t_next = t + dwell
            if t_next >= hour_end:
                break  # hour boundary: drop the pending event
            times.append(quantize_timestamp(t_next))
            events.append(int(event))
            self.state = target
            t = t_next
            emitted += 1

        _overlay_events(cluster, hour_start, hour_end, rng, times, events)
        return times, events


def generate_ue_events(
    model_set: ModelSet,
    device_type: DeviceType,
    persona: int,
    *,
    start_hour: int,
    num_hours: int,
    rng: np.random.Generator,
    machine: Optional[StateMachine] = None,
) -> Tuple[List[float], List[int]]:
    """Generate one UE's events over ``num_hours`` hours.

    Parameters
    ----------
    persona:
        A training-trace UE id; each hour the synthetic UE uses the
        cluster this persona belonged to, which keeps heavy/light users
        coherent across hours.
    start_hour:
        Hour-of-day of generation time 0.

    Returns
    -------
    (times, events):
        Timestamps (seconds from generation start) and event codes.
    """
    if num_hours <= 0:
        raise ValueError(f"num_hours must be positive, got {num_hours}")
    session = UeSession(
        model_set,
        device_type,
        persona,
        start_hour=start_hour,
        rng=rng,
        machine=machine,
    )
    times: List[float] = []
    events: List[int] = []
    for _ in range(num_hours):
        hour_times, hour_events = session.advance_hour()
        times.extend(hour_times)
        events.extend(hour_events)
    return times, events


def _overlay_events(
    cluster,
    hour_start: float,
    hour_end: float,
    rng: np.random.Generator,
    times: List[float],
    events: List[int],
) -> None:
    """Add the baseline's state-oblivious Poisson HO/TAU events."""
    for event, rate in cluster.overlay_rates.items():
        if rate <= 0:
            continue
        n = rng.poisson(rate * (hour_end - hour_start))
        if n == 0:
            continue
        ts = np.sort(rng.uniform(hour_start, hour_end, size=n))
        times.extend(quantize_times(ts).tolist())
        events.extend([int(event)] * int(n))
