"""Checkpoint/resume for long generation runs.

The paper's week-long 37K-UE traces (§7) assume multi-hour generation
that real infrastructure cannot promise to keep alive; this module
makes runs *restartable* instead.  A :class:`GenerationCheckpoint`
snapshots run progress — completed hours (or, for the parallel path,
completed chunks), the per-UE carryover state, RNG provenance, and the
content hash of the fitted model set — to a single file that is always
replaced atomically (write-to-temp + ``os.replace``), so a crash at any
instant leaves either the previous checkpoint or the new one, never a
torn file.

Because both engines derive every random draw from a per-UE substream
that is a pure function of ``(seed, ue position)`` — a Philox counter
for the compiled engine, ``SeedSequence(seed, spawn_key=(i,))`` for the
reference engine — the carryover needed for bit-identical continuation
is tiny:

- **compiled**: the per-UE chain-state array plus the hour counter
  (:meth:`CompiledPopulation.snapshot`); personas and Philox keys are
  replayed from the seed.
- **reference**: the per-UE chain state *and* the exact PCG64
  bit-generator state (:meth:`UeSession.snapshot`), since the reference
  RNG stream is stateful.
- **parallel**: completed chunks are independent pure functions of the
  run parameters, so the checkpoint simply stores their finished event
  columns and the remaining chunks are (re)generated.

A checkpoint is bound to its run by a :class:`RunKey` — every
generation parameter plus :meth:`ModelSet.content_hash`.  Resuming with
*any* differing parameter (or a re-fitted model set) raises
:class:`CheckpointMismatchError` instead of silently producing a trace
that is not bit-identical to the uninterrupted run.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
import zipfile
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..model.model_set import ModelSet
from ..trace.events import DeviceType
from ..trace.trace import Trace
from .compiled import population_for_counts
from .ue_generator import UeSession

__all__ = [
    "CHECKPOINT_FORMAT",
    "CheckpointError",
    "CheckpointMismatchError",
    "GenerationCheckpoint",
    "RunKey",
]

CHECKPOINT_FORMAT = "repro-generation-checkpoint-v1"

#: Four event columns: (ue_ids, times, event_types, device_types).
Columns = Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]

_COLUMN_NAMES = ("ue", "time", "event", "device")
_COLUMN_DTYPES = (np.int64, np.float64, np.int8, np.int8)


class CheckpointError(RuntimeError):
    """A checkpoint file is missing, unreadable, or malformed."""


class CheckpointMismatchError(CheckpointError):
    """A checkpoint was produced by a run with different parameters."""


def _rng_provenance(engine: str) -> Dict[str, str]:
    """What produced the random streams (recorded, checked by humans)."""
    return {
        "numpy": np.__version__,
        "rng": (
            "philox4x64-10 counter"
            if engine == "compiled"
            else "pcg64 + seedsequence spawn_key"
        ),
    }


@dataclasses.dataclass(frozen=True)
class RunKey:
    """Everything that determines a generation run's output bits."""

    kind: str                #: "generate" | "parallel" | "stream"
    engine: str
    seed: int
    start_hour: int
    num_hours: int
    first_ue_id: int
    counts: Dict[str, int]   #: device name -> UE count
    model_hash: str
    chunk_size: int = 0      #: parallel runs only (0 otherwise)

    @classmethod
    def for_run(
        cls,
        model_set: ModelSet,
        counts: Dict[DeviceType, int],
        *,
        kind: str,
        engine: str,
        seed: int,
        start_hour: int,
        num_hours: int,
        first_ue_id: int,
        chunk_size: int = 0,
    ) -> "RunKey":
        return cls(
            kind=kind,
            engine=engine,
            seed=int(seed),
            start_hour=int(start_hour),
            num_hours=int(num_hours),
            first_ue_id=int(first_ue_id),
            counts={dt.name: int(n) for dt, n in counts.items()},
            model_hash=model_set.content_hash(),
            chunk_size=int(chunk_size),
        )

    def validate_against(self, run: "RunKey") -> None:
        """Raise :class:`CheckpointMismatchError` naming every mismatch."""
        mismatches = [
            f"{field.name}: checkpoint has {getattr(self, field.name)!r}, "
            f"run has {getattr(run, field.name)!r}"
            for field in dataclasses.fields(self)
            if getattr(self, field.name) != getattr(run, field.name)
        ]
        if mismatches:
            raise CheckpointMismatchError(
                "checkpoint does not belong to this run — "
                + "; ".join(mismatches)
            )


@dataclasses.dataclass
class GenerationCheckpoint:
    """One run's resumable progress (see module docstring).

    Only the fields relevant to the run ``kind`` are populated:
    ``columns`` + one carryover field for ``generate``, a carryover
    field + ``events_emitted`` for ``stream``, ``chunk_columns`` for
    ``parallel``.
    """

    key: RunKey
    hours_done: int = 0
    events_emitted: int = 0  #: stream runs: events yielded so far
    population_state: Optional[np.ndarray] = None   # compiled carryover
    sessions: Optional[List[dict]] = None           # reference carryover
    columns: Optional[Columns] = None               # accumulated events
    chunk_columns: Dict[int, Columns] = dataclasses.field(default_factory=dict)
    provenance: Dict[str, Any] = dataclasses.field(default_factory=dict)

    # ------------------------------------------------------------------
    def save(self, path: "str | os.PathLike[str]") -> None:
        """Atomically write the checkpoint (temp file + ``os.replace``).

        Every snapshot is recorded on the ambient telemetry collector:
        a ``checkpoint`` span entry plus the ``checkpoint_snapshots``
        and ``checkpoint_bytes`` counters.
        """
        from ..telemetry import get_telemetry

        with get_telemetry().span("checkpoint"):
            self._save(path)
        tele = get_telemetry()
        tele.count("checkpoint_snapshots")
        try:
            tele.count("checkpoint_bytes", os.path.getsize(path))
        except OSError:  # pragma: no cover - racing deletion
            pass

    def _save(self, path: "str | os.PathLike[str]") -> None:
        meta = {
            "format": CHECKPOINT_FORMAT,
            "key": dataclasses.asdict(self.key),
            "hours_done": int(self.hours_done),
            "events_emitted": int(self.events_emitted),
            "sessions": self.sessions,
            "completed_chunks": sorted(self.chunk_columns),
            "has_population_state": self.population_state is not None,
            "has_columns": self.columns is not None,
            "provenance": self.provenance,
        }
        arrays: Dict[str, np.ndarray] = {"meta": np.asarray(json.dumps(meta))}
        if self.population_state is not None:
            arrays["population_state"] = np.asarray(
                self.population_state, dtype=np.int32
            )
        if self.columns is not None:
            for name, col in zip(_COLUMN_NAMES, self.columns):
                arrays[f"col_{name}"] = col
        for idx, cols in self.chunk_columns.items():
            for name, col in zip(_COLUMN_NAMES, cols):
                arrays[f"chunk{idx}_{name}"] = col

        path = os.fspath(path)
        directory = os.path.dirname(path) or "."
        fd, tmp_path = tempfile.mkstemp(
            dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez_compressed(fh, **arrays)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: "str | os.PathLike[str]") -> "GenerationCheckpoint":
        """Read a checkpoint written by :meth:`save`."""
        try:
            with np.load(path, allow_pickle=False) as data:
                meta = json.loads(str(data["meta"][()]))
                if meta.get("format") != CHECKPOINT_FORMAT:
                    raise CheckpointError(
                        f"{path}: unknown checkpoint format "
                        f"{meta.get('format')!r}"
                    )
                population_state = (
                    np.asarray(data["population_state"], dtype=np.int32)
                    if meta["has_population_state"]
                    else None
                )
                columns: Optional[Columns] = None
                if meta["has_columns"]:
                    columns = tuple(
                        np.asarray(data[f"col_{name}"], dtype=dtype)
                        for name, dtype in zip(_COLUMN_NAMES, _COLUMN_DTYPES)
                    )
                chunk_columns: Dict[int, Columns] = {}
                for idx in meta["completed_chunks"]:
                    chunk_columns[int(idx)] = tuple(
                        np.asarray(data[f"chunk{idx}_{name}"], dtype=dtype)
                        for name, dtype in zip(_COLUMN_NAMES, _COLUMN_DTYPES)
                    )
        except CheckpointError:
            raise
        except (OSError, KeyError, ValueError, zipfile.BadZipFile) as exc:
            raise CheckpointError(
                f"cannot read checkpoint {path}: {exc}"
            ) from exc
        return cls(
            key=RunKey(**meta["key"]),
            hours_done=int(meta["hours_done"]),
            events_emitted=int(meta["events_emitted"]),
            population_state=population_state,
            sessions=meta["sessions"],
            columns=columns,
            chunk_columns=chunk_columns,
            provenance=meta.get("provenance", {}),
        )

    @classmethod
    def load_for_run(
        cls, path: "str | os.PathLike[str]", key: RunKey
    ) -> "GenerationCheckpoint":
        """Load and verify the checkpoint belongs to the run ``key``."""
        checkpoint = cls.load(path)
        checkpoint.key.validate_against(key)
        return checkpoint


# ---------------------------------------------------------------------------
# Shared run machinery for the serial / streaming entry points
# ---------------------------------------------------------------------------


def build_reference_sessions(
    model_set: ModelSet,
    counts: Dict[DeviceType, int],
    *,
    seed: int,
    start_hour: int,
) -> List[UeSession]:
    """One :class:`UeSession` per UE, in generation order.

    Substream ``i`` of ``SeedSequence(seed).spawn(total)`` is derived
    directly as ``SeedSequence(seed, spawn_key=(i,))`` — O(1) per UE —
    exactly as the batch and parallel reference paths do, so all three
    consume identical randomness.
    """
    machine = model_set.machine()
    sessions: List[UeSession] = []
    idx = 0
    for device_type in sorted(counts, key=int):
        personas = np.asarray(
            model_set.device_ues.get(device_type, []), dtype=np.int64
        )
        if counts[device_type] > 0 and personas.size == 0:
            raise ValueError(
                f"no fitted model for device type {device_type.name}"
            )
        for _ in range(counts[device_type]):
            rng = np.random.default_rng(
                np.random.SeedSequence(seed, spawn_key=(idx,))
            )
            idx += 1
            persona = int(personas[rng.integers(personas.size)])
            sessions.append(
                UeSession(
                    model_set,
                    device_type,
                    persona,
                    start_hour=start_hour,
                    rng=rng,
                    machine=machine,
                )
            )
    return sessions


def restore_reference_sessions(
    model_set: ModelSet,
    snapshots: List[dict],
    *,
    start_hour: int,
) -> List[UeSession]:
    """Rebuild the session list from checkpointed snapshots."""
    machine = model_set.machine()
    return [
        UeSession.from_snapshot(
            model_set, snap, start_hour=start_hour, machine=machine
        )
        for snap in snapshots
    ]


def generate_checkpointed(
    model_set: ModelSet,
    counts: Dict[DeviceType, int],
    *,
    engine: str,
    start_hour: int,
    num_hours: int,
    seed: int,
    first_ue_id: int,
    checkpoint_path: "str | os.PathLike[str]",
    resume: bool,
) -> Trace:
    """Materialize a trace hour by hour, checkpointing after each hour.

    Produces output bit-identical to
    :meth:`TrafficGenerator.generate` with the same arguments and no
    checkpointing: the compiled path runs the very same per-hour cohort
    stepping, and the reference path emits the same per-UE event
    sequences (hour-major instead of UE-major, which the trace's stable
    ``(time, ue)`` sort normalizes away).
    """
    if checkpoint_path is None:
        raise ValueError("resume=True requires checkpoint_path")
    key = RunKey.for_run(
        model_set,
        counts,
        kind="generate",
        engine=engine,
        seed=seed,
        start_hour=start_hour,
        num_hours=num_hours,
        first_ue_id=first_ue_id,
    )
    hours_done = 0
    parts: List[Columns] = []
    checkpoint: Optional[GenerationCheckpoint] = None
    if resume:
        checkpoint = GenerationCheckpoint.load_for_run(checkpoint_path, key)
        hours_done = checkpoint.hours_done
        if checkpoint.columns is not None and len(checkpoint.columns[0]):
            parts.append(checkpoint.columns)

    def _save(carryover_state=None, sessions=None) -> None:
        GenerationCheckpoint(
            key=key,
            hours_done=hours_done,
            population_state=carryover_state,
            sessions=sessions,
            columns=_concat_columns(parts),
            provenance=_rng_provenance(engine),
        ).save(checkpoint_path)

    from ..telemetry import get_telemetry

    tele = get_telemetry()
    total_ues = sum(counts.values())

    if engine == "compiled":
        population = population_for_counts(
            model_set, counts, seed=seed, start_hour=start_hour
        )
        if checkpoint is not None:
            if checkpoint.population_state is None:
                raise CheckpointError(
                    f"{checkpoint_path}: compiled-engine checkpoint is "
                    "missing the population carryover state"
                )
            population.restore(checkpoint.population_state, hours_done)
        elif hours_done == 0:
            _save(carryover_state=population.snapshot()[0])
        draws_before = population.rng_draws
        for _ in range(hours_done, num_hours):
            rows, times, events = population.advance_hour()
            if len(rows):
                parts.append(
                    (
                        first_ue_id + rows,
                        times,
                        events.astype(np.int8),
                        population.device_codes[rows],
                    )
                )
            hours_done += 1
            tele.count("ue_hours", total_ues)
            tele.progress("generate", hours_done, num_hours)
            _save(carryover_state=population.snapshot()[0])
        tele.count("rng_draws", population.rng_draws - draws_before)
    else:
        if checkpoint is not None:
            if checkpoint.sessions is None:
                raise CheckpointError(
                    f"{checkpoint_path}: reference-engine checkpoint is "
                    "missing the per-UE session snapshots"
                )
            sessions = restore_reference_sessions(
                model_set, checkpoint.sessions, start_hour=start_hour
            )
        else:
            sessions = build_reference_sessions(
                model_set, counts, seed=seed, start_hour=start_hour
            )
            # One persona draw per freshly created session (see traffgen).
            tele.count("rng_draws", len(sessions))
            _save(sessions=[s.snapshot() for s in sessions])
        for _ in range(hours_done, num_hours):
            rng_draws = 0
            for position, session in enumerate(sessions):
                times, events = session.advance_hour()
                rng_draws += 2 * len(times)  # estimate, see traffgen
                if times:
                    k = len(times)
                    parts.append(
                        (
                            np.full(k, first_ue_id + position, dtype=np.int64),
                            np.asarray(times, dtype=np.float64),
                            np.asarray(events, dtype=np.int8),
                            np.full(k, int(session.device_type), dtype=np.int8),
                        )
                    )
            hours_done += 1
            tele.count("ue_hours", total_ues)
            tele.count("rng_draws", rng_draws)
            tele.progress("generate", hours_done, num_hours)
            _save(sessions=[s.snapshot() for s in sessions])

    columns = _concat_columns(parts)
    if len(columns[0]) == 0:
        return Trace.empty()
    return Trace(*columns, validate=False)


def _concat_columns(parts: List[Columns]) -> Columns:
    """Concatenate per-hour column blocks (typed empties when none)."""
    if not parts:
        return tuple(
            np.empty(0, dtype=dtype) for dtype in _COLUMN_DTYPES
        )
    return tuple(
        np.concatenate([p[i] for p in parts]) for i in range(4)
    )
