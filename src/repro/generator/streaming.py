"""Streaming generation: events in global time order, bounded memory.

Driving a live MCN (or a real-time monitoring pipeline) needs events in
timestamp order as they "happen", not a materialized trace.  The
streaming generator produces exactly the same events as
:meth:`TrafficGenerator.generate` with the same arguments, but yields
them one at a time in global time order, holding one hour of the
population's traffic (plus one light session object per UE) in memory.

Each UE is a resumable :class:`~repro.generator.ue_generator.UeSession`
seeded from the same per-UE substream batch generation uses, so stream
and batch outputs match event for event.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

from ..model.model_set import ModelSet
from ..trace.events import DeviceType, EventType
from ..trace.trace import Event, Trace
from .traffgen import DeviceCounts, TrafficGenerator
from .ue_generator import UeSession


def stream_events(
    model_set: ModelSet,
    num_ues: DeviceCounts,
    *,
    start_hour: int = 0,
    num_hours: int = 1,
    seed: int = 0,
    first_ue_id: int = 0,
) -> Iterator[Event]:
    """Yield the population's events in global time order.

    Equivalent to iterating the trace from
    ``TrafficGenerator(model_set).generate(...)`` with identical
    arguments, hour by hour.
    """
    if num_hours <= 0:
        raise ValueError(f"num_hours must be positive, got {num_hours}")
    generator = TrafficGenerator(model_set)
    counts = generator.resolve_counts(num_ues)
    total = sum(counts.values())
    streams = np.random.SeedSequence(seed).spawn(total)
    machine = model_set.machine()

    sessions: List[Tuple[int, UeSession]] = []
    ue_id = first_ue_id
    idx = 0
    for device_type in sorted(counts, key=int):
        personas = np.asarray(
            model_set.device_ues.get(device_type, []), dtype=np.int64
        )
        if counts[device_type] > 0 and personas.size == 0:
            raise ValueError(
                f"no fitted model for device type {device_type.name}"
            )
        for _ in range(counts[device_type]):
            rng = np.random.default_rng(streams[idx])
            idx += 1
            persona = int(personas[rng.integers(personas.size)])
            sessions.append(
                (
                    ue_id,
                    UeSession(
                        model_set,
                        device_type,
                        persona,
                        start_hour=start_hour,
                        rng=rng,
                        machine=machine,
                    ),
                )
            )
            ue_id += 1

    for _ in range(num_hours):
        batch: List[Tuple[float, int, int, int]] = []
        for uid, session in sessions:
            times, events = session.advance_hour()
            device = int(session.device_type)
            for t, ev in zip(times, events):
                batch.append((t, uid, ev, device))
        batch.sort()
        for t, uid, ev, dev in batch:
            yield Event(
                ue_id=uid,
                time=t,
                event_type=EventType(ev),
                device_type=DeviceType(dev),
            )


def stream_to_trace(events: Iterator[Event]) -> Trace:
    """Materialize a stream back into a :class:`Trace` (mainly for tests)."""
    return Trace.from_events(events)
