"""Streaming generation: events in global time order, bounded memory.

Driving a live MCN (or a real-time monitoring pipeline) needs events in
timestamp order as they "happen", not a materialized trace.  The
streaming generator produces exactly the same events as
:meth:`TrafficGenerator.generate` with the same arguments and engine,
but yields them one at a time in global time order, holding one hour of
the population's traffic (plus one light per-UE state record) in
memory.

With the compiled engine the whole population advances through
:class:`~repro.generator.compiled.CompiledPopulation` in vectorized
cohort batches; with the reference engine each UE is a resumable
:class:`~repro.generator.ue_generator.UeSession`.  Either way the
per-UE randomness matches batch generation, so stream and batch outputs
match event for event.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

from ..model.model_set import ModelSet
from ..trace.events import DeviceType, EventType
from ..trace.trace import Event, Trace
from .compiled import population_for_counts
from .traffgen import DeviceCounts, TrafficGenerator, _check_engine
from .ue_generator import UeSession


def stream_events(
    model_set: ModelSet,
    num_ues: DeviceCounts,
    *,
    start_hour: int = 0,
    num_hours: int = 1,
    seed: int = 0,
    first_ue_id: int = 0,
    engine: str = "compiled",
) -> Iterator[Event]:
    """Yield the population's events in global time order.

    Equivalent to iterating the trace from
    ``TrafficGenerator(model_set, engine=engine).generate(...)`` with
    identical arguments, hour by hour.
    """
    _check_engine(engine)
    if num_hours <= 0:
        raise ValueError(f"num_hours must be positive, got {num_hours}")
    generator = TrafficGenerator(model_set)
    counts = generator.resolve_counts(num_ues)

    if engine == "compiled":
        for device_type in sorted(counts, key=int):
            if counts[device_type] > 0 and not model_set.device_ues.get(
                device_type
            ):
                raise ValueError(
                    f"no fitted model for device type {device_type.name}"
                )
        population = population_for_counts(
            model_set, counts, seed=seed, start_hour=start_hour
        )
        for _ in range(num_hours):
            rows, times, events = population.advance_hour()
            devices = population.device_codes[rows]
            for row, t, ev, dev in zip(rows, times, events, devices):
                yield Event(
                    ue_id=first_ue_id + int(row),
                    time=float(t),
                    event_type=EventType(int(ev)),
                    device_type=DeviceType(int(dev)),
                )
        return

    machine = model_set.machine()
    sessions: List[Tuple[int, UeSession]] = []
    ue_id = first_ue_id
    idx = 0
    for device_type in sorted(counts, key=int):
        personas = np.asarray(
            model_set.device_ues.get(device_type, []), dtype=np.int64
        )
        if counts[device_type] > 0 and personas.size == 0:
            raise ValueError(
                f"no fitted model for device type {device_type.name}"
            )
        for _ in range(counts[device_type]):
            # Substream idx of SeedSequence(seed).spawn(total), derived
            # in O(1) (see repro.generator.parallel).
            rng = np.random.default_rng(
                np.random.SeedSequence(seed, spawn_key=(idx,))
            )
            idx += 1
            persona = int(personas[rng.integers(personas.size)])
            sessions.append(
                (
                    ue_id,
                    UeSession(
                        model_set,
                        device_type,
                        persona,
                        start_hour=start_hour,
                        rng=rng,
                        machine=machine,
                    ),
                )
            )
            ue_id += 1

    for _ in range(num_hours):
        batch: List[Tuple[float, int, int, int]] = []
        for uid, session in sessions:
            times, events = session.advance_hour()
            device = int(session.device_type)
            for t, ev in zip(times, events):
                batch.append((t, uid, ev, device))
        batch.sort()
        for t, uid, ev, dev in batch:
            yield Event(
                ue_id=uid,
                time=t,
                event_type=EventType(ev),
                device_type=DeviceType(dev),
            )


def stream_to_trace(events: Iterator[Event]) -> Trace:
    """Materialize a stream back into a :class:`Trace` (mainly for tests)."""
    return Trace.from_events(events)
