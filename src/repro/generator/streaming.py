"""Streaming generation: events in global time order, bounded memory.

Driving a live MCN (or a real-time monitoring pipeline) needs events in
timestamp order as they "happen", not a materialized trace.  The
streaming generator produces exactly the same events as
:meth:`TrafficGenerator.generate` with the same arguments and engine,
but yields them one at a time in global time order, holding one hour of
the population's traffic (plus one light per-UE state record) in
memory.

With the compiled engine the whole population advances through
:class:`~repro.generator.compiled.CompiledPopulation` in vectorized
cohort batches; with the reference engine each UE is a resumable
:class:`~repro.generator.ue_generator.UeSession`.  Either way the
per-UE randomness matches batch generation, so stream and batch outputs
match event for event.

**Checkpointing.**  With ``checkpoint_path`` the stream snapshots its
carryover state after each fully yielded hour; ``resume=True`` restarts
from the last completed hour and yields the remaining events.  Delivery
is *at least once* with an exact replay boundary: the checkpoint's
``events_emitted`` counts the events yielded up to the snapshot, so a
consumer that kept the first ``events_emitted`` events of the
interrupted stream and then concatenates the resumed stream gets the
uninterrupted stream event for event (see
:mod:`repro.generator.checkpoint`).
"""

from __future__ import annotations

import os
from typing import Iterator, List, Optional, Tuple

from ..model.model_set import ModelSet
from ..telemetry import RunTelemetry, get_telemetry, use_telemetry
from ..trace.events import DeviceType, EventType
from ..trace.trace import Event, Trace
from .compiled import population_for_counts
from .traffgen import DeviceCounts, TrafficGenerator, _check_engine, validate_run_args


def stream_events(
    model_set: ModelSet,
    num_ues: DeviceCounts,
    *,
    start_hour: int = 0,
    num_hours: int = 1,
    seed: int = 0,
    first_ue_id: int = 0,
    engine: str = "compiled",
    checkpoint_path: "Optional[str | os.PathLike[str]]" = None,
    resume: bool = False,
    telemetry: Optional[RunTelemetry] = None,
) -> Iterator[Event]:
    """Yield the population's events in global time order.

    Equivalent to iterating the trace from
    ``TrafficGenerator(model_set, engine=engine).generate(...)`` with
    identical arguments, hour by hour.  Arguments are validated eagerly
    (before the first event is requested).  ``telemetry`` is captured
    here (not at first ``next()``), so the stream reports to the
    collector that was ambient at call time unless one is passed
    explicitly.
    """
    _check_engine(engine)
    validate_run_args(
        start_hour=start_hour,
        num_hours=num_hours,
        seed=seed,
        first_ue_id=first_ue_id,
    )
    generator = TrafficGenerator(model_set)
    counts = generator.resolve_counts(num_ues)
    for device_type in sorted(counts, key=int):
        if counts[device_type] > 0 and not model_set.device_ues.get(
            device_type
        ):
            raise ValueError(
                f"no fitted model for device type {device_type.name}"
            )
    if resume and checkpoint_path is None:
        raise ValueError("resume=True requires checkpoint_path")
    tele = telemetry if telemetry is not None else get_telemetry()
    return _stream(
        model_set,
        counts,
        start_hour=start_hour,
        num_hours=num_hours,
        seed=seed,
        first_ue_id=first_ue_id,
        engine=engine,
        checkpoint_path=checkpoint_path,
        resume=resume,
        tele=tele,
    )


def _stream(
    model_set: ModelSet,
    counts,
    *,
    start_hour: int,
    num_hours: int,
    seed: int,
    first_ue_id: int,
    engine: str,
    checkpoint_path,
    resume: bool,
    tele: RunTelemetry,
) -> Iterator[Event]:
    from .checkpoint import (
        CheckpointError,
        GenerationCheckpoint,
        RunKey,
        _rng_provenance,
        build_reference_sessions,
        restore_reference_sessions,
    )

    key: Optional[RunKey] = None
    checkpoint: Optional[GenerationCheckpoint] = None
    hours_done = 0
    events_emitted = 0
    if checkpoint_path is not None:
        key = RunKey.for_run(
            model_set,
            counts,
            kind="stream",
            engine=engine,
            seed=seed,
            start_hour=start_hour,
            num_hours=num_hours,
            first_ue_id=first_ue_id,
        )
        if resume:
            checkpoint = GenerationCheckpoint.load_for_run(checkpoint_path, key)
            hours_done = checkpoint.hours_done
            events_emitted = checkpoint.events_emitted

    def _save(population_state=None, sessions=None) -> None:
        if checkpoint_path is None:
            return
        # The consumer controls which collector is ambient at next()
        # time; snapshots must report to the stream's captured one.
        with use_telemetry(tele):
            GenerationCheckpoint(
                key=key,
                hours_done=hours_done,
                events_emitted=events_emitted,
                population_state=population_state,
                sessions=sessions,
                provenance=_rng_provenance(engine),
            ).save(checkpoint_path)

    if engine == "compiled":
        population = population_for_counts(
            model_set, counts, seed=seed, start_hour=start_hour
        )
        if checkpoint is not None:
            if checkpoint.population_state is None:
                raise CheckpointError(
                    f"{checkpoint_path}: compiled-engine checkpoint is "
                    "missing the population carryover state"
                )
            population.restore(checkpoint.population_state, hours_done)
        else:
            _save(population_state=population.snapshot()[0])
        total_ues = sum(counts.values())
        draws_before = population.rng_draws
        for _ in range(hours_done, num_hours):
            with tele.span("stream"):
                rows, times, events = population.advance_hour()
                devices = population.device_codes[rows]
            for row, t, ev, dev in zip(rows, times, events, devices):
                yield Event(
                    ue_id=first_ue_id + int(row),
                    time=float(t),
                    event_type=EventType(int(ev)),
                    device_type=DeviceType(int(dev)),
                )
            hours_done += 1
            events_emitted += len(rows)
            tele.count("events_emitted", len(rows))
            tele.count("ue_hours", total_ues)
            tele.count("rng_draws", population.rng_draws - draws_before)
            draws_before = population.rng_draws
            tele.progress("stream", hours_done, num_hours)
            _save(population_state=population.snapshot()[0])
        return

    if checkpoint is not None:
        if checkpoint.sessions is None:
            raise CheckpointError(
                f"{checkpoint_path}: reference-engine checkpoint is "
                "missing the per-UE session snapshots"
            )
        sessions = restore_reference_sessions(
            model_set, checkpoint.sessions, start_hour=start_hour
        )
    else:
        sessions = build_reference_sessions(
            model_set, counts, seed=seed, start_hour=start_hour
        )
        # One persona draw per freshly created session (see traffgen).
        tele.count("rng_draws", len(sessions))
        _save(sessions=[s.snapshot() for s in sessions])

    for _ in range(hours_done, num_hours):
        batch: List[Tuple[float, int, int, int]] = []
        rng_draws = 0
        with tele.span("stream"):
            for position, session in enumerate(sessions):
                times, events = session.advance_hour()
                rng_draws += 2 * len(times)  # estimate, see traffgen
                device = int(session.device_type)
                uid = first_ue_id + position
                for t, ev in zip(times, events):
                    batch.append((t, uid, ev, device))
            batch.sort()
        for t, uid, ev, dev in batch:
            yield Event(
                ue_id=uid,
                time=t,
                event_type=EventType(ev),
                device_type=DeviceType(dev),
            )
        hours_done += 1
        events_emitted += len(batch)
        tele.count("events_emitted", len(batch))
        tele.count("ue_hours", len(sessions))
        tele.count("rng_draws", rng_draws)
        tele.progress("stream", hours_done, num_hours)
        _save(sessions=[s.snapshot() for s in sessions])


def stream_to_trace(events: Iterator[Event]) -> Trace:
    """Materialize a stream back into a :class:`Trace` (mainly for tests)."""
    return Trace.from_events(events)
