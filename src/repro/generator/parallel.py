"""Parallel trace generation across processes, with fault tolerance.

The paper ran 38K/380K per-UE generator instances across 12 CPUs with
GNU ``parallel``.  Here the same fan-out uses a
``concurrent.futures.ProcessPoolExecutor``: the UE population is split
into contiguous chunks, each worker generates its chunk with the *same*
per-UE random substreams the serial path would use, and the chunks are
merged in plan order.  The output is bit-identical to
:meth:`TrafficGenerator.generate` with the same arguments and engine.

Per-UE substreams are derived directly from the UE's position in the
generation order — ``SeedSequence(seed, spawn_key=(position,))`` for
the reference engine, a Philox counter keyed on the position for the
compiled engine — so per-worker setup is O(chunk), not O(population).

**Fault tolerance.**  Chunks are pure functions of the run parameters,
which makes worker failure cheap to mask:

- a worker that *raises* marks its chunk failed and the chunk is
  retried on a fresh pool;
- a worker that *dies* (OOM-kill, segfault, ``kill -9``) breaks the
  whole pool; the survivors' finished chunks are kept, the crash is
  attributed via per-chunk started-markers, and the unfinished chunks
  are resubmitted to a new pool after capped exponential backoff;
- a chunk that keeps failing is eventually run alone in a single-worker
  pool so blame is unambiguous, and once it exhausts ``max_retries``
  the run fails with a structured :class:`ChunkFailedError` naming the
  exact device, UE range, and hour range — never a bare
  ``BrokenProcessPool``.

Because retried chunks recompute exactly the same events, recovery is
invisible in the output.  With ``checkpoint_path`` every finished
chunk's columns are snapshotted (atomically) so an interrupted run can
``resume=True`` and regenerate only the missing chunks.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from ..model.model_set import ModelSet
from ..telemetry import RunTelemetry, get_telemetry, use_telemetry
from ..trace.events import DeviceType
from ..trace.trace import Trace
from .compiled import CompiledPopulation, generate_columns
from .traffgen import DeviceCounts, TrafficGenerator, _check_engine, validate_run_args

#: Environment knob for fault-injection tests (see
#: :func:`_maybe_inject_fault`).  Format:
#: ``"chunk=<idx>;fails=<k>;mode=<exit|raise>;dir=<path>"`` — the worker
#: handling chunk ``idx`` fails its first ``k`` attempts (counted via
#: marker files under ``dir``), either by dying (``exit``, simulating a
#: crash/OOM-kill) or by raising (``raise``).  Subsequent attempts run
#: normally, so tests can assert transparent recovery and bit-identical
#: output.
FAULT_ENV = "REPRO_TEST_FAULT"

# Worker-global model set and scratch dir, installed once per process by
# _init_worker so each task message carries only the chunk bounds.
_WORKER_MODEL: Optional[ModelSet] = None
_WORKER_SCRATCH: Optional[str] = None


class ChunkFailedError(RuntimeError):
    """A generation chunk failed deterministically after all retries.

    Attributes
    ----------
    device_type:
        The chunk's :class:`DeviceType`.
    ue_range:
        ``(first_ue_id, first_ue_id + n)`` of the failed chunk.
    hour_range:
        ``(start_hour, start_hour + num_hours)`` of the run.
    attempts:
        Number of failed attempts, including the first.
    """

    def __init__(
        self,
        device_type: DeviceType,
        ue_range: Tuple[int, int],
        hour_range: Tuple[int, int],
        attempts: int,
        reason: str,
    ) -> None:
        self.device_type = device_type
        self.ue_range = ue_range
        self.hour_range = hour_range
        self.attempts = attempts
        super().__init__(
            f"chunk for device {device_type.name}, "
            f"UEs [{ue_range[0]}, {ue_range[1]}), "
            f"hours [{hour_range[0]}, {hour_range[1]}) "
            f"failed after {attempts} attempt(s): {reason}"
        )


def _init_worker(model_payload: dict, scratch_dir: Optional[str] = None) -> None:
    global _WORKER_MODEL, _WORKER_SCRATCH
    _WORKER_MODEL = ModelSet.from_dict(model_payload)
    _WORKER_SCRATCH = scratch_dir


def _plan_chunks(
    counts: Dict[DeviceType, int], chunk_size: int, first_ue_id: int
) -> List[Tuple[int, int, int, int]]:
    """Split the population into (device, start_idx, n, first_ue_id) chunks.

    ``start_idx`` is the UE's position in the whole generation order,
    which indexes the seed substream — this is what keeps parallel
    output identical to serial output.
    """
    chunks = []
    position = 0
    ue_id = first_ue_id
    for device_type in sorted(counts, key=int):
        remaining = counts[device_type]
        while remaining > 0:
            n = min(chunk_size, remaining)
            chunks.append((int(device_type), position, n, ue_id))
            position += n
            ue_id += n
            remaining -= n
    return chunks


def _maybe_inject_fault(chunk_idx: int) -> None:
    """Fail this chunk attempt if the :data:`FAULT_ENV` knob says so."""
    spec = os.environ.get(FAULT_ENV)
    if not spec:
        return
    fields = dict(part.split("=", 1) for part in spec.split(";") if part)
    if int(fields.get("chunk", -1)) != chunk_idx:
        return
    fails = int(fields.get("fails", 1))
    mode = fields.get("mode", "raise")
    directory = fields["dir"]
    for attempt in range(fails):
        marker = os.path.join(directory, f"fault-{chunk_idx}-{attempt}")
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            continue  # this attempt already spent; try the next slot
        os.close(fd)
        if mode == "exit":
            os._exit(17)  # hard death: no cleanup, pool breaks
        raise RuntimeError(
            f"injected fault on chunk {chunk_idx} (attempt {attempt})"
        )


def _empty_columns() -> tuple:
    return (
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=np.float64),
        np.empty(0, dtype=np.int8),
        np.empty(0, dtype=np.int8),
    )


def _generate_chunk(
    args: Tuple[int, int, int, int, int, int, int, int, str]
) -> Tuple[tuple, dict]:
    """Generate one chunk inside a worker process.

    Returns ``(columns, telemetry_record)``: the four trace columns plus
    a chunk-local :meth:`RunTelemetry.child_record` the parent merges
    into the run's collector.  Checkpoints store columns only, so the
    record shape never touches the checkpoint format.
    """
    (
        chunk_idx,
        device_code,
        start_idx,
        n,
        first_ue_id,
        seed,
        start_hour,
        num_hours,
        engine,
    ) = args
    tele = RunTelemetry()
    with use_telemetry(tele):
        columns = _generate_chunk_columns(
            chunk_idx,
            device_code,
            start_idx,
            n,
            first_ue_id,
            seed,
            start_hour,
            num_hours,
            engine,
        )
    return columns, tele.child_record()


def _generate_chunk_columns(
    chunk_idx: int,
    device_code: int,
    start_idx: int,
    n: int,
    first_ue_id: int,
    seed: int,
    start_hour: int,
    num_hours: int,
    engine: str,
) -> tuple:
    assert _WORKER_MODEL is not None, "worker not initialized"
    if _WORKER_SCRATCH is not None:
        # Started-marker: lets the parent attribute a pool crash to the
        # chunks that were actually in flight (see _run_chunks_pool).
        try:
            with open(
                os.path.join(_WORKER_SCRATCH, f"started-{chunk_idx}"), "w"
            ):
                pass
        except OSError:
            pass
    _maybe_inject_fault(chunk_idx)
    from .ue_generator import generate_ue_events

    model_set = _WORKER_MODEL
    device_type = DeviceType(device_code)

    if engine == "compiled":
        population = CompiledPopulation(
            model_set,
            np.full(n, device_code, dtype=np.int8),
            start_idx + np.arange(n, dtype=np.int64),
            seed=seed,
            start_hour=start_hour,
        )
        return generate_columns(population, num_hours, first_ue_id)

    machine = model_set.machine()
    personas = np.asarray(model_set.device_ues[device_type], dtype=np.int64)
    tele = get_telemetry()
    rng_draws = 0

    ue_col, time_col, event_col, device_col = [], [], [], []
    for offset in range(n):
        rng = np.random.default_rng(
            np.random.SeedSequence(seed, spawn_key=(start_idx + offset,))
        )
        persona = int(personas[rng.integers(personas.size)])
        times, events = generate_ue_events(
            model_set,
            device_type,
            persona,
            start_hour=start_hour,
            num_hours=num_hours,
            rng=rng,
            machine=machine,
        )
        rng_draws += 2 * len(times) + 1  # estimate, see traffgen
        if times:
            k = len(times)
            ue_col.append(np.full(k, first_ue_id + offset, dtype=np.int64))
            time_col.append(np.asarray(times, dtype=np.float64))
            event_col.append(np.asarray(events, dtype=np.int8))
            device_col.append(np.full(k, device_code, dtype=np.int8))
    tele.count("ue_hours", n * num_hours)
    tele.count("rng_draws", rng_draws)
    if not ue_col:
        return _empty_columns()
    return (
        np.concatenate(ue_col),
        np.concatenate(time_col),
        np.concatenate(event_col),
        np.concatenate(device_col),
    )


def generate_parallel(
    model_set: ModelSet,
    num_ues: DeviceCounts,
    *,
    start_hour: int = 0,
    num_hours: int = 1,
    seed: int = 0,
    first_ue_id: int = 0,
    processes: Optional[int] = None,
    chunk_size: int = 500,
    engine: str = "compiled",
    checkpoint_path: "Optional[str | os.PathLike[str]]" = None,
    resume: bool = False,
    max_retries: int = 2,
    retry_backoff: float = 0.5,
    max_backoff: float = 30.0,
    fault_hook: Optional[Callable[[int, int], None]] = None,
    telemetry: Optional[RunTelemetry] = None,
) -> Trace:
    """Generate a trace using a process pool.

    Produces output identical to ``TrafficGenerator(model_set,
    engine=engine).generate`` with the same parameters.
    ``processes=None`` uses all CPUs; pass ``processes=1`` to run the
    chunked path in-process (useful for tests and debugging).

    A crashed or raising chunk worker is retried up to ``max_retries``
    times on a fresh process with capped exponential backoff
    (``retry_backoff * 2**k`` seconds, capped at ``max_backoff``); a
    chunk that still fails raises :class:`ChunkFailedError`.  With
    ``checkpoint_path`` each finished chunk is snapshotted so
    ``resume=True`` regenerates only the missing ones.  ``fault_hook``
    is a test-only in-process injection point called as
    ``fault_hook(chunk_idx, attempt)`` before each in-process chunk
    (``processes=1`` only).

    Workers collect chunk-local telemetry (UE-hours, RNG draws, compile
    spans) that is merged into ``telemetry`` (default: the ambient
    collector) as chunks finish; retries bump ``chunk_retries`` and
    chunks restored from a checkpoint bump ``chunks_resumed``.
    """
    _check_engine(engine)
    validate_run_args(
        start_hour=start_hour,
        num_hours=num_hours,
        seed=seed,
        first_ue_id=first_ue_id,
    )
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    if max_retries < 0:
        raise ValueError(f"max_retries must be non-negative, got {max_retries}")
    if retry_backoff < 0:
        raise ValueError(
            f"retry_backoff must be non-negative, got {retry_backoff}"
        )
    if resume and checkpoint_path is None:
        raise ValueError("resume=True requires checkpoint_path")

    tele = telemetry if telemetry is not None else get_telemetry()
    with use_telemetry(tele), tele.span("generate-parallel"):
        trace = _run_parallel(
            model_set,
            num_ues,
            start_hour=start_hour,
            num_hours=num_hours,
            seed=seed,
            first_ue_id=first_ue_id,
            processes=processes,
            chunk_size=chunk_size,
            engine=engine,
            checkpoint_path=checkpoint_path,
            resume=resume,
            max_retries=max_retries,
            retry_backoff=retry_backoff,
            max_backoff=max_backoff,
            fault_hook=fault_hook,
        )
    tele.count("events_emitted", len(trace))
    tele.record_peak_rss()
    return trace


def _run_parallel(
    model_set: ModelSet,
    num_ues: DeviceCounts,
    *,
    start_hour: int,
    num_hours: int,
    seed: int,
    first_ue_id: int,
    processes: Optional[int],
    chunk_size: int,
    engine: str,
    checkpoint_path: "Optional[str | os.PathLike[str]]",
    resume: bool,
    max_retries: int,
    retry_backoff: float,
    max_backoff: float,
    fault_hook: Optional[Callable[[int, int], None]],
) -> Trace:
    from .checkpoint import GenerationCheckpoint, RunKey, _rng_provenance

    tele = get_telemetry()
    generator = TrafficGenerator(model_set)
    counts = generator.resolve_counts(num_ues)
    chunks = _plan_chunks(counts, chunk_size, first_ue_id)
    tasks = {
        i: (i, device, start_idx, n, ue0, seed, start_hour, num_hours, engine)
        for i, (device, start_idx, n, ue0) in enumerate(chunks)
    }

    key = None
    results: Dict[int, tuple] = {}
    if checkpoint_path is not None:
        key = RunKey.for_run(
            model_set,
            counts,
            kind="parallel",
            engine=engine,
            seed=seed,
            start_hour=start_hour,
            num_hours=num_hours,
            first_ue_id=first_ue_id,
            chunk_size=chunk_size,
        )
        if resume:
            checkpoint = GenerationCheckpoint.load_for_run(checkpoint_path, key)
            results = dict(checkpoint.chunk_columns)
            tele.count("chunks_resumed", len(results))

    def _save() -> None:
        if checkpoint_path is None:
            return
        GenerationCheckpoint(
            key=key,
            chunk_columns=results,
            provenance=_rng_provenance(engine),
        ).save(checkpoint_path)

    pending = sorted(i for i in tasks if i not in results)
    if checkpoint_path is not None and not resume:
        _save()

    def _chunk_failed(idx: int, attempts: int, reason: str) -> ChunkFailedError:
        device, _, n, ue0 = chunks[idx]
        return ChunkFailedError(
            DeviceType(device),
            (ue0, ue0 + n),
            (start_hour, start_hour + num_hours),
            attempts,
            reason,
        )

    if pending:
        backoff = _Backoff(retry_backoff, max_backoff)
        if processes == 1:
            _run_chunks_inline(
                model_set,
                tasks,
                pending,
                results,
                max_retries=max_retries,
                backoff=backoff,
                fault_hook=fault_hook,
                chunk_failed=_chunk_failed,
                save=_save,
            )
        else:
            run_tasks_pool(
                _generate_chunk,
                model_set.to_dict(),
                _init_worker,
                tasks,
                pending,
                results,
                processes=processes,
                max_retries=max_retries,
                backoff=backoff,
                task_failed=_chunk_failed,
                save=_save,
                phase="generate-parallel",
            )

    ue_col, time_col, event_col, device_col = [], [], [], []
    for i in range(len(chunks)):
        ue, times, events, devices = results[i]
        if ue is None or len(ue) == 0:
            continue
        ue_col.append(ue)
        time_col.append(times)
        event_col.append(events)
        device_col.append(devices)
    if not ue_col:
        return Trace.empty()
    return Trace(
        np.concatenate(ue_col),
        np.concatenate(time_col),
        np.concatenate(event_col),
        np.concatenate(device_col),
        validate=False,
    )


class _Backoff:
    """Capped exponential backoff between retry rounds."""

    def __init__(self, base: float, cap: float) -> None:
        self.base = base
        self.cap = cap
        self.failures = 0

    def sleep(self) -> None:
        self.failures += 1
        delay = min(self.base * (2 ** (self.failures - 1)), self.cap)
        if delay > 0:
            time.sleep(delay)


def _run_chunks_inline(
    model_set: ModelSet,
    tasks: Dict[int, tuple],
    pending: List[int],
    results: Dict[int, tuple],
    *,
    max_retries: int,
    backoff: _Backoff,
    fault_hook: Optional[Callable[[int, int], None]],
    chunk_failed: Callable[[int, int, str], ChunkFailedError],
    save: Callable[[], None],
) -> None:
    """Run the chunks in-process (``processes=1``), with the retry policy."""
    tele = get_telemetry()
    tele.max_gauge("active_workers", 1)
    _init_worker(model_set.to_dict())
    for i in pending:
        attempt = 0
        while True:
            try:
                if fault_hook is not None:
                    fault_hook(i, attempt)
                columns, record = _generate_chunk(tasks[i])
            except Exception as exc:
                attempt += 1
                tele.count("chunk_retries")
                if attempt > max_retries:
                    raise chunk_failed(i, attempt, repr(exc)) from exc
                backoff.sleep()
            else:
                results[i] = columns
                tele.merge_child(record)
                tele.progress("generate-parallel", len(results), len(tasks))
                save()
                break


def run_tasks_pool(
    worker: Callable[[tuple], Tuple[Any, dict]],
    payload: Any,
    initializer: Callable[..., None],
    tasks: Dict[int, tuple],
    pending: List[int],
    results: Dict[int, Any],
    *,
    processes: Optional[int],
    max_retries: int,
    backoff: _Backoff,
    task_failed: Callable[[int, int, str], Exception],
    save: Optional[Callable[[], None]] = None,
    phase: str = "parallel-tasks",
    retry_counter: str = "chunk_retries",
) -> None:
    """Drive a set of pure tasks through process pools until done or failed.

    This is the fault-tolerant pool loop shared by parallel generation
    and parallel fitting.  The contract:

    - ``tasks[i]`` is the picklable argument tuple for task ``i``; its
      first element must be ``i`` itself, and ``worker(tasks[i])`` must
      write a ``started-<i>`` marker file into the scratch directory its
      initializer received before doing real work (that is what lets a
      pool crash be attributed to the tasks actually in flight).
    - ``initializer(payload, scratch_dir)`` installs per-process state.
    - ``worker`` returns ``(result, telemetry_child_record)``; results
      land in ``results[i]`` and records are merged into the ambient
      collector.

    Worker exceptions are attributed to their task directly.  A pool
    break (worker death) is attributed to the started-but-unfinished
    tasks; a task suspected in two consecutive broken rounds is rerun
    *alone* in a single-worker pool, where a crash is unambiguous and
    counts as a confirmed failure.  Confirmed failures beyond
    ``max_retries`` raise the exception built by ``task_failed(idx,
    attempts, reason)``.
    """
    tele = get_telemetry()
    confirmed: Dict[int, int] = {}
    streak: Dict[int, int] = {}
    causes: Dict[int, str] = {}
    todo: Set[int] = set(pending)
    while todo:
        isolated = sorted(i for i in todo if streak.get(i, 0) >= 2)
        single = bool(isolated)
        batch = isolated[:1] if single else sorted(todo)
        workers = 1 if single else (processes or os.cpu_count() or 1)
        tele.max_gauge("active_workers", min(len(batch), workers))
        scratch = tempfile.mkdtemp(prefix="repro-tasks-")
        broken = False
        failed_this_round = False
        try:
            with ProcessPoolExecutor(
                max_workers=1 if single else processes,
                initializer=initializer,
                initargs=(payload, scratch),
            ) as executor:
                futures = {}
                try:
                    for i in batch:
                        futures[executor.submit(worker, tasks[i])] = i
                except BrokenProcessPool:
                    broken = True
                for future in as_completed(futures):
                    i = futures[future]
                    try:
                        result, record = future.result()
                    except BrokenProcessPool:
                        broken = True
                    except Exception as exc:
                        failed_this_round = True
                        confirmed[i] = confirmed.get(i, 0) + 1
                        causes[i] = repr(exc)
                        tele.count(retry_counter)
                        if confirmed[i] > max_retries:
                            raise task_failed(
                                i, confirmed[i], causes[i]
                            ) from exc
                    else:
                        results[i] = result
                        tele.merge_child(record)
                        todo.discard(i)
                        streak.pop(i, None)
                        tele.progress(phase, len(results), len(tasks))
                        if save is not None:
                            save()
            if broken:
                failed_this_round = True
                started = {
                    int(name.split("-", 1)[1])
                    for name in os.listdir(scratch)
                    if name.startswith("started-")
                }
                suspects = sorted(todo & started) or sorted(
                    set(batch) & todo
                )
                for i in suspects:
                    causes[i] = "worker process died (pool broken)"
                    tele.count(retry_counter)
                    if single:
                        # Alone in the pool: the crash is this task's.
                        confirmed[i] = confirmed.get(i, 0) + 1
                        if confirmed[i] > max_retries:
                            raise task_failed(i, confirmed[i], causes[i])
                    else:
                        streak[i] = streak.get(i, 0) + 1
        finally:
            shutil.rmtree(scratch, ignore_errors=True)
        if todo and failed_this_round:
            backoff.sleep()
