"""Parallel trace generation across processes.

The paper ran 38K/380K per-UE generator instances across 12 CPUs with
GNU ``parallel``.  Here the same fan-out uses a ``multiprocessing``
pool: the UE population is split into contiguous chunks, each worker
generates its chunk with the *same* per-UE random substreams the serial
path would use, and the chunks are merged.  The output is bit-identical
to :meth:`TrafficGenerator.generate` with the same arguments and
engine.

Per-UE substreams are derived directly from the UE's position in the
generation order — ``SeedSequence(seed, spawn_key=(position,))`` for
the reference engine, a Philox counter keyed on the position for the
compiled engine — so per-worker setup is O(chunk), not O(population).
"""

from __future__ import annotations

import multiprocessing
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..model.model_set import ModelSet
from ..trace.events import DeviceType
from ..trace.trace import Trace
from .compiled import CompiledPopulation, generate_columns
from .traffgen import DeviceCounts, TrafficGenerator, _check_engine

# Worker-global model set, installed once per process by _init_worker
# so each task message carries only the chunk bounds.
_WORKER_MODEL: Optional[ModelSet] = None


def _init_worker(model_payload: dict) -> None:
    global _WORKER_MODEL
    _WORKER_MODEL = ModelSet.from_dict(model_payload)


def _plan_chunks(
    counts: Dict[DeviceType, int], chunk_size: int, first_ue_id: int
) -> List[Tuple[int, int, int, int]]:
    """Split the population into (device, start_idx, n, first_ue_id) chunks.

    ``start_idx`` is the UE's position in the whole generation order,
    which indexes the seed substream — this is what keeps parallel
    output identical to serial output.
    """
    chunks = []
    position = 0
    ue_id = first_ue_id
    for device_type in sorted(counts, key=int):
        remaining = counts[device_type]
        while remaining > 0:
            n = min(chunk_size, remaining)
            chunks.append((int(device_type), position, n, ue_id))
            position += n
            ue_id += n
            remaining -= n
    return chunks


def _generate_chunk(args: Tuple[int, int, int, int, int, int, int, str]) -> tuple:
    """Generate one chunk inside a worker process."""
    (device_code, start_idx, n, first_ue_id, seed, start_hour, num_hours, engine) = args
    assert _WORKER_MODEL is not None, "worker not initialized"
    from .ue_generator import generate_ue_events

    model_set = _WORKER_MODEL
    device_type = DeviceType(device_code)

    if engine == "compiled":
        population = CompiledPopulation(
            model_set,
            np.full(n, device_code, dtype=np.int8),
            start_idx + np.arange(n, dtype=np.int64),
            seed=seed,
            start_hour=start_hour,
        )
        columns = generate_columns(population, num_hours, first_ue_id)
        if len(columns[0]) == 0:
            return (None, None, None, None)
        return columns

    machine = model_set.machine()
    personas = np.asarray(model_set.device_ues[device_type], dtype=np.int64)

    ue_col, time_col, event_col, device_col = [], [], [], []
    for offset in range(n):
        rng = np.random.default_rng(
            np.random.SeedSequence(seed, spawn_key=(start_idx + offset,))
        )
        persona = int(personas[rng.integers(personas.size)])
        times, events = generate_ue_events(
            model_set,
            device_type,
            persona,
            start_hour=start_hour,
            num_hours=num_hours,
            rng=rng,
            machine=machine,
        )
        if times:
            k = len(times)
            ue_col.append(np.full(k, first_ue_id + offset, dtype=np.int64))
            time_col.append(np.asarray(times, dtype=np.float64))
            event_col.append(np.asarray(events, dtype=np.int8))
            device_col.append(np.full(k, device_code, dtype=np.int8))
    if not ue_col:
        return (None, None, None, None)
    return (
        np.concatenate(ue_col),
        np.concatenate(time_col),
        np.concatenate(event_col),
        np.concatenate(device_col),
    )


def generate_parallel(
    model_set: ModelSet,
    num_ues: DeviceCounts,
    *,
    start_hour: int = 0,
    num_hours: int = 1,
    seed: int = 0,
    first_ue_id: int = 0,
    processes: Optional[int] = None,
    chunk_size: int = 500,
    engine: str = "compiled",
) -> Trace:
    """Generate a trace using a process pool.

    Produces output identical to ``TrafficGenerator(model_set,
    engine=engine).generate`` with the same parameters.
    ``processes=None`` uses all CPUs; pass ``processes=1`` to run the
    chunked path in-process (useful for tests and debugging).
    """
    _check_engine(engine)
    generator = TrafficGenerator(model_set)
    counts = generator.resolve_counts(num_ues)
    chunks = _plan_chunks(counts, chunk_size, first_ue_id)
    tasks = [
        (device, start_idx, n, ue0, seed, start_hour, num_hours, engine)
        for (device, start_idx, n, ue0) in chunks
    ]

    if processes == 1:
        _init_worker(model_set.to_dict())
        results = [_generate_chunk(task) for task in tasks]
    else:
        payload = model_set.to_dict()
        with multiprocessing.Pool(
            processes=processes,
            initializer=_init_worker,
            initargs=(payload,),
        ) as pool:
            results = pool.map(_generate_chunk, tasks)

    ue_col, time_col, event_col, device_col = [], [], [], []
    for ue, times, events, devices in results:
        if ue is None:
            continue
        ue_col.append(ue)
        time_col.append(times)
        event_col.append(events)
        device_col.append(devices)
    if not ue_col:
        return Trace.empty()
    return Trace(
        np.concatenate(ue_col),
        np.concatenate(time_col),
        np.concatenate(event_col),
        np.concatenate(device_col),
        validate=False,
    )
