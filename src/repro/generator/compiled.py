"""Compiled vectorized generation engine (the ``engine="compiled"`` path).

The reference generator walks one Python-level :meth:`SemiMarkovChain.step`
per event: it re-reads the edge list, draws the edge with ``rng`` calls and
the dwell with a scalar ``np.interp`` — tens of microseconds of interpreter
work per event.  This module lowers every (device, hour) model of a
:class:`~repro.model.model_set.ModelSet` into flat NumPy arrays once
(:func:`compile_model_set`, memoized per model set) and then advances *all
active UEs of a device-hour together*, so the per-event cost is a few
vectorized array operations shared by the whole cohort:

- **Merged edge table (CSR)** — all clusters of an hour model share one
  flat table: cluster ``c``'s state ``s`` becomes merged code ``c * S + s``
  (``S`` = number of states in the universe), so UEs in *different
  clusters and different states* advance in a single batch.  Edge choice
  is one ``searchsorted`` over the composite keys ``merged_code +
  cum_prob`` queried at ``merged_code + u``.
- **Quantile-knot matrix** — every edge's sojourn distribution is lowered
  via :meth:`Distribution.compile_sojourn` to inverse-CDF knots laid out in
  one flat array keyed by ``edge_index + prob``; a second composite
  ``searchsorted`` plus linear interpolation reproduces
  ``EmpiricalCDF.ppf``, and exponential edges use the closed-form inverse
  transform.  First-event types and offsets use the same trick keyed by
  cluster index.
- **Counter-based randomness** — every uniform is a pure function of
  ``(seed, ue_index, hour, purpose, step)`` evaluated with a vectorized
  Philox-4x64-10 implementation (bit-validated against
  ``np.random.Philox``).  Step uniforms are drawn in blocks of
  ``_STEP_BLOCK`` rounds — one Philox call yields four lanes per counter,
  i.e. two (edge, dwell) rounds — so the fixed cost of a Philox invocation
  is amortized over the whole block.  Because no draw depends on cohort
  composition, serial, process-parallel and streaming production are
  bit-identical by construction, and per-worker setup is O(chunk), not
  O(population).

The engine is statistically equivalent to the reference path (same fitted
edge probabilities, identical inverse-transform dwell curves, same
first-event and overlay models) but does not reproduce its RNG stream;
``engine="reference"`` remains the oracle.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..model.model_set import ClusterModel, HourModel, ModelSet
from ..model.semi_markov import MIN_SOJOURN
from ..statemachines.replay import _canonical_source_for
from ..trace.events import (
    SECONDS_PER_HOUR,
    DeviceType,
    EventType,
    quantize_times,
)
from . import ue_generator

__all__ = [
    "CompiledModelSet",
    "CompiledPopulation",
    "compile_model_set",
    "philox4x64",
]

# ---------------------------------------------------------------------------
# Vectorized Philox-4x64-10 (Random123 / np.random.Philox constants)
# ---------------------------------------------------------------------------

_M32 = np.uint64(0xFFFFFFFF)
_S32 = np.uint64(32)
_S11 = np.uint64(11)
_PHILOX_M0 = np.uint64(0xD2E7470EE14C6C93)
_PHILOX_M1 = np.uint64(0xCA5A826395121157)
_PHILOX_W0 = np.uint64(0x9E3779B97F4A7C15)
_PHILOX_W1 = np.uint64(0xBB67AE8584CAA73B)
_INV_2_53 = float(2.0 ** -53)

#: Rounds of step uniforms drawn per Philox block.  Each counter yields
#: four lanes = two (edge, dwell) rounds, so a block is one Philox call
#: over ``_STEP_BLOCK / 2`` counters per UE.  The (UE, round) → uniform
#: mapping is fixed (counter ``round >> 1``, lane pair by round parity),
#: so outputs do not depend on how the population is partitioned.
_STEP_BLOCK = 32

#: When a cohort shrinks to this many UEs at a block boundary, the
#: survivors are finished one at a time in a scalar loop (see
#: :meth:`CompiledPopulation._drain_ue`): a handful of long-running UEs
#: would otherwise keep paying whole-cohort vector overhead per round.
#: The scalar path evaluates the same IEEE-754 expressions on the same
#: Philox uniforms, so its events are bit-identical to the vector path's
#: — the threshold affects speed only, never output.
_DRAIN_THRESHOLD = 16

#: Rounds of step uniforms drawn per Philox call while draining one UE.
_DRAIN_BLOCK = 256

#: Domain-separation codes for the ``c2`` counter word, so every kind of
#: decision a UE makes consumes an independent part of the Philox domain.
_P_KEY = np.uint64(0)       #: per-UE key derivation from the root key
_P_PERSONA = np.uint64(1)   #: persona draw (once per UE)
_P_CLUSTER = np.uint64(2)   #: cluster draw for personas without assignment
_P_FIRST = np.uint64(3)     #: first-event (active / type / offset) draws
_P_STEP = np.uint64(4)      #: chain stepping (edge + dwell per round)
_P_OVERLAY_N = np.uint64(5)  #: overlay Poisson count
_P_OVERLAY_T = np.uint64(6)  #: overlay event times


def _mulhilo(a: np.ndarray, b: np.uint64) -> Tuple[np.ndarray, np.ndarray]:
    """(high, low) 64-bit halves of the 128-bit product ``a * b``."""
    lo = a * b
    a0 = a & _M32
    a1 = a >> _S32
    b0 = b & _M32
    b1 = b >> _S32
    t = a1 * b0 + ((a0 * b0) >> _S32)
    tl = (t & _M32) + a0 * b1
    hi = a1 * b1 + (t >> _S32) + (tl >> _S32)
    return hi, lo


def philox4x64(
    c0, c1, c2, c3, k0, k1
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """One Philox-4x64-10 block, vectorized over the counter/key arrays.

    Matches ``np.random.Philox(counter, key).random_raw(4)`` for the
    counter *after* numpy's pre-increment (numpy bumps the counter before
    producing its first block).
    """
    c0 = np.asarray(c0, dtype=np.uint64)
    c1 = np.asarray(c1, dtype=np.uint64)
    c2 = np.asarray(c2, dtype=np.uint64)
    c3 = np.asarray(c3, dtype=np.uint64)
    k0 = np.asarray(k0, dtype=np.uint64)
    k1 = np.asarray(k1, dtype=np.uint64)
    with np.errstate(over="ignore"):
        for _ in range(10):
            hi0, lo0 = _mulhilo(c0, _PHILOX_M0)
            hi1, lo1 = _mulhilo(c2, _PHILOX_M1)
            c0, c1, c2, c3 = hi1 ^ c1 ^ k0, lo1, hi0 ^ c3 ^ k1, lo0
            k0 = k0 + _PHILOX_W0
            k1 = k1 + _PHILOX_W1
    return c0, c1, c2, c3


def _to_unit(x: np.ndarray) -> np.ndarray:
    """Map uint64 words to float64 uniforms in ``[0, 1)`` (53-bit)."""
    return (x >> _S11).astype(np.float64) * _INV_2_53


def _uniforms(
    k0: np.ndarray,
    k1: np.ndarray,
    c0,
    c1,
    purpose: np.uint64,
    c3=np.uint64(0),
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Four independent uniforms per lane for one (purpose, step) slot."""
    x0, x1, x2, x3 = philox4x64(c0, c1, purpose, c3, k0, k1)
    return _to_unit(x0), _to_unit(x1), _to_unit(x2), _to_unit(x3)


#: Past this rate the leading CDF term ``exp(-lam)`` underflows float64
#: (at lam ~ 745) and term-by-term inversion is both impossible and
#: pointlessly slow; counts switch to the normal approximation.
_POISSON_INVERT_MAX = 700.0

# Coefficients of Acklam's rational approximation to the inverse
# standard-normal CDF (|relative error| < 1.2e-9).
_PPF_A = (-3.969683028665376e+01, 2.209460984245205e+02,
          -2.759285104469687e+02, 1.383577518672690e+02,
          -3.066479806614716e+01, 2.506628277459239e+00)
_PPF_B = (-5.447609879822406e+01, 1.615858368580409e+02,
          -1.556989798598866e+02, 6.680131188771972e+01,
          -1.328068155288572e+01)
_PPF_C = (-7.784894002430293e-03, -3.223964580411365e-01,
          -2.400758277161838e+00, -2.549732539343734e+00,
          4.374664141464968e+00, 2.938163982698783e+00)
_PPF_D = (7.784695709041462e-03, 3.224671290700398e-01,
          2.445134137142996e+00, 3.754408661907416e+00)


def _norm_ppf(u: np.ndarray) -> np.ndarray:
    """Inverse standard-normal CDF (Acklam), vectorized."""
    u = np.clip(u, 1e-12, 1.0 - 1e-12)
    out = np.empty_like(u)
    a, b, c, d = _PPF_A, _PPF_B, _PPF_C, _PPF_D
    lo = u < 0.02425
    hi = u > 1.0 - 0.02425
    mid = ~(lo | hi)
    if lo.any():
        q = np.sqrt(-2.0 * np.log(u[lo]))
        out[lo] = (
            ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    if hi.any():
        q = np.sqrt(-2.0 * np.log(1.0 - u[hi]))
        out[hi] = -(
            ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    if mid.any():
        q = u[mid] - 0.5
        r = q * q
        out[mid] = (
            ((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]
        ) * q / (
            ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0
        )
    return out


def _poisson_from_uniform(u: np.ndarray, lam: float) -> np.ndarray:
    """Poisson counts by CDF inversion of pre-drawn uniforms.

    Above :data:`_POISSON_INVERT_MAX` the count comes from the normal
    approximation ``N(lam, lam)`` (continuity-corrected) of the same
    uniform — at such rates the two are statistically indistinguishable,
    and exact term-by-term inversion is numerically impossible.
    """
    if lam > _POISSON_INVERT_MAX:
        counts = np.rint(lam + math.sqrt(lam) * _norm_ppf(u) - 0.5)
        return np.maximum(counts, 0.0).astype(np.int64)
    term = math.exp(-lam)
    n = np.zeros(u.shape, dtype=np.int64)
    terms = np.full(u.shape, term)
    cdf = terms.copy()
    cap = int(lam + 12.0 * math.sqrt(lam + 1.0) + 64)
    for k in range(1, cap + 1):
        active = u >= cdf
        if not active.any():
            break
        terms *= lam / k
        cdf += terms
        n[active] += 1
    return n


def _pad_knots(
    probs: np.ndarray, values: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Guarantee at least two knots per inverse-CDF segment.

    A single-knot empirical CDF (one fitted sample) evaluates to that
    value for *every* ``u`` under ``np.interp``; two equal-valued knots
    interpolate to exactly the same constant, so padding preserves the
    reference semantics while letting :func:`_interp_knots` assume every
    segment has an interior.
    """
    if len(probs) == 1:
        v = float(values[0])
        return np.asarray([0.25, 0.75]), np.asarray([v, v])
    return np.asarray(probs, dtype=np.float64), np.asarray(values, np.float64)


def _interp_knots(
    kb: np.ndarray,
    u: np.ndarray,
    key: np.ndarray,
    ptr: np.ndarray,
    kp: np.ndarray,
    kv: np.ndarray,
) -> np.ndarray:
    """Batched ``np.interp(u, probs, values)`` over heterogeneous segments.

    ``kb`` selects each element's knot segment (``ptr[kb]:ptr[kb+1]`` in
    the flat ``kp``/``kv`` arrays); ``key`` holds the composite keys
    ``segment_index + prob``.  Clamps at segment ends reproduce
    ``np.interp``'s behaviour outside the knot range.  Every segment must
    have at least two knots (see :func:`_pad_knots`).
    """
    lo = ptr[kb]
    hi = ptr[kb + 1]
    pos = np.searchsorted(key, kb + u)
    pc = np.minimum(np.maximum(pos, lo + 1), hi - 1)
    p0 = kp[pc - 1]
    p1 = kp[pc]
    v0 = kv[pc - 1]
    v1 = kv[pc]
    uu = np.minimum(np.maximum(u, p0), p1)
    return v0 + (uu - p0) * (v1 - v0) / (p1 - p0)


# ---------------------------------------------------------------------------
# Compiled model tables
# ---------------------------------------------------------------------------


class CompiledCluster:
    """One cluster model lowered to flat arrays (see module docstring)."""

    __slots__ = (
        "state_deg",
        "sel_key",
        "edge_event",
        "edge_target",
        "edge_kind",
        "edge_rate",
        "edge_knot_ptr",
        "knot_key",
        "knot_p",
        "knot_v",
        "p_active",
        "fe_event",
        "fe_cum",
        "fe_state",
        "fe_off_p",
        "fe_off_v",
        "overlay",
    )

    def __init__(
        self,
        cluster: ClusterModel,
        state_code: Dict[str, int],
        canonical_next: np.ndarray,
    ) -> None:
        table = cluster.chain.edge_table(state_code)
        self.state_deg = table["state_deg"]
        self.sel_key = table["sel_key"]
        self.edge_event = table["edge_event"]
        self.edge_target = table["edge_target"]

        num_edges = len(self.sel_key)
        self.edge_kind = np.zeros(num_edges, dtype=np.int8)
        self.edge_rate = np.ones(num_edges, dtype=np.float64)
        ptr = np.zeros(num_edges + 1, dtype=np.int64)
        knot_key: List[np.ndarray] = []
        knot_p: List[np.ndarray] = []
        knot_v: List[np.ndarray] = []
        for e, sojourn in enumerate(table["edge_sojourn"]):
            lowered = sojourn.compile_sojourn()
            if lowered[0] == "empirical":
                probs, values = _pad_knots(lowered[1], lowered[2])
                knot_key.append(e + probs)
                knot_p.append(probs)
                knot_v.append(values)
                ptr[e + 1] = ptr[e] + len(probs)
            else:
                self.edge_kind[e] = 1
                self.edge_rate[e] = lowered[1]
                ptr[e + 1] = ptr[e]
        self.edge_knot_ptr = ptr
        self.knot_key = (
            np.concatenate(knot_key) if knot_key else np.empty(0, np.float64)
        )
        self.knot_p = (
            np.concatenate(knot_p) if knot_p else np.empty(0, np.float64)
        )
        self.knot_v = (
            np.concatenate(knot_v) if knot_v else np.empty(0, np.float64)
        )

        first = cluster.first_event
        events, cum = first.event_table()
        self.p_active = float(first.p_active) if len(events) else 0.0
        self.fe_event = np.asarray([int(e) for e in events], dtype=np.int16)
        self.fe_cum = np.asarray(cum, dtype=np.float64)
        self.fe_state = np.asarray(
            [canonical_next[int(e)] for e in events], dtype=np.int32
        )
        if np.any(self.fe_state < 0):
            bad = [e.name for e in events if canonical_next[int(e)] < 0]
            raise ValueError(
                f"first-event types {bad} have no canonical source state"
            )
        off_kind, off_p, off_v = first.offset.compile_sojourn()
        assert off_kind == "empirical"
        self.fe_off_p, self.fe_off_v = _pad_knots(off_p, off_v)

        self.overlay = sorted(
            (int(event), float(rate))
            for event, rate in cluster.overlay_rates.items()
            if rate > 0
        )


class CompiledHourModel:
    """One (device, hour) model with all clusters merged into flat tables.

    Cluster ``c``'s state ``s`` lives at merged code ``c * S + s``, so one
    ``searchsorted`` per round steps every active UE of the hour at once,
    whatever cluster or state it is in.  First-event tables use the same
    composite-key layout indexed by cluster.
    """

    __slots__ = (
        "clusters",
        "assign_keys",
        "assign_vals",
        "weights_cum",
        "S",
        "state_deg",
        "sel_key",
        "edge_event",
        "edge_target",
        "edge_kind",
        "edge_rate",
        "has_exp",
        "edge_knot_ptr",
        "knot_key",
        "knot_p",
        "knot_v",
        "p_active",
        "fe_key",
        "fe_event",
        "fe_state",
        "foff_key",
        "foff_ptr",
        "foff_p",
        "foff_v",
        "overlay_clusters",
        "_scalar",
    )

    def __init__(
        self,
        hour_model: HourModel,
        state_code: Dict[str, int],
        canonical_next: np.ndarray,
    ) -> None:
        self.clusters = [
            CompiledCluster(c, state_code, canonical_next)
            for c in hour_model.clusters
        ]
        items = sorted(hour_model.assignment.items())
        self.assign_keys = np.asarray([k for k, _ in items], dtype=np.int64)
        self.assign_vals = np.asarray([v for _, v in items], dtype=np.int32)
        cum = np.cumsum(hour_model.weights())
        if cum.size:
            cum[-1] = 1.0
        self.weights_cum = cum

        S = len(state_code)
        self.S = S
        sd, sk, ev, tg, kind, rate = [], [], [], [], [], []
        kptr, kk, kp, kv = [], [], [], []
        pa, fek, fee, fes = [], [], [], []
        fok, fop, fov, folen = [], [], [], []
        edge_off = 0
        knot_off = 0
        for c, cc in enumerate(self.clusters):
            base = c * S
            sd.append(cc.state_deg)
            sk.append(cc.sel_key + base)
            ev.append(cc.edge_event)
            tg.append(cc.edge_target.astype(np.int64) + base)
            kind.append(cc.edge_kind)
            rate.append(cc.edge_rate)
            kptr.append(cc.edge_knot_ptr[:-1] + knot_off)
            kk.append(cc.knot_key + edge_off)
            kp.append(cc.knot_p)
            kv.append(cc.knot_v)
            edge_off += cc.sel_key.size
            knot_off += cc.knot_key.size
            pa.append(cc.p_active)
            fek.append(c + cc.fe_cum)
            fee.append(cc.fe_event)
            fes.append(cc.fe_state)
            fok.append(c + cc.fe_off_p)
            fop.append(cc.fe_off_p)
            fov.append(cc.fe_off_v)
            folen.append(cc.fe_off_p.size)
        kptr.append(np.asarray([knot_off], dtype=np.int64))

        def cat(parts, dtype):
            return (
                np.concatenate(parts)
                if parts
                else np.empty(0, dtype=dtype)
            )

        self.state_deg = cat(sd, np.int64)
        self.sel_key = cat(sk, np.float64)
        self.edge_event = cat(ev, np.int16)
        self.edge_target = cat(tg, np.int64)
        self.edge_kind = cat(kind, np.int8)
        self.edge_rate = cat(rate, np.float64)
        self.has_exp = bool((self.edge_kind == 1).any())
        self.edge_knot_ptr = cat(kptr, np.int64)
        self.knot_key = cat(kk, np.float64)
        self.knot_p = cat(kp, np.float64)
        self.knot_v = cat(kv, np.float64)
        self.p_active = np.asarray(pa, dtype=np.float64)
        self.fe_key = cat(fek, np.float64)
        self.fe_event = cat(fee, np.int16)
        self.fe_state = cat(fes, np.int32)
        self.foff_key = cat(fok, np.float64)
        self.foff_p = cat(fop, np.float64)
        self.foff_v = cat(fov, np.float64)
        self.foff_ptr = np.concatenate(
            [[0], np.cumsum(np.asarray(folen, dtype=np.int64))]
        )
        self.overlay_clusters = [
            c for c, cc in enumerate(self.clusters) if cc.overlay
        ]
        self._scalar: Optional[tuple] = None

    def scalar_tables(self) -> tuple:
        """The merged tables as Python lists, for the scalar drain loop.

        Built lazily on first use; ``bisect`` on a list plus plain float
        arithmetic is several times faster per element than NumPy calls
        on singleton arrays.
        """
        if self._scalar is None:
            self._scalar = (
                self.sel_key.tolist(),
                self.state_deg.tolist(),
                self.edge_event.tolist(),
                self.edge_target.tolist(),
                self.edge_kind.tolist(),
                self.edge_rate.tolist(),
                self.edge_knot_ptr.tolist(),
                self.knot_key.tolist(),
                self.knot_p.tolist(),
                self.knot_v.tolist(),
                self.has_exp,
            )
        return self._scalar

    def clusters_for(
        self,
        personas: np.ndarray,
        k0: np.ndarray,
        k1: np.ndarray,
        hour_idx: int,
        population: "Optional[CompiledPopulation]" = None,
    ) -> np.ndarray:
        """Cluster code per UE: assignment lookup, weighted draw if unknown."""
        if self.assign_keys.size:
            pos = np.searchsorted(self.assign_keys, personas)
            pos_c = np.minimum(pos, self.assign_keys.size - 1)
            known = self.assign_keys[pos_c] == personas
            cl = np.where(known, self.assign_vals[pos_c], -1).astype(np.int64)
        else:
            cl = np.full(personas.shape, -1, dtype=np.int64)
        unknown = cl < 0
        if unknown.any():
            if population is not None:
                population.rng_draws += int(np.count_nonzero(unknown))
            u = _uniforms(
                k0[unknown], k1[unknown], 0, hour_idx, _P_CLUSTER
            )[0]
            draw = np.searchsorted(self.weights_cum, u, side="right")
            cl[unknown] = np.minimum(draw, len(self.clusters) - 1)
        return cl


class CompiledModelSet:
    """A :class:`ModelSet` lowered for batched generation."""

    __slots__ = ("state_names", "canonical_next", "hours", "device_ues")

    def __init__(self, model_set: ModelSet) -> None:
        machine = model_set.machine()
        names = set(machine.states)
        for hours in model_set.models.values():
            for hm in hours.values():
                for cluster in hm.clusters:
                    for state, sm in cluster.chain.states.items():
                        names.add(state)
                        names.update(e.target for e in sm.edges)
        self.state_names = sorted(names)
        state_code = {s: i for i, s in enumerate(self.state_names)}

        num_events = max(int(e) for e in EventType) + 1
        canonical_next = np.full(num_events, -1, dtype=np.int32)
        for event in EventType:
            try:
                source = _canonical_source_for(machine, event)
            except ValueError:
                continue
            canonical_next[int(event)] = state_code[
                machine.next_state(source, event)
            ]
        self.canonical_next = canonical_next

        self.hours: Dict[int, Dict[int, CompiledHourModel]] = {}
        for device_type, hour_models in model_set.models.items():
            self.hours[int(device_type)] = {
                hour: CompiledHourModel(hm, state_code, canonical_next)
                for hour, hm in hour_models.items()
            }
        self.device_ues = {
            int(dt): np.asarray(ues, dtype=np.int64)
            for dt, ues in model_set.device_ues.items()
        }


def compile_model_set(model_set: ModelSet) -> CompiledModelSet:
    """Lower ``model_set``, memoizing the result on the instance."""
    cached = getattr(model_set, "_compiled_cache", None)
    if cached is None:
        from ..telemetry import get_telemetry

        with get_telemetry().span("model-compile"):
            cached = CompiledModelSet(model_set)
        model_set._compiled_cache = cached
    return cached


# ---------------------------------------------------------------------------
# Batched population stepping
# ---------------------------------------------------------------------------


class CompiledPopulation:
    """A batch of UEs advanced one hour at a time by the compiled engine.

    ``ue_indices`` are the UEs' positions in the whole generation order —
    they parameterize each UE's random substream, so any partition of the
    population (serial, per-chunk parallel, streaming) produces exactly
    the same events for a given UE.
    """

    def __init__(
        self,
        model_set: ModelSet,
        device_codes: np.ndarray,
        ue_indices: np.ndarray,
        *,
        seed: int,
        start_hour: int,
    ) -> None:
        self.compiled = compile_model_set(model_set)
        self.device_codes = np.asarray(device_codes, dtype=np.int8)
        self.start_hour = int(start_hour)
        n = len(self.device_codes)

        root = np.random.SeedSequence(seed).generate_state(2, np.uint64)
        idx = np.asarray(ue_indices, dtype=np.uint64)
        k = philox4x64(idx, 0, _P_KEY, 0, root[0], root[1])
        self.k0, self.k1 = k[0], k[1]

        self.persona = np.zeros(n, dtype=np.int64)
        self._device_rows: Dict[int, np.ndarray] = {}
        u_persona = _uniforms(self.k0, self.k1, 0, 0, _P_PERSONA)[0]
        for code in np.unique(self.device_codes):
            rows = np.flatnonzero(self.device_codes == code)
            self._device_rows[int(code)] = rows
            personas = self.compiled.device_ues.get(int(code))
            if personas is None or personas.size == 0:
                raise ValueError(
                    f"no fitted model for device type {DeviceType(int(code)).name}"
                )
            pick = np.minimum(
                (u_persona[rows] * personas.size).astype(np.int64),
                personas.size - 1,
            )
            self.persona[rows] = personas[pick]

        #: Chain state code per UE; -1 = no state yet (first-event model).
        self.state = np.full(n, -1, dtype=np.int32)
        self._next_hour_idx = 0
        #: Uniform variates consumed so far (persona, first-event,
        #: chain-step, and overlay draws) — exact for this engine, read
        #: by the telemetry layer as the ``rng_draws`` counter.
        self.rng_draws = n

    # ------------------------------------------------------------------
    def snapshot(self) -> Tuple[np.ndarray, int]:
        """Carryover state for checkpoint/resume: (chain codes, next hour).

        Personas and per-UE Philox keys are pure functions of the seed
        and are replayed by ``__init__``; the chain-state array plus the
        hour counter are the only mutable state, so restoring them via
        :meth:`restore` makes the continuation bit-identical.
        """
        return self.state.copy(), int(self._next_hour_idx)

    def restore(self, state: np.ndarray, next_hour_idx: int) -> None:
        """Install carryover state captured by :meth:`snapshot`."""
        state = np.asarray(state, dtype=np.int32)
        if state.shape != self.state.shape:
            raise ValueError(
                f"carryover state has {state.shape[0] if state.ndim else 0} "
                f"entries, population has {self.state.shape[0]}"
            )
        self.state = state.copy()
        self._next_hour_idx = int(next_hour_idx)

    # ------------------------------------------------------------------
    def advance_hour(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Generate the next hour for all UEs.

        Returns ``(rows, times, events)`` sorted by ``(time, row,
        event)``, where ``rows`` index into this population.
        """
        hour_idx = self._next_hour_idx
        self._next_hour_idx += 1
        hour = (self.start_hour + hour_idx) % 24
        hour_start = hour_idx * SECONDS_PER_HOUR

        out_rows: List[np.ndarray] = []
        out_times: List[np.ndarray] = []
        out_events: List[np.ndarray] = []
        for code, rows in self._device_rows.items():
            chm = self.compiled.hours.get(code, {}).get(hour)
            if chm is None:
                continue  # unfitted hour-of-day: silent, state kept
            self._advance_device(
                chm, rows, hour_idx, hour_start, out_rows, out_times, out_events
            )

        if not out_rows:
            empty = np.empty(0)
            return empty.astype(np.int64), empty, empty.astype(np.int16)
        rows_arr = np.concatenate(out_rows)
        times_arr = quantize_times(np.concatenate(out_times))
        events_arr = np.concatenate(out_events)
        order = np.lexsort((events_arr, rows_arr, times_arr))
        return rows_arr[order], times_arr[order], events_arr[order]

    # ------------------------------------------------------------------
    def _advance_device(
        self,
        chm: CompiledHourModel,
        rows: np.ndarray,
        hour_idx: int,
        hour_start: float,
        out_rows: List[np.ndarray],
        out_times: List[np.ndarray],
        out_events: List[np.ndarray],
    ) -> None:
        """Advance every UE of one device-hour together (all clusters)."""
        S = chm.S
        n = rows.size
        k0 = self.k0[rows]
        k1 = self.k1[rows]
        cl = chm.clusters_for(self.persona[rows], k0, k1, hour_idx, self)
        stl = self.state[rows].astype(np.int64)
        t = np.full(n, float(hour_start))
        live = stl >= 0

        # -- first event (UEs with no chain state yet) ------------------
        fresh = np.flatnonzero(~live)
        if fresh.size:
            self.rng_draws += 3 * int(fresh.size)
            u0, u1, u2, _ = _uniforms(
                k0[fresh], k1[fresh], 0, hour_idx, _P_FIRST
            )
            awake_m = u0 < chm.p_active[cl[fresh]]
            aw = fresh[awake_m]
            if aw.size:
                claw = cl[aw]
                fi = np.searchsorted(
                    chm.fe_key, claw + u1[awake_m], side="right"
                )
                offset = _interp_knots(
                    claw,
                    u2[awake_m],
                    chm.foff_key,
                    chm.foff_ptr,
                    chm.foff_p,
                    chm.foff_v,
                )
                offset = np.clip(offset, 0.0, SECONDS_PER_HOUR - 1e-3)
                t0 = hour_start + offset
                out_rows.append(rows[aw])
                out_times.append(t0)
                out_events.append(chm.fe_event[fi])
                stl[aw] = chm.fe_state[fi]
                t[aw] = t0
                live[aw] = True

        # -- batched chain stepping over the merged code space ----------
        work = np.flatnonzero(live)
        acoh = rows[work]
        ast = stl[work] + cl[work] * S
        at = t[work]
        ak0 = k0[work]
        ak1 = k1[work]
        aemit = np.zeros(work.size, dtype=np.int64)

        deg0 = chm.state_deg[ast] == 0
        if deg0.any():
            self.state[acoh[deg0]] = ast[deg0] % S  # absorbing on entry
            keep = ~deg0
            acoh, ast, at = acoh[keep], ast[keep], at[keep]
            ak0, ak1, aemit = ak0[keep], ak1[keep], aemit[keep]

        max_events = ue_generator.MAX_EVENTS_PER_HOUR
        hour_end = hour_start + SECONDS_PER_HOUR
        r = 0
        abr = ue_blk = ud_blk = None
        while acoh.size:
            col = r & (_STEP_BLOCK - 1)
            if col == 0:
                if acoh.size <= _DRAIN_THRESHOLD:
                    for i in range(acoh.size):
                        self._drain_ue(
                            chm,
                            int(acoh[i]),
                            int(ast[i]),
                            float(at[i]),
                            int(aemit[i]),
                            ak0[i],
                            ak1[i],
                            hour_idx,
                            hour_end,
                            max_events,
                            r,
                            out_rows,
                            out_times,
                            out_events,
                        )
                    break
                c0 = np.uint64(r >> 1) + np.arange(
                    _STEP_BLOCK >> 1, dtype=np.uint64
                )
                x0, x1, x2, x3 = philox4x64(
                    c0[None, :], hour_idx, _P_STEP, 0,
                    ak0[:, None], ak1[:, None],
                )
                ue_blk = np.empty((acoh.size, _STEP_BLOCK))
                ud_blk = np.empty((acoh.size, _STEP_BLOCK))
                ue_blk[:, 0::2] = _to_unit(x0)
                ud_blk[:, 0::2] = _to_unit(x1)
                ue_blk[:, 1::2] = _to_unit(x2)
                ud_blk[:, 1::2] = _to_unit(x3)
                abr = np.arange(acoh.size)
            u_edge = ue_blk[abr, col]
            u_dwell = ud_blk[abr, col]
            self.rng_draws += 2 * int(acoh.size)

            e = np.searchsorted(chm.sel_key, ast + u_edge, side="right")
            if chm.has_exp:
                dwell = np.empty(e.size)
                emp = chm.edge_kind[e] == 0
                if emp.any():
                    dwell[emp] = _interp_knots(
                        e[emp], u_dwell[emp], chm.knot_key,
                        chm.edge_knot_ptr, chm.knot_p, chm.knot_v,
                    )
                ex = ~emp
                if ex.any():
                    dwell[ex] = -np.log1p(-u_dwell[ex]) / chm.edge_rate[e[ex]]
            else:
                dwell = _interp_knots(
                    e, u_dwell, chm.knot_key,
                    chm.edge_knot_ptr, chm.knot_p, chm.knot_v,
                )
            t_next = at + np.maximum(dwell, MIN_SOJOURN)

            cross = t_next >= hour_end
            go = ~cross
            tgt = chm.edge_target[e]
            if cross.any():
                # hour boundary: the pending event is dropped, the UE
                # keeps its pre-step state for the next hour.
                self.state[acoh[cross]] = ast[cross] % S
                out_rows.append(acoh[go])
                out_times.append(t_next[go])
                out_events.append(chm.edge_event[e[go]])
            else:
                out_rows.append(acoh)
                out_times.append(t_next)
                out_events.append(chm.edge_event[e])
            aemit += 1
            # retire emitters whose new state is absorbing or who hit
            # the per-hour safety cap; both keep the post-step state.
            done = (chm.state_deg[tgt] == 0) | (aemit >= max_events)
            done_go = done & go
            if done_go.any():
                self.state[acoh[done_go]] = tgt[done_go] % S
            keep = go & ~done
            if keep.all():
                ast = tgt
                at = t_next
            else:
                acoh, ast, at = acoh[keep], tgt[keep], t_next[keep]
                ak0, ak1 = ak0[keep], ak1[keep]
                aemit, abr = aemit[keep], abr[keep]
            r += 1

        # -- state-oblivious Poisson overlays (baseline models) ---------
        self._emit_overlays(
            chm, rows, cl, k0, k1, hour_idx, hour_start,
            out_rows, out_times, out_events,
        )

    # ------------------------------------------------------------------
    def _drain_ue(
        self,
        chm: CompiledHourModel,
        row: int,
        st: int,
        tt: float,
        em: int,
        k0: np.uint64,
        k1: np.uint64,
        hour_idx: int,
        hour_end: float,
        max_events: int,
        r: int,
        out_rows: List[np.ndarray],
        out_times: List[np.ndarray],
        out_events: List[np.ndarray],
    ) -> None:
        """Finish one UE's hour in a scalar loop (long-tail UEs).

        Consumes exactly the same ``(counter, lane)`` Philox uniforms as
        the vector loop would at each round and evaluates the same
        IEEE-754 expressions, so the emitted events are bit-identical to
        batch stepping — only cheaper for a near-empty cohort.
        """
        (
            sel_key,
            state_deg,
            edge_event,
            edge_target,
            edge_kind,
            edge_rate,
            kptr,
            kkey,
            kp,
            kv,
            has_exp,
        ) = chm.scalar_tables()
        min_sojourn = float(MIN_SOJOURN)
        times: List[float] = []
        evs: List[int] = []
        final_state = None
        while final_state is None:
            c0 = np.uint64(r >> 1) + np.arange(
                _DRAIN_BLOCK >> 1, dtype=np.uint64
            )
            x0, x1, x2, x3 = philox4x64(c0, hour_idx, _P_STEP, 0, k0, k1)
            u_edge = np.empty(_DRAIN_BLOCK)
            u_dwell = np.empty(_DRAIN_BLOCK)
            u_edge[0::2] = _to_unit(x0)
            u_dwell[0::2] = _to_unit(x1)
            u_edge[1::2] = _to_unit(x2)
            u_dwell[1::2] = _to_unit(x3)
            uel = u_edge.tolist()
            udl = u_dwell.tolist()
            for j in range(_DRAIN_BLOCK):
                e = bisect_right(sel_key, st + uel[j])
                u = udl[j]
                if has_exp and edge_kind[e] != 0:
                    dwell = -float(np.log1p(-u)) / edge_rate[e]
                else:
                    lo = kptr[e]
                    hi = kptr[e + 1]
                    pc = bisect_left(kkey, e + u)
                    if pc < lo + 1:
                        pc = lo + 1
                    elif pc > hi - 1:
                        pc = hi - 1
                    p0 = kp[pc - 1]
                    p1 = kp[pc]
                    uu = p0 if u < p0 else (p1 if u > p1 else u)
                    v0 = kv[pc - 1]
                    dwell = v0 + (uu - p0) * (kv[pc] - v0) / (p1 - p0)
                if dwell < min_sojourn:
                    dwell = min_sojourn
                t_next = tt + dwell
                if t_next >= hour_end:
                    final_state = st  # pending event dropped at boundary
                    break
                times.append(t_next)
                evs.append(edge_event[e])
                st = edge_target[e]
                tt = t_next
                em += 1
                if state_deg[st] == 0 or em >= max_events:
                    final_state = st
                    break
            self.rng_draws += 2 * (j + 1)
            r += _DRAIN_BLOCK
        self.state[row] = final_state % chm.S
        if times:
            out_rows.append(np.full(len(times), row, dtype=np.int64))
            out_times.append(np.asarray(times, dtype=np.float64))
            out_events.append(np.asarray(evs, dtype=np.int16))

    # ------------------------------------------------------------------
    def _emit_overlays(
        self,
        chm: CompiledHourModel,
        rows: np.ndarray,
        cl: np.ndarray,
        k0: np.ndarray,
        k1: np.ndarray,
        hour_idx: int,
        hour_start: float,
        out_rows: List[np.ndarray],
        out_times: List[np.ndarray],
        out_events: List[np.ndarray],
    ) -> None:
        for c in chm.overlay_clusters:
            member = cl == c
            rows_c = rows[member]
            if rows_c.size == 0:
                continue
            k0c = k0[member]
            k1c = k1[member]
            for event_code, rate in chm.clusters[c].overlay:
                lam = rate * SECONDS_PER_HOUR
                self.rng_draws += int(rows_c.size)
                u_n = _uniforms(
                    k0c, k1c, 0, hour_idx, _P_OVERLAY_N, np.uint64(event_code)
                )[0]
                counts = _poisson_from_uniform(u_n, lam)
                total = int(counts.sum())
                if total == 0:
                    continue
                rep = np.repeat(np.arange(rows_c.size), counts)
                slot = np.arange(total) - np.repeat(
                    np.cumsum(counts) - counts, counts
                )
                self.rng_draws += total
                u_t = _uniforms(
                    k0c[rep],
                    k1c[rep],
                    slot,
                    hour_idx,
                    _P_OVERLAY_T,
                    np.uint64(event_code),
                )[0]
                out_rows.append(rows_c[rep])
                out_times.append(hour_start + u_t * SECONDS_PER_HOUR)
                out_events.append(np.full(total, event_code, dtype=np.int16))


# ---------------------------------------------------------------------------
# Whole-trace production helpers (used by traffgen / parallel / streaming)
# ---------------------------------------------------------------------------


def population_for_counts(
    model_set: ModelSet,
    counts: Dict[DeviceType, int],
    *,
    seed: int,
    start_hour: int,
    first_index: int = 0,
) -> CompiledPopulation:
    """Build the population for a device-count split, in generation order."""
    device_codes = np.concatenate(
        [
            np.full(counts[dt], int(dt), dtype=np.int8)
            for dt in sorted(counts, key=int)
        ]
        or [np.empty(0, dtype=np.int8)]
    )
    total = len(device_codes)
    return CompiledPopulation(
        model_set,
        device_codes,
        first_index + np.arange(total, dtype=np.int64),
        seed=seed,
        start_hour=start_hour,
    )


def generate_columns(
    population: CompiledPopulation,
    num_hours: int,
    first_ue_id: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Run ``num_hours`` and return (ue, time, event, device) columns."""
    from ..telemetry import get_telemetry

    tele = get_telemetry()
    num_ues = len(population.device_codes)
    draws_before = population.rng_draws
    ue_col, time_col, event_col, device_col = [], [], [], []
    for hour in range(num_hours):
        rows, times, events = population.advance_hour()
        tele.count("ue_hours", num_ues)
        tele.progress("generate", hour + 1, num_hours)
        if len(rows) == 0:
            continue
        ue_col.append(first_ue_id + rows)
        time_col.append(times)
        event_col.append(events.astype(np.int8))
        device_col.append(population.device_codes[rows])
    tele.count("rng_draws", population.rng_draws - draws_before)
    if not ue_col:
        empty = np.empty(0)
        return (
            empty.astype(np.int64),
            empty,
            empty.astype(np.int8),
            empty.astype(np.int8),
        )
    return (
        np.concatenate(ue_col),
        np.concatenate(time_col),
        np.concatenate(event_col),
        np.concatenate(device_col),
    )
