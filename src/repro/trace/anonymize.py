"""Trace anonymization utilities.

Privacy is the reason control-plane traces are not public (the paper's
§D): carriers anonymize user identity before any analysis.  These
helpers apply the standard safeguards to a trace while preserving
exactly the statistics the model consumes:

* **UE-id remapping** — a seeded random permutation replaces ids, so
  re-identification via stable identifiers is impossible but per-UE
  event sequences stay intact.
* **Epoch shifting** — a constant time offset detaches the trace from
  wall-clock time without touching inter-arrival structure.

Both transforms are loss-free for fitting: the fitted model of an
anonymized trace is identical (up to UE labels) to the original's.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from .trace import Trace


def remap_ue_ids(
    trace: Trace, *, seed: int = 0, start_id: int = 0
) -> Tuple[Trace, Dict[int, int]]:
    """Replace UE ids with a seeded random permutation.

    Returns the anonymized trace and the ``old -> new`` mapping (which
    a carrier would discard; tests use it to verify losslessness).
    """
    rng = np.random.default_rng(seed)
    ues = trace.unique_ues()
    new_ids = start_id + rng.permutation(len(ues))
    mapping = {int(old): int(new) for old, new in zip(ues, new_ids)}
    remapped = np.asarray(
        [mapping[int(u)] for u in trace.ue_ids], dtype=np.int64
    )
    return (
        Trace(
            remapped,
            trace.times.copy(),
            trace.event_types.copy(),
            trace.device_types.copy(),
            validate=False,
        ),
        mapping,
    )


def shift_epoch(trace: Trace, *, seed: int = 0, max_shift: float = 86400.0) -> Trace:
    """Shift all timestamps by one seeded random constant.

    Inter-arrival times, sojourns, and relative ordering are untouched;
    only the absolute epoch moves.
    """
    if max_shift < 0:
        raise ValueError("max_shift must be non-negative")
    rng = np.random.default_rng(seed)
    offset = float(rng.uniform(0.0, max_shift))
    return trace.shift(offset)


def anonymize(trace: Trace, *, seed: int = 0) -> Trace:
    """Apply both safeguards with one seed."""
    remapped, _ = remap_ue_ids(trace, seed=seed)
    return shift_epoch(remapped, seed=seed + 1)
