"""Reading and writing traces.

Two formats are supported:

* **CSV** — one header row ``ue_id,time,event,device`` followed by one
  row per event; event and device columns use the protocol names
  (``SRV_REQ``, ``PHONE``, ...).  Human-readable, diff-friendly.
* **NPZ** — the four raw columns in a compressed numpy archive.
  Compact and fast; the format of choice for large synthetic traces.
"""

from __future__ import annotations

import csv
import os
import struct
import zipfile
from typing import Dict, Union

import numpy as np

from .events import DeviceType, EventType
from .trace import Trace

PathLike = Union[str, "os.PathLike[str]"]

_CSV_HEADER = ["ue_id", "time", "event", "device"]


def write_csv(trace: Trace, path: PathLike) -> None:
    """Write ``trace`` to ``path`` in the CSV trace format."""
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(_CSV_HEADER)
        for i in range(len(trace)):
            writer.writerow(
                [
                    int(trace.ue_ids[i]),
                    f"{trace.times[i]:.3f}",
                    EventType(int(trace.event_types[i])).name,
                    DeviceType(int(trace.device_types[i])).name,
                ]
            )


def read_csv(path: PathLike) -> Trace:
    """Read a trace previously written by :func:`write_csv`."""
    ue_ids = []
    times = []
    events = []
    devices = []
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header != _CSV_HEADER:
            raise ValueError(
                f"unexpected CSV header {header!r}; expected {_CSV_HEADER!r}"
            )
        for lineno, row in enumerate(reader, start=2):
            if len(row) != 4:
                raise ValueError(f"{path}:{lineno}: expected 4 columns, got {len(row)}")
            ue_ids.append(int(row[0]))
            times.append(float(row[1]))
            events.append(int(EventType[row[2]]))
            devices.append(int(DeviceType[row[3]]))
    return Trace(
        np.asarray(ue_ids, dtype=np.int64),
        np.asarray(times, dtype=np.float64),
        np.asarray(events, dtype=np.int8),
        np.asarray(devices, dtype=np.int8),
    )


def write_npz(trace: Trace, path: PathLike, *, compress: bool = True) -> None:
    """Write ``trace`` to ``path`` as a numpy archive.

    ``compress=False`` stores the columns raw (``np.savez``), which
    makes the file eligible for zero-copy memory mapping via
    ``read_npz(path, mmap=True)``.
    """
    saver = np.savez_compressed if compress else np.savez
    saver(
        path,
        ue_ids=trace.ue_ids,
        times=trace.times,
        event_types=trace.event_types,
        device_types=trace.device_types,
    )


def _mmap_npz_members(path: PathLike) -> Dict[str, np.ndarray]:
    """Memory-map the array members of an *uncompressed* NPZ archive.

    ``np.load`` always decompresses NPZ members into fresh in-memory
    arrays, so a multi-GB training trace gets materialized twice (the
    loader copy plus the Trace columns).  For archives written with
    ``write_npz(..., compress=False)`` every member is ZIP_STORED, i.e.
    a plain ``.npy`` byte range inside the file — so each column can be
    a ``np.memmap`` view at the right offset instead of a copy.

    Raises ``ValueError`` if any member is compressed (caller falls
    back to ``np.load``).
    """
    members: Dict[str, np.ndarray] = {}
    with zipfile.ZipFile(path) as archive:
        for info in archive.infolist():
            if info.compress_type != zipfile.ZIP_STORED:
                raise ValueError(f"{info.filename} is compressed; cannot mmap")
            with open(path, "rb") as fh:
                # The central directory's header_offset points at the
                # local file header; its name/extra lengths live at
                # struct offset 26 and precede the member's bytes.
                fh.seek(info.header_offset)
                local = fh.read(30)
                if len(local) != 30 or local[:4] != b"PK\x03\x04":
                    raise ValueError(f"bad local file header for {info.filename}")
                name_len, extra_len = struct.unpack("<2H", local[26:30])
                data_offset = info.header_offset + 30 + name_len + extra_len
                fh.seek(data_offset)
                version = np.lib.format.read_magic(fh)
                if version == (1, 0):
                    header = np.lib.format.read_array_header_1_0(fh)
                elif version == (2, 0):
                    header = np.lib.format.read_array_header_2_0(fh)
                else:
                    raise ValueError(f"unsupported npy version {version}")
                shape, fortran, dtype = header
                if fortran:
                    raise ValueError(f"{info.filename} is Fortran-ordered")
                array_offset = fh.tell()
            name = info.filename
            if name.endswith(".npy"):
                name = name[: -len(".npy")]
            members[name] = np.memmap(
                path, dtype=dtype, mode="r", offset=array_offset, shape=shape
            )
    return members


def read_npz(path: PathLike, *, mmap: bool = False) -> Trace:
    """Read a trace previously written by :func:`write_npz`.

    With ``mmap=True`` and an uncompressed archive the four columns are
    memory-mapped straight out of the file — the trace is never
    materialized in RAM beyond the pages actually touched.  Compressed
    archives silently fall back to a normal load.
    """
    if mmap:
        try:
            data = _mmap_npz_members(path)
        except (ValueError, OSError, KeyError):
            data = None
        if data is not None:
            return _trace_from_columns(data)
    with np.load(path) as data:
        return _trace_from_columns(
            {name: data[name] for name in data.files}
        )


def _trace_from_columns(data: Dict[str, np.ndarray]) -> Trace:
    ue_ids = data["ue_ids"]
    times = data["times"]
    # Traces are written sorted by (time, ue_id); when that still holds
    # we can skip the constructor's re-sort (which would force a copy
    # of memory-mapped columns).
    already_sorted = True
    if len(times) > 1:
        dt = np.diff(times)
        due = np.diff(ue_ids)
        already_sorted = bool(np.all((dt > 0) | ((dt == 0) & (due >= 0))))
    return Trace(
        ue_ids,
        times,
        data["event_types"],
        data["device_types"],
        sort=not already_sorted,
    )
