"""Reading and writing traces.

Two formats are supported:

* **CSV** — one header row ``ue_id,time,event,device`` followed by one
  row per event; event and device columns use the protocol names
  (``SRV_REQ``, ``PHONE``, ...).  Human-readable, diff-friendly.
* **NPZ** — the four raw columns in a compressed numpy archive.
  Compact and fast; the format of choice for large synthetic traces.
"""

from __future__ import annotations

import csv
import os
from typing import Union

import numpy as np

from .events import DeviceType, EventType
from .trace import Trace

PathLike = Union[str, "os.PathLike[str]"]

_CSV_HEADER = ["ue_id", "time", "event", "device"]


def write_csv(trace: Trace, path: PathLike) -> None:
    """Write ``trace`` to ``path`` in the CSV trace format."""
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(_CSV_HEADER)
        for i in range(len(trace)):
            writer.writerow(
                [
                    int(trace.ue_ids[i]),
                    f"{trace.times[i]:.3f}",
                    EventType(int(trace.event_types[i])).name,
                    DeviceType(int(trace.device_types[i])).name,
                ]
            )


def read_csv(path: PathLike) -> Trace:
    """Read a trace previously written by :func:`write_csv`."""
    ue_ids = []
    times = []
    events = []
    devices = []
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header != _CSV_HEADER:
            raise ValueError(
                f"unexpected CSV header {header!r}; expected {_CSV_HEADER!r}"
            )
        for lineno, row in enumerate(reader, start=2):
            if len(row) != 4:
                raise ValueError(f"{path}:{lineno}: expected 4 columns, got {len(row)}")
            ue_ids.append(int(row[0]))
            times.append(float(row[1]))
            events.append(int(EventType[row[2]]))
            devices.append(int(DeviceType[row[3]]))
    return Trace(
        np.asarray(ue_ids, dtype=np.int64),
        np.asarray(times, dtype=np.float64),
        np.asarray(events, dtype=np.int8),
        np.asarray(devices, dtype=np.int8),
    )


def write_npz(trace: Trace, path: PathLike) -> None:
    """Write ``trace`` to ``path`` as a compressed numpy archive."""
    np.savez_compressed(
        path,
        ue_ids=trace.ue_ids,
        times=trace.times,
        event_types=trace.event_types,
        device_types=trace.device_types,
    )


def read_npz(path: PathLike) -> Trace:
    """Read a trace previously written by :func:`write_npz`."""
    with np.load(path) as data:
        return Trace(
            data["ue_ids"],
            data["times"],
            data["event_types"],
            data["device_types"],
        )
