"""Control-plane event and device-type vocabulary.

The paper studies six primary LTE control-plane event types recorded at
the MME (Table 1 of the paper) for three primary device types.  5G SA
uses renamed counterparts of the LTE events (Table 2), with ``TAU``
having no 5G equivalent.

Events are encoded as small integers so traces can be stored in compact
numpy arrays; the enums carry the human-readable protocol names.
"""

from __future__ import annotations

import enum
from typing import Dict, Tuple


class EventType(enum.IntEnum):
    """LTE control-plane event types exchanged between UE/RAN and the MCN.

    The integer values are stable and used as the on-disk encoding.
    """

    ATCH = 0          #: Attach - registers the UE with the MCN.
    DTCH = 1          #: Detach - deregisters the UE (e.g. powered off).
    SRV_REQ = 2       #: Service Request - establishes a signaling connection.
    S1_CONN_REL = 3   #: S1 Connection Release - tears the connection down.
    HO = 4            #: Handover - switches the UE between serving cells.
    TAU = 5           #: Tracking Area Update.

    @property
    def is_category1(self) -> bool:
        """Whether the event changes the UE state (EMM/ECM transitions)."""
        return self in _CATEGORY1

    @property
    def is_category2(self) -> bool:
        """Whether the event leaves the UE state unchanged (``HO``/``TAU``)."""
        return not self.is_category1


_CATEGORY1 = frozenset(
    {EventType.ATCH, EventType.DTCH, EventType.SRV_REQ, EventType.S1_CONN_REL}
)

#: Events considered "dominant" by the paper (84.1%-93.0% of all events).
DOMINANT_EVENTS: Tuple[EventType, EventType] = (
    EventType.SRV_REQ,
    EventType.S1_CONN_REL,
)


class NrEventType(enum.IntEnum):
    """5G SA control-plane event types (Table 2 of the paper).

    Values are chosen to line up with the mapped :class:`EventType`
    members so a 4G trace can be relabelled in place; ``TAU`` has no
    5G SA counterpart and therefore no member here.
    """

    REGISTER = 0      #: Registration (maps from ``ATCH``).
    DEREGISTER = 1    #: Deregistration (maps from ``DTCH``).
    SRV_REQ = 2       #: Service Request (same name in both generations).
    AN_REL = 3        #: AN Release (maps from ``S1_CONN_REL``).
    HO = 4            #: Handover (same name in both generations).


#: One-to-one mapping of primary event types between 4G and 5G (Table 2).
LTE_TO_NR_EVENT: Dict[EventType, NrEventType] = {
    EventType.ATCH: NrEventType.REGISTER,
    EventType.DTCH: NrEventType.DEREGISTER,
    EventType.SRV_REQ: NrEventType.SRV_REQ,
    EventType.S1_CONN_REL: NrEventType.AN_REL,
    EventType.HO: NrEventType.HO,
    # EventType.TAU deliberately has no 5G SA mapping.
}

NR_TO_LTE_EVENT: Dict[NrEventType, EventType] = {
    nr: lte for lte, nr in LTE_TO_NR_EVENT.items()
}


class DeviceType(enum.IntEnum):
    """Primary device categories studied in the paper.

    Derived in the paper from the Type Allocation Code (TAC) of the
    IMEI; here the type is carried explicitly on every trace.
    """

    PHONE = 0
    CONNECTED_CAR = 1
    TABLET = 2

    @property
    def short_name(self) -> str:
        """The single/double-letter code the paper uses in tables."""
        return _SHORT_NAMES[self]


_SHORT_NAMES = {
    DeviceType.PHONE: "P",
    DeviceType.CONNECTED_CAR: "CC",
    DeviceType.TABLET: "T",
}

ALL_EVENT_TYPES: Tuple[EventType, ...] = tuple(EventType)
ALL_DEVICE_TYPES: Tuple[DeviceType, ...] = tuple(DeviceType)

#: Seconds per hour / day, used pervasively when slicing traces.
SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 24 * SECONDS_PER_HOUR

#: Millisecond timestamp granularity of the collected traces (paper, §4).
TIMESTAMP_GRANULARITY = 1e-3


def quantize_timestamp(t: float) -> float:
    """Round ``t`` (seconds) to the trace's millisecond granularity."""
    return round(t / TIMESTAMP_GRANULARITY) * TIMESTAMP_GRANULARITY


def quantize_times(times) -> "np.ndarray":
    """Vectorized :func:`quantize_timestamp` (same half-even rounding)."""
    import numpy as np

    arr = np.asarray(times, dtype=np.float64)
    return np.round(arr / TIMESTAMP_GRANULARITY) * TIMESTAMP_GRANULARITY
