"""Descriptive statistics over traces.

These back the paper's characterization study: the event breakdown of
Table 1, the per-device-hour box plots of Figure 2, and the peak/slow
hour ratios quoted in §4.1.1.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Sequence

import numpy as np

from .events import (
    ALL_DEVICE_TYPES,
    ALL_EVENT_TYPES,
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
    DeviceType,
    EventType,
)
from .trace import Trace


@dataclasses.dataclass(frozen=True)
class BoxStats:
    """Five-number summary plus mean, as drawn in the paper's box plots."""

    minimum: float
    lower_quartile: float
    median: float
    upper_quartile: float
    maximum: float
    mean: float
    count: int

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "BoxStats":
        arr = np.asarray(samples, dtype=np.float64)
        if arr.size == 0:
            return cls(math.nan, math.nan, math.nan, math.nan, math.nan, math.nan, 0)
        q1, med, q3 = np.percentile(arr, [25.0, 50.0, 75.0])
        return cls(
            minimum=float(arr.min()),
            lower_quartile=float(q1),
            median=float(med),
            upper_quartile=float(q3),
            maximum=float(arr.max()),
            mean=float(arr.mean()),
            count=int(arr.size),
        )


def event_breakdown(
    trace: Trace, device_type: Optional[DeviceType] = None
) -> Dict[EventType, float]:
    """Fraction of each event type, optionally for one device type.

    This is the quantity tabulated in Table 1 of the paper.
    """
    sub = trace if device_type is None else trace.filter_device(device_type)
    return sub.breakdown()


def breakdown_table(trace: Trace) -> Dict[DeviceType, Dict[EventType, float]]:
    """Table 1: breakdown per device type."""
    return {dt: event_breakdown(trace, dt) for dt in ALL_DEVICE_TYPES}


def events_per_device_hour(
    trace: Trace,
    device_type: DeviceType,
    event_type: EventType,
) -> Dict[int, List[int]]:
    """Per-UE event counts for every hour-of-day (0..23).

    For each hour-of-day, counts are collected per (UE, day) pair over
    all days in the trace, matching how Figure 2 pools multiple days.
    UEs with zero events in an hour contribute a zero sample.
    """
    sub = trace.filter_device(device_type)
    ues = sub.unique_ues()
    mask = sub.event_types == int(event_type)
    times = sub.times[mask]
    ue_ids = sub.ue_ids[mask]

    num_days = max(1, int(math.ceil((trace.duration + 1e-9) / SECONDS_PER_DAY)))
    hours = (times // SECONDS_PER_HOUR).astype(np.int64)
    hour_of_day = (hours % 24).astype(np.int64)
    day = (hours // 24).astype(np.int64)

    out: Dict[int, List[int]] = {}
    for h in range(24):
        counts: Dict[tuple, int] = {}
        sel = hour_of_day == h
        for ue, d in zip(ue_ids[sel], day[sel]):
            key = (int(ue), int(d))
            counts[key] = counts.get(key, 0) + 1
        samples = []
        for ue in ues:
            for d in range(num_days):
                samples.append(counts.get((int(ue), d), 0))
        out[h] = samples
    return out


def diurnal_box_stats(
    trace: Trace,
    device_type: DeviceType,
    event_type: EventType,
) -> Dict[int, BoxStats]:
    """Figure 2: per-hour box statistics of per-UE event counts."""
    samples = events_per_device_hour(trace, device_type, event_type)
    return {h: BoxStats.from_samples(s) for h, s in samples.items()}


def peak_to_trough_ratio(
    trace: Trace,
    device_type: DeviceType,
    event_type: EventType,
) -> float:
    """Ratio of the busiest to the slowest hour's mean per-UE volume.

    The paper reports drops of 2.27x-86.15x (phones), 3.43x-1309.33x
    (connected cars) and 1.45x-90.06x (tablets) for the four dominant
    event types.  Hours with zero mean volume are ignored as troughs
    (the ratio would be infinite and uninformative).
    """
    stats = diurnal_box_stats(trace, device_type, event_type)
    means = [s.mean for s in stats.values() if s.count > 0 and not math.isnan(s.mean)]
    positive = [m for m in means if m > 0]
    if not positive:
        return math.nan
    return max(positive) / min(positive)


def busiest_hour(trace: Trace) -> int:
    """Hour-of-day (0..23) with the most events, pooled over all days."""
    if len(trace) == 0:
        raise ValueError("cannot find the busiest hour of an empty trace")
    hour_of_day = ((trace.times // SECONDS_PER_HOUR) % 24).astype(np.int64)
    counts = np.bincount(hour_of_day, minlength=24)
    return int(np.argmax(counts))


def hourly_event_counts(trace: Trace) -> np.ndarray:
    """Total events in each 1-hour interval of the trace (index 0 = first hour)."""
    if len(trace) == 0:
        return np.zeros(0, dtype=np.int64)
    hours = (trace.times // SECONDS_PER_HOUR).astype(np.int64)
    return np.bincount(hours)


def events_per_ue_counts(
    trace: Trace,
    device_type: DeviceType,
    event_type: EventType,
) -> np.ndarray:
    """Array of per-UE counts of one event type (for CDF comparisons).

    Every UE of the device type contributes a value, including zero.
    This is the quantity whose CDFs are compared in Table 5 / Figure 7.
    """
    sub = trace.filter_device(device_type)
    counts = sub.events_per_ue(event_type)
    return np.asarray(sorted(counts.values()), dtype=np.float64)
