"""Session-level trace analytics.

A *session* (connection episode) is one CONNECTED visit: it opens with
``ATCH`` or ``SRV_REQ`` and closes with ``S1_CONN_REL`` or ``DTCH``.
Sessions are the unit operators reason about ("signaling storms" are
bursts of short sessions), and several derived statistics — session
duration, events per session, inter-session gaps — summarize a trace at
a level between per-event and per-UE.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, List, Optional

import numpy as np

from .events import DeviceType, EventType
from .trace import Trace

_OPENERS = frozenset({EventType.ATCH, EventType.SRV_REQ})
_CLOSERS = frozenset({EventType.S1_CONN_REL, EventType.DTCH})


@dataclasses.dataclass(frozen=True)
class Session:
    """One complete CONNECTED episode of a UE."""

    ue_id: int
    start: float                 #: opener timestamp
    end: float                   #: closer timestamp
    opener: EventType
    closer: EventType
    handovers: int               #: HO events inside the session
    tracking_updates: int        #: TAU events inside the session

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def num_events(self) -> int:
        """All events of the episode, endpoints included."""
        return 2 + self.handovers + self.tracking_updates


def iter_sessions(trace: Trace) -> Iterator[Session]:
    """Yield complete sessions of every UE, in UE order then time order.

    Events before the first opener, and an unclosed trailing session,
    are skipped — only complete episodes are reported.  In IDLE, TAU
    signaling exchanges (TAU followed by its S1 release) are *not*
    sessions and are ignored here: a session must open with an opener.
    """
    for ue, sub in trace.per_ue():
        start: Optional[float] = None
        opener: Optional[EventType] = None
        handovers = 0
        tracking_updates = 0
        for i in range(len(sub)):
            event = EventType(int(sub.event_types[i]))
            t = float(sub.times[i])
            if start is None:
                if event in _OPENERS:
                    start, opener = t, event
                    handovers = tracking_updates = 0
                continue
            if event in _CLOSERS:
                yield Session(
                    ue_id=ue,
                    start=start,
                    end=t,
                    opener=opener,
                    closer=event,
                    handovers=handovers,
                    tracking_updates=tracking_updates,
                )
                start = opener = None
            elif event == EventType.HO:
                handovers += 1
            elif event == EventType.TAU:
                tracking_updates += 1
            elif event in _OPENERS:
                # Re-opening without a close (protocol-invalid input,
                # e.g. a baseline-synthesized trace): restart the episode.
                start, opener = t, event
                handovers = tracking_updates = 0


def extract_sessions(
    trace: Trace, device_type: Optional[DeviceType] = None
) -> List[Session]:
    """All complete sessions, optionally restricted to one device type."""
    sub = trace if device_type is None else trace.filter_device(device_type)
    return list(iter_sessions(sub))


@dataclasses.dataclass(frozen=True)
class SessionStats:
    """Aggregate session statistics of a trace."""

    num_sessions: int
    mean_duration: float
    median_duration: float
    p95_duration: float
    mean_events: float
    mean_handovers: float
    sessions_per_ue: float
    mean_intersession_gap: float  #: NaN when no UE has 2+ sessions

    @classmethod
    def empty(cls) -> "SessionStats":
        nan = float("nan")
        return cls(0, nan, nan, nan, nan, nan, 0.0, nan)


def session_stats(
    trace: Trace, device_type: Optional[DeviceType] = None
) -> SessionStats:
    """Summarize the sessions of a trace."""
    sub = trace if device_type is None else trace.filter_device(device_type)
    sessions = extract_sessions(sub)
    if not sessions:
        return SessionStats.empty()
    durations = np.asarray([s.duration for s in sessions])
    events = np.asarray([s.num_events for s in sessions], dtype=float)
    handovers = np.asarray([s.handovers for s in sessions], dtype=float)

    gaps: List[float] = []
    by_ue: Dict[int, List[Session]] = {}
    for s in sessions:
        by_ue.setdefault(s.ue_id, []).append(s)
    for ue_sessions in by_ue.values():
        for prev, nxt in zip(ue_sessions, ue_sessions[1:]):
            gaps.append(nxt.start - prev.end)

    num_ues = max(sub.num_ues, 1)
    return SessionStats(
        num_sessions=len(sessions),
        mean_duration=float(durations.mean()),
        median_duration=float(np.median(durations)),
        p95_duration=float(np.percentile(durations, 95.0)),
        mean_events=float(events.mean()),
        mean_handovers=float(handovers.mean()),
        sessions_per_ue=len(sessions) / num_ues,
        mean_intersession_gap=float(np.mean(gaps)) if gaps else float("nan"),
    )
