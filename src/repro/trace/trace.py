"""Column-oriented container for control-plane event traces.

A :class:`Trace` stores events as parallel numpy arrays — UE id,
timestamp (float seconds from the trace epoch), event type, and device
type — and offers the slicing operations the modeling pipeline needs:
per-UE views, per-hour windows, and device filters.  The representation
is immutable by convention; operations return new ``Trace`` views or
copies.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .events import (
    ALL_DEVICE_TYPES,
    SECONDS_PER_HOUR,
    DeviceType,
    EventType,
)


@dataclasses.dataclass(frozen=True)
class Event:
    """A single control-plane event, as emitted by a generator."""

    ue_id: int
    time: float
    event_type: EventType
    device_type: DeviceType

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"event time must be non-negative, got {self.time}")


class Trace:
    """An ordered collection of control-plane events.

    Events are kept sorted by ``(time, ue_id)``.  All four columns have
    equal length.  ``ue_ids`` are arbitrary non-negative integers; the
    device type of a UE is constant across the trace (checked on
    construction when ``validate=True``).
    """

    __slots__ = (
        "ue_ids",
        "times",
        "event_types",
        "device_types",
        "_ue_index",
        "_content_hash",
    )

    def __init__(
        self,
        ue_ids: np.ndarray,
        times: np.ndarray,
        event_types: np.ndarray,
        device_types: np.ndarray,
        *,
        sort: bool = True,
        validate: bool = True,
    ) -> None:
        ue_ids = np.asarray(ue_ids, dtype=np.int64)
        times = np.asarray(times, dtype=np.float64)
        event_types = np.asarray(event_types, dtype=np.int8)
        device_types = np.asarray(device_types, dtype=np.int8)

        lengths = {len(ue_ids), len(times), len(event_types), len(device_types)}
        if len(lengths) != 1:
            raise ValueError(f"column lengths differ: {sorted(lengths)}")

        if sort and len(times) > 1:
            order = np.lexsort((ue_ids, times))
            ue_ids = ue_ids[order]
            times = times[order]
            event_types = event_types[order]
            device_types = device_types[order]

        if validate and len(times) > 0:
            if times.min() < 0:
                raise ValueError("trace contains negative timestamps")
            if event_types.min() < 0 or event_types.max() > max(EventType):
                raise ValueError("trace contains unknown event types")
            if device_types.min() < 0 or device_types.max() > max(DeviceType):
                raise ValueError("trace contains unknown device types")

        self.ue_ids = ue_ids
        self.times = times
        self.event_types = event_types
        self.device_types = device_types
        self._ue_index: Optional[Dict[int, np.ndarray]] = None
        self._content_hash: Optional[str] = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_events(cls, events: Iterable[Event]) -> "Trace":
        """Build a trace from an iterable of :class:`Event` records."""
        events = list(events)
        return cls(
            np.array([e.ue_id for e in events], dtype=np.int64),
            np.array([e.time for e in events], dtype=np.float64),
            np.array([int(e.event_type) for e in events], dtype=np.int8),
            np.array([int(e.device_type) for e in events], dtype=np.int8),
        )

    @classmethod
    def empty(cls) -> "Trace":
        """An event-free trace."""
        return cls(
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
            np.empty(0, dtype=np.int8),
            np.empty(0, dtype=np.int8),
            sort=False,
            validate=False,
        )

    @classmethod
    def concatenate(cls, traces: Sequence["Trace"]) -> "Trace":
        """Merge several traces into one (re-sorted by time)."""
        if not traces:
            return cls.empty()
        return cls(
            np.concatenate([t.ue_ids for t in traces]),
            np.concatenate([t.times for t in traces]),
            np.concatenate([t.event_types for t in traces]),
            np.concatenate([t.device_types for t in traces]),
            validate=False,
        )

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self) -> Iterator[Event]:
        for i in range(len(self)):
            yield self[i]

    def __getitem__(self, i: int) -> Event:
        return Event(
            ue_id=int(self.ue_ids[i]),
            time=float(self.times[i]),
            event_type=EventType(int(self.event_types[i])),
            device_type=DeviceType(int(self.device_types[i])),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        return (
            np.array_equal(self.ue_ids, other.ue_ids)
            and np.array_equal(self.times, other.times)
            and np.array_equal(self.event_types, other.event_types)
            and np.array_equal(self.device_types, other.device_types)
        )

    def __repr__(self) -> str:
        span = f"[{self.times[0]:.3f}, {self.times[-1]:.3f}]s" if len(self) else "[]"
        return f"Trace({len(self)} events, {self.num_ues} UEs, span {span})"

    # ------------------------------------------------------------------
    # Summary properties
    # ------------------------------------------------------------------
    @property
    def num_ues(self) -> int:
        """Number of distinct UEs appearing in the trace."""
        return len(np.unique(self.ue_ids))

    @property
    def duration(self) -> float:
        """Span between the first and last event, in seconds."""
        if len(self) == 0:
            return 0.0
        return float(self.times[-1] - self.times[0])

    def unique_ues(self) -> np.ndarray:
        """Sorted array of distinct UE ids."""
        return np.unique(self.ue_ids)

    def content_hash(self) -> str:
        """SHA-256 over the four column arrays (dtype-normalized bytes).

        Two traces with identical events hash identically regardless of
        how they were constructed or stored (compressed NPZ, memory map,
        in-memory).  The digest is memoized; the columns are immutable
        by convention.
        """
        if self._content_hash is None:
            import hashlib

            digest = hashlib.sha256()
            digest.update(b"repro-trace-v1")
            for column in (
                self.ue_ids,
                self.times,
                self.event_types,
                self.device_types,
            ):
                digest.update(np.ascontiguousarray(column).tobytes())
            self._content_hash = digest.hexdigest()
        return self._content_hash

    def device_of(self) -> Dict[int, DeviceType]:
        """Map every UE id to its device type."""
        out: Dict[int, DeviceType] = {}
        ues, first = np.unique(self.ue_ids, return_index=True)
        for ue, idx in zip(ues, first):
            out[int(ue)] = DeviceType(int(self.device_types[idx]))
        return out

    # ------------------------------------------------------------------
    # Slicing
    # ------------------------------------------------------------------
    def _select(self, mask: np.ndarray) -> "Trace":
        return Trace(
            self.ue_ids[mask],
            self.times[mask],
            self.event_types[mask],
            self.device_types[mask],
            sort=False,
            validate=False,
        )

    def filter_device(self, device_type: DeviceType) -> "Trace":
        """Events of UEs of one device type."""
        return self._select(self.device_types == int(device_type))

    def filter_event(self, event_type: EventType) -> "Trace":
        """Events of one event type."""
        return self._select(self.event_types == int(event_type))

    def filter_ues(self, ue_ids: Iterable[int]) -> "Trace":
        """Events belonging to the given set of UEs."""
        wanted = np.asarray(sorted(set(int(u) for u in ue_ids)), dtype=np.int64)
        mask = np.isin(self.ue_ids, wanted)
        return self._select(mask)

    def window(self, start: float, end: float) -> "Trace":
        """Events with ``start <= time < end``."""
        if end < start:
            raise ValueError(f"window end {end} precedes start {start}")
        lo = np.searchsorted(self.times, start, side="left")
        hi = np.searchsorted(self.times, end, side="left")
        return self._select(slice(lo, hi))

    def hour_window(self, hour_index: int) -> "Trace":
        """Events in the ``hour_index``-th one-hour interval of the trace."""
        start = hour_index * SECONDS_PER_HOUR
        return self.window(start, start + SECONDS_PER_HOUR)

    def shift(self, offset: float) -> "Trace":
        """A copy of the trace with ``offset`` added to every timestamp."""
        return Trace(
            self.ue_ids.copy(),
            self.times + offset,
            self.event_types.copy(),
            self.device_types.copy(),
            sort=False,
        )

    # ------------------------------------------------------------------
    # Per-UE access
    # ------------------------------------------------------------------
    def _build_ue_index(self) -> Dict[int, np.ndarray]:
        if self._ue_index is None:
            index: Dict[int, List[int]] = {}
            for i, ue in enumerate(self.ue_ids):
                index.setdefault(int(ue), []).append(i)
            self._ue_index = {
                ue: np.asarray(rows, dtype=np.int64) for ue, rows in index.items()
            }
        return self._ue_index

    def per_ue(self) -> Iterator[Tuple[int, "Trace"]]:
        """Yield ``(ue_id, sub_trace)`` for every UE, in UE-id order.

        The sub-traces preserve time order.
        """
        index = self._build_ue_index()
        for ue in sorted(index):
            yield ue, self._select(index[ue])

    def ue_trace(self, ue_id: int) -> "Trace":
        """The events of one UE (time-ordered)."""
        index = self._build_ue_index()
        rows = index.get(int(ue_id))
        if rows is None:
            return Trace.empty()
        return self._select(rows)

    def events_per_ue(self, event_type: Optional[EventType] = None) -> Dict[int, int]:
        """Count events per UE, optionally restricted to one event type.

        UEs present in the trace but with zero matching events still
        appear with count 0.
        """
        counts = {int(ue): 0 for ue in self.unique_ues()}
        if event_type is None:
            ues, n = np.unique(self.ue_ids, return_counts=True)
        else:
            mask = self.event_types == int(event_type)
            ues, n = np.unique(self.ue_ids[mask], return_counts=True)
        for ue, c in zip(ues, n):
            counts[int(ue)] = int(c)
        return counts

    def breakdown(self) -> Dict[EventType, float]:
        """Fraction of events per event type (sums to 1 for non-empty traces)."""
        total = len(self)
        out: Dict[EventType, float] = {}
        for et in EventType:
            n = int(np.count_nonzero(self.event_types == int(et)))
            out[et] = n / total if total else 0.0
        return out

    def device_mix(self) -> Dict[DeviceType, int]:
        """Number of distinct UEs per device type."""
        out = {dt: 0 for dt in ALL_DEVICE_TYPES}
        for ue, dt in self.device_of().items():
            out[dt] += 1
        return out
