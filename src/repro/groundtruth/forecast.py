"""Population growth scenarios for NextG simulation studies (§3.1).

Industry analyses project strong growth in cellular-connected devices,
especially IoT-class ones (the paper cites the Ericsson Mobility
Report).  Because the traffic model is per-UE, simulating a future year
is just a matter of scaling the UE population per device class and
re-running the generator — these helpers express that bookkeeping.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Mapping

from ..trace.events import DeviceType

#: Default annual growth multipliers per device class.  Connected cars
#: and other machine-type devices grow fastest in the industry
#: projections; handsets are near-saturated in mature markets.
DEFAULT_ANNUAL_GROWTH: Dict[DeviceType, float] = {
    DeviceType.PHONE: 1.03,
    DeviceType.CONNECTED_CAR: 1.25,
    DeviceType.TABLET: 1.05,
}


@dataclasses.dataclass(frozen=True)
class GrowthScenario:
    """A named population-growth assumption."""

    name: str
    annual_growth: Dict[DeviceType, float]

    def project(
        self, base_counts: Mapping[DeviceType, int], years: int
    ) -> Dict[DeviceType, int]:
        """Population after ``years`` of compound growth."""
        if years < 0:
            raise ValueError(f"years must be non-negative, got {years}")
        out: Dict[DeviceType, int] = {}
        for device_type, count in base_counts.items():
            rate = self.annual_growth.get(DeviceType(device_type), 1.0)
            out[DeviceType(device_type)] = max(
                0, int(round(count * rate**years))
            )
        return out


#: Ready-made scenarios for quick studies.
SCENARIOS: Dict[str, GrowthScenario] = {
    "baseline": GrowthScenario("baseline", DEFAULT_ANNUAL_GROWTH),
    "iot-boom": GrowthScenario(
        "iot-boom",
        {
            DeviceType.PHONE: 1.02,
            DeviceType.CONNECTED_CAR: 1.45,
            DeviceType.TABLET: 1.10,
        },
    ),
    "flat": GrowthScenario(
        "flat",
        {dt: 1.0 for dt in DeviceType},
    ),
}


def project_population(
    base_counts: Mapping[DeviceType, int],
    years: int,
    *,
    scenario: str = "baseline",
) -> Dict[DeviceType, int]:
    """Project a UE population ``years`` ahead under a named scenario."""
    try:
        chosen = SCENARIOS[scenario]
    except KeyError:
        raise ValueError(
            f"unknown scenario {scenario!r}; choose from {sorted(SCENARIOS)}"
        ) from None
    return chosen.project(base_counts, years)
