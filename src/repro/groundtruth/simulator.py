"""Behaviour-driven ground-truth trace simulator.

Stands in for the paper's proprietary carrier trace (37,325 UEs, one
week, 196.8M events).  Each UE is an *agent*: it runs app sessions,
moves through cells and tracking areas, and power-cycles.  Control
events are a by-product of that behaviour and always conform to the
two-level state machine of Fig. 5 — the simulator walks the machine
explicitly, so ``replay`` recovers the trajectory exactly.

The statistics of the output are intentionally outside every candidate
family the paper tests: sojourns are lognormal mixtures, idle gaps are
burst-modulated, activity is lognormally skewed across UEs, and rates
swing with the hour of day.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from ..trace.events import (
    SECONDS_PER_HOUR,
    DeviceType,
    EventType,
    quantize_timestamp,
)
from ..trace.trace import Trace
from .profiles import (
    DEFAULT_PROFILES,
    PAPER_DEVICE_MIX,
    DeviceProfile,
    LognormalSpec,
    MixtureSpec,
)


@dataclasses.dataclass(frozen=True)
class UEArchetype:
    """Per-UE behavioural parameters drawn once from the device profile."""

    activity: float        #: usage intensity multiplier (lognormal across UEs)
    mobility: float        #: in [0, 1]; probability a connection is "on the move"
    tau_period: float      #: this UE's periodic TAU timer, seconds
    power_period: float    #: mean seconds between power cycles
    phase_jitter: float    #: per-UE shift of the diurnal curve, hours


def sample_archetype(profile: DeviceProfile, rng: np.random.Generator) -> UEArchetype:
    """Draw one UE's archetype from a device profile."""
    activity = float(rng.lognormal(0.0, profile.activity_sigma))
    # Beta-shaped mobility with the profile's mean; clamp parameters sane.
    mean = min(max(profile.mobility_mean, 0.02), 0.98)
    concentration = 4.0
    a = mean * concentration
    b = (1.0 - mean) * concentration
    mobility = float(rng.beta(a, b))
    tau_period = _sample_lognormal(profile.periodic_tau_period, rng)
    power_period = _sample_lognormal(profile.power_cycle_period, rng)
    phase_jitter = float(rng.normal(0.0, 0.7))
    return UEArchetype(
        activity=activity,
        mobility=mobility,
        tau_period=tau_period,
        power_period=power_period,
        phase_jitter=phase_jitter,
    )


def _sample_lognormal(spec: LognormalSpec, rng: np.random.Generator) -> float:
    return float(rng.lognormal(spec.mu, spec.sigma))


def _sample_mixture(spec: MixtureSpec, rng: np.random.Generator) -> float:
    idx = rng.choice(len(spec.weights), p=spec.weights)
    return _sample_lognormal(spec.components[idx], rng)


class _UESimulator:
    """Simulates one UE over ``[0, duration)`` seconds."""

    def __init__(
        self,
        profile: DeviceProfile,
        archetype: UEArchetype,
        duration: float,
        start_hour: float,
        rng: np.random.Generator,
    ) -> None:
        self.profile = profile
        self.arch = archetype
        self.duration = duration
        self.start_hour = start_hour
        self.rng = rng
        self.times: List[float] = []
        self.events: List[int] = []

    # -- helpers -------------------------------------------------------
    def _diurnal(self, t: float) -> float:
        hour = (self.start_hour + self.arch.phase_jitter + t / SECONDS_PER_HOUR) % 24
        curve = self.profile.diurnal
        lo = int(hour) % 24
        hi = (lo + 1) % 24
        frac = hour - int(hour)
        return curve[lo] * (1 - frac) + curve[hi] * frac

    def _emit(self, t: float, event: EventType) -> None:
        self.times.append(quantize_timestamp(t))
        self.events.append(int(event))

    # -- phases --------------------------------------------------------
    def run(self) -> Tuple[List[float], List[int]]:
        rng = self.rng
        profile = self.profile
        t = 0.0
        # Stagger the periodic-TAU and power-cycle timers for stationarity.
        next_periodic_tau = t + rng.uniform(0.0, self.arch.tau_period)
        next_power_off = t + self.arch.power_period * rng.uniform(0.2, 1.0)

        if rng.random() < profile.start_off_probability:
            state = "OFF"
        else:
            state = "IDLE"
            # Burn a random fraction of an idle gap so UEs desynchronize.
            t += rng.uniform(0.0, _sample_lognormal(profile.idle_long_gap, rng))

        while t < self.duration:
            if state == "OFF":
                t_on = t + _sample_lognormal(profile.off_duration, rng)
                if t_on >= self.duration:
                    break
                self._emit(t_on, EventType.ATCH)
                next_power_off = t_on + self.arch.power_period * rng.uniform(0.5, 1.5)
                t = t_on
                state = "CONNECTED"
            elif state == "CONNECTED":
                t, state, next_periodic_tau = self._connected_phase(
                    t, next_power_off, next_periodic_tau
                )
            else:  # IDLE
                t, state, next_periodic_tau = self._idle_phase(
                    t, next_power_off, next_periodic_tau
                )
            if state == "OFF" and t < self.duration:
                continue  # DTCH was emitted by the phase handler
        return self.times, self.events

    def _connected_phase(
        self, t: float, next_power_off: float, next_periodic_tau: float
    ) -> Tuple[float, str, float]:
        """One CONNECTED dwell: HO/TAU activity, then release or power-off."""
        rng = self.rng
        profile = self.profile
        # Fast-forward the periodic timer past any time skipped while the
        # UE was powered off — stale firings must not be emitted.
        while next_periodic_tau < t:
            next_periodic_tau += self.arch.tau_period
        dwell = _sample_mixture(profile.connected_sojourn, rng)
        end = t + dwell
        cutoff = min(end, next_power_off, self.duration)

        pending: List[Tuple[float, EventType]] = []

        def _chain_taus(first_tau: float) -> None:
            """A TAU plus possible rapid retry/follow-up TAUs."""
            tau_t = first_tau
            while tau_t < cutoff:
                pending.append((tau_t, EventType.TAU))
                if rng.random() >= profile.tau_burst_probability:
                    break
                tau_t = tau_t + _sample_lognormal(profile.tau_burst_delay, rng)

        if rng.random() < self.arch.mobility:
            s = t + _sample_lognormal(profile.ho_interarrival, rng)
            while s < cutoff:
                pending.append((s, EventType.HO))
                if rng.random() < profile.tau_after_ho_probability:
                    _chain_taus(s + _sample_lognormal(profile.tau_after_ho_delay, rng))
                s += _sample_lognormal(profile.ho_interarrival, rng)
        # Periodic TAU can fire while connected too.
        while next_periodic_tau < cutoff:
            _chain_taus(next_periodic_tau)
            next_periodic_tau += self.arch.tau_period

        for ev_t, ev in sorted(pending):
            self._emit(ev_t, ev)

        if next_power_off < end and next_power_off < self.duration:
            self._emit(next_power_off, EventType.DTCH)
            return next_power_off, "OFF", next_periodic_tau
        if end >= self.duration:
            return self.duration, "CONNECTED", next_periodic_tau
        self._emit(end, EventType.S1_CONN_REL)
        return end, "IDLE", next_periodic_tau

    def _idle_phase(
        self, t: float, next_power_off: float, next_periodic_tau: float
    ) -> Tuple[float, str, float]:
        """One IDLE gap: TAU/S1-release pairs, then service request."""
        rng = self.rng
        profile = self.profile
        while next_periodic_tau < t:
            next_periodic_tau += self.arch.tau_period
        if rng.random() < profile.burst_probability:
            gap = _sample_lognormal(profile.idle_burst_gap, rng)
        else:
            modulation = max(self.arch.activity * self._diurnal(t), 1e-3)
            gap = _sample_lognormal(profile.idle_long_gap, rng) / modulation
        end = t + gap
        cutoff = min(end, next_power_off, self.duration)

        tau_times: List[float] = []
        while next_periodic_tau < cutoff:
            tau_times.append(next_periodic_tau)
            next_periodic_tau += self.arch.tau_period
        # Mobility-triggered idle TAUs (tracking-area reselection).
        # Tracking-area crossings cluster while the user is actually on
        # the move, so they form a bursty lognormal renewal process, not
        # a Poisson one (consistent with §4's findings).
        rate = (
            profile.idle_mobility_tau_rate_scale
            * self.arch.mobility
            * self._diurnal(t)
            / SECONDS_PER_HOUR
        )
        if rate > 0 and cutoff > t:
            sigma = 1.2
            median = (1.0 / rate) / math.exp(sigma * sigma / 2.0)
            s = t + rng.lognormal(math.log(median), sigma) * rng.uniform(0.0, 1.0)
            while s < cutoff:
                tau_times.append(s)
                s += rng.lognormal(math.log(median), sigma)
        tau_times.sort()

        # Each idle TAU is followed by the S1 release of its signaling
        # connection; both must land before the next TAU / gap end to
        # keep the event stream valid under the two-level machine.
        prev_release = t
        for i, tau_t in enumerate(tau_times):
            limit = tau_times[i + 1] if i + 1 < len(tau_times) else cutoff
            if tau_t <= prev_release:
                continue
            while True:
                release = tau_t + _sample_lognormal(
                    profile.idle_tau_release_delay, rng
                )
                if release >= limit:
                    break
                self._emit(tau_t, EventType.TAU)
                self._emit(release, EventType.S1_CONN_REL)
                prev_release = release
                # Rapid retry/follow-up TAU (same signaling burst).
                if rng.random() >= profile.tau_burst_probability:
                    break
                tau_t = release + _sample_lognormal(profile.tau_burst_delay, rng)
                if tau_t >= limit:
                    break

        if next_power_off < end and next_power_off < self.duration:
            if next_power_off > prev_release:
                self._emit(next_power_off, EventType.DTCH)
                return next_power_off, "OFF", next_periodic_tau
            # Power-off fell inside a TAU exchange; push it just after.
            push = prev_release + 0.5
            if push < self.duration:
                self._emit(push, EventType.DTCH)
                return push, "OFF", next_periodic_tau
            return self.duration, "IDLE", next_periodic_tau
        if end >= self.duration:
            return self.duration, "IDLE", next_periodic_tau
        self._emit(end, EventType.SRV_REQ)
        return end, "CONNECTED", next_periodic_tau


def simulate_ue(
    ue_id: int,
    profile: DeviceProfile,
    duration: float,
    *,
    start_hour: float = 0.0,
    rng: np.random.Generator,
    archetype: Optional[UEArchetype] = None,
) -> Trace:
    """Simulate one UE and return its trace."""
    if archetype is None:
        archetype = sample_archetype(profile, rng)
    sim = _UESimulator(profile, archetype, duration, start_hour, rng)
    times, events = sim.run()
    n = len(times)
    return Trace(
        np.full(n, ue_id, dtype=np.int64),
        np.asarray(times, dtype=np.float64),
        np.asarray(events, dtype=np.int8),
        np.full(n, int(profile.device_type), dtype=np.int8),
        validate=False,
    )


DeviceCounts = Union[int, Mapping[DeviceType, int]]


def resolve_device_counts(num_ues: DeviceCounts) -> Dict[DeviceType, int]:
    """Expand a total UE count into per-device counts via the paper's mix."""
    if isinstance(num_ues, Mapping):
        return {DeviceType(k): int(v) for k, v in num_ues.items()}
    total = int(num_ues)
    counts = {
        dt: int(round(total * frac)) for dt, frac in PAPER_DEVICE_MIX.items()
    }
    # Fix rounding drift on the dominant type.
    drift = total - sum(counts.values())
    counts[DeviceType.PHONE] += drift
    return counts


def simulate_ground_truth(
    num_ues: DeviceCounts,
    duration: float,
    *,
    start_hour: float = 0.0,
    seed: int = 0,
    profiles: Optional[Mapping[DeviceType, DeviceProfile]] = None,
) -> Trace:
    """Simulate a full "real" trace for a UE population.

    Parameters
    ----------
    num_ues:
        Either a total (split by the paper's device mix) or explicit
        per-device counts.
    duration:
        Trace length in seconds (the paper's collection: 7 days).
    start_hour:
        Hour-of-day at ``t = 0`` (affects diurnal behaviour).
    seed:
        Every UE gets an independent, reproducible substream.
    """
    if profiles is None:
        profiles = DEFAULT_PROFILES
    counts = resolve_device_counts(num_ues)
    seed_seq = np.random.SeedSequence(seed)
    total = sum(counts.values())
    streams = seed_seq.spawn(total)

    traces: List[Trace] = []
    ue_id = 0
    for device_type in sorted(counts, key=int):
        profile = profiles[device_type]
        for _ in range(counts[device_type]):
            rng = np.random.default_rng(streams[ue_id])
            traces.append(
                simulate_ue(
                    ue_id, profile, duration, start_hour=start_hour, rng=rng
                )
            )
            ue_id += 1
    return Trace.concatenate(traces)
