"""Behavioural profiles of the three device types.

The paper's input data is a proprietary carrier trace.  This repo
substitutes a *mechanism-driven* simulator: UEs run app sessions, move,
and power-cycle, and control events fall out of that behaviour via the
3GPP state machines.  The profiles below encode the per-device-type
behaviour; their constants are calibrated so the resulting traces match
the qualitative structure the paper reports:

* event breakdowns in the vicinity of Table 1 (connected cars have the
  most HO/TAU and the fewest service requests; tablets the fewest HO);
* strong diurnal swings (Fig. 2), with a commute double-peak for cars
  and an evening peak for phones/tablets;
* heavy-tailed, bursty sojourn and inter-arrival times that defeat
  Poisson/Pareto/Weibull/Tcplib fits (§4, Appendix A);
* large cross-UE diversity (lognormal activity skew).

All durations are seconds.  Every distribution here is a lognormal or a
mixture of lognormals — deliberately *outside* the candidate families
the paper tests, so model fitting is a real exercise.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Tuple

from ..trace.events import DeviceType


@dataclasses.dataclass(frozen=True)
class LognormalSpec:
    """Parameters of one lognormal component (median given in seconds)."""

    median: float
    sigma: float

    @property
    def mu(self) -> float:
        return math.log(self.median)


@dataclasses.dataclass(frozen=True)
class MixtureSpec:
    """A finite mixture of lognormal components."""

    weights: Tuple[float, ...]
    components: Tuple[LognormalSpec, ...]

    def __post_init__(self) -> None:
        if len(self.weights) != len(self.components):
            raise ValueError("weights and components must align")
        if abs(sum(self.weights) - 1.0) > 1e-9:
            raise ValueError(f"weights must sum to 1, got {sum(self.weights)}")


@dataclasses.dataclass(frozen=True)
class DeviceProfile:
    """Full behavioural specification of one device type."""

    device_type: DeviceType

    #: Hour-of-day activity multipliers (24 values; 1.0 = reference).
    diurnal: Tuple[float, ...]

    #: Cross-UE activity skew: per-UE multiplier ~ Lognormal(0, sigma).
    activity_sigma: float

    #: CONNECTED dwell time (data burst vs. browsing vs. long session).
    connected_sojourn: MixtureSpec

    #: IDLE gap within a usage burst (short re-connects).
    idle_burst_gap: LognormalSpec
    #: IDLE gap between usage bursts (scaled by 1/(activity * diurnal)).
    idle_long_gap: LognormalSpec
    #: Probability the next idle gap stays within the current burst.
    burst_probability: float

    #: Mean of the per-UE mobility level (Beta(2, 2/m - 2)-like, in [0,1]).
    mobility_mean: float
    #: HO inter-arrival while moving and CONNECTED.
    ho_interarrival: LognormalSpec
    #: Probability a HO crosses a tracking-area border (TAU follows).
    tau_after_ho_probability: float
    #: Delay between a border-crossing HO and its TAU.
    tau_after_ho_delay: LognormalSpec

    #: Probability a TAU is immediately followed by another TAU (retry /
    #: re-registration chains; gives TAU inter-arrivals their sub-10s
    #: lower tail, cf. Fig. 4's observed 0.62 s minimum).
    tau_burst_probability: float
    #: Delay between chained TAUs.
    tau_burst_delay: LognormalSpec

    #: Periodic TAU timer (3GPP T3412-like), per UE.
    periodic_tau_period: LognormalSpec
    #: Delay between an idle TAU and the S1 release that follows it.
    idle_tau_release_delay: LognormalSpec
    #: Probability an idle TAU is mobility-triggered rather than periodic
    #: (moving UEs re-select tracking areas while idle).
    idle_mobility_tau_rate_scale: float

    #: Mean time between power cycles (DTCH ... ATCH), seconds.
    power_cycle_period: LognormalSpec
    #: Time spent powered off.
    off_duration: LognormalSpec
    #: Probability a fresh UE starts the trace powered off.
    start_off_probability: float


def _evening_peak_curve() -> Tuple[float, ...]:
    """Phones/tablets: night trough, daytime ramp, evening peak."""
    base = [
        0.10, 0.06, 0.05, 0.05, 0.06, 0.10,  # 0-5
        0.22, 0.45, 0.62, 0.70, 0.72, 0.75,  # 6-11
        0.80, 0.78, 0.74, 0.72, 0.76, 0.85,  # 12-17
        0.95, 1.00, 1.00, 0.90, 0.55, 0.25,  # 18-23
    ]
    return tuple(base)


def _commute_curve() -> Tuple[float, ...]:
    """Connected cars: commute double peak, near-silent night."""
    base = [
        0.020, 0.008, 0.005, 0.005, 0.010, 0.060,  # 0-5
        0.350, 0.900, 1.000, 0.600, 0.450, 0.480,  # 6-11
        0.520, 0.500, 0.480, 0.550, 0.800, 1.000,  # 12-17
        0.900, 0.600, 0.350, 0.180, 0.090, 0.040,  # 18-23
    ]
    return tuple(base)


def _tablet_curve() -> Tuple[float, ...]:
    """Tablets: flat-ish daytime, evening couch peak, shallow night."""
    base = [
        0.15, 0.09, 0.07, 0.07, 0.08, 0.10,  # 0-5
        0.18, 0.30, 0.40, 0.48, 0.55, 0.60,  # 6-11
        0.62, 0.60, 0.58, 0.60, 0.66, 0.75,  # 12-17
        0.90, 1.00, 1.00, 0.85, 0.50, 0.25,  # 18-23
    ]
    return tuple(base)


PHONE_PROFILE = DeviceProfile(
    device_type=DeviceType.PHONE,
    diurnal=_evening_peak_curve(),
    activity_sigma=1.10,
    connected_sojourn=MixtureSpec(
        weights=(0.55, 0.35, 0.10),
        components=(
            LognormalSpec(median=6.0, sigma=0.9),     # push / keep-alive burst
            LognormalSpec(median=45.0, sigma=1.0),    # interactive use
            LognormalSpec(median=420.0, sigma=1.1),   # streaming / calls
        ),
    ),
    idle_burst_gap=LognormalSpec(median=4.0, sigma=0.9),
    idle_long_gap=LognormalSpec(median=110.0, sigma=1.25),
    burst_probability=0.38,
    mobility_mean=0.15,
    ho_interarrival=LognormalSpec(median=120.0, sigma=1.0),
    tau_after_ho_probability=0.15,
    tau_after_ho_delay=LognormalSpec(median=2.0, sigma=0.6),
    tau_burst_probability=0.12,
    tau_burst_delay=LognormalSpec(median=2.0, sigma=0.8),
    periodic_tau_period=LognormalSpec(median=2.6 * 3600.0, sigma=0.5),
    idle_tau_release_delay=LognormalSpec(median=1.2, sigma=0.4),
    idle_mobility_tau_rate_scale=1.5,
    power_cycle_period=LognormalSpec(median=1.5 * 86400.0, sigma=0.8),
    off_duration=LognormalSpec(median=1800.0, sigma=1.0),
    start_off_probability=0.01,
)

CONNECTED_CAR_PROFILE = DeviceProfile(
    device_type=DeviceType.CONNECTED_CAR,
    diurnal=_commute_curve(),
    activity_sigma=1.30,
    connected_sojourn=MixtureSpec(
        weights=(0.50, 0.40, 0.10),
        components=(
            LognormalSpec(median=8.0, sigma=0.8),     # telemetry ping
            LognormalSpec(median=90.0, sigma=0.9),    # navigation refresh
            LognormalSpec(median=400.0, sigma=0.9),   # full drive session
        ),
    ),
    idle_burst_gap=LognormalSpec(median=6.0, sigma=0.8),
    idle_long_gap=LognormalSpec(median=260.0, sigma=1.35),
    burst_probability=0.30,
    mobility_mean=0.35,
    ho_interarrival=LognormalSpec(median=165.0, sigma=1.0),
    tau_after_ho_probability=0.30,
    tau_after_ho_delay=LognormalSpec(median=2.5, sigma=0.6),
    tau_burst_probability=0.15,
    tau_burst_delay=LognormalSpec(median=2.5, sigma=0.8),
    periodic_tau_period=LognormalSpec(median=2.4 * 3600.0, sigma=0.5),
    idle_tau_release_delay=LognormalSpec(median=1.5, sigma=0.4),
    idle_mobility_tau_rate_scale=1.0,
    power_cycle_period=LognormalSpec(median=11.0 * 3600.0, sigma=0.7),  # ignition
    off_duration=LognormalSpec(median=2.5 * 3600.0, sigma=1.0),
    start_off_probability=0.15,
)

TABLET_PROFILE = DeviceProfile(
    device_type=DeviceType.TABLET,
    diurnal=_tablet_curve(),
    activity_sigma=1.20,
    connected_sojourn=MixtureSpec(
        weights=(0.53, 0.35, 0.12),
        components=(
            LognormalSpec(median=7.0, sigma=0.9),
            LognormalSpec(median=70.0, sigma=1.0),
            LognormalSpec(median=500.0, sigma=1.0),   # video sessions
        ),
    ),
    idle_burst_gap=LognormalSpec(median=5.0, sigma=0.9),
    idle_long_gap=LognormalSpec(median=170.0, sigma=1.30),
    burst_probability=0.34,
    mobility_mean=0.08,
    ho_interarrival=LognormalSpec(median=130.0, sigma=1.0),
    tau_after_ho_probability=0.25,
    tau_after_ho_delay=LognormalSpec(median=2.0, sigma=0.6),
    tau_burst_probability=0.12,
    tau_burst_delay=LognormalSpec(median=2.0, sigma=0.8),
    periodic_tau_period=LognormalSpec(median=2.6 * 3600.0, sigma=0.5),
    idle_tau_release_delay=LognormalSpec(median=1.2, sigma=0.4),
    idle_mobility_tau_rate_scale=0.10,
    power_cycle_period=LognormalSpec(median=7.0 * 3600.0, sigma=0.8),
    off_duration=LognormalSpec(median=4.0 * 3600.0, sigma=0.9),
    start_off_probability=0.05,
)

DEFAULT_PROFILES: Dict[DeviceType, DeviceProfile] = {
    DeviceType.PHONE: PHONE_PROFILE,
    DeviceType.CONNECTED_CAR: CONNECTED_CAR_PROFILE,
    DeviceType.TABLET: TABLET_PROFILE,
}

#: UE population mix of the paper's collection (§4: 23,388 phones,
#: 9,308 connected cars, 4,629 tablets out of 37,325).
PAPER_DEVICE_MIX: Dict[DeviceType, float] = {
    DeviceType.PHONE: 23388 / 37325,
    DeviceType.CONNECTED_CAR: 9308 / 37325,
    DeviceType.TABLET: 4629 / 37325,
}
