"""Behaviour-driven ground-truth traces (substitute for the carrier data)."""

from .forecast import (
    DEFAULT_ANNUAL_GROWTH,
    SCENARIOS,
    GrowthScenario,
    project_population,
)
from .profiles import (
    CONNECTED_CAR_PROFILE,
    DEFAULT_PROFILES,
    PAPER_DEVICE_MIX,
    PHONE_PROFILE,
    TABLET_PROFILE,
    DeviceProfile,
    LognormalSpec,
    MixtureSpec,
)
from .simulator import (
    UEArchetype,
    resolve_device_counts,
    sample_archetype,
    simulate_ground_truth,
    simulate_ue,
)

__all__ = [
    "CONNECTED_CAR_PROFILE",
    "DEFAULT_ANNUAL_GROWTH",
    "GrowthScenario",
    "SCENARIOS",
    "project_population",
    "DEFAULT_PROFILES",
    "DeviceProfile",
    "LognormalSpec",
    "MixtureSpec",
    "PAPER_DEVICE_MIX",
    "PHONE_PROFILE",
    "TABLET_PROFILE",
    "UEArchetype",
    "resolve_device_counts",
    "sample_archetype",
    "simulate_ground_truth",
    "simulate_ue",
]
